/**
 * @file
 * Static verification walkthrough: lint a builder-generated surface
 * circuit, a deliberately broken hand-rolled circuit, and a standard
 * cell -- the three levels the hetarch::lint subsystem covers -- then
 * run the fault-path analyzer to certify the surface circuit's
 * distance and union-bound error budget without a single shot.
 *
 * Build and run:
 *   cmake --build build --target example_lint_demo
 *   ./build/examples/example_lint_demo
 */

#include <iostream>

#include "cells/standard_cells.hh"
#include "lint/faults.hh"
#include "lint/lint.hh"
#include "lint/verify_cell.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit.hh"

int
main()
{
    using namespace hetarch;

    // --- 1. a builder circuit is clean by construction ----------------
    const auto surface = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto surface_report = lint::lintCircuit(surface);
    std::cout << "surfaceMemoryZ(d=3): "
              << (surface_report.cleanStrict() ? "clean" : "NOT clean")
              << " (" << surface.ops().size() << " ops, "
              << surface.numDetectors() << " detectors)\n";

    // --- 2. a hand-rolled circuit with one bug per pass ---------------
    using stab::Op;
    using stab::OpCode;
    const auto broken = stab::Circuit::fromRawOps(
        2, {
               Op{OpCode::CX, {0, 0}, {}, 0},      // self-paired CX
               Op{OpCode::X_ERROR, {1}, {1.5}, 0}, // p > 1
               Op{OpCode::H, {0}, {}, 0},
               Op{OpCode::M, {0}, {}, 0},
               Op{OpCode::DETECTOR, {4}, {}, 0},   // dangling record ref
           });
    std::cout << "\nhand-rolled circuit:\n"
              << lint::lintCircuit(broken).toString();

    // --- 3. cell-level verification (DRC + lowered schedule) ----------
    for (const auto& cell : cells::table2Cells()) {
        const auto report = lint::verifyCell(cell);
        std::cout << "\ncell " << cell.name() << ": "
                  << (report.cleanStrict() ? "verified" : "NOT verified")
                  << " (" << report.findings.size() << " findings)";
    }
    std::cout << "\n\ndeclaring that the USC needs one fewer readout "
                 "than it carries (breaks DR4):\n";
    const auto usc = cells::table2Cells().back();
    std::cout << lint::verifyCell(usc, usc.readoutCount() - 1)
                     .toString();

    // --- 4. fault-path analysis: certify the distance statically ------
    const auto faults = lint::analyzeCircuitFaults(surface);
    std::cout << "\nfault analysis of surfaceMemoryZ(d=3): "
              << faults.numMechanisms << " mechanisms over "
              << faults.numDetectors << " detectors\n";
    for (const auto& o : faults.observables) {
        std::cout << "  observable " << o.observable
                  << ": certified distance " << o.distance
                  << (o.graphlike ? "" : " (upper bound)")
                  << ", union bound " << o.unionBound
                  << " at weight " << o.unionBoundWeight
                  << ", certificate {";
        for (std::size_t i = 0; i < o.certificate.mechanisms.size();
             ++i)
            std::cout << (i ? ", " : "") << o.certificate.mechanisms[i];
        std::cout << "}\n";
    }
    return 0;
}
