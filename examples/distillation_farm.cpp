/**
 * @file
 * Scenario: provisioning an entanglement-distillation module for a
 * networked quantum system (paper Section 4.1's motivating use case).
 *
 * Given a microwave-to-optical link with a known EP generation rate,
 * sweep the storage-coherence axis with the DSE engine and report the
 * cheapest storage technology that sustains a target distilled-EP
 * rate at F >= 0.995.
 */

#include <iostream>

#include "core/units.hh"
#include "devices/device.hh"
#include "distill/module_sim.hh"
#include "dse/sweep.hh"
#include "obs/json.hh"

int
main(int argc, char** argv)
{
    // --metrics-out=FILE (or HETARCH_METRICS_OUT) exports the
    // observability snapshot when the example exits.
    hetarch::obs::configureMetricsFromArgs(argc, argv);
    using namespace hetarch;
    using namespace hetarch::units;

    const double link_rate = 500.0 * kHz;
    const double target_rate_per_ms = 10.0;
    std::cout << "Distillation farm designer\n"
              << "link rate: " << link_rate / kHz
              << " kHz, target: " << target_rate_per_ms
              << " distilled EPs/ms at F >= 0.995\n\n";

    dse::Sweep sweep;
    sweep.parameter("ts_ms", {0.5, 1.0, 2.5, 5.0, 12.5, 25.0, 50.0});

    const auto results =
        sweep.run([&](const dse::DesignPoint& point) -> dse::Metrics {
            distill::DistillConfig cfg;
            cfg.ts = point.at("ts_ms") * ms;
            cfg.epRate = link_rate;
            cfg.epInfidelity = 0.03;
            cfg.seed = 1234;
            const auto res =
                distill::simulateDistillation(cfg, 5.0 * ms);
            return {{"distilled_per_ms", res.distilledRatePerMs()},
                    {"attempts", static_cast<double>(res.attempts)},
                    {"failures", static_cast<double>(res.failures)}};
        });

    dse::Sweep::tabulate(results).print(std::cout);

    // Recommend the smallest Ts that meets the target.
    double best_ts = -1.0;
    for (const auto& [point, metrics] : results) {
        for (const auto& [name, value] : metrics) {
            if (name == "distilled_per_ms" &&
                value >= target_rate_per_ms) {
                if (best_ts < 0.0 || point.at("ts_ms") < best_ts)
                    best_ts = point.at("ts_ms");
            }
        }
    }
    if (best_ts > 0.0) {
        std::cout << "\nrecommendation: storage with Ts >= " << best_ts
                  << " ms meets the target; the "
                  << (best_ts <= 2.0
                          ? devices::onChipMultimodeResonator().name
                          : devices::multimodeResonator3D().name)
                  << " is the smallest-footprint option.\n";
    } else {
        std::cout << "\nno swept design meets the target; raise the "
                     "link rate or storage coherence.\n";
    }
    return 0;
}
