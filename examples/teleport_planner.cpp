/**
 * @file
 * Scenario: planning a code-teleportation bridge between a compute
 * region (surface code, fast Cliffords) and a magic region (Reed-
 * Muller, transversal T) — the paper's Section 4.3 motivation.
 *
 * Reports the CT resource-state error budget component by component so
 * an architect can see where the budget goes, and how much storage
 * coherence buys.
 */

#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/css_code.hh"
#include "teleport/code_teleport.hh"

int
main()
{
    using namespace hetarch;
    using namespace hetarch::units;

    const auto compute_code = qec::makeRotatedSurface(3);
    const auto magic_code = qec::makeReedMuller15();
    std::cout << "Code-teleportation planner: " << compute_code.name
              << " <-> " << magic_code.name << "\n\n";

    TextTable t({"Ts(ms)", "arch", "CT_error", "cat", "prep_A", "prep_B",
                 "transversal", "EP_ok"});
    for (double ts_ms : {2.0, 10.0, 50.0}) {
        for (bool het : {true, false}) {
            teleport::CtConfig cfg;
            cfg.ts = ts_ms * ms;
            cfg.heterogeneous = het;
            cfg.shots = 2000;
            cfg.seed = 99;
            const auto r = teleport::prepareCtState(compute_code,
                                                    magic_code, cfg);
            t.addRow({formatFixed(ts_ms, 0), het ? "het" : "hom",
                      formatFixed(r.errorProbability, 3),
                      formatFixed(r.catError, 3),
                      formatFixed(r.prepErrorA, 3),
                      formatFixed(r.prepErrorB, 3),
                      formatFixed(r.transversalError, 3),
                      r.epTargetMet ? "yes" : "NO"});
        }
    }
    t.print(std::cout);

    const auto mod = teleport::buildCodeTeleportModule(50.0 * ms);
    std::cout << "\nmodule inventory: " << mod.subModules().size()
              << " sub-modules, " << mod.qubitCapacity()
              << " physical qubit capacity, " << mod.controlLines()
              << " control lines\n";
    std::cout << "reading: the homogeneous rows lose most of their "
                 "budget to CAT idling and logical-state preparation;\n"
                 "storage-backed cells recover both, which is the "
                 "paper's Table 4 conclusion.\n";
    return 0;
}
