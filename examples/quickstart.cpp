/**
 * @file
 * Quickstart: the HetArch hierarchy in one file.
 *
 * Builds devices -> a standard cell -> a module, checks the design
 * rules, characterizes the cell with exact density-matrix simulation,
 * and runs one DEJMPS distillation round — the minimal end-to-end tour
 * of the toolbox.
 */

#include <iostream>

#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "core/units.hh"
#include "devices/device.hh"
#include "distill/dejmps.hh"
#include "distill/module_sim.hh"
#include "obs/json.hh"

int
main(int argc, char** argv)
{
    // --metrics-out=FILE (or HETARCH_METRICS_OUT) exports the
    // observability snapshot when the example exits.
    hetarch::obs::configureMetricsFromArgs(argc, argv);
    using namespace hetarch;
    using namespace hetarch::units;

    std::cout << "HetArch quickstart\n==================\n\n";

    // 1. Devices: pick a storage and a compute device from Table 1.
    const auto storage = devices::multimodeResonator3D();
    const auto compute = devices::fixedFrequencyTransmon();
    std::cout << "devices: " << storage.name << " (Ts = "
              << units::toMs(storage.t1) << " ms, " << storage.modes
              << " modes) + " << compute.name << " (Tc = "
              << units::toMs(compute.t1) << " ms)\n";

    // 2. Standard cell: a Register, checked against the design rules.
    const auto reg = cells::makeRegister(storage, compute);
    const auto drc = cells::checkDesignRules(reg, reg.readoutCount());
    std::cout << "Register cell: " << reg.deviceList().size()
              << " devices, " << reg.qubitCapacity()
              << " qubit capacity, DRC "
              << (drc.clean() ? "pass" : "FAIL") << "\n";

    // 3. Characterization: exact density-matrix simulation of the
    //    cell's operations.
    const auto ch = cells::characterizeRegister(reg);
    for (const auto& op : ch.ops) {
        std::cout << "  op " << op.name << ": " << op.duration
                  << " ns, error " << op.errorRate << "\n";
    }

    // 4. One DEJMPS round on two noisy Bell pairs.
    const auto noisy = distill::BellDiag::werner(0.05);
    const auto round = distill::dejmps(noisy, noisy);
    std::cout << "\nDEJMPS: two F=0.95 pairs -> one F="
              << round.output.fidelity() << " pair (success prob "
              << round.successProb << ")\n";

    // 5. A module: the full entanglement-distillation hierarchy.
    const auto mod = distill::buildDistillationModule(12.5 * ms);
    std::cout << "\n" << mod.name() << " module: "
              << mod.subModules().size() << " sub-modules, "
              << mod.qubitCapacity() << " qubits, "
              << mod.controlLines() << " control lines, "
              << mod.footprintArea() << " mm^2\n";
    return 0;
}
