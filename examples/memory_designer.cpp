/**
 * @file
 * Scenario: choosing a QEC code for an error-corrected quantum memory
 * built on the Universal Error Correction module (paper Section 4.2.2).
 *
 * For a given storage coherence budget, runs every code of the paper
 * zoo on the UEC and on the homogeneous sea-of-qubits baseline, and
 * recommends the architecture/code pair with the lowest logical error
 * per round.
 */

#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/css_code.hh"
#include "uec/assignment.hh"
#include "uec/experiment.hh"
#include "obs/json.hh"

int
main(int argc, char** argv)
{
    // --metrics-out=FILE (or HETARCH_METRICS_OUT) exports the
    // observability snapshot when the example exits.
    hetarch::obs::configureMetricsFromArgs(argc, argv);
    using namespace hetarch;
    using namespace hetarch::units;

    const double ts = 25.0 * ms;
    const std::size_t shots = 3000;
    std::cout << "Error-corrected memory designer (Ts = "
              << units::toMs(ts) << " ms)\n\n";

    TextTable t({"code", "n", "d", "round(us,UEC)", "p_L/round(UEC)",
                 "p_L/round(lattice)", "winner"});

    std::string best_desc;
    double best_p = 1.0;
    for (const auto& code : qec::paperCodeZoo()) {
        const auto assignment = uec::optimizeAssignment(code);
        const auto sched = uec::buildRoundSchedule(code, assignment);
        const double het =
            uec::uecLogicalErrorPerRound(code, ts, 3, shots, 42);
        const double hom =
            uec::homogeneousLogicalErrorPerRound(code, 3, shots, 43);

        const bool het_wins = het < hom;
        t.addRow({code.name, std::to_string(code.n),
                  std::to_string(code.distance),
                  formatFixed(units::toUs(sched.duration), 1),
                  formatFixed(het, 4), formatFixed(hom, 4),
                  het_wins ? "UEC" : "lattice"});

        const double winner_p = std::min(het, hom);
        if (winner_p < best_p) {
            best_p = winner_p;
            best_desc = code.name + std::string(" on ") +
                        (het_wins ? "the UEC module"
                                  : "the homogeneous lattice");
        }
    }
    t.print(std::cout);
    std::cout << "\nrecommendation: " << best_desc
              << " (logical error " << best_p << " per round)\n";
    return 0;
}
