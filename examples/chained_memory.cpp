/**
 * @file
 * Scenario: scaling the universal error correction module past the
 * single-USC 30-qubit limit with USC-EXT extension cells (paper
 * Fig. 8), running a distance-6 surface code that cannot fit a single
 * USC.
 *
 * Shows the tradeoff the paper describes: extension cells add capacity
 * and a second ancilla lane (shorter rounds), at the price of
 * inter-cell routing noise for checks that straddle cells.
 */

#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/css_code.hh"
#include "qec/memory_experiment.hh"
#include "stab/circuit_stats.hh"
#include "uec/uec_circuit.hh"

int
main()
{
    using namespace hetarch;
    using namespace hetarch::units;

    const auto code = qec::makeRotatedSurface(6); // 36 data qubits
    std::cout << "Chained-UEC memory: " << code.name << " ("
              << code.n << " qubits — beyond one USC's 30)\n\n";

    uec::UecChain chain;
    chain.numUscExt = 1; // USC + one extension: 5 registers, 2 ancillas

    // Cell-local assignment: fill cell 0's registers first.
    uec::Assignment assignment;
    assignment.numRegisters = chain.numRegisters();
    assignment.registerOf.resize(code.n);
    for (std::size_t q = 0; q < code.n; ++q)
        assignment.registerOf[q] = static_cast<int>(q / 10);

    const auto sched =
        uec::buildChainedSchedule(code, assignment, chain);
    std::cout << "serialized round: "
              << units::toUs(sched.duration) << " us across "
              << chain.numAncillas() << " ancilla lanes\n";

    uec::UecNoise noise;
    TextTable t({"Ts(ms)", "p_L/round", "2q gates/shot"});
    for (double ts : {1.0, 10.0, 50.0}) {
        noise.ts = ts * ms;
        const auto circ =
            uec::uecChainedMemoryZ(code, assignment, chain, 2, noise);
        const auto stats = stab::analyzeCircuit(circ);
        Rng rng(11);
        const auto res = qec::runMemoryExperiment(
            circ, 2000, 2, qec::DecoderKind::GreedyDem, rng);
        t.addRow({formatFixed(ts, 0), formatFixed(res.perRound(), 4),
                  std::to_string(stats.twoQubitGates)});
    }
    t.print(std::cout);
    std::cout << "\nEach check straddling the USC/USC-EXT boundary pays "
                 "one routed SWAP hop per\ncrossing; the assignment "
                 "optimizer's job at this scale is minimizing those.\n";
    return 0;
}
