/**
 * @file
 * Tests for the stable v1 snapshot JSON: golden schema output,
 * serialize/parse round-trips, and loud failure on malformed input.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace {

obs::Snapshot
sampleSnapshot()
{
    obs::Snapshot snap;
    snap.counters = {{"a.count", 3}, {"b.count", 0}};
    obs::Snapshot::HistogramEntry h;
    h.name = "a.hist_ns";
    h.count = 3;
    h.sum = 9;
    h.buckets = {{1, 1}, {2, 1}, {4, 1}};
    snap.histograms.push_back(h);
    snap.spans.push_back({"phase.one", 10, 250, 0});
    return snap;
}

TEST(ObsJson, GoldenSchema)
{
    const char* expected = R"({
  "schema": "hetarch-obs-v1",
  "counters": {
    "a.count": 3,
    "b.count": 0
  },
  "histograms": {
    "a.hist_ns": {"count": 3, "sum": 9, "buckets": [[1, 1], [2, 1], [4, 1]]}
  },
  "spans": [
    {"name": "phase.one", "start_ns": 10, "dur_ns": 250, "thread": 0}
  ]
}
)";
    EXPECT_EQ(obs::toJson(sampleSnapshot()), expected);
}

TEST(ObsJson, RoundTripPreservesEverything)
{
    const auto snap = sampleSnapshot();
    const auto parsed = obs::parseSnapshotJson(obs::toJson(snap));

    ASSERT_EQ(parsed.counters.size(), snap.counters.size());
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        EXPECT_EQ(parsed.counters[i].first, snap.counters[i].first);
        EXPECT_EQ(parsed.counters[i].second, snap.counters[i].second);
    }
    ASSERT_EQ(parsed.histograms.size(), snap.histograms.size());
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& a = snap.histograms[i];
        const auto& b = parsed.histograms[i];
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.count, a.count);
        EXPECT_EQ(b.sum, a.sum);
        EXPECT_EQ(b.buckets, a.buckets);
    }
    ASSERT_EQ(parsed.spans.size(), snap.spans.size());
    for (std::size_t i = 0; i < snap.spans.size(); ++i) {
        EXPECT_EQ(parsed.spans[i].name, snap.spans[i].name);
        EXPECT_EQ(parsed.spans[i].startNs, snap.spans[i].startNs);
        EXPECT_EQ(parsed.spans[i].durNs, snap.spans[i].durNs);
        EXPECT_EQ(parsed.spans[i].thread, snap.spans[i].thread);
    }
}

TEST(ObsJson, EmptySnapshotRoundTrips)
{
    obs::Snapshot empty;
    const auto parsed = obs::parseSnapshotJson(obs::toJson(empty));
    EXPECT_TRUE(parsed.counters.empty());
    EXPECT_TRUE(parsed.histograms.empty());
    EXPECT_TRUE(parsed.spans.empty());
}

TEST(ObsJson, RegistrySnapshotRoundTrips)
{
    obs::counter("test.json.counter").add(5);
    obs::histogram("test.json.hist").record(17);
    const auto snap = obs::Registry::instance().snapshot();
    const auto parsed = obs::parseSnapshotJson(obs::toJson(snap));
    EXPECT_EQ(parsed.counters.size(), snap.counters.size());
    EXPECT_EQ(parsed.histograms.size(), snap.histograms.size());
    EXPECT_EQ(obs::toJson(parsed), obs::toJson(snap));
}

TEST(ObsJsonDeath, MalformedInputIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(obs::parseSnapshotJson("{"), ::testing::ExitedWithCode(1),
                "parse error");
    EXPECT_EXIT(obs::parseSnapshotJson("[]"),
                ::testing::ExitedWithCode(1), "parse error");
    EXPECT_EXIT(
        obs::parseSnapshotJson(
            "{\"schema\": \"hetarch-obs-v2\", \"counters\": {}, "
            "\"histograms\": {}, \"spans\": []}"),
        ::testing::ExitedWithCode(1), "unsupported snapshot schema");
    const auto good = obs::toJson(obs::Snapshot{});
    EXPECT_EXIT(obs::parseSnapshotJson(good + "x"),
                ::testing::ExitedWithCode(1), "trailing content");
}

} // namespace
} // namespace hetarch
