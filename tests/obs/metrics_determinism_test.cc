/**
 * @file
 * Pins the obs determinism contract: every counter is thread-count
 * invariant.  The same seeded workloads run at 1, 2 and 8 workers and
 * the full counter snapshot must compare bit-identical — this is the
 * property the CI bench-regression job relies on when it gates exact
 * counter values against the committed baseline.
 *
 * Timing histograms are exempt by contract; the one value histogram
 * fed from deterministic data (qec.syndrome_weight) is compared
 * exactly, buckets included.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hh"
#include "core/units.hh"
#include "distill/module_sim.hh"
#include "dse/sweep.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace {

const unsigned kWorkerCounts[] = {1, 2, 8};

/** Restores the default worker count when a test exits. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

/** Counter part of a snapshot plus the one pinned value histogram. */
struct CounterState
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    obs::Snapshot::HistogramEntry syndromeWeight;
};

/**
 * Run @p workload from a clean registry + decoder cache at @p workers
 * and capture the counter state it produced.
 */
template <typename Fn>
CounterState
runInstrumented(unsigned workers, Fn&& workload)
{
    ThreadCountGuard guard(workers);
    qec::DecoderCache::instance().clear();
    obs::Registry::instance().reset();
    workload();
    const auto snap = obs::Registry::instance().snapshot();

    CounterState state;
    state.counters = snap.counters;
    for (const auto& h : snap.histograms)
        if (h.name == "qec.syndrome_weight")
            state.syndromeWeight = h;
    return state;
}

void
expectSameCounters(const CounterState& got, const CounterState& want,
                   unsigned workers)
{
    ASSERT_EQ(got.counters.size(), want.counters.size())
        << "counter set changed at " << workers << " workers";
    for (std::size_t i = 0; i < want.counters.size(); ++i) {
        EXPECT_EQ(got.counters[i].first, want.counters[i].first)
            << "workers " << workers;
        EXPECT_EQ(got.counters[i].second, want.counters[i].second)
            << got.counters[i].first << " at " << workers << " workers";
    }
    EXPECT_EQ(got.syndromeWeight.count, want.syndromeWeight.count)
        << "syndrome-weight count at " << workers << " workers";
    EXPECT_EQ(got.syndromeWeight.sum, want.syndromeWeight.sum)
        << "syndrome-weight sum at " << workers << " workers";
    EXPECT_EQ(got.syndromeWeight.buckets, want.syndromeWeight.buckets)
        << "syndrome-weight buckets at " << workers << " workers";
}

TEST(MetricsDeterminism, MemoryExperimentCountersAreThreadInvariant)
{
    qec::CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = qec::surfaceMemoryZ(3, 4, noise);
    const auto workload = [&] {
        for (auto kind : {qec::DecoderKind::UnionFind,
                          qec::DecoderKind::GreedyDem}) {
            Rng rng(1234);
            qec::runMemoryExperiment(circuit, 1500, 4, kind, rng);
        }
    };

    const auto reference = runInstrumented(kWorkerCounts[0], workload);
    EXPECT_FALSE(reference.counters.empty());
    EXPECT_GT(reference.syndromeWeight.count, 0u);
    for (std::size_t w = 1; w < std::size(kWorkerCounts); ++w)
        expectSameCounters(runInstrumented(kWorkerCounts[w], workload),
                           reference, kWorkerCounts[w]);
}

TEST(MetricsDeterminism, DecoderCacheCountersAreThreadInvariant)
{
    // Two distinct circuits decoded repeatedly: exactly 2 misses and
    // 2 * (reps - 1) hits, no matter how shot chunks race on the cache.
    qec::CircuitNoise noise;
    noise.p2 = 2e-3;
    const auto circ_a = qec::surfaceMemoryZ(3, 2, noise);
    const auto circ_b = qec::surfaceMemoryZ(3, 3, noise);
    constexpr std::size_t kReps = 3;
    const auto workload = [&] {
        for (std::size_t rep = 0; rep < kReps; ++rep) {
            Rng rng_a(5 + rep), rng_b(9 + rep);
            qec::runMemoryExperiment(circ_a, 600, 2,
                                     qec::DecoderKind::UnionFind, rng_a);
            qec::runMemoryExperiment(circ_b, 600, 3,
                                     qec::DecoderKind::UnionFind, rng_b);
        }
    };

    std::vector<CounterState> states;
    for (unsigned workers : kWorkerCounts)
        states.push_back(runInstrumented(workers, workload));

    auto counterValue = [](const CounterState& s, const std::string& n) {
        for (const auto& [name, value] : s.counters)
            if (name == n)
                return value;
        return std::uint64_t{0};
    };
    for (const auto& state : states) {
        EXPECT_EQ(counterValue(state, "qec.decoder_cache.misses"), 2u);
        EXPECT_EQ(counterValue(state, "qec.decoder_cache.hits"),
                  2u * (kReps - 1));
    }
    for (std::size_t w = 1; w < states.size(); ++w)
        expectSameCounters(states[w], states[0], kWorkerCounts[w]);
}

TEST(MetricsDeterminism, DistillAndSweepCountersAreThreadInvariant)
{
    const auto workload = [] {
        distill::DistillConfig config;
        config.seed = 7;
        distill::simulateDistillationEnsemble(config, 1.5 * units::ms,
                                              4);

        dse::Sweep sweep;
        sweep.parameter("p", {1e-3, 3e-3});
        sweep.run([](const dse::DesignPoint& pt) -> dse::Metrics {
            qec::CircuitNoise noise;
            noise.p2 = pt.at("p");
            return {{"ler", qec::surfaceLogicalErrorPerRound(
                                3, 2, noise, 400, 42)}};
        });

        uec::uecLogicalErrorPerRound(qec::makeSteane(),
                                     10.0 * units::ms, 2, 400, 11);
    };

    const auto reference = runInstrumented(kWorkerCounts[0], workload);
    EXPECT_FALSE(reference.counters.empty());
    for (std::size_t w = 1; w < std::size(kWorkerCounts); ++w)
        expectSameCounters(runInstrumented(kWorkerCounts[w], workload),
                           reference, kWorkerCounts[w]);
}

} // namespace
} // namespace hetarch
