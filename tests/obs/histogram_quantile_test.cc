/**
 * @file
 * Pins histogramQuantile: display-time quantile estimation over the
 * power-of-two snapshot buckets.  Estimates must stay inside the
 * bucket containing the true quantile (the documented error bound),
 * be monotone in q, and never touch the serialized schema.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace obs {
namespace {

Snapshot::HistogramEntry
entry(std::uint64_t count, std::uint64_t sum,
      std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets)
{
    Snapshot::HistogramEntry h;
    h.name = "test";
    h.count = count;
    h.sum = sum;
    h.buckets = std::move(buckets);
    return h;
}

TEST(HistogramQuantile, EmptyHistogramIsZero)
{
    EXPECT_EQ(histogramQuantile(entry(0, 0, {}), 0.5), 0.0);
}

TEST(HistogramQuantile, ZeroBucketIsExact)
{
    // Bucket 0 holds the exact value 0, so any quantile landing there
    // is 0, not an interpolation artifact.
    const auto h = entry(100, 50, {{0, 50}, {1, 50}});
    EXPECT_EQ(histogramQuantile(h, 0.0), 0.0);
    EXPECT_EQ(histogramQuantile(h, 0.25), 0.0);
    const double p90 = histogramQuantile(h, 0.9);
    EXPECT_GE(p90, 1.0);
    EXPECT_LT(p90, 2.0);
}

TEST(HistogramQuantile, EstimateStaysInsideTheTrueBucket)
{
    // Values in [4,8) and [16,32): quantiles must land in the bucket
    // holding the true order statistic.
    const auto h = entry(20, 0, {{4, 10}, {16, 10}});
    const double p25 = histogramQuantile(h, 0.25);
    EXPECT_GE(p25, 4.0);
    EXPECT_LT(p25, 8.0);
    const double p90 = histogramQuantile(h, 0.9);
    EXPECT_GE(p90, 16.0);
    EXPECT_LT(p90, 32.0);
}

TEST(HistogramQuantile, MonotoneInQ)
{
    const auto h = entry(1000, 0, {{1, 900}, {64, 90}, {8192, 10}});
    const double p50 = histogramQuantile(h, 0.5);
    const double p90 = histogramQuantile(h, 0.9);
    const double p99 = histogramQuantile(h, 0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // 90% of records are 1, so p50 and p90 sit in the [1,2) bucket
    // while p99 reaches the [64,128) bucket (true value 100).
    EXPECT_LT(p90, 2.0);
    EXPECT_GE(p99, 64.0);
    EXPECT_LT(p99, 128.0);
}

TEST(HistogramQuantile, WorksOnRegistrySnapshots)
{
    auto& h = histogram("test.qtile.snapshot_roundtrip");
    for (int i = 0; i < 90; ++i)
        h.record(10); // bucket [8,16)
    for (int i = 0; i < 10; ++i)
        h.record(1000); // bucket [512,1024)

    const auto snap = Registry::instance().snapshot();
    const Snapshot::HistogramEntry* found = nullptr;
    for (const auto& e : snap.histograms)
        if (e.name == "test.qtile.snapshot_roundtrip")
            found = &e;
    ASSERT_NE(found, nullptr);

    const double p50 = histogramQuantile(*found, 0.5);
    EXPECT_GE(p50, 8.0);
    EXPECT_LT(p50, 16.0);
    const double p99 = histogramQuantile(*found, 0.99);
    EXPECT_GE(p99, 512.0);
    EXPECT_LT(p99, 1024.0);

    // Quantiles are display-time only: the serialized schema carries
    // count/sum/buckets and nothing else.
    const auto json = toJson(snap);
    EXPECT_EQ(json.find("p50"), std::string::npos);
    EXPECT_EQ(json.find("quantile"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace hetarch
