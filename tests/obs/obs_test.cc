/**
 * @file
 * Unit tests for the observability primitives: counter/histogram
 * semantics, bucket geometry, local-batch merging, the timing/tracing
 * gates, and registry snapshot/reset behavior.  The concurrent tests
 * run under the TSan CI job.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace {

/** Restores the default worker count when a test exits. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

/** Leaves timing/tracing the way the test found them. */
struct FlagGuard
{
    FlagGuard()
        : timing(obs::timingEnabled()), tracing(obs::tracingEnabled())
    {
    }
    ~FlagGuard()
    {
        obs::setTimingEnabled(timing);
        obs::setTracingEnabled(tracing);
    }
    bool timing, tracing;
};

TEST(ObsCounter, AddLoadAndInterning)
{
    auto& c = obs::counter("test.obs.counter_basics");
    const auto before = c.load();
    c.add();
    c.add(41);
    EXPECT_EQ(c.load(), before + 42);

    // Same name -> same slot.
    auto& again = obs::counter("test.obs.counter_basics");
    EXPECT_EQ(&again, &c);
}

TEST(ObsCounter, ResetZeroesButKeepsHandleValid)
{
    auto& c = obs::counter("test.obs.counter_reset");
    c.add(7);
    obs::Registry::instance().reset();
    EXPECT_EQ(c.load(), 0u);
    c.add(3);
    EXPECT_EQ(c.load(), 3u);
}

TEST(ObsHistogram, BucketGeometry)
{
    // Bucket 0 holds exactly 0; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(obs::Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(obs::Histogram::bucketIndex(~std::uint64_t{0}), 64u);

    EXPECT_EQ(obs::Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketLowerBound(64),
              std::uint64_t{1} << 63);

    // Every value lands in the bucket whose range contains it.
    for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{5},
                            std::uint64_t{1023}, std::uint64_t{1024}}) {
        const auto i = obs::Histogram::bucketIndex(v);
        EXPECT_GE(v, obs::Histogram::bucketLowerBound(i));
        ASSERT_LT(i + 1, obs::Histogram::kBuckets);
        EXPECT_LT(v, obs::Histogram::bucketLowerBound(i + 1));
    }
}

TEST(ObsHistogram, RecordAccumulatesCountSumBuckets)
{
    auto& h = obs::histogram("test.obs.hist_record");
    obs::Registry::instance().reset();
    h.record(0);
    h.record(1);
    h.record(6);
    h.record(7);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 14u);
    EXPECT_EQ(h.bucket(0), 1u); // the 0
    EXPECT_EQ(h.bucket(1), 1u); // the 1
    EXPECT_EQ(h.bucket(3), 2u); // 6 and 7 in [4, 8)
}

TEST(ObsHistogram, LocalBatchMergeMatchesDirectRecords)
{
    auto& direct = obs::histogram("test.obs.hist_direct");
    auto& merged = obs::histogram("test.obs.hist_merged");
    obs::Registry::instance().reset();

    obs::LocalHistogram local;
    for (std::uint64_t v = 0; v < 100; ++v) {
        direct.record(v * v);
        local.record(v * v);
    }
    merged.merge(local);

    EXPECT_EQ(merged.count(), direct.count());
    EXPECT_EQ(merged.sum(), direct.sum());
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i)
        EXPECT_EQ(merged.bucket(i), direct.bucket(i)) << "bucket " << i;
}

TEST(ObsConcurrency, ParallelCounterAddsAreExact)
{
    ThreadCountGuard guard(8);
    auto& c = obs::counter("test.obs.parallel_adds");
    auto& h = obs::histogram("test.obs.parallel_hist");
    obs::Registry::instance().reset();

    constexpr std::size_t kTasks = 10000;
    exec::parallelFor(kTasks, [&](std::size_t i) {
        c.add();
        h.record(i % 17);
    });
    EXPECT_EQ(c.load(), kTasks);
    EXPECT_EQ(h.count(), kTasks);
}

TEST(ObsTimer, RespectsTimingFlag)
{
    FlagGuard flags;
    auto& h = obs::histogram("test.obs.timer");
    obs::Registry::instance().reset();

    obs::setTimingEnabled(false);
    {
        obs::ScopedTimer t(h);
    }
    EXPECT_EQ(h.count(), 0u);

    obs::setTimingEnabled(true);
    {
        obs::ScopedTimer t(h);
    }
    EXPECT_EQ(h.count(), 1u);
}

TEST(ObsSpan, CapturedOnlyWhileTracingEnabled)
{
    FlagGuard flags;
    obs::Registry::instance().reset();

    obs::setTracingEnabled(false);
    {
        obs::Span span("test.obs.span_off");
    }
    obs::setTracingEnabled(true);
    {
        obs::Span span("test.obs.span_on");
    }

    const auto snap = obs::Registry::instance().snapshot();
    bool saw_on = false;
    for (const auto& s : snap.spans) {
        EXPECT_NE(s.name, "test.obs.span_off");
        saw_on = saw_on || s.name == "test.obs.span_on";
    }
    EXPECT_TRUE(saw_on);
}

TEST(ObsSnapshot, NameSortedAndComplete)
{
    obs::counter("test.obs.zz_last").add(2);
    obs::counter("test.obs.aa_first").add(1);

    const auto snap = obs::Registry::instance().snapshot();
    ASSERT_GE(snap.counters.size(), 2u);
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);

    bool saw_first = false, saw_last = false;
    for (const auto& [name, value] : snap.counters) {
        saw_first = saw_first || name == "test.obs.aa_first";
        saw_last = saw_last || name == "test.obs.zz_last";
    }
    EXPECT_TRUE(saw_first);
    EXPECT_TRUE(saw_last);
}

} // namespace
} // namespace hetarch
