/**
 * @file
 * Tests for UEC qubit assignment and serialized scheduling.
 */

#include <gtest/gtest.h>

#include "qec/css_code.hh"
#include "uec/assignment.hh"

namespace hetarch {
namespace uec {
namespace {

TEST(Assignment, RoundRobinBalances)
{
    const auto code = qec::makeSteane();
    const auto a = roundRobinAssignment(code);
    std::vector<int> load(3, 0);
    for (auto r : a.registerOf)
        ++load[static_cast<std::size_t>(r)];
    EXPECT_LE(*std::max_element(load.begin(), load.end()),
              *std::min_element(load.begin(), load.end()) + 1);
}

TEST(Schedule, SerializesThroughAncilla)
{
    const auto code = qec::makeSteane();
    const auto a = roundRobinAssignment(code);
    const auto sched = buildRoundSchedule(code, a);
    // Ancilla ops (CNOT/measure/prep) must never overlap.
    std::vector<std::pair<double, double>> anc_busy;
    for (const auto& op : sched.ops) {
        if (op.kind == TimedOp::Kind::Cnot ||
            op.kind == TimedOp::Kind::AncMeasure ||
            op.kind == TimedOp::Kind::AncPrep)
            anc_busy.push_back({op.start, op.end});
    }
    std::sort(anc_busy.begin(), anc_busy.end());
    for (std::size_t i = 1; i < anc_busy.size(); ++i)
        EXPECT_GE(anc_busy[i].first, anc_busy[i - 1].second - 1e-9);
}

TEST(Schedule, RegisterComputeSerializesPerRegister)
{
    const auto code = qec::makeColorCode(5);
    const auto a = roundRobinAssignment(code);
    const auto sched = buildRoundSchedule(code, a);
    // Swap ops of qubits in the same register must not overlap.
    std::vector<std::vector<std::pair<double, double>>> busy(3);
    for (const auto& op : sched.ops) {
        if (op.kind == TimedOp::Kind::SwapOut ||
            op.kind == TimedOp::Kind::SwapIn) {
            busy[static_cast<std::size_t>(
                     a.registerOf[op.dataQubit])]
                .push_back({op.start, op.end});
        }
    }
    for (auto& intervals : busy) {
        std::sort(intervals.begin(), intervals.end());
        for (std::size_t i = 1; i < intervals.size(); ++i)
            EXPECT_GE(intervals[i].first,
                      intervals[i - 1].second - 1e-9);
    }
}

TEST(Schedule, DurationCoversAllOps)
{
    const auto code = qec::makeReedMuller15();
    const auto a = roundRobinAssignment(code);
    const auto sched = buildRoundSchedule(code, a);
    for (const auto& op : sched.ops) {
        EXPECT_GE(op.start, 0.0);
        EXPECT_LE(op.end, sched.duration + 1e-9);
        EXPECT_LT(op.start, op.end);
    }
}

TEST(Schedule, OutOfStorageAccounting)
{
    const auto code = qec::makeSteane();
    const auto a = roundRobinAssignment(code);
    const UecTimes times;
    const auto sched = buildRoundSchedule(code, a, times);
    // Each qubit appears once per check containing it; it is out of
    // storage for at least swap+cnot+swap per appearance.
    for (std::size_t q = 0; q < code.n; ++q) {
        std::size_t appearances = 0;
        for (const auto& s : code.zChecks)
            appearances += std::count(s.begin(), s.end(), q);
        for (const auto& s : code.xChecks)
            appearances += std::count(s.begin(), s.end(), q);
        EXPECT_GE(sched.outOfStorage[q],
                  static_cast<double>(appearances) *
                      (2.0 * times.swap + times.cnot) - 1e-9);
    }
}

TEST(Assignment, OptimizedNotWorseThanRoundRobin)
{
    for (const auto& code :
         {qec::makeSteane(), qec::makeReedMuller15()}) {
        const auto rr = roundRobinAssignment(code);
        const auto opt = optimizeAssignment(code);
        const auto sched_rr = buildRoundSchedule(code, rr);
        const auto sched_opt = buildRoundSchedule(code, opt);
        EXPECT_LE(sched_opt.duration, sched_rr.duration + 1e-9)
            << code.name;
    }
}

TEST(Assignment, RespectsCapacity)
{
    const auto code = qec::makeColorCode(5); // 19 qubits
    const auto opt = optimizeAssignment(code, 3, 10);
    std::vector<int> load(3, 0);
    for (auto r : opt.registerOf)
        ++load[static_cast<std::size_t>(r)];
    for (auto l : load)
        EXPECT_LE(l, 10);
}

TEST(Assignment, OversizedCodeDies)
{
    const auto code = qec::makeRotatedSurface(6); // 36 > 30 qubits
    EXPECT_DEATH(optimizeAssignment(code), "does not fit");
}

} // namespace
} // namespace uec
} // namespace hetarch
