/**
 * @file
 * End-to-end UEC experiments: circuit validity, storage sensitivity,
 * and the paper's heterogeneous-vs-homogeneous ordering (Table 3).
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "qec/css_code.hh"
#include "qec/memory_experiment.hh"
#include "stab/tableau.hh"
#include "uec/experiment.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace uec {
namespace {

using namespace units;

TEST(UecCircuit, DetectorsDeterministic)
{
    for (const auto& code : {qec::makeSteane(), qec::makeRotatedSurface(3)}) {
        const auto a = roundRobinAssignment(code);
        UecNoise noise;
        const auto circ = uecMemoryZ(code, a, 2, noise);
        EXPECT_TRUE(
            stab::TableauSimulator::checkDetectorsDeterministic(circ))
            << code.name;
    }
}

TEST(UecCircuit, DetectorCount)
{
    const auto code = qec::makeSteane();
    const auto a = roundRobinAssignment(code);
    UecNoise noise;
    const std::size_t rounds = 3;
    const auto circ = uecMemoryZ(code, a, rounds, noise);
    // Z: 3 per round + 3 final; X: 3 per round from round 2.
    EXPECT_EQ(circ.numDetectors(), 3 * rounds + 3 + 3 * (rounds - 1));
    EXPECT_EQ(circ.numObservables(), 1u);
}

TEST(UecCircuit, NoiselessIsQuiet)
{
    const auto code = qec::makeReedMuller15();
    const auto a = roundRobinAssignment(code);
    UecNoise noise;
    noise.ts = 1e15;
    noise.tc = 1e15;
    noise.p2 = 0.0;
    const auto circ = uecMemoryZ(code, a, 2, noise);
    Rng rng(3);
    const auto res = qec::runMemoryExperiment(
        circ, 200, 2, qec::DecoderKind::GreedyDem, rng);
    EXPECT_EQ(res.failures, 0u);
}

TEST(UecExperiment, LongerStorageIsBetter)
{
    const auto code = qec::makeSteane();
    const double bad = uecLogicalErrorPerRound(code, 0.5 * ms, 3, 4000, 7);
    const double good =
        uecLogicalErrorPerRound(code, 50.0 * ms, 3, 4000, 7);
    EXPECT_LT(good, bad);
}

TEST(UecExperiment, HeterogeneousWinsForNonPlanarCodes)
{
    // The paper's headline Table 3 ordering: RM / color / Steane do
    // better on the UEC than on the homogeneous lattice.
    for (const auto& code : {qec::makeReedMuller15(), qec::makeSteane(),
                             qec::makeColorCode(5)}) {
        const double het =
            uecLogicalErrorPerRound(code, 50.0 * ms, 3, 3000, 11);
        const double hom =
            homogeneousLogicalErrorPerRound(code, 3, 3000, 13);
        EXPECT_LT(het, hom) << code.name;
    }
}

TEST(UecExperiment, HomogeneousWinsForSurfaceCode)
{
    const auto code = qec::makeRotatedSurface(3);
    const double het =
        uecLogicalErrorPerRound(code, 50.0 * ms, 3, 4000, 17);
    const double hom = homogeneousLogicalErrorPerRound(code, 3, 4000, 19);
    EXPECT_LT(hom, het);
}

TEST(Lattice, EmbeddingIsValid)
{
    for (const auto& code : qec::paperCodeZoo()) {
        const auto emb = embedOnLattice(code);
        // All cells distinct.
        std::vector<int> all = emb.dataCell;
        all.insert(all.end(), emb.checkCell.begin(), emb.checkCell.end());
        std::sort(all.begin(), all.end());
        EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) ==
                    all.end())
            << code.name;
        for (auto c : all) {
            EXPECT_GE(c, 0);
            EXPECT_LT(c, emb.side * emb.side);
        }
        EXPECT_GT(emb.routedGatesPerRound, 0u);
    }
}

TEST(Lattice, CircuitDetectorsDeterministic)
{
    const auto code = qec::makeSteane();
    const auto emb = embedOnLattice(code);
    LatticeNoise noise;
    const auto circ = latticeMemoryZ(code, emb, 2, noise);
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(circ));
}

TEST(Lattice, NoiselessIsQuiet)
{
    const auto code = qec::makeColorCode(5);
    const auto emb = embedOnLattice(code);
    LatticeNoise noise;
    noise.tc = 1e15;
    noise.p2 = 0.0;
    const auto circ = latticeMemoryZ(code, emb, 2, noise);
    Rng rng(5);
    const auto res = qec::runMemoryExperiment(
        circ, 200, 2, qec::DecoderKind::GreedyDem, rng);
    EXPECT_EQ(res.failures, 0u);
}

TEST(Pseudothreshold, SteaneHasOne)
{
    const double pt = pseudothreshold(qec::makeSteane(), 4000, 23);
    EXPECT_GT(pt, 0.01);
    EXPECT_LT(pt, 0.4);
}

TEST(Pseudothreshold, RepetitionCodeBeatsSteaneForBitFlips)
{
    // Sanity: d=5 repetition (bit-flip only) has a high pseudothreshold
    // against X errors.
    const double pt = pseudothreshold(qec::makeRepetition(5), 4000, 29);
    EXPECT_GT(pt, 0.05);
}

} // namespace
} // namespace uec
} // namespace hetarch
