/**
 * @file
 * Tests for the chained UEC (USC + USC-EXT) extension: capacity beyond
 * 30 qubits, concurrent ancilla lanes, and routing costs.
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "qec/css_code.hh"
#include "qec/memory_experiment.hh"
#include "stab/tableau.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace uec {
namespace {

using namespace units;

TEST(UecChain, GeometryHelpers)
{
    UecChain chain;
    chain.numUscExt = 2;
    EXPECT_EQ(chain.numRegisters(), 7);
    EXPECT_EQ(chain.numAncillas(), 3);
    EXPECT_EQ(chain.cellOfRegister(0), 0);
    EXPECT_EQ(chain.cellOfRegister(2), 0);
    EXPECT_EQ(chain.cellOfRegister(3), 1);
    EXPECT_EQ(chain.cellOfRegister(4), 1);
    EXPECT_EQ(chain.cellOfRegister(5), 2);
    EXPECT_EQ(chain.cellOfRegister(6), 2);
}

TEST(UecChain, ScheduleParallelizesAcrossAncillas)
{
    // With the support split cell-locally, two ancilla lanes can run
    // concurrently, so the chained round is shorter than the
    // single-ancilla round of the same code.
    const auto code = qec::makeRotatedSurface(5); // 25 qubits
    UecChain chain;
    chain.numUscExt = 1;
    const auto a_chain =
        roundRobinAssignment(code, chain.numRegisters(), 10);
    const auto chained = buildChainedSchedule(code, a_chain, chain);

    const auto a_single = roundRobinAssignment(code, 3, 10);
    const auto single = buildRoundSchedule(code, a_single);
    EXPECT_LT(chained.duration, single.duration);
}

TEST(UecChain, AncillaLanesNeverOverlap)
{
    const auto code = qec::makeColorCode(5);
    UecChain chain;
    chain.numUscExt = 1;
    const auto a = roundRobinAssignment(code, chain.numRegisters(), 10);
    const auto sched = buildChainedSchedule(code, a, chain);
    std::vector<std::vector<std::pair<double, double>>> busy(
        static_cast<std::size_t>(chain.numAncillas()));
    for (const auto& op : sched.ops) {
        if (op.kind == TimedOp::Kind::Cnot ||
            op.kind == TimedOp::Kind::AncMeasure ||
            op.kind == TimedOp::Kind::AncPrep) {
            busy[static_cast<std::size_t>(op.ancilla)].push_back(
                {op.start, op.end});
        }
    }
    for (auto& intervals : busy) {
        std::sort(intervals.begin(), intervals.end());
        for (std::size_t i = 1; i < intervals.size(); ++i)
            EXPECT_GE(intervals[i].first,
                      intervals[i - 1].second - 1e-9);
    }
}

TEST(UecChain, SupportsCodesBeyondThirtyQubits)
{
    // Surface-6 (36 data qubits) exceeds the single-USC capacity but
    // fits a USC + one USC-EXT (50 modes).
    const auto code = qec::makeRotatedSurface(6);
    UecChain chain;
    chain.numUscExt = 1;
    const auto a = roundRobinAssignment(code, chain.numRegisters(), 10);
    UecNoise noise;
    const auto circ = uecChainedMemoryZ(code, a, chain, 2, noise);
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(circ));

    Rng rng(3);
    const auto res = qec::runMemoryExperiment(
        circ, 800, 2, qec::DecoderKind::GreedyDem, rng);
    EXPECT_LT(res.perShot(), 0.5);
}

TEST(UecChain, ChainedMatchesSingleForSmallCode)
{
    // With zero USC-EXTs the chained path must reproduce the original
    // schedule exactly.
    const auto code = qec::makeSteane();
    const auto a = roundRobinAssignment(code, 3, 10);
    UecChain chain; // numUscExt = 0
    const auto chained = buildChainedSchedule(code, a, chain);
    const auto single = buildRoundSchedule(code, a);
    // Same serial structure: identical duration up to the interleaving
    // order heuristic of the single-ancilla scheduler.
    EXPECT_NEAR(chained.duration, single.duration,
                0.2 * single.duration);
}

TEST(UecChain, RoutingHopsDegradeFidelity)
{
    // Deliberately bad assignment: spread every check across cells so
    // routing hops dominate; must be worse than the local assignment.
    const auto code = qec::makeRotatedSurface(4); // 16 qubits
    UecChain chain;
    chain.numUscExt = 1;
    UecNoise noise;

    Assignment local;
    local.numRegisters = chain.numRegisters();
    local.registerOf.assign(code.n, 0);
    for (std::size_t q = 0; q < code.n; ++q)
        local.registerOf[q] = static_cast<int>(q % 3); // all in cell 0

    Assignment spread = local;
    for (std::size_t q = 0; q < code.n; ++q)
        spread.registerOf[q] =
            static_cast<int>(q % chain.numRegisters());

    auto run = [&](const Assignment& a, std::uint64_t seed) {
        const auto circ = uecChainedMemoryZ(code, a, chain, 2, noise);
        Rng rng(seed);
        return qec::runMemoryExperiment(circ, 2500, 2,
                                        qec::DecoderKind::GreedyDem, rng)
            .perShot();
    };
    // Spread assignment pays routing noise on most CNOTs; local pays
    // none. (Spread also parallelizes, so compare error only.)
    EXPECT_GT(run(spread, 5), run(local, 7) * 0.8);
}

} // namespace
} // namespace uec
} // namespace hetarch
