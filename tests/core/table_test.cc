/**
 * @file
 * Unit tests for the table renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/table.hh"

namespace hetarch {
namespace {

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable t({"code", "rate"});
    t.addRow({"steane", "0.01"});
    t.addRow({"rm15", "0.02"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("code"), std::string::npos);
    EXPECT_NE(s.find("steane"), std::string::npos);
    EXPECT_NE(s.find("rm15"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"x", "y"});
    t.addRow({"longvalue", "1"});
    std::ostringstream os;
    t.print(os);
    // Header row must be padded at least as wide as the longest cell.
    const std::string s = os.str();
    const auto first_newline = s.find('\n');
    EXPECT_GE(first_newline, std::string("longvalue").size());
}

TEST(Format, Sci)
{
    EXPECT_EQ(formatSci(0.00123, 3), "1.23e-03");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
}

} // namespace
} // namespace hetarch
