/**
 * @file
 * Tests for the status/error reporting helpers.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"

namespace hetarch {
namespace {

TEST(Logging, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(HETARCH_FATAL("bad config value ", 42),
                ::testing::ExitedWithCode(1), "bad config value 42");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(HETARCH_PANIC("invariant ", "broken"),
                 "invariant broken");
}

TEST(Logging, AssertPassesOnTrue)
{
    HETARCH_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Logging, AssertDiesOnFalseWithConditionText)
{
    EXPECT_DEATH(HETARCH_ASSERT(2 + 2 == 5, "message ", 7),
                 "2 \\+ 2 == 5");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2.5);
    SUCCEED();
}

} // namespace
} // namespace hetarch
