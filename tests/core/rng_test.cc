/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hh"

namespace hetarch {
namespace {

TEST(Rng, DeterministicForFixedSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    const double rate = 0.25;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.split();
    // Child stream should not equal parent's continuation.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (parent() == child())
            ++equal;
    EXPECT_LT(equal, 2);
}

} // namespace
} // namespace hetarch
