/**
 * @file
 * Unit tests for the shared strict-JSON scanner: every hetarch-*-v1
 * parser (lint, sched, flow, wire) sits on this one token layer, so
 * the duplicate/unknown-field rejection semantics and the byte
 * offsets in its diagnostics are pinned here once for all of them.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/strict_json.hh"

namespace hetarch {
namespace core {
namespace json {
namespace {

/** Run @p body and return the ScanError it must throw. */
template <typename Fn>
ScanError
expectScanError(Fn&& body)
{
    try {
        body();
    } catch (const ScanError& e) {
        return e;
    }
    ADD_FAILURE() << "expected a ScanError";
    return ScanError{0, ""};
}

TEST(StrictJson, ExpectReportsOffsetOfDeviation)
{
    const std::string text = "  {\"a\": 1}";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.expect('[');
    });
    EXPECT_EQ(e.offset, 2u);
    EXPECT_NE(e.reason.find("expected '['"), std::string::npos);
}

TEST(StrictJson, UnexpectedEndReportsEndOffset)
{
    const std::string text = "{\"key\"";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.expect('{');
        sc.expectKey("key");
    });
    EXPECT_EQ(e.offset, text.size());
}

TEST(StrictJson, WrongKeyNamesBothKeys)
{
    const std::string text = "{\"actual\": 1}";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.expect('{');
        sc.expectKey("wanted");
    });
    // The key is consumed before the mismatch is detected; the offset
    // points after it, and the reason names both sides.
    EXPECT_EQ(e.offset, 9u);
    EXPECT_NE(e.reason.find("\"wanted\""), std::string::npos);
    EXPECT_NE(e.reason.find("\"actual\""), std::string::npos);
}

TEST(StrictJson, UnterminatedStringFails)
{
    const std::string text = "\"abc";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.parseString();
    });
    EXPECT_EQ(e.offset, text.size());
    EXPECT_NE(e.reason.find("unterminated string"), std::string::npos);
}

TEST(StrictJson, UnsupportedEscapeFails)
{
    const ScanError e = expectScanError([] {
        const std::string text = "\"a\\x\"";
        Scanner sc(text);
        sc.parseString();
    });
    EXPECT_NE(e.reason.find("unsupported escape"), std::string::npos);
}

TEST(StrictJson, StringEscapesRoundTrip)
{
    std::ostringstream os;
    writeString(os, "a\"b\\c\nd\te");
    const std::string text = os.str();
    Scanner sc(text);
    EXPECT_EQ(sc.parseString(), "a\"b\\c\nd\te");
}

TEST(StrictJson, U64OverflowIsAnErrorNotAWrap)
{
    // 2^64 and a 23-digit pile both overflow.
    for (const char* bad : {"18446744073709551616", //
                            "99999999999999999999999"}) {
        const std::string text = bad;
        const ScanError e = expectScanError([&] {
            Scanner sc(text);
            sc.parseU64();
        });
        EXPECT_NE(e.reason.find("overflow"), std::string::npos) << bad;
    }
    const std::string max = "18446744073709551615";
    Scanner sc(max);
    EXPECT_EQ(sc.parseU64(), 18446744073709551615ull);
}

TEST(StrictJson, I64RoundTripsTheExtremes)
{
    {
        const std::string text = "-9223372036854775808";
        Scanner sc(text);
        EXPECT_EQ(sc.parseI64(), INT64_MIN);
    }
    {
        const std::string text = "9223372036854775807";
        Scanner sc(text);
        EXPECT_EQ(sc.parseI64(), INT64_MAX);
    }
    const std::string over = "9223372036854775808";
    const ScanError e = expectScanError([&] {
        Scanner sc(over);
        sc.parseI64();
    });
    EXPECT_NE(e.reason.find("overflow"), std::string::npos);
}

TEST(StrictJson, MalformedNumberRejectsWholeToken)
{
    // strtod would silently accept the 1.2 prefix; the strict scanner
    // requires the whole token to convert and rewinds the offset to
    // the token start.
    const std::string text = "  1.2.3";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.parseDouble();
    });
    EXPECT_EQ(e.offset, 2u);
    EXPECT_NE(e.reason.find("1.2.3"), std::string::npos);
}

TEST(StrictJson, DoubleWriterRoundTrips)
{
    for (double v : {0.0, 1.0, 0.1, 2140.0, 6.25e-5, 1e300}) {
        std::ostringstream os;
        writeDouble(os, v);
        const std::string text = os.str();
        Scanner sc(text);
        EXPECT_EQ(sc.parseDouble(), v) << text;
    }
}

TEST(StrictJson, NullSentinelRoundTrips)
{
    const std::size_t sentinel = static_cast<std::size_t>(-1);
    std::ostringstream os;
    writeOrNull(os, sentinel, sentinel);
    os << ' ';
    writeOrNull(os, 42, sentinel);
    const std::string text = os.str();
    Scanner sc(text);
    EXPECT_EQ(sc.parseU64OrNull(sentinel), sentinel);
    EXPECT_EQ(sc.parseU64OrNull(sentinel), 42u);
    sc.finish();
}

TEST(StrictJson, FinishRejectsTrailingContent)
{
    const std::string text = "7 x";
    const ScanError e = expectScanError([&] {
        Scanner sc(text);
        sc.parseU64();
        sc.finish();
    });
    EXPECT_EQ(e.offset, 2u);
    EXPECT_NE(e.reason.find("trailing content"), std::string::npos);
}

TEST(StrictJson, ConsumeWordDoesNotMoveOnMismatch)
{
    const std::string text = "nullx";
    Scanner sc(text);
    EXPECT_TRUE(sc.consumeWord("null"));
    EXPECT_FALSE(sc.consumeWord("null"));
    EXPECT_EQ(sc.offset(), 4u);
}

TEST(StrictJson, BoolParses)
{
    const std::string text = "true false";
    Scanner sc(text);
    EXPECT_TRUE(sc.parseBool());
    EXPECT_FALSE(sc.parseBool());
    const ScanError e = expectScanError([] {
        const std::string bad = "yes";
        Scanner sc2(bad);
        sc2.parseBool();
    });
    EXPECT_NE(e.reason.find("boolean"), std::string::npos);
}

} // namespace
} // namespace json
} // namespace core
} // namespace hetarch
