/**
 * @file
 * Unit tests for statistics accumulators.
 */

#include <gtest/gtest.h>

#include "core/stats.hh"

namespace hetarch {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, StderrShrinksWithSamples)
{
    RunningStats small, large;
    for (int i = 0; i < 10; ++i)
        small.add(i % 2);
    for (int i = 0; i < 1000; ++i)
        large.add(i % 2);
    EXPECT_GT(small.stderrOfMean(), large.stderrOfMean());
}

TEST(TrialCounter, RateAndCounts)
{
    TrialCounter t;
    t.add(true);
    t.add(false);
    t.add(true);
    t.add(true);
    EXPECT_EQ(t.trials(), 4u);
    EXPECT_EQ(t.successes(), 3u);
    EXPECT_DOUBLE_EQ(t.rate(), 0.75);
}

TEST(TrialCounter, BatchAdd)
{
    TrialCounter t;
    t.add(30, 100);
    EXPECT_DOUBLE_EQ(t.rate(), 0.3);
}

TEST(TrialCounter, WilsonBracketsRate)
{
    TrialCounter t;
    t.add(50, 200);
    EXPECT_LT(t.wilsonLow(), t.rate());
    EXPECT_GT(t.wilsonHigh(), t.rate());
    EXPECT_GE(t.wilsonLow(), 0.0);
    EXPECT_LE(t.wilsonHigh(), 1.0);
}

TEST(TrialCounter, WilsonNarrowsWithTrials)
{
    TrialCounter a, b;
    a.add(5, 10);
    b.add(500, 1000);
    EXPECT_GT(a.wilsonHigh() - a.wilsonLow(),
              b.wilsonHigh() - b.wilsonLow());
}

TEST(TrialCounter, EmptyIsSafe)
{
    TrialCounter t;
    EXPECT_DOUBLE_EQ(t.rate(), 0.0);
    EXPECT_DOUBLE_EQ(t.wilsonLow(), 0.0);
    EXPECT_DOUBLE_EQ(t.wilsonHigh(), 1.0);
}

TEST(TrialCounter, ZeroSuccessesStillHasUpperBound)
{
    TrialCounter t;
    t.add(0, 1000);
    EXPECT_DOUBLE_EQ(t.rate(), 0.0);
    EXPECT_GT(t.wilsonHigh(), 0.0);
    EXPECT_LT(t.wilsonHigh(), 0.01);
}

} // namespace
} // namespace hetarch
