/**
 * @file
 * Unit tests for the dense complex matrix type.
 */

#include <gtest/gtest.h>

#include "linalg/matrix.hh"

namespace hetarch {
namespace linalg {
namespace {

const Complex i1(0.0, 1.0);

TEST(Matrix, ZeroConstruction)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m(r, c), Complex(0, 0));
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1, 2}, {3, 4}};
    EXPECT_EQ(m(0, 1), Complex(2, 0));
    EXPECT_EQ(m(1, 0), Complex(3, 0));
}

TEST(Matrix, IdentityMultiplication)
{
    Matrix m{{1, 2}, {3, 4}};
    const Matrix id = Matrix::identity(2);
    EXPECT_EQ((m * id).maxAbsDiff(m), 0.0);
    EXPECT_EQ((id * m).maxAbsDiff(m), 0.0);
}

TEST(Matrix, MultiplicationKnownResult)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix expect{{19, 22}, {43, 50}};
    EXPECT_LT((a * b).maxAbsDiff(expect), 1e-14);
}

TEST(Matrix, NonSquareMultiplication)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix b(3, 1);
    b(0, 0) = 1; b(1, 0) = 1; b(2, 0) = 1;
    const Matrix c = a * b;
    EXPECT_EQ(c.rows(), 2u);
    EXPECT_EQ(c.cols(), 1u);
    EXPECT_EQ(c(0, 0), Complex(6, 0));
    EXPECT_EQ(c(1, 0), Complex(15, 0));
}

TEST(Matrix, AddSubtract)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    const Matrix sum = a + b;
    EXPECT_EQ(sum(0, 0), Complex(5, 0));
    const Matrix diff = a - b;
    EXPECT_EQ(diff(1, 1), Complex(3, 0));
}

TEST(Matrix, ScalarMultiply)
{
    Matrix a{{1, 0}, {0, 1}};
    const Matrix b = a * Complex(0, 2);
    EXPECT_EQ(b(0, 0), Complex(0, 2));
    const Matrix c = Complex(3, 0) * a;
    EXPECT_EQ(c(1, 1), Complex(3, 0));
}

TEST(Matrix, Dagger)
{
    Matrix a{{Complex(1, 1), Complex(2, -1)},
             {Complex(0, 3), Complex(4, 0)}};
    const Matrix d = a.dagger();
    EXPECT_EQ(d(0, 0), Complex(1, -1));
    EXPECT_EQ(d(0, 1), Complex(0, -3));
    EXPECT_EQ(d(1, 0), Complex(2, 1));
}

TEST(Matrix, TraceAndNorm)
{
    Matrix a{{1, 5}, {7, 3}};
    EXPECT_EQ(a.trace(), Complex(4, 0));
    EXPECT_NEAR(a.frobeniusNorm(),
                std::sqrt(1.0 + 25.0 + 49.0 + 9.0), 1e-12);
}

TEST(Matrix, HermitianCheck)
{
    Matrix h{{Complex(2, 0), Complex(1, 1)},
             {Complex(1, -1), Complex(3, 0)}};
    EXPECT_TRUE(h.isHermitian());
    Matrix nh{{Complex(2, 1), Complex(1, 1)},
              {Complex(1, -1), Complex(3, 0)}};
    EXPECT_FALSE(nh.isHermitian());
}

TEST(Matrix, UnitaryCheck)
{
    const double s = 1.0 / std::sqrt(2.0);
    Matrix h{{s, s}, {s, -s}};
    EXPECT_TRUE(h.isUnitary());
    Matrix not_u{{1, 1}, {0, 1}};
    EXPECT_FALSE(not_u.isUnitary());
}

TEST(Matrix, KronDimensions)
{
    Matrix a(2, 2), b(3, 3);
    const Matrix k = kron(a, b);
    EXPECT_EQ(k.rows(), 6u);
    EXPECT_EQ(k.cols(), 6u);
}

TEST(Matrix, KronKnownValues)
{
    Matrix x{{0, 1}, {1, 0}};
    Matrix z{{1, 0}, {0, -1}};
    const Matrix k = kron(x, z);
    // kron(X, Z): block structure [[0, Z], [Z, 0]]
    EXPECT_EQ(k(0, 2), Complex(1, 0));
    EXPECT_EQ(k(1, 3), Complex(-1, 0));
    EXPECT_EQ(k(2, 0), Complex(1, 0));
    EXPECT_EQ(k(3, 1), Complex(-1, 0));
    EXPECT_EQ(k(0, 0), Complex(0, 0));
}

TEST(Matrix, KronAll)
{
    Matrix id = Matrix::identity(2);
    const Matrix k = kronAll({id, id, id});
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_LT(k.maxAbsDiff(Matrix::identity(8)), 1e-15);
}

TEST(Matrix, KronMixedProduct)
{
    // (A (x) B)(C (x) D) = AC (x) BD
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{0, 1}, {1, 0}};
    Matrix c{{2, 0}, {1, 1}};
    Matrix d{{1, 1}, {0, 2}};
    const Matrix lhs = kron(a, b) * kron(c, d);
    const Matrix rhs = kron(a * c, b * d);
    EXPECT_LT(lhs.maxAbsDiff(rhs), 1e-12);
}

TEST(Matrix, Commutators)
{
    Matrix x{{0, 1}, {1, 0}};
    Matrix z{{1, 0}, {0, -1}};
    // [X, Z] = -2iY
    Matrix y{{0, -i1}, {i1, 0}};
    EXPECT_LT(commutator(x, z).maxAbsDiff(y * Complex(0, -2)), 1e-12);
    // {X, Z} = 0
    EXPECT_LT(anticommutator(x, z).frobeniusNorm(), 1e-12);
}

} // namespace
} // namespace linalg
} // namespace hetarch
