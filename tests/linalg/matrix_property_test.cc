/**
 * @file
 * Parameterized algebraic property tests on random complex matrices.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "linalg/matrix.hh"

namespace hetarch {
namespace linalg {
namespace {

Matrix
randomMatrix(Rng& rng, std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m(r, c) = Complex(rng.normal(), rng.normal());
    return m;
}

class MatrixAlgebra : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng{static_cast<std::uint64_t>(4000 + GetParam())};
};

TEST_P(MatrixAlgebra, DaggerReversesProducts)
{
    const auto a = randomMatrix(rng, 4);
    const auto b = randomMatrix(rng, 4);
    EXPECT_LT((a * b).dagger().maxAbsDiff(b.dagger() * a.dagger()),
              1e-10);
}

TEST_P(MatrixAlgebra, TraceIsCyclic)
{
    const auto a = randomMatrix(rng, 3);
    const auto b = randomMatrix(rng, 3);
    const auto c = randomMatrix(rng, 3);
    const auto t1 = (a * b * c).trace();
    const auto t2 = (c * a * b).trace();
    EXPECT_NEAR(t1.real(), t2.real(), 1e-9);
    EXPECT_NEAR(t1.imag(), t2.imag(), 1e-9);
}

TEST_P(MatrixAlgebra, MultiplicationAssociative)
{
    const auto a = randomMatrix(rng, 4);
    const auto b = randomMatrix(rng, 4);
    const auto c = randomMatrix(rng, 4);
    EXPECT_LT(((a * b) * c).maxAbsDiff(a * (b * c)), 1e-9);
}

TEST_P(MatrixAlgebra, MultiplicationDistributes)
{
    const auto a = randomMatrix(rng, 4);
    const auto b = randomMatrix(rng, 4);
    const auto c = randomMatrix(rng, 4);
    EXPECT_LT((a * (b + c)).maxAbsDiff(a * b + a * c), 1e-9);
}

TEST_P(MatrixAlgebra, KronBilinear)
{
    const auto a = randomMatrix(rng, 2);
    const auto b = randomMatrix(rng, 2);
    const auto c = randomMatrix(rng, 2);
    EXPECT_LT(kron(a, b + c).maxAbsDiff(kron(a, b) + kron(a, c)), 1e-9);
}

TEST_P(MatrixAlgebra, KronMixedProduct)
{
    const auto a = randomMatrix(rng, 2);
    const auto b = randomMatrix(rng, 3);
    const auto c = randomMatrix(rng, 2);
    const auto d = randomMatrix(rng, 3);
    EXPECT_LT((kron(a, b) * kron(c, d)).maxAbsDiff(kron(a * c, b * d)),
              1e-8);
}

TEST_P(MatrixAlgebra, FrobeniusSubmultiplicative)
{
    const auto a = randomMatrix(rng, 4);
    const auto b = randomMatrix(rng, 4);
    EXPECT_LE((a * b).frobeniusNorm(),
              a.frobeniusNorm() * b.frobeniusNorm() + 1e-9);
}

TEST_P(MatrixAlgebra, AplusADaggerIsHermitian)
{
    const auto a = randomMatrix(rng, 4);
    EXPECT_TRUE((a + a.dagger()).isHermitian(1e-10));
    // Commutator of Hermitians is anti-Hermitian: i[A,B] Hermitian.
    const auto h1 = a + a.dagger();
    const auto b = randomMatrix(rng, 4);
    const auto h2 = b + b.dagger();
    EXPECT_TRUE((commutator(h1, h2) * Complex(0, 1)).isHermitian(1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebra, ::testing::Range(0, 6));

} // namespace
} // namespace linalg
} // namespace hetarch
