/**
 * @file
 * Validation of the CSS code zoo: commutation, dimensions, distances.
 */

#include <gtest/gtest.h>

#include "qec/css_code.hh"

namespace hetarch {
namespace qec {
namespace {

TEST(CssCode, SteaneValidates)
{
    auto code = makeSteane();
    code.validate();
    EXPECT_EQ(code.n, 7u);
    EXPECT_EQ(code.numLogical(), 1u);
    EXPECT_EQ(code.minLogicalZWeight(), 3u);
    EXPECT_EQ(code.minLogicalXWeight(), 3u);
}

TEST(CssCode, ReedMuller15Validates)
{
    auto code = makeReedMuller15();
    code.validate();
    EXPECT_EQ(code.n, 15u);
    EXPECT_EQ(code.xChecks.size(), 4u);
    EXPECT_EQ(code.zChecks.size(), 10u);
    EXPECT_EQ(code.numLogical(), 1u);
    // The [[15,1,3]] code: Z distance 3, X distance 7.
    EXPECT_EQ(code.minLogicalZWeight(), 3u);
    EXPECT_EQ(code.minLogicalXWeight(), 7u);
}

TEST(CssCode, ColorCodeD3IsSteaneSized)
{
    auto code = makeColorCode(3);
    code.validate();
    EXPECT_EQ(code.n, 7u);
    EXPECT_EQ(code.xChecks.size(), 3u);
    EXPECT_EQ(code.minLogicalZWeight(), 3u);
}

TEST(CssCode, ColorCodeD5)
{
    auto code = makeColorCode(5);
    code.validate();
    EXPECT_EQ(code.n, 19u);
    EXPECT_EQ(code.xChecks.size(), 9u);
    EXPECT_EQ(code.zChecks.size(), 9u);
    EXPECT_EQ(code.minLogicalZWeight(), 5u);
    EXPECT_EQ(code.minLogicalXWeight(), 5u);
}

TEST(CssCode, SurfaceD3)
{
    auto code = makeRotatedSurface(3);
    code.validate();
    EXPECT_EQ(code.n, 9u);
    EXPECT_EQ(code.xChecks.size(), 4u);
    EXPECT_EQ(code.zChecks.size(), 4u);
    EXPECT_EQ(code.minLogicalZWeight(), 3u);
    EXPECT_EQ(code.minLogicalXWeight(), 3u);
}

TEST(CssCode, SurfaceD4)
{
    auto code = makeRotatedSurface(4);
    code.validate();
    EXPECT_EQ(code.n, 16u);
    EXPECT_EQ(code.xChecks.size() + code.zChecks.size(), 15u);
    EXPECT_EQ(code.minLogicalZWeight(), 4u);
}

TEST(CssCode, SurfaceD5)
{
    auto code = makeRotatedSurface(5);
    code.validate();
    EXPECT_EQ(code.n, 25u);
    EXPECT_EQ(code.minLogicalZWeight(), 5u);
    EXPECT_EQ(code.minLogicalXWeight(), 5u);
}

TEST(CssCode, RepetitionCode)
{
    auto code = makeRepetition(5);
    code.validate();
    EXPECT_EQ(code.n, 5u);
    EXPECT_EQ(code.minLogicalXWeight(), 5u);
}

TEST(CssCode, PaperZooValidatesAndSizesFitUec)
{
    for (const auto& code : paperCodeZoo()) {
        code.validate();
        EXPECT_LE(code.n, 30u) << code.name
                               << " exceeds the UEC 30-qubit limit";
    }
}

TEST(CssCode, ComputeLogicalsAgreesWithHandWritten)
{
    // Recompute logicals for the Steane code; min weights must match.
    auto code = makeSteane();
    computeLogicals(code);
    code.validate();
    EXPECT_EQ(code.minLogicalZWeight(), 3u);
}

} // namespace
} // namespace qec
} // namespace hetarch
