/**
 * @file
 * Pins the streaming syndrome engine's contracts:
 *
 *   - with a window spanning the whole buffer, the streaming
 *     experiment reproduces runMemoryExperiment bit-for-bit (same
 *     seed, same failures) across surface distances at the fig. 6
 *     noise point;
 *   - streaming failure counts and every qec.stream.* counter are
 *     thread-count invariant (single consumer, FIFO order);
 *   - sliding-window mode bounds peak syndrome storage by the window,
 *     independent of the total round count, while still correcting
 *     errors at low noise.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hh"
#include "core/units.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/stream_experiment.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace qec {
namespace {

/** The fig. 6 noise point (p2 = 1e-2, p1 = 1e-3, T1 = T2 = 0.1 ms). */
CircuitNoise
fig6Noise()
{
    CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1 * units::ms;
    noise.ancT1 = noise.ancT2 = 0.1 * units::ms;
    return noise;
}

struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

TEST(StreamDecode, WholeBufferWindowMatchesBatchExperimentExactly)
{
    const std::uint64_t seed = 20260808;
    for (std::size_t d : {std::size_t{3}, std::size_t{5}, std::size_t{7}}) {
        const auto circuit = surfaceMemoryZ(d, d, fig6Noise());
        const std::size_t shots = 600; // full chunks + a ragged tail

        Rng batch_rng(seed);
        const auto batch = runMemoryExperiment(circuit, shots, d,
                                               DecoderKind::UnionFind,
                                               batch_rng);

        // Default config: window spans the whole buffer.
        Rng stream_rng(seed);
        const auto stream = runStreamingMemoryExperiment(
            circuit, shots, d, DecoderKind::UnionFind, stream_rng);

        EXPECT_EQ(stream.memory.failures, batch.failures) << "d=" << d;
        EXPECT_EQ(stream.memory.shots, shots);
        EXPECT_EQ(stream.windowRounds, stream.peakStoredRounds);
        EXPECT_GT(batch.failures, 0u) << "d=" << d;

        // An explicit window >= rounds routes to the same mode.
        StreamConfig config;
        config.windowRounds = circuit.numDetectors(); // way past rounds
        Rng big_rng(seed);
        const auto big = runStreamingMemoryExperiment(
            circuit, shots, d, DecoderKind::UnionFind, big_rng, config);
        EXPECT_EQ(big.memory.failures, batch.failures) << "d=" << d;
        EXPECT_EQ(big.windows, 0u); // whole-buffer mode has no windows
    }
}

TEST(StreamDecode, GreedyDecoderSupportedInWholeBufferMode)
{
    const auto circuit = surfaceMemoryZ(3, 3, fig6Noise());
    const std::uint64_t seed = 99;
    Rng batch_rng(seed);
    const auto batch = runMemoryExperiment(circuit, 500, 3,
                                           DecoderKind::GreedyDem,
                                           batch_rng);
    Rng stream_rng(seed);
    const auto stream = runStreamingMemoryExperiment(
        circuit, 500, 3, DecoderKind::GreedyDem, stream_rng);
    EXPECT_EQ(stream.memory.failures, batch.failures);
}

TEST(StreamDecode, StreamingCountersAndFailuresAreThreadInvariant)
{
    const auto circuit = surfaceMemoryZ(5, 15, fig6Noise());
    StreamConfig config;
    config.windowRounds = 5;
    config.commitRounds = 2;

    struct RunState
    {
        std::size_t failures = 0;
        bool paired = false;
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        obs::Snapshot::HistogramEntry syndromeWeight;
    };
    const auto run = [&](unsigned workers) {
        ThreadCountGuard guard(workers);
        DecoderCache::instance().clear();
        obs::Registry::instance().reset();
        Rng rng(777);
        const auto result = runStreamingMemoryExperiment(
            circuit, 500, 15, DecoderKind::UnionFind, rng, config);
        RunState state;
        state.failures = result.memory.failures;
        state.paired = result.paired;
        const auto snap = obs::Registry::instance().snapshot();
        state.counters = snap.counters;
        for (const auto& h : snap.histograms)
            if (h.name == "qec.syndrome_weight")
                state.syndromeWeight = h;
        return state;
    };

    const auto reference = run(1);
    EXPECT_FALSE(reference.paired); // one worker: cooperative mode
    EXPECT_FALSE(reference.counters.empty());
    for (unsigned workers : {2u, 8u}) {
        const auto got = run(workers);
        EXPECT_TRUE(got.paired) << workers << " workers";
        EXPECT_EQ(got.failures, reference.failures)
            << workers << " workers";
        ASSERT_EQ(got.counters.size(), reference.counters.size());
        for (std::size_t i = 0; i < reference.counters.size(); ++i) {
            EXPECT_EQ(got.counters[i].first, reference.counters[i].first);
            EXPECT_EQ(got.counters[i].second,
                      reference.counters[i].second)
                << got.counters[i].first << " at " << workers
                << " workers";
        }
        EXPECT_EQ(got.syndromeWeight.count, reference.syndromeWeight.count);
        EXPECT_EQ(got.syndromeWeight.sum, reference.syndromeWeight.sum);
        EXPECT_EQ(got.syndromeWeight.buckets,
                  reference.syndromeWeight.buckets);
    }
}

TEST(StreamDecode, WindowBoundsPeakStorageIndependentOfRounds)
{
    StreamConfig config;
    config.windowRounds = 7;
    config.commitRounds = 3;

    std::size_t prev_peak = 0;
    for (std::size_t rounds : {std::size_t{14}, std::size_t{28}}) {
        const auto circuit = surfaceMemoryZ(7, rounds, fig6Noise());
        Rng rng(31337);
        const auto result = runStreamingMemoryExperiment(
            circuit, 128, rounds, DecoderKind::UnionFind, rng, config);

        EXPECT_EQ(result.peakStoredRounds, config.windowRounds)
            << rounds << " rounds";
        if (prev_peak)
            EXPECT_EQ(result.peakStoredRounds, prev_peak);
        prev_peak = result.peakStoredRounds;

        // Window decode points per batch: one per commit step before
        // the final round, plus the final commit-all window.
        std::size_t non_final = 0;
        for (std::size_t t = config.windowRounds; t < rounds;
             t += config.commitRounds)
            ++non_final;
        const std::size_t batches = (128 + 63) / 64;
        EXPECT_EQ(result.windows, batches * (non_final + 1));
        EXPECT_EQ(result.committedRounds, batches * rounds);
        EXPECT_EQ(result.blocks, batches * rounds);
    }
}

TEST(StreamDecode, SlidingWindowStillCorrectsAtLowNoise)
{
    // At p2 = 1e-3 a d=5 code corrects essentially every shot; the
    // windowed decoder must not fall off that cliff (a broken commit
    // rule would push the failure rate toward 50%).
    CircuitNoise noise;
    noise.p2 = 1e-3;
    noise.p1 = 1e-4;
    const std::size_t rounds = 12;
    const auto circuit = surfaceMemoryZ(5, rounds, noise);

    StreamConfig config;
    config.windowRounds = 4;
    config.commitRounds = 2;
    Rng rng(4242);
    const auto result = runStreamingMemoryExperiment(
        circuit, 1024, rounds, DecoderKind::UnionFind, rng, config);
    EXPECT_LT(result.memory.perShot(), 0.02);
    EXPECT_GT(result.trivialShots, 0u);
    EXPECT_GT(result.laneDecodes, 0u);
}

} // namespace
} // namespace qec
} // namespace hetarch
