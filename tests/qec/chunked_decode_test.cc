/**
 * @file
 * Regression tests for the chunked memory-experiment path: decoding in
 * 64-shot-aligned chunks (peak syndrome storage = one chunk) must count
 * exactly the failures a whole-buffer decode of the same samples
 * counts, and the shared DecoderCache must reuse shot-independent
 * setups instead of rebuilding them.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "exec/shot_scheduler.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace qec {
namespace {

/**
 * Reference path: sample every chunk's shots into one concatenated
 * buffer, then decode the whole buffer in a single pass.  Uses the same
 * per-chunk RNG streams the production path uses, so the sampled bits
 * are identical — only the decode granularity differs.
 */
std::size_t
wholeBufferFailures(const stab::Circuit& circuit, std::size_t shots,
                    DecoderKind kind, std::uint64_t base)
{
    const stab::FrameSimulator frame(circuit);
    const exec::ShotScheduler sched(shots);

    stab::DetectorSamples all;
    all.resize(0, circuit.numDetectors(), circuit.numObservables());
    for (std::size_t i = 0; i < sched.numChunks(); ++i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        const auto part = frame.sampleDetectors(chunk.count, chunk_rng);
        EXPECT_EQ(part.shots, chunk.count);
        // Chunks are 64-aligned except the last, so packed rows
        // concatenate word-wise.
        all.append(part);
    }
    EXPECT_EQ(all.shots, shots);

    const auto setup = DecoderSetup::build(circuit, kind);
    return countLogicalFailures(*setup, kind, all);
}

TEST(ChunkedDecode, MatchesWholeBufferOnSeededD3Experiment)
{
    qec::CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(3, 3, noise);

    // 1000 shots: several full 256-shot chunks plus a ragged tail, so
    // the test exercises both chunk shapes.
    const std::size_t shots = 1000;
    const std::uint64_t seed = 2024;

    for (auto kind : {DecoderKind::UnionFind, DecoderKind::GreedyDem}) {
        // The production (chunked) path.
        Rng rng(seed);
        const auto result =
            runMemoryExperiment(circuit, shots, 3, kind, rng);

        // The reference path replays the experiment's base-stream draw.
        Rng replay(seed);
        const std::uint64_t base = replay();
        const auto reference =
            wholeBufferFailures(circuit, shots, kind, base);

        EXPECT_EQ(result.failures, reference)
            << "decoder kind " << static_cast<int>(kind);
        EXPECT_EQ(result.shots, shots);
        EXPECT_GT(result.failures, 0u);
    }
}

TEST(ChunkedDecode, PeakBufferIsOneChunkNotTheExperiment)
{
    // Structural guarantee behind the memory cap: a 1000-shot budget is
    // split into several chunks, each at most kDefaultChunkShots, so
    // the chunked path never materializes shots x detectors at once.
    const exec::ShotScheduler sched(1000);
    EXPECT_GT(sched.numChunks(), 1u);
    for (std::size_t i = 0; i < sched.numChunks(); ++i)
        EXPECT_LE(sched.chunk(i).count,
                  exec::ShotScheduler::kDefaultChunkShots);
}

TEST(DecoderCache, ReusesSetupsAcrossRepeatedRuns)
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-3;
    const auto circuit = surfaceMemoryZ(3, 2, noise);

    auto& cache = DecoderCache::instance();
    cache.clear();
    const auto first =
        cache.get(circuit, DecoderKind::UnionFind);
    const std::uint64_t hits_before = cache.hits();
    const auto second =
        cache.get(circuit, DecoderKind::UnionFind);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.hits(), hits_before + 1);
    EXPECT_EQ(cache.size(), 1u);

    // A different decoder kind is a different cache entry.
    const auto greedy = cache.get(circuit, DecoderKind::GreedyDem);
    EXPECT_NE(greedy.get(), first.get());
    EXPECT_EQ(cache.size(), 2u);

    // A different circuit is a different entry too.
    qec::CircuitNoise other = noise;
    other.p2 = 2e-3;
    cache.get(surfaceMemoryZ(3, 2, other), DecoderKind::UnionFind);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(DecoderCache, HashDistinguishesCircuits)
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-3;
    const auto a = surfaceMemoryZ(3, 2, noise);
    const auto b = surfaceMemoryZ(3, 3, noise);
    noise.p2 = 2e-3;
    const auto c = surfaceMemoryZ(3, 2, noise);

    EXPECT_EQ(hashCircuit(a), hashCircuit(surfaceMemoryZ(3, 2, [] {
                  qec::CircuitNoise n;
                  n.p2 = 1e-3;
                  return n;
              }())));
    EXPECT_NE(hashCircuit(a), hashCircuit(b));
    EXPECT_NE(hashCircuit(a), hashCircuit(c));
}

} // namespace
} // namespace qec
} // namespace hetarch
