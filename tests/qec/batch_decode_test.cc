/**
 * @file
 * Pins the shot-batched decode pipeline:
 *
 *   - UnionFindDecoder::decodeBatch and DemDecoder::decodeBatch are
 *     output-identical to per-shot decodeSparse on random syndromes at
 *     four densities, including duplicate and empty fired lists;
 *   - SlidingWindowDecoder::decodeBuffer reproduces the historical
 *     word-by-word beginBatch/pushBufferColumn/finishBatch loop
 *     exactly (failures, trivial shots, weight records);
 *   - runMemoryExperiment failures and every deterministic counter are
 *     invariant across sampler widths {1, 4, 8} x workers {1, 2, 8}.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/sliding_window.hh"
#include "qec/surface_circuit.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace qec {
namespace {

struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

struct WidthGuard
{
    std::size_t saved = stab::frameBlockWords();
    ~WidthGuard() { stab::setFrameBlockWords(saved); }
};

/** Random fired-node lists at a given per-node fire probability. */
std::vector<std::vector<std::uint32_t>>
randomSyndromes(std::size_t n_nodes, std::size_t count, int permille,
                Rng& rng)
{
    std::vector<std::vector<std::uint32_t>> lists(count);
    for (auto& fired : lists)
        for (std::uint32_t v = 0; v < n_nodes; ++v)
            if (rng() % 1000 < static_cast<std::uint64_t>(permille))
                fired.push_back(v);
    return lists;
}

TEST(BatchDecode, UnionFindBatchMatchesPerShotAtFourDensities)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(5, 3, noise);
    const auto setup = DecoderSetup::build(circuit, DecoderKind::UnionFind);

    UnionFindDecoder batch_dec(setup->graphZ);
    UnionFindDecoder ref_dec(setup->graphZ);

    Rng rng(515);
    for (const int permille : {5, 30, 150, 500}) {
        auto lists = randomSyndromes(setup->graphZ.numNodes(), 64,
                                     permille, rng);
        // Force duplicate and empty lists into every density so the
        // dedup reuse and the weight-0 fast path are exercised.
        lists[7].clear();
        lists[23].clear();
        lists[40] = lists[3];
        lists[41] = lists[3];

        std::vector<std::uint32_t> out(lists.size(), 0xdeadbeefu);
        const std::size_t hits = batch_dec.decodeBatch(lists, out);
        for (std::size_t s = 0; s < lists.size(); ++s)
            EXPECT_EQ(out[s], ref_dec.decodeSparse(lists[s]))
                << "permille=" << permille << " shot=" << s;
        // The two planted copies of a non-empty list must be reused;
        // empty lists take the weight-0 path and never count as hits.
        if (!lists[3].empty()) {
            EXPECT_GE(hits, 2u) << "permille=" << permille;
        }
    }
}

TEST(BatchDecode, GreedyBatchMatchesPerShotAtFourDensities)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(3, 3, noise);
    const auto setup = DecoderSetup::build(circuit, DecoderKind::GreedyDem);

    Rng rng(616);
    std::vector<std::uint32_t> residual, next, order;
    for (const int permille : {5, 30, 150, 500}) {
        auto lists = randomSyndromes(circuit.numDetectors(), 48,
                                     permille, rng);
        lists[0].clear();
        lists[30] = lists[11];

        std::vector<std::uint32_t> out(lists.size(), 0xdeadbeefu);
        const std::size_t hits = setup->greedy->decodeBatch(
            lists, out, residual, next, order);
        (void)hits;
        for (std::size_t s = 0; s < lists.size(); ++s)
            EXPECT_EQ(out[s], setup->greedy->decodeSparse(lists[s]))
                << "permille=" << permille << " shot=" << s;
    }
}

TEST(BatchDecode, DecodeBufferMatchesHistoricalWordLoop)
{
    CircuitNoise noise;
    noise.p2 = 8e-3;
    const auto circuit = surfaceMemoryZ(5, 3, noise);

    const stab::FrameSimulator frame(circuit);
    Rng rng(2468);
    // 700 shots: two full 256-shot blocks, then a partial block whose
    // final word is also partial.
    const auto samples = frame.sampleDetectors(700, rng);

    for (auto kind : {DecoderKind::UnionFind, DecoderKind::GreedyDem}) {
        const auto setup = DecoderSetup::build(circuit, kind);

        SlidingWindowDecoder historical(*setup, kind);
        std::size_t ref_failures = 0;
        for (std::size_t w = 0; w < samples.numWords; ++w) {
            const std::size_t lanes =
                std::min<std::size_t>(64, samples.shots - w * 64);
            historical.beginBatch(lanes);
            historical.pushBufferColumn(samples, w);
            ref_failures += historical.finishBatch();
        }

        SlidingWindowDecoder batched(*setup, kind);
        const std::size_t failures = batched.decodeBuffer(samples);

        EXPECT_EQ(failures, ref_failures)
            << "kind " << static_cast<int>(kind);
        const auto& got = batched.stats();
        const auto& want = historical.stats();
        EXPECT_EQ(got.failures, want.failures);
        EXPECT_EQ(got.shots, want.shots);
        EXPECT_EQ(got.trivialShots, want.trivialShots);
        EXPECT_EQ(got.syndromeWeights.count(),
                  want.syndromeWeights.count());
        EXPECT_EQ(got.syndromeWeights.sum(), want.syndromeWeights.sum());
        // Block accounting is only produced by the batched entry.
        EXPECT_EQ(got.batchShots, samples.shots);
        EXPECT_EQ(got.batchBlocks,
                  (samples.numWords +
                   SlidingWindowDecoder::kDecodeBlockWords - 1) /
                      SlidingWindowDecoder::kDecodeBlockWords);
        EXPECT_GT(ref_failures, 0u);
    }
}

TEST(BatchDecode, MemoryExperimentInvariantAcrossWidthsAndWorkers)
{
    CircuitNoise noise;
    noise.p2 = 5e-3;
    const auto circuit = surfaceMemoryZ(3, 3, noise);
    WidthGuard width_guard;

    struct RunState
    {
        std::size_t failures = 0;
        std::vector<std::pair<std::string, std::uint64_t>> counters;
    };
    const auto run = [&](std::size_t width, unsigned workers) {
        ThreadCountGuard guard(workers);
        stab::setFrameBlockWords(width);
        DecoderCache::instance().clear();
        obs::Registry::instance().reset();
        Rng rng(1212);
        RunState state;
        state.failures =
            runMemoryExperiment(circuit, 900, 3, DecoderKind::UnionFind,
                                rng)
                .failures;
        state.counters = obs::Registry::instance().snapshot().counters;
        return state;
    };

    const auto reference = run(1, 1);
    EXPECT_GT(reference.failures, 0u);
    EXPECT_FALSE(reference.counters.empty());
    for (const std::size_t width :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        for (const unsigned workers : {1u, 2u, 8u}) {
            const auto got = run(width, workers);
            EXPECT_EQ(got.failures, reference.failures)
                << "width=" << width << " workers=" << workers;
            ASSERT_EQ(got.counters.size(), reference.counters.size())
                << "width=" << width << " workers=" << workers;
            for (std::size_t i = 0; i < got.counters.size(); ++i) {
                EXPECT_EQ(got.counters[i].first,
                          reference.counters[i].first)
                    << "width=" << width << " workers=" << workers;
                EXPECT_EQ(got.counters[i].second,
                          reference.counters[i].second)
                    << got.counters[i].first << " width=" << width
                    << " workers=" << workers;
            }
        }
    }
}

} // namespace
} // namespace qec
} // namespace hetarch
