/**
 * @file
 * Tests for the bit-packed sparse decode pipeline: the sparse decoder
 * entry points (arena-backed union-find, buffer-backed greedy) must be
 * bit-identical to their dense reference implementations, weight-0
 * shots must be counted by the trivial-shot bypass, all observables
 * must be failure-checked, and the packed samples plus every decode
 * counter must be invariant across 1/2/8 workers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "exec/shot_scheduler.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace qec {
namespace {

std::uint64_t
counterValue(const obs::Snapshot& snap, const std::string& name)
{
    for (const auto& [n, v] : snap.counters)
        if (n == name)
            return v;
    return 0;
}

TEST(PackedDecode, SparseUnionFindMatchesDenseOnRandomSyndromes)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(5, 3, noise);
    const auto setup = DecoderSetup::build(circuit, DecoderKind::UnionFind);

    // One sparse decoder reused across every trial and density, so the
    // epoch arena is exercised with many different syndromes in a row;
    // the dense decoder allocates fresh state per call by construction.
    UnionFindDecoder dec_z(setup->graphZ);
    UnionFindDecoder dec_x(setup->graphX);

    Rng rng(2026);
    const std::size_t n_dets = circuit.numDetectors();
    for (const int permille : {5, 30, 150, 500}) {
        for (int trial = 0; trial < 40; ++trial) {
            std::vector<std::uint8_t> detectors(n_dets, 0);
            std::vector<std::uint32_t> fired;
            for (std::uint32_t d = 0; d < n_dets; ++d) {
                if (rng() % 1000 < static_cast<std::uint64_t>(permille)) {
                    detectors[d] = 1;
                    fired.push_back(d);
                }
            }

            for (const auto* graph : {&setup->graphZ, &setup->graphX}) {
                auto& dec = graph == &setup->graphZ ? dec_z : dec_x;
                const auto dense =
                    dec.decode(graph->projectSyndrome(detectors));
                std::vector<std::uint32_t> nodes;
                graph->projectSparse(fired, nodes);
                EXPECT_EQ(dec.decodeSparse(nodes), dense)
                    << "permille=" << permille << " trial=" << trial;
            }
        }
    }
    // The empty syndrome decodes to the zero correction on both paths.
    EXPECT_EQ(dec_z.decodeSparse({}), 0u);
}

TEST(PackedDecode, SparseGreedyMatchesDenseOnRandomSyndromes)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(3, 3, noise);
    const auto setup = DecoderSetup::build(circuit, DecoderKind::GreedyDem);

    Rng rng(515);
    const std::size_t n_dets = circuit.numDetectors();
    std::vector<std::uint32_t> residual, next;
    for (const int permille : {5, 50, 200}) {
        for (int trial = 0; trial < 40; ++trial) {
            std::vector<std::uint8_t> detectors(n_dets, 0);
            std::vector<std::uint32_t> fired;
            for (std::uint32_t d = 0; d < n_dets; ++d) {
                if (rng() % 1000 < static_cast<std::uint64_t>(permille)) {
                    detectors[d] = 1;
                    fired.push_back(d);
                }
            }
            const auto dense = setup->greedy->decode(detectors);
            // Both sparse entry points: member buffers and caller
            // scratch.
            EXPECT_EQ(setup->greedy->decodeSparse(fired), dense)
                << "permille=" << permille << " trial=" << trial;
            EXPECT_EQ(setup->greedy->decodeSparse(fired, residual, next),
                      dense)
                << "permille=" << permille << " trial=" << trial;
        }
    }
}

TEST(PackedDecode, TrivialShotCounterMatchesWeightZeroShotsExactly)
{
    CircuitNoise noise;
    noise.p2 = 1e-3; // low noise: most shots are weight 0
    const auto circuit = surfaceMemoryZ(3, 2, noise);
    const auto setup = DecoderSetup::build(circuit, DecoderKind::UnionFind);

    const stab::FrameSimulator frame(circuit);
    Rng rng(99);
    const auto samples = frame.sampleDetectors(1000, rng);

    std::size_t expected_trivial = 0;
    for (std::size_t s = 0; s < samples.shots; ++s)
        expected_trivial += samples.shotWeight(s) == 0;
    ASSERT_GT(expected_trivial, 0u);
    ASSERT_LT(expected_trivial, samples.shots);

    obs::Registry::instance().reset();
    countLogicalFailures(*setup, DecoderKind::UnionFind, samples);
    const auto snap = obs::Registry::instance().snapshot();
    EXPECT_EQ(counterValue(snap, "qec.decode.trivial_shots"),
              expected_trivial);
    EXPECT_EQ(counterValue(snap, "qec.decode.shots"), samples.shots);
}

TEST(PackedDecode, AllObservablesAreFailureChecked)
{
    // Observable 0 never flips; observable 1 always does, with no
    // detector firing — so every shot takes the trivial bypass and a
    // decoder comparing only observable 0 would report zero failures.
    stab::Circuit c(2);
    c.xError(1, 1.0);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.observableInclude(0, {m0});
    c.observableInclude(1, {m1});

    const auto setup = DecoderSetup::build(c, DecoderKind::GreedyDem);
    const stab::FrameSimulator frame(c);
    Rng rng(4);
    const auto samples = frame.sampleDetectors(128, rng);
    ASSERT_EQ(samples.numObservables, 2u);

    obs::Registry::instance().reset();
    EXPECT_EQ(countLogicalFailures(*setup, DecoderKind::GreedyDem, samples),
              samples.shots);
    const auto snap = obs::Registry::instance().snapshot();
    EXPECT_EQ(counterValue(snap, "qec.decode.trivial_shots"),
              samples.shots);
}

TEST(PackedDecode, PackedSamplesMatchReferenceAcrossWorkerCounts)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(3, 3, noise);
    const std::size_t shots = 1000;
    const std::uint64_t base = 0xfeedbeefcafe1234ull;
    const exec::ShotScheduler sched(shots);

    // Reference: the legacy op-list interpreter, run serially chunk by
    // chunk with the production chunk streams.
    const stab::FrameSimulator frame(circuit);
    stab::DetectorSamples reference;
    reference.resize(0, circuit.numDetectors(), circuit.numObservables());
    for (std::size_t i = 0; i < sched.numChunks(); ++i) {
        const auto chunk = sched.chunk(i);
        Rng chunk_rng = exec::ShotScheduler::chunkRng(base, chunk.index);
        reference.append(
            frame.sampleDetectorsReference(chunk.count, chunk_rng));
    }
    ASSERT_EQ(reference.shots, shots);

    for (const unsigned workers : {1u, 2u, 8u}) {
        exec::setThreadCount(workers);
        std::vector<stab::DetectorSamples> parts(sched.numChunks());
        exec::parallelFor(sched.numChunks(), [&](std::size_t i) {
            const auto chunk = sched.chunk(i);
            Rng chunk_rng =
                exec::ShotScheduler::chunkRng(base, chunk.index);
            parts[i] = frame.sampleDetectors(chunk.count, chunk_rng);
        });
        stab::DetectorSamples packed;
        packed.resize(0, circuit.numDetectors(),
                      circuit.numObservables());
        for (auto& part : parts)
            packed.append(part);

        EXPECT_EQ(packed.detWords, reference.detWords)
            << workers << " workers";
        EXPECT_EQ(packed.obsWords, reference.obsWords)
            << workers << " workers";
        // The compat accessors view the same bits.
        EXPECT_EQ(packed.unpackedDetectors(),
                  reference.unpackedDetectors())
            << workers << " workers";
        EXPECT_EQ(packed.unpackedObservables(),
                  reference.unpackedObservables())
            << workers << " workers";
    }
    exec::setThreadCount(0);
}

TEST(PackedDecode, FailuresAndTrivialShotsAreThreadInvariant)
{
    CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = surfaceMemoryZ(3, 4, noise);

    std::vector<std::size_t> failures;
    std::vector<std::uint64_t> trivial;
    for (const unsigned workers : {1u, 2u, 8u}) {
        exec::setThreadCount(workers);
        DecoderCache::instance().clear();
        obs::Registry::instance().reset();
        Rng rng(1234);
        const auto result = runMemoryExperiment(circuit, 1500, 4,
                                                DecoderKind::UnionFind,
                                                rng);
        const auto snap = obs::Registry::instance().snapshot();
        failures.push_back(result.failures);
        trivial.push_back(counterValue(snap, "qec.decode.trivial_shots"));
        EXPECT_EQ(counterValue(snap, "qec.decode.shots"), 1500u);
    }
    exec::setThreadCount(0);

    EXPECT_GT(trivial[0], 0u);
    for (std::size_t w = 1; w < failures.size(); ++w) {
        EXPECT_EQ(failures[w], failures[0]) << "worker set " << w;
        EXPECT_EQ(trivial[w], trivial[0]) << "worker set " << w;
    }
}

} // namespace
} // namespace qec
} // namespace hetarch
