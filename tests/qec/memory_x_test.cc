/**
 * @file
 * Tests for the memory-X surface experiment and the automatic
 * observable-graph detection in the decoder harness.
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace qec {
namespace {

using namespace units;

CircuitNoise
lowNoise()
{
    CircuitNoise noise;
    noise.p2 = 2e-3;
    noise.p1 = 2e-4;
    noise.dataT1 = noise.dataT2 = 10.0 * ms;
    noise.ancT1 = noise.ancT2 = 10.0 * ms;
    return noise;
}

TEST(MemoryX, DetectorsDeterministic)
{
    const auto circ = surfaceMemory(3, 2, lowNoise(), MemoryBasis::X);
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(circ));
}

TEST(MemoryX, DetectorCountMirrorsMemoryZ)
{
    const auto cz = surfaceMemory(3, 3, lowNoise(), MemoryBasis::Z);
    const auto cx = surfaceMemory(3, 3, lowNoise(), MemoryBasis::X);
    EXPECT_EQ(cz.numDetectors(), cx.numDetectors());
    EXPECT_EQ(cz.numMeasurements(), cx.numMeasurements());
}

TEST(MemoryX, LogicalErrorSuppressedBelowThreshold)
{
    const auto circ = surfaceMemory(3, 3, lowNoise(), MemoryBasis::X);
    Rng rng(41);
    const auto res =
        runMemoryExperiment(circ, 8000, 3, DecoderKind::UnionFind, rng);
    EXPECT_LT(res.perRound(), 5e-3);
}

TEST(MemoryX, DistanceHelps)
{
    auto run = [&](std::size_t d) {
        const auto circ =
            surfaceMemory(d, d, lowNoise(), MemoryBasis::X);
        Rng rng(43 + d);
        return runMemoryExperiment(circ, 6000, d,
                                   DecoderKind::UnionFind, rng)
            .perRound();
    };
    EXPECT_LT(run(5), run(3) + 1e-3);
}

TEST(MemoryX, BasesRoughlySymmetricUnderSymmetricNoise)
{
    // With T1 = T2 and symmetric gates, memory-X and memory-Z rates
    // should be within a small factor of each other.
    auto run = [&](MemoryBasis basis, std::uint64_t seed) {
        const auto circ = surfaceMemory(3, 3, lowNoise(), basis);
        Rng rng(seed);
        return runMemoryExperiment(circ, 10000, 3,
                                   DecoderKind::UnionFind, rng)
            .perRound();
    };
    const double pz = run(MemoryBasis::Z, 7);
    const double px = run(MemoryBasis::X, 8);
    EXPECT_LT(px, 6.0 * pz + 2e-3);
    EXPECT_LT(pz, 6.0 * px + 2e-3);
}

} // namespace
} // namespace qec
} // namespace hetarch
