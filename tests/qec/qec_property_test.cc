/**
 * @file
 * Parameterized property tests over the QEC code zoo and decoders.
 */

#include <gtest/gtest.h>

#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/dem_decoder.hh"
#include "qec/memory_experiment.hh"
#include "stab/dem.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace qec {
namespace {

class CodeZoo : public ::testing::TestWithParam<int>
{
  protected:
    CssCode code() const
    {
        switch (GetParam()) {
          case 0: return makeSteane();
          case 1: return makeReedMuller15();
          case 2: return makeColorCode(3);
          case 3: return makeColorCode(5);
          case 4: return makeRotatedSurface(2);
          case 5: return makeRotatedSurface(3);
          case 6: return makeRotatedSurface(4);
          case 7: return makeRotatedSurface(5);
          default: return makeRepetition(5);
        }
    }
};

TEST_P(CodeZoo, DefinitionIsValid)
{
    code().validate();
}

TEST_P(CodeZoo, DistanceMatchesClaim)
{
    const auto c = code();
    if (c.xChecks.empty())
        GTEST_SKIP() << "repetition code protects one basis only";
    // Z distance is what the memory-Z experiments exercise.
    EXPECT_EQ(c.minLogicalZWeight(), c.distance) << c.name;
}

TEST_P(CodeZoo, LogicalsCommuteProperly)
{
    const auto c = code();
    std::size_t overlap = 0;
    for (auto a : c.logicalX)
        for (auto b : c.logicalZ)
            if (a == b)
                ++overlap;
    EXPECT_EQ(overlap % 2, 1u) << c.name;
}

TEST_P(CodeZoo, SyndromeCircuitDetectorsDeterministic)
{
    const auto circ = codeCapacityMemoryZ(code(), 2, 0.05, 0.05);
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(circ));
}

TEST_P(CodeZoo, DecoderCorrectsEverySingleMechanism)
{
    const auto c = code();
    if (c.distance < 3)
        GTEST_SKIP() << "distance-2 codes only detect single errors";
    const auto circ = codeCapacityMemoryZ(c, 1, 0.01, 0.01);
    const auto dem = stab::buildDetectorErrorModel(circ);
    DemDecoder dec(dem);
    std::size_t bad = 0;
    for (const auto& mech : dem.mechanisms) {
        std::vector<std::uint8_t> syndrome(dem.numDetectors, 0);
        for (auto d : mech.detectors)
            syndrome[d] ^= 1;
        if ((dec.decode(syndrome) & 1u) != (mech.observables & 1u))
            ++bad;
    }
    EXPECT_EQ(bad, 0u) << c.name;
}

TEST_P(CodeZoo, LogicalErrorBelowPhysicalAtLowNoise)
{
    const auto c = code();
    if (c.distance < 3)
        GTEST_SKIP() << "distance-2 codes only detect";
    const double p = 0.01;
    const auto circ = codeCapacityMemoryZ(c, 1, p);
    Rng rng(31);
    const auto res =
        runMemoryExperiment(circ, 8000, 1, DecoderKind::GreedyDem, rng);
    EXPECT_LT(res.perShot(), p) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllCodes, CodeZoo, ::testing::Range(0, 9));

class SurfaceNoiseSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SurfaceNoiseSweep, LogicalErrorMonotoneInDataCoherence)
{
    // For any gate error level, longer data coherence never hurts.
    const double p2 = GetParam();
    CircuitNoise worse;
    worse.p2 = p2;
    worse.dataT1 = worse.dataT2 = 5e4; // 50 us
    worse.ancT1 = worse.ancT2 = 1e5;
    CircuitNoise better = worse;
    better.dataT1 = better.dataT2 = 1e6; // 1 ms
    const double p_worse =
        surfaceLogicalErrorPerRound(3, 3, worse, 4000, 3);
    const double p_better =
        surfaceLogicalErrorPerRound(3, 3, better, 4000, 4);
    EXPECT_LT(p_better, p_worse + 0.01);
}

INSTANTIATE_TEST_SUITE_P(GateErrors, SurfaceNoiseSweep,
                         ::testing::Values(1e-3, 5e-3, 1e-2));

} // namespace
} // namespace qec
} // namespace hetarch
