/**
 * @file
 * Decoder tests: union-find on repetition/surface graphs, greedy DEM
 * decoder on small codes, end-to-end logical error rates.
 */

#include <gtest/gtest.h>

#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/dem_decoder.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "qec/union_find.hh"
#include "stab/dem.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace qec {
namespace {

TEST(DecoderGraph, RepetitionGraphShape)
{
    const auto code = makeRepetition(5);
    const auto circ = codeCapacityMemoryZ(code, 1, 0.1);
    const auto dem = stab::buildDetectorErrorModel(circ);
    const auto graph =
        DecodingGraph::fromDem(dem, circ.detectorTags(), kTagZ);
    // 4 checks x 2 rounds of detectors.
    EXPECT_EQ(graph.numNodes(), 8u);
    EXPECT_GT(graph.edges().size(), 0u);
    EXPECT_EQ(graph.undecomposedCount(), 0u);
    // Boundary edges must exist (ends of the chain).
    bool has_boundary = false;
    for (const auto& e : graph.edges())
        if (e.v == -1)
            has_boundary = true;
    EXPECT_TRUE(has_boundary);
}

TEST(UnionFind, CorrectsSingleErrorsRepetition)
{
    const auto code = makeRepetition(5);
    const auto circ = codeCapacityMemoryZ(code, 2, 0.01);
    const auto dem = stab::buildDetectorErrorModel(circ);
    const auto graph =
        DecodingGraph::fromDem(dem, circ.detectorTags(), kTagZ);
    UnionFindDecoder dec(graph);

    // Every single mechanism must be decoded back to its own
    // observable effect.
    for (const auto& mech : dem.mechanisms) {
        std::vector<std::uint8_t> syndrome(graph.numNodes(), 0);
        bool in_graph = true;
        for (auto d : mech.detectors) {
            const auto node = graph.detectorToNode()[d];
            if (node < 0) {
                in_graph = false;
                break;
            }
            syndrome[static_cast<std::size_t>(node)] ^= 1;
        }
        if (!in_graph)
            continue;
        EXPECT_EQ(dec.decode(syndrome), mech.observables)
            << "mechanism with p=" << mech.probability;
    }
}

TEST(UnionFind, EmptySyndromeGivesNoCorrection)
{
    const auto code = makeRepetition(3);
    const auto circ = codeCapacityMemoryZ(code, 1, 0.1);
    const auto dem = stab::buildDetectorErrorModel(circ);
    const auto graph =
        DecodingGraph::fromDem(dem, circ.detectorTags(), kTagZ);
    UnionFindDecoder dec(graph);
    std::vector<std::uint8_t> syndrome(graph.numNodes(), 0);
    EXPECT_EQ(dec.decode(syndrome), 0u);
}

TEST(UnionFind, RepetitionLogicalRateSuppressed)
{
    // Code capacity p=0.05: d=5 repetition failure ~ C * p^3 << p.
    const auto code = makeRepetition(5);
    const auto circ = codeCapacityMemoryZ(code, 1, 0.05);
    Rng rng(7);
    const auto res =
        runMemoryExperiment(circ, 20000, 1, DecoderKind::UnionFind, rng);
    EXPECT_LT(res.perShot(), 0.01);
}

TEST(DemDecoder, CorrectsAllSingleMechanisms)
{
    for (const auto& code : {makeSteane(), makeReedMuller15(),
                             makeColorCode(5)}) {
        const auto circ = codeCapacityMemoryZ(code, 1, 0.01, 0.01);
        const auto dem = stab::buildDetectorErrorModel(circ);
        DemDecoder dec(dem);
        for (const auto& mech : dem.mechanisms) {
            std::vector<std::uint8_t> syndrome(dem.numDetectors, 0);
            for (auto d : mech.detectors)
                syndrome[d] ^= 1;
            EXPECT_EQ(dec.decode(syndrome) & 1u, mech.observables & 1u)
                << code.name;
        }
    }
}

TEST(DemDecoder, SteaneSuppressesErrors)
{
    const auto code = makeSteane();
    const double p = 0.02;
    const auto circ = codeCapacityMemoryZ(code, 1, p);
    Rng rng(11);
    const auto res =
        runMemoryExperiment(circ, 20000, 1, DecoderKind::GreedyDem, rng);
    // Distance 3: failures scale ~ p^2; must beat the unencoded rate.
    EXPECT_LT(res.perShot(), p);
}

TEST(SurfaceCircuit, DetectorsAreDeterministic)
{
    CircuitNoise noise;
    const auto circ = surfaceMemoryZ(3, 2, noise);
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(circ));
}

TEST(SurfaceCircuit, DetectorCount)
{
    CircuitNoise noise;
    const std::size_t d = 3, rounds = 3;
    const auto circ = surfaceMemoryZ(d, rounds, noise);
    // Z-detectors: 4 per round + 4 final; X: 4 per round from round 2.
    const std::size_t expect_z = 4 * rounds + 4;
    const std::size_t expect_x = 4 * (rounds - 1);
    EXPECT_EQ(circ.numDetectors(), expect_z + expect_x);
}

TEST(SurfaceCircuit, GraphsDecomposeCleanly)
{
    CircuitNoise noise;
    const auto circ = surfaceMemoryZ(3, 3, noise);
    const auto dem = stab::buildDetectorErrorModel(circ);
    const auto gz = DecodingGraph::fromDem(dem, circ.detectorTags(), kTagZ);
    const auto gx = DecodingGraph::fromDem(dem, circ.detectorTags(), kTagX);
    EXPECT_EQ(gz.undecomposedCount(), 0u);
    EXPECT_EQ(gx.undecomposedCount(), 0u);
}

TEST(SurfaceMemory, LowNoiseHasLowLogicalError)
{
    CircuitNoise noise;
    noise.p2 = 1e-3;
    noise.p1 = 1e-4;
    noise.dataT1 = noise.dataT2 = 1e9; // effectively no idle error
    noise.ancT1 = noise.ancT2 = 1e9;
    const double p_round =
        surfaceLogicalErrorPerRound(3, 3, noise, 4000, 99);
    EXPECT_LT(p_round, 0.01);
}

TEST(SurfaceMemory, DistanceHelpsBelowThreshold)
{
    CircuitNoise noise;
    noise.p2 = 2e-3;
    noise.p1 = 2e-4;
    noise.dataT1 = noise.dataT2 = 1.0e7; // 10 ms: idle subdominant
    noise.ancT1 = noise.ancT2 = 1.0e7;
    const double p3 = surfaceLogicalErrorPerRound(3, 3, noise, 6000, 5);
    const double p5 = surfaceLogicalErrorPerRound(5, 5, noise, 6000, 6);
    EXPECT_LT(p5, p3);
}

TEST(SurfaceMemory, MoreNoiseMoreErrors)
{
    CircuitNoise base;
    base.dataT1 = base.dataT2 = 1e8;
    base.ancT1 = base.ancT2 = 1e8;
    base.p2 = 1e-3;
    CircuitNoise noisy = base;
    noisy.p2 = 2e-2;
    const double lo = surfaceLogicalErrorPerRound(3, 3, base, 4000, 21);
    const double hi = surfaceLogicalErrorPerRound(3, 3, noisy, 4000, 22);
    EXPECT_LT(lo, hi);
}

TEST(MemoryResult, PerRoundInversion)
{
    MemoryResult r;
    r.shots = 1000;
    r.rounds = 10;
    r.failures = 100; // p_shot = 0.1
    // (1 - (1-2p)^10)/2 = 0.1  =>  p ~ 0.01113.
    EXPECT_NEAR(r.perRound(), 0.011128, 1e-4);
}

} // namespace
} // namespace qec
} // namespace hetarch
