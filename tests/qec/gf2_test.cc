/**
 * @file
 * Unit tests for GF(2) linear algebra.
 */

#include <gtest/gtest.h>

#include "qec/gf2.hh"

namespace hetarch {
namespace qec {
namespace {

TEST(Gf2, RankOfIdentityLike)
{
    auto m = Gf2Matrix::fromSupports({{0}, {1}, {2}}, 3);
    EXPECT_EQ(m.rank(), 3u);
}

TEST(Gf2, RankWithDependentRows)
{
    // Row 3 = row 0 xor row 1.
    auto m = Gf2Matrix::fromSupports({{0, 1}, {1, 2}, {0, 2}}, 3);
    EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2, NullspaceOfParityCheck)
{
    // Single parity check x0+x1+x2 = 0: nullspace dim 2.
    auto m = Gf2Matrix::fromSupports({{0, 1, 2}}, 3);
    const auto basis = m.nullspaceBasis();
    EXPECT_EQ(basis.size(), 2u);
    // Every basis vector must satisfy the check (even overlap).
    for (const auto& v : basis)
        EXPECT_EQ(v.size() % 2, 0u);
}

TEST(Gf2, NullspaceVectorsAreInKernel)
{
    auto m = Gf2Matrix::fromSupports({{0, 1, 3}, {1, 2, 3}, {0, 2}}, 5);
    for (const auto& v : m.nullspaceBasis()) {
        // Manually verify M v = 0.
        for (std::size_t r = 0; r < m.rows(); ++r) {
            int parity = 0;
            for (auto c : v)
                parity ^= m.get(r, c) ? 1 : 0;
            EXPECT_EQ(parity, 0);
        }
    }
}

TEST(Gf2, RankPlusNullityEqualsColumns)
{
    auto m = Gf2Matrix::fromSupports(
        {{0, 1, 2}, {2, 3, 4}, {0, 4, 5}, {1, 3, 5}}, 7);
    EXPECT_EQ(m.rank() + m.nullspaceBasis().size(), 7u);
}

TEST(Gf2, InRowSpace)
{
    auto m = Gf2Matrix::fromSupports({{0, 1}, {1, 2}}, 4);
    EXPECT_TRUE(m.inRowSpace({0, 1}));
    EXPECT_TRUE(m.inRowSpace({0, 2}));  // sum of the two rows
    EXPECT_TRUE(m.inRowSpace({}));      // zero vector
    EXPECT_FALSE(m.inRowSpace({0}));
    EXPECT_FALSE(m.inRowSpace({3}));
}

TEST(Gf2, AppendRowChangesRank)
{
    Gf2Matrix m(0, 4);
    m.appendRow({0, 1});
    EXPECT_EQ(m.rank(), 1u);
    m.appendRow({0, 1}); // duplicate
    EXPECT_EQ(m.rank(), 1u);
    m.appendRow({2});
    EXPECT_EQ(m.rank(), 2u);
}

} // namespace
} // namespace qec
} // namespace hetarch
