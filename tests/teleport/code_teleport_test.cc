/**
 * @file
 * Tests for the code-teleportation module (paper Section 4.3).
 */

#include <gtest/gtest.h>

#include "cells/design_rules.hh"
#include "teleport/code_teleport.hh"

namespace hetarch {
namespace teleport {
namespace {

using namespace units;

CtConfig
fastConfig()
{
    CtConfig cfg;
    cfg.shots = 600;
    cfg.seed = 7;
    return cfg;
}

TEST(ComposeLogical, BasicProperties)
{
    EXPECT_DOUBLE_EQ(composeLogicalErrors({}), 0.0);
    EXPECT_DOUBLE_EQ(composeLogicalErrors({0.1}), 0.1);
    // Two 50% errors stay at 50%.
    EXPECT_DOUBLE_EQ(composeLogicalErrors({0.5, 0.5}), 0.5);
    // Saturates at 1/2 regardless of count.
    EXPECT_LE(composeLogicalErrors({0.4, 0.4, 0.4, 0.4}), 0.5);
    // Small errors approximately add.
    EXPECT_NEAR(composeLogicalErrors({1e-3, 2e-3}), 3e-3, 1e-5);
}

TEST(CodeTeleport, HetBeatsHomForNonPlanarPair)
{
    const auto rm = qec::makeReedMuller15();
    const auto sc3 = qec::makeRotatedSurface(3);
    auto cfg = fastConfig();
    cfg.heterogeneous = true;
    const auto het = prepareCtState(sc3, rm, cfg);
    cfg.heterogeneous = false;
    const auto hom = prepareCtState(sc3, rm, cfg);
    EXPECT_LT(het.errorProbability, hom.errorProbability);
    // Paper: the RM/SC3 homogeneous case is essentially mixed.
    EXPECT_GT(hom.errorProbability, 0.35);
}

TEST(CodeTeleport, HetBeatsHomEvenForPlanarPair)
{
    // Paper: "surprisingly, even for planar codes, heterogeneous
    // systems outperform homogeneous ones".
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto sc4 = qec::makeRotatedSurface(4);
    auto cfg = fastConfig();
    cfg.heterogeneous = true;
    const auto het = prepareCtState(sc3, sc4, cfg);
    cfg.heterogeneous = false;
    const auto hom = prepareCtState(sc3, sc4, cfg);
    EXPECT_LT(het.errorProbability, hom.errorProbability);
}

TEST(CodeTeleport, ErrorDecreasesWithStorageLifetime)
{
    const auto st = qec::makeSteane();
    const auto sc3 = qec::makeRotatedSurface(3);
    auto low = fastConfig();
    low.ts = 1.0 * ms;
    auto high = fastConfig();
    high.ts = 50.0 * ms;
    const auto r_low = prepareCtState(st, sc3, low);
    const auto r_high = prepareCtState(st, sc3, high);
    EXPECT_LT(r_high.errorProbability, r_low.errorProbability);
}

TEST(CodeTeleport, DistillationTargetMetAtPaperRate)
{
    const auto st = qec::makeSteane();
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto res = prepareCtState(st, sc3, fastConfig());
    EXPECT_TRUE(res.epTargetMet);
    EXPECT_NEAR(res.epInfidelity, 0.005, 1e-9);
}

TEST(CodeTeleport, ComponentsAreAllAccounted)
{
    const auto st = qec::makeSteane();
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto res = prepareCtState(st, sc3, fastConfig());
    EXPECT_GT(res.catError, 0.0);
    EXPECT_GT(res.prepErrorA, 0.0);
    EXPECT_GT(res.prepErrorB, 0.0);
    EXPECT_GT(res.transversalError, 0.0);
    EXPECT_LE(res.errorProbability, 0.5);
    // Total at least as large as any single component.
    EXPECT_GE(res.errorProbability + 1e-12, res.catError);
    EXPECT_GE(res.errorProbability + 1e-12, res.prepErrorA);
}

TEST(CodeTeleport, ModuleHierarchyHasFiveSubModules)
{
    const auto mod = buildCodeTeleportModule(50.0 * ms);
    // Distillation + 2 CAT generators + 2 UEC modules.
    EXPECT_EQ(mod.subModules().size(), 5u);
    for (const auto& sub : mod.subModules()) {
        for (const auto& cell : sub.cellList()) {
            EXPECT_TRUE(
                cells::checkDesignRules(cell, cell.readoutCount())
                    .clean())
                << sub.name() << "/" << cell.name();
        }
        for (const auto& subsub : sub.subModules())
            for (const auto& cell : subsub.cellList())
                EXPECT_TRUE(
                    cells::checkDesignRules(cell, cell.readoutCount())
                        .clean());
    }
}

} // namespace
} // namespace teleport
} // namespace hetarch
