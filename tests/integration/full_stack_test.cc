/**
 * @file
 * Integration tests: end-to-end flows crossing every layer of the
 * HetArch stack, at reduced Monte-Carlo scale.  These are the
 * "does the whole paper pipeline hang together" checks.
 */

#include <gtest/gtest.h>

#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "core/units.hh"
#include "devices/device.hh"
#include "distill/module_sim.hh"
#include "dse/burden.hh"
#include "dse/experiments.hh"
#include "dse/sweep.hh"
#include "qec/css_code.hh"
#include "teleport/code_teleport.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace {

using namespace units;

TEST(FullStack, DeviceToModuleHierarchy)
{
    // Device -> cell -> module chain with DRC at each level, as the
    // paper's Fig. 2 prescribes.
    const auto storage = devices::storageWithCoherence(12.5 * ms, 3);
    const auto compute = devices::fixedFrequencyTransmon();
    storage.validate();
    compute.validate();

    const auto reg = cells::makeRegister(storage, compute);
    ASSERT_TRUE(cells::checkDesignRules(reg, 0).clean());

    const auto ch = cells::characterizeRegister(reg);
    EXPECT_GT(ch.op("load").errorRate, 0.0);

    const auto mod = distill::buildDistillationModule(12.5 * ms);
    EXPECT_EQ(mod.subModules().size(), 3u);
    EXPECT_GT(dse::estimateBurden(mod).reductionFactor(), 1e4);
}

TEST(FullStack, DistillationFeedsTeleportation)
{
    // The CT module consumes the distillation module's output quality;
    // degrading the EP link must degrade the CT state.
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto st = qec::makeSteane();

    teleport::CtConfig good;
    good.shots = 400;
    good.seed = 3;
    teleport::CtConfig bad = good;
    bad.epRate = 20.0 * kHz; // starves the distiller
    bad.epInfidelity = 0.10;

    const auto r_good = teleport::prepareCtState(sc3, st, good);
    const auto r_bad = teleport::prepareCtState(sc3, st, bad);
    EXPECT_TRUE(r_good.epTargetMet);
    EXPECT_GE(r_bad.epInfidelity, r_good.epInfidelity);
    EXPECT_GE(r_bad.errorProbability, r_good.errorProbability);
}

TEST(FullStack, SweepEngineDrivesUecStudy)
{
    // The DSE engine reproduces the Fig. 9 trend for one code.
    dse::Sweep sweep;
    sweep.parameter("ts_ms", {0.5, 50.0});
    const auto code = qec::makeSteane();
    const auto results =
        sweep.run([&](const dse::DesignPoint& p) -> dse::Metrics {
            const double err = uec::uecLogicalErrorPerRound(
                code, p.at("ts_ms") * ms, 2, 1500, 17);
            return {{"logical_error", err}};
        });
    const auto best = dse::Sweep::argmin(results, "logical_error");
    EXPECT_DOUBLE_EQ(best.at("ts_ms"), 50.0);
}

TEST(FullStack, QuickExperimentRunnersProduceAllArtifacts)
{
    dse::RunScale quick;
    quick.shotScale = 0.03;
    EXPECT_GT(dse::table1Devices().rows(), 0u);
    EXPECT_GT(dse::table2Cells().rows(), 0u);
    EXPECT_GT(dse::fig3DistillationTrace(quick).rows(), 0u);
    EXPECT_GT(dse::fig6SurfaceAlpha(quick).rows(), 0u);
}

TEST(FullStack, HeadlineOrderingHolds)
{
    // The paper's abstract in one test: heterogeneity helps
    // distillation, (non-planar) error correction, and teleportation.
    // Distillation at a starved link rate:
    distill::DistillConfig het_cfg;
    het_cfg.ts = 12.5 * ms;
    het_cfg.epRate = 200.0 * kHz;
    het_cfg.epInfidelity = 0.03;
    het_cfg.seed = 21;
    auto hom_cfg = het_cfg;
    hom_cfg.heterogeneous = false;
    hom_cfg.ts = hom_cfg.tc;
    const auto d_het = distill::simulateDistillation(het_cfg, 3.0 * ms);
    const auto d_hom = distill::simulateDistillation(hom_cfg, 3.0 * ms);
    EXPECT_GT(d_het.distilled, d_hom.distilled);

    // Error correction for a non-planar code:
    const auto rm = qec::makeReedMuller15();
    const double e_het =
        uec::uecLogicalErrorPerRound(rm, 50.0 * ms, 2, 1500, 23);
    const double e_hom =
        uec::homogeneousLogicalErrorPerRound(rm, 2, 1500, 25);
    EXPECT_LT(e_het, e_hom);

    // Teleportation:
    teleport::CtConfig ct;
    ct.shots = 400;
    ct.seed = 27;
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto t_het = teleport::prepareCtState(sc3, rm, ct);
    ct.heterogeneous = false;
    const auto t_hom = teleport::prepareCtState(sc3, rm, ct);
    EXPECT_LT(t_het.errorProbability, t_hom.errorProbability);
}

} // namespace
} // namespace hetarch
