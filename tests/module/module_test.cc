/**
 * @file
 * Tests for the module layer and phenomenological composition.
 */

#include <gtest/gtest.h>

#include "cells/standard_cells.hh"
#include "devices/device.hh"
#include "module/module.hh"

namespace hetarch {
namespace module {
namespace {

TEST(Compose, ErrorComposition)
{
    EXPECT_DOUBLE_EQ(composeErrors({}), 0.0);
    EXPECT_DOUBLE_EQ(composeErrors({0.1}), 0.1);
    EXPECT_NEAR(composeErrors({0.1, 0.1}), 0.19, 1e-12);
    EXPECT_DOUBLE_EQ(composeErrors({1.0, 0.5}), 1.0);
}

TEST(Compose, SmallErrorsApproximatelyAdd)
{
    const double composed = composeErrors({1e-4, 2e-4, 3e-4});
    EXPECT_NEAR(composed, 6e-4, 1e-6);
}

TEST(Compose, Durations)
{
    EXPECT_DOUBLE_EQ(serialDuration({100.0, 200.0, 50.0}), 350.0);
    EXPECT_DOUBLE_EQ(parallelDuration({100.0, 200.0, 50.0}), 200.0);
    EXPECT_DOUBLE_EQ(parallelDuration({}), 0.0);
}

TEST(Module, AggregatesResources)
{
    Module m("distillation");
    m.addCell(cells::makeRegister(devices::multimodeResonator3D(),
                                  devices::fixedFrequencyTransmon()));
    m.addCell(cells::makeParCheck(devices::fixedFrequencyTransmon()));

    Module sub("output-memory");
    sub.addCell(cells::makeRegister(devices::multimodeResonator3D(),
                                    devices::fixedFrequencyTransmon()));
    m.addSubModule(sub);

    EXPECT_GT(m.footprintArea(), 0.0);
    EXPECT_GT(m.controlLines(), 0);
    // 2 registers (11 qubits each) + parcheck (2 qubits).
    EXPECT_EQ(m.qubitCapacity(), 24);
}

TEST(Module, OpTable)
{
    Module m("test");
    m.addOp({"distill", 1000.0, 0.01});
    EXPECT_DOUBLE_EQ(m.op("distill").duration, 1000.0);
    EXPECT_DEATH(m.op("missing"), "no module op");
}

} // namespace
} // namespace module
} // namespace hetarch
