/**
 * @file
 * Tests for the fabrication-variability (p-cell) device model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cells/characterize.hh"
#include "cells/standard_cells.hh"
#include "core/stats.hh"
#include "devices/device.hh"

namespace hetarch {
namespace devices {
namespace {

TEST(Variability, ZeroSigmaIsIdentity)
{
    Rng rng(1);
    const auto nominal = fixedFrequencyTransmon();
    const auto sampled = perturbedDevice(nominal, 0.0, rng);
    EXPECT_DOUBLE_EQ(sampled.t1, nominal.t1);
    EXPECT_DOUBLE_EQ(sampled.t2, nominal.t2);
    EXPECT_DOUBLE_EQ(sampled.gateError, nominal.gateError);
}

TEST(Variability, SamplesStayPhysical)
{
    Rng rng(7);
    const auto nominal = fixedFrequencyTransmon();
    for (int i = 0; i < 200; ++i) {
        const auto d = perturbedDevice(nominal, 0.3, rng);
        d.validate(); // enforces T2 <= 2*T1, positive times
    }
}

TEST(Variability, MedianNearNominal)
{
    Rng rng(11);
    const auto nominal = fixedFrequencyTransmon();
    RunningStats log_t1;
    for (int i = 0; i < 2000; ++i) {
        const auto d = perturbedDevice(nominal, 0.2, rng);
        log_t1.add(std::log(d.t1 / nominal.t1));
    }
    // Log-normal with median at the nominal: mean of logs ~ 0.
    EXPECT_NEAR(log_t1.mean(), 0.0, 0.02);
    EXPECT_NEAR(log_t1.stddev(), 0.2, 0.02);
}

TEST(Variability, SpreadWidensCellCharacterization)
{
    // Sampled registers show spread in their load error; the spread
    // grows with sigma (the p-cell effect on standard cells).
    const auto storage = multimodeResonator3D();
    const auto compute = fixedFrequencyTransmon();

    auto spread = [&](double sigma, std::uint64_t seed) {
        Rng rng(seed);
        RunningStats err;
        for (int i = 0; i < 30; ++i) {
            const auto cell = cells::makeRegister(
                perturbedDevice(storage, sigma, rng),
                perturbedDevice(compute, sigma, rng));
            err.add(cells::characterizeRegister(cell)
                        .op("load")
                        .errorRate);
        }
        return err.stddev();
    };
    EXPECT_GT(spread(0.4, 3), spread(0.05, 4));
}

} // namespace
} // namespace devices
} // namespace hetarch
