/**
 * @file
 * Tests for the device catalog (paper Table 1).
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "devices/device.hh"

namespace hetarch {
namespace devices {
namespace {

using namespace units;

TEST(Devices, CatalogHasFiveEntries)
{
    const auto catalog = table1Catalog();
    ASSERT_EQ(catalog.size(), 5u);
    for (const auto& d : catalog)
        d.validate();
}

TEST(Devices, TransmonMatchesTable1)
{
    const auto d = fixedFrequencyTransmon();
    EXPECT_EQ(d.role, DeviceRole::Compute);
    EXPECT_DOUBLE_EQ(d.t1, 300.0 * us);
    EXPECT_DOUBLE_EQ(d.t2, 550.0 * us);
    EXPECT_DOUBLE_EQ(d.readoutTime, 1.0 * us);
    EXPECT_DOUBLE_EQ(d.gateError, 1e-3);
    EXPECT_EQ(d.connectivity, 4);
    EXPECT_EQ(d.control.total(), 2);
    EXPECT_TRUE(d.hasReadout);
}

TEST(Devices, FluxoniumHasFluxLine)
{
    const auto d = fluxTunableQubit();
    EXPECT_EQ(d.control.fluxLines, 1);
    EXPECT_EQ(d.control.total(), 3);
    EXPECT_DOUBLE_EQ(d.t1, 800.0 * us);
}

TEST(Devices, StorageDevicesHaveSingleConnection)
{
    for (const auto& d : {quantumMemory3D(), multimodeResonator3D(),
                          onChipMultimodeResonator()}) {
        EXPECT_EQ(d.role, DeviceRole::Storage);
        EXPECT_EQ(d.connectivity, 1);
        EXPECT_FALSE(d.hasReadout);
    }
}

TEST(Devices, MultimodeResonatorCapacity)
{
    EXPECT_EQ(multimodeResonator3D().modes, 10);
    EXPECT_DOUBLE_EQ(multimodeResonator3D().t1, 2.0 * ms);
    EXPECT_DOUBLE_EQ(multimodeResonator3D().gateTime2q, 400.0);
}

TEST(Devices, StorageCoherenceFactory)
{
    const auto d = storageWithCoherence(12.5 * ms, 3);
    d.validate();
    EXPECT_DOUBLE_EQ(d.t1, 12.5 * ms);
    EXPECT_DOUBLE_EQ(d.t2, 12.5 * ms);
    EXPECT_EQ(d.modes, 3);
}

TEST(Devices, ComputeCoherenceFactory)
{
    const auto d = computeWithCoherence(0.5 * ms);
    d.validate();
    EXPECT_DOUBLE_EQ(d.t1, 0.5 * ms);
    EXPECT_EQ(d.role, DeviceRole::Compute);
}

TEST(Devices, UnphysicalCoherenceDies)
{
    auto d = fixedFrequencyTransmon();
    d.t2 = 3.0 * d.t1;
    EXPECT_DEATH(d.validate(), "unphysical");
}

TEST(Devices, CoherenceFactoryNamesAreCleanFixedPrecision)
{
    // The swept-variant labels feed table/figure legends and metrics
    // keys; pin that they print as clean millisecond values instead of
    // raw nanosecond floats ("storage-ts-500000.000000ms" regression).
    EXPECT_EQ(storageWithCoherence(0.5 * ms).name, "storage-ts-0.5ms");
    EXPECT_EQ(storageWithCoherence(12.5 * ms).name,
              "storage-ts-12.5ms");
    EXPECT_EQ(storageWithCoherence(25.0 * ms).name, "storage-ts-25ms");
    EXPECT_EQ(storageWithCoherence(50.0 * ms).name, "storage-ts-50ms");
    EXPECT_EQ(computeWithCoherence(0.1 * ms).name, "compute-tc-0.1ms");
    EXPECT_EQ(computeWithCoherence(2.0 * ms).name, "compute-tc-2ms");
}

TEST(Devices, ControlOverheadAdvantage)
{
    // A 10-mode resonator stores 10 qubits on 0 extra control lines
    // via its compute device; 10 transmons need 10 charge lines.
    const auto storage = multimodeResonator3D();
    const auto transmon = fixedFrequencyTransmon();
    EXPECT_LT(storage.control.total() + transmon.control.total(),
              10 * transmon.control.total());
}

} // namespace
} // namespace devices
} // namespace hetarch
