/**
 * @file
 * Tests for standard cells and design rules (paper Table 2, Section 3.2).
 */

#include <gtest/gtest.h>

#include "cells/cell.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "devices/device.hh"

namespace hetarch {
namespace cells {
namespace {

devices::DeviceModel
storage()
{
    return devices::multimodeResonator3D();
}

devices::DeviceModel
compute()
{
    return devices::fixedFrequencyTransmon();
}

TEST(Cells, RegisterStructure)
{
    const auto cell = makeRegister(storage(), compute());
    EXPECT_EQ(cell.deviceList().size(), 2u);
    EXPECT_EQ(cell.couplings().size(), 1u);
    EXPECT_EQ(cell.readoutCount(), 0u);
    EXPECT_EQ(cell.qubitCapacity(), 11); // 10 modes + 1 compute
    EXPECT_TRUE(checkDesignRules(cell, 0).clean());
}

TEST(Cells, ParCheckStructure)
{
    const auto cell = makeParCheck(compute());
    EXPECT_EQ(cell.deviceList().size(), 2u);
    EXPECT_EQ(cell.readoutCount(), 1u);
    EXPECT_TRUE(checkDesignRules(cell, 1).clean());
}

TEST(Cells, SeqOpStructure)
{
    const auto cell = makeSeqOp(storage(), compute());
    EXPECT_EQ(cell.deviceList().size(), 5u);
    EXPECT_EQ(cell.subCells().size(), 2u);
    EXPECT_EQ(cell.readoutCount(), 1u);
    // Triangle plus two register couplings.
    EXPECT_EQ(cell.couplings().size(), 5u);
    EXPECT_TRUE(checkDesignRules(cell, 1).clean());
}

TEST(Cells, UscStructure)
{
    const auto cell = makeUsc(storage(), compute());
    EXPECT_EQ(cell.deviceList().size(), 7u);
    EXPECT_EQ(cell.subCells().size(), 3u);
    EXPECT_EQ(cell.readoutCount(), 1u);
    EXPECT_TRUE(checkDesignRules(cell, 1).clean());
    // Capacity: 3 x (10 storage + 1 compute) + ancilla = 34.
    EXPECT_EQ(cell.qubitCapacity(), 34);
}

TEST(Cells, UscExtChains)
{
    const auto cell = makeUscExt(storage(), compute());
    EXPECT_TRUE(checkDesignRules(cell, 1).clean());
    // Central ancilla keeps two external ports for chaining.
    const auto& devs = cell.deviceList();
    bool found = false;
    for (std::size_t i = 0; i < devs.size(); ++i) {
        if (devs[i].readout) {
            EXPECT_EQ(devs[i].externalPorts, 2);
            EXPECT_LE(cell.totalDegree(i), 4);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, Dr1CatchesOverConnectedCompute)
{
    StandardCell cell("bad");
    const auto hub = cell.addDevice({compute(), "hub", false, 0});
    for (int i = 0; i < 5; ++i) {
        const auto d = cell.addDevice(
            {compute(), "leaf" + std::to_string(i), false, 0});
        cell.addCoupling(hub, d);
    }
    const auto report = checkDesignRules(cell, 0);
    EXPECT_FALSE(report.clean());
    bool has_dr1 = false;
    for (const auto& v : report.violations)
        if (v.rule == 1)
            has_dr1 = true;
    EXPECT_TRUE(has_dr1);
}

TEST(DesignRules, Dr2CatchesMultiplyConnectedStorage)
{
    StandardCell cell("bad");
    const auto s = cell.addDevice({storage(), "storage", false, 0});
    const auto c1 = cell.addDevice({compute(), "c1", false, 0});
    const auto c2 = cell.addDevice({compute(), "c2", false, 0});
    cell.addCoupling(s, c1);
    cell.addCoupling(s, c2);
    const auto report = checkDesignRules(cell, 0);
    bool has_dr2 = false;
    for (const auto& v : report.violations)
        if (v.rule == 2)
            has_dr2 = true;
    EXPECT_TRUE(has_dr2);
}

TEST(DesignRules, Dr3CatchesDisconnectedCell)
{
    StandardCell cell("bad");
    cell.addDevice({compute(), "a", false, 0});
    cell.addDevice({compute(), "b", false, 0});
    const auto report = checkDesignRules(cell, 0);
    bool has_dr3 = false;
    for (const auto& v : report.violations)
        if (v.rule == 3)
            has_dr3 = true;
    EXPECT_TRUE(has_dr3);
}

TEST(DesignRules, Dr4CatchesExcessReadout)
{
    StandardCell cell("bad");
    const auto a = cell.addDevice({compute(), "a", true, 0});
    const auto b = cell.addDevice({compute(), "b", true, 0});
    cell.addCoupling(a, b);
    const auto report = checkDesignRules(cell, 1);
    bool has_dr4 = false;
    for (const auto& v : report.violations)
        if (v.rule == 4)
            has_dr4 = true;
    EXPECT_TRUE(has_dr4);
}

TEST(Cells, Table2CellsAllClean)
{
    for (const auto& cell : table2Cells()) {
        const std::size_t readouts = cell.readoutCount();
        EXPECT_TRUE(checkDesignRules(cell, readouts).clean())
            << cell.name();
    }
}

TEST(Cells, DuplicateCouplingDies)
{
    StandardCell cell("dup");
    const auto a = cell.addDevice({compute(), "a", false, 0});
    const auto b = cell.addDevice({compute(), "b", false, 0});
    cell.addCoupling(a, b);
    EXPECT_DEATH(cell.addCoupling(b, a), "duplicate");
}

} // namespace
} // namespace cells
} // namespace hetarch
