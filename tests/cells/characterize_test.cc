/**
 * @file
 * Tests for standard-cell characterization via density-matrix
 * simulation.
 */

#include <gtest/gtest.h>

#include "cells/characterize.hh"
#include "cells/standard_cells.hh"
#include "core/units.hh"
#include "devices/device.hh"

namespace hetarch {
namespace cells {
namespace {

using namespace units;

TEST(Characterize, RegisterLoadErrorSmallButNonzero)
{
    const auto cell = makeRegister(devices::multimodeResonator3D(),
                                   devices::fixedFrequencyTransmon());
    const auto ch = characterizeRegister(cell);
    const auto& load = ch.op("load");
    EXPECT_DOUBLE_EQ(load.duration, 400.0);
    EXPECT_GT(load.errorRate, 0.0);
    EXPECT_LT(load.errorRate, 1e-2);
}

TEST(Characterize, RegisterIdleScalesWithTs)
{
    const auto fast = characterizeRegister(
        makeRegister(devices::storageWithCoherence(0.5 * ms),
                     devices::fixedFrequencyTransmon()));
    const auto slow = characterizeRegister(
        makeRegister(devices::storageWithCoherence(50.0 * ms),
                     devices::fixedFrequencyTransmon()));
    EXPECT_GT(fast.op("idle-1us").errorRate,
              slow.op("idle-1us").errorRate);
    // 100x longer coherence -> ~100x lower idle error.
    const double ratio = fast.op("idle-1us").errorRate /
                         slow.op("idle-1us").errorRate;
    EXPECT_NEAR(ratio, 100.0, 15.0);
}

TEST(Characterize, RegisterRoundtripComposesLoadUnload)
{
    const auto ch = characterizeRegister(
        makeRegister(devices::multimodeResonator3D(),
                     devices::fixedFrequencyTransmon()));
    const double composed = 1.0 -
        (1.0 - ch.op("load").errorRate) *
        (1.0 - ch.op("unload").errorRate);
    EXPECT_NEAR(ch.op("roundtrip").errorRate, composed, 1e-12);
}

TEST(Characterize, ParCheckTimesAndErrors)
{
    const auto cell = makeParCheck(devices::fixedFrequencyTransmon());
    const auto ch = characterizeParCheck(cell);
    EXPECT_DOUBLE_EQ(ch.op("cnot").duration, 100.0);
    EXPECT_DOUBLE_EQ(ch.op("parity-check").duration, 100.0 + 1000.0);
    EXPECT_GT(ch.op("parity-check").errorRate, ch.op("cnot").errorRate);
}

TEST(Characterize, ExtraGateErrorRaisesCnotError)
{
    const auto cell = makeParCheck(devices::fixedFrequencyTransmon());
    CharacterizeOptions noisy;
    noisy.extraGateError2q = 1e-2;
    const auto base = characterizeParCheck(cell);
    const auto worse = characterizeParCheck(cell, noisy);
    EXPECT_GT(worse.op("cnot").errorRate, base.op("cnot").errorRate);
    // Depolarizing(p) has average gate error 1 - ((4*(1-p)+... ~ 0.8 p.
    EXPECT_NEAR(worse.op("cnot").errorRate, 0.8 * 1e-2, 2e-3);
}

TEST(Characterize, SeqOpStoredCnot)
{
    const auto cell = makeSeqOp(devices::multimodeResonator3D(),
                                devices::fixedFrequencyTransmon());
    const auto ch = characterizeSeqOp(cell);
    // 2 swaps (400 ns each) + CNOT (100 ns).
    EXPECT_DOUBLE_EQ(ch.op("stored-cnot").duration, 900.0);
    EXPECT_GT(ch.op("verified-cnot").duration,
              ch.op("stored-cnot").duration);
    EXPECT_GT(ch.op("verified-cnot").errorRate,
              ch.op("stored-cnot").errorRate);
}

TEST(Characterize, UscCheckScalesWithWeight)
{
    const auto cell = makeUsc(devices::multimodeResonator3D(),
                              devices::fixedFrequencyTransmon());
    const auto ch = characterizeUsc(cell);
    const auto& w2 = ch.op("stabilizer-check-w2");
    const auto& w4 = ch.op("stabilizer-check-w4");
    const auto& w6 = ch.op("stabilizer-check-w6");
    EXPECT_LT(w2.duration, w4.duration);
    EXPECT_LT(w4.duration, w6.duration);
    EXPECT_LT(w2.errorRate, w4.errorRate);
    EXPECT_LT(w4.errorRate, w6.errorRate);
}

TEST(Characterize, BetterStorageImprovesUscChecks)
{
    const auto transmon = devices::fixedFrequencyTransmon();
    const auto bad = characterizeUsc(
        makeUsc(devices::storageWithCoherence(0.5 * ms), transmon));
    const auto good = characterizeUsc(
        makeUsc(devices::storageWithCoherence(50.0 * ms), transmon));
    EXPECT_GT(bad.op("stabilizer-check-w4").errorRate,
              good.op("stabilizer-check-w4").errorRate);
}

TEST(Characterize, MissingOpIsFatal)
{
    const auto ch = characterizeParCheck(
        makeParCheck(devices::fixedFrequencyTransmon()));
    EXPECT_DEATH(ch.op("no-such-op"), "no characterized op");
}

} // namespace
} // namespace cells
} // namespace hetarch
