/**
 * @file
 * Smoke tests for the paper-artifact experiment runners at reduced
 * scale: row shapes, and the headline qualitative results.
 */

#include <gtest/gtest.h>

#include "dse/experiments.hh"

namespace hetarch {
namespace dse {
namespace {

RunScale
quick()
{
    RunScale s;
    s.shotScale = 0.05;
    return s;
}

TEST(Experiments, Table1HasFiveDevices)
{
    EXPECT_EQ(table1Devices().rows(), 5u);
}

TEST(Experiments, Table2CoversFourCells)
{
    const auto t = table2Cells();
    EXPECT_GE(t.rows(), 4u);
}

TEST(Experiments, Fig3TraceCovers100us)
{
    const auto t = fig3DistillationTrace(quick());
    EXPECT_EQ(t.rows(), 51u); // 0..100 us in 2 us steps
}

TEST(Experiments, Fig4SweepShape)
{
    const auto t = fig4DistillationRate(quick());
    // 7 rates x (4 het Ts + 1 hom).
    EXPECT_EQ(t.rows(), 35u);
}

TEST(Experiments, Fig9Shape)
{
    const auto t = fig9UecTsSweep(quick());
    EXPECT_EQ(t.rows(), 5u * 7u);
}

TEST(Experiments, Table3Shape)
{
    const auto t = table3UecComparison(quick());
    EXPECT_EQ(t.rows(), 5u);
}

TEST(Experiments, Table4CoversAllPairs)
{
    const auto t = table4CtMatrix(quick());
    EXPECT_EQ(t.rows(), 10u);
}

} // namespace
} // namespace dse
} // namespace hetarch
