/**
 * @file
 * Tests for the DSE sweep engine and burden estimator.
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "distill/module_sim.hh"
#include "dse/burden.hh"
#include "dse/sweep.hh"
#include "teleport/code_teleport.hh"

namespace hetarch {
namespace dse {
namespace {

TEST(Sweep, GridSizeAndOrder)
{
    Sweep s;
    s.parameter("a", {1, 2, 3}).parameter("b", {10, 20});
    EXPECT_EQ(s.size(), 6u);

    std::vector<std::pair<double, double>> visited;
    s.run([&](const DesignPoint& p) -> Metrics {
        visited.push_back({p.at("a"), p.at("b")});
        return {{"sum", p.at("a") + p.at("b")}};
    });
    ASSERT_EQ(visited.size(), 6u);
    EXPECT_EQ(visited.front(), (std::pair<double, double>{1, 10}));
    EXPECT_EQ(visited.back(), (std::pair<double, double>{3, 20}));
}

TEST(Sweep, ArgminFindsOptimum)
{
    Sweep s;
    s.parameter("x", {-2, -1, 0, 1, 2});
    const auto results = s.run([](const DesignPoint& p) -> Metrics {
        const double x = p.at("x");
        return {{"cost", (x - 1) * (x - 1)}};
    });
    const auto best = Sweep::argmin(results, "cost");
    EXPECT_DOUBLE_EQ(best.at("x"), 1.0);
}

TEST(Sweep, TabulateShapes)
{
    Sweep s;
    s.parameter("p", {0.1, 0.2});
    const auto results = s.run([](const DesignPoint& p) -> Metrics {
        return {{"twice", 2 * p.at("p")}};
    });
    const auto table = Sweep::tabulate(results);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Sweep, DuplicateParameterDies)
{
    Sweep s;
    s.parameter("a", {1});
    EXPECT_DEATH(s.parameter("a", {2}), "duplicate");
}

TEST(Sweep, MissingMetricDies)
{
    Sweep s;
    s.parameter("a", {1});
    const auto results = s.run(
        [](const DesignPoint&) -> Metrics { return {{"m", 1.0}}; });
    EXPECT_DEATH(Sweep::argmin(results, "nope"), "not found");
}

TEST(Burden, HierarchicalReductionIsLarge)
{
    const auto mod =
        distill::buildDistillationModule(12.5 * units::ms);
    const auto est = estimateBurden(mod);
    EXPECT_GT(est.totalQubits, est.largestCellQubits);
    // The paper's headline: >= 10^4 reduction in simulation burden.
    EXPECT_GE(est.reductionFactor(), 1e4);
}

TEST(Burden, CtModuleEvenLarger)
{
    const auto distill_mod =
        distill::buildDistillationModule(12.5 * units::ms);
    const auto ct = teleport::buildCodeTeleportModule(50.0 * units::ms);
    EXPECT_GT(estimateBurden(ct).reductionFactor(),
              estimateBurden(distill_mod).reductionFactor());
}

} // namespace
} // namespace dse
} // namespace hetarch
