/**
 * hetarch-job-v1 wire protocol: writer/parser round trips for every
 * request and response shape, and a table-driven malformed-line
 * corpus proving the strict parser rejects (with a diagnostic, not a
 * process exit) everything the writer could never have produced.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/wire.hh"

namespace {

using namespace hetarch;
using namespace hetarch::service;

Request
reparseRequest(const Request& request)
{
    const std::string line = writeRequestLine(request);
    Request out;
    std::string error;
    EXPECT_TRUE(parseRequestLine(line, out, error)) << line << "\n"
                                                    << error;
    return out;
}

Response
reparseResponse(const Response& response)
{
    const std::string line = writeResponseLine(response);
    Response out;
    std::string error;
    EXPECT_TRUE(parseResponseLine(line, out, error)) << line << "\n"
                                                     << error;
    return out;
}

TEST(Wire, SubmitRequestRoundTrips)
{
    Request request;
    request.type = RequestType::Submit;
    request.job.name = "quote\" slash\\ tab\t newline\n";
    request.job.kind = JobKind::Stream;
    request.job.priority = -3;
    request.job.seed = 0xdeadbeefcafe;
    request.job.add("distance", ParamValue::num(5));
    request.job.add("p2", ParamValue::num(0.0123456789012345678));
    request.job.add("decoder", ParamValue::str("union-find"));

    const Request out = reparseRequest(request);
    EXPECT_EQ(out.type, RequestType::Submit);
    EXPECT_TRUE(out.job == request.job);
}

TEST(Wire, ExtremePrioritiesRoundTrip)
{
    for (std::int64_t priority :
         {INT64_MIN, INT64_MIN + 1, std::int64_t{0}, INT64_MAX}) {
        Request request;
        request.type = RequestType::Submit;
        request.job.name = "p";
        request.job.priority = priority;
        EXPECT_EQ(reparseRequest(request).job.priority, priority);
    }
}

TEST(Wire, IdRequestsRoundTrip)
{
    for (RequestType type : {RequestType::Status, RequestType::Cancel}) {
        Request request;
        request.type = type;
        request.id = 42;
        const Request out = reparseRequest(request);
        EXPECT_EQ(out.type, type);
        EXPECT_EQ(out.id, 42u);
    }
}

TEST(Wire, BareRequestsRoundTrip)
{
    for (RequestType type : {RequestType::Wait, RequestType::Shutdown}) {
        Request request;
        request.type = type;
        EXPECT_EQ(reparseRequest(request).type, type);
    }
}

TEST(Wire, StatusResponseRoundTripsWithResultKinds)
{
    Response response;
    response.type = ResponseType::Status;
    response.id = 7;
    response.name = "mem";
    response.kind = JobKind::Memory;
    response.state = JobState::Done;
    response.hasResult = true;
    response.result.addU64("failures", 123);
    response.result.addReal("per_shot", 0.061499999999999999);
    response.result.addReal("whole", 3.0);
    response.result.addText("note", "unbounded");
    response.hasMetrics = true;
    response.metrics.emplace_back("qec.memory.shots", 2000);

    const Response out = reparseResponse(response);
    EXPECT_EQ(out.state, JobState::Done);
    ASSERT_TRUE(out.hasResult);
    // Kind classification survives the trip: 123 stays a U64, 3.0
    // stays a Real (the ".0" marker), bit patterns intact.
    EXPECT_TRUE(out.result == response.result);
    ASSERT_TRUE(out.hasMetrics);
    EXPECT_EQ(out.metrics, response.metrics);
}

TEST(Wire, EveryResponseShapeRoundTrips)
{
    Response submitted;
    submitted.type = ResponseType::Submitted;
    submitted.id = 1;
    submitted.name = "a";
    submitted.state = JobState::Queued;
    EXPECT_EQ(reparseResponse(submitted).type, ResponseType::Submitted);

    Response rejected;
    rejected.type = ResponseType::Rejected;
    rejected.name = "b";
    rejected.message = "queue full (capacity 3)";
    const Response rejected_out = reparseResponse(rejected);
    EXPECT_EQ(rejected_out.type, ResponseType::Rejected);
    EXPECT_EQ(rejected_out.message, rejected.message);

    Response cancelled;
    cancelled.type = ResponseType::Cancelled;
    cancelled.id = 2;
    cancelled.ok = true;
    EXPECT_TRUE(reparseResponse(cancelled).ok);

    Response idle;
    idle.type = ResponseType::Idle;
    idle.jobs = 9;
    EXPECT_EQ(reparseResponse(idle).jobs, 9u);

    Response error;
    error.type = ResponseType::Error;
    error.message = "bad request: offset 0: expected '{'";
    EXPECT_EQ(reparseResponse(error).message, error.message);

    Response bye;
    bye.type = ResponseType::Bye;
    bye.submitted = 3;
    bye.completed = 2;
    bye.failed = 0;
    bye.cancelled = 1;
    bye.rejected = 1;
    const Response bye_out = reparseResponse(bye);
    EXPECT_EQ(bye_out.completed, 2u);
    EXPECT_EQ(bye_out.rejected, 1u);
}

TEST(Wire, StatusWithoutResultStaysNull)
{
    Response response;
    response.type = ResponseType::Status;
    response.id = 4;
    response.name = "pending";
    response.kind = JobKind::Distill;
    response.state = JobState::Running;
    const Response out = reparseResponse(response);
    EXPECT_FALSE(out.hasResult);
    EXPECT_FALSE(out.hasMetrics);
}

// --- the malformed corpus --------------------------------------------

struct BadLine
{
    const char* why;
    const char* line;
};

const BadLine kBadRequests[] = {
    {"empty object", "{}"},
    {"not json", "submit please"},
    {"truncated mid-string",
     R"({"schema":"hetarch-job-v1","type":"sub)"},
    {"truncated after key",
     R"({"schema":"hetarch-job-v1","type":"status","id":)"},
    {"wrong schema", R"({"schema":"hetarch-obs-v1","type":"wait"})"},
    {"unknown type", R"({"schema":"hetarch-job-v1","type":"resume"})"},
    {"unknown field after type",
     R"({"schema":"hetarch-job-v1","type":"status","job":1})"},
    {"missing id", R"({"schema":"hetarch-job-v1","type":"cancel"})"},
    {"zero id", R"({"schema":"hetarch-job-v1","type":"cancel","id":0})"},
    {"non-numeric id",
     R"({"schema":"hetarch-job-v1","type":"cancel","id":"7"})"},
    {"integer overflow",
     R"({"schema":"hetarch-job-v1","type":"cancel","id":99999999999999999999999})"},
    {"trailing garbage",
     R"({"schema":"hetarch-job-v1","type":"wait"} extra)"},
    {"second document",
     R"({"schema":"hetarch-job-v1","type":"wait"}{"schema":"hetarch-job-v1","type":"wait"})"},
    {"unknown kind",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"x","kind":"teleport","priority":0,"seed":1,"params":{}})"},
    {"duplicate param key",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"x","kind":"memory","priority":0,"seed":1,"params":{"distance":3.0,"distance":5.0}})"},
    {"bad escape in name",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"\x","kind":"memory","priority":0,"seed":1,"params":{}})"},
    {"reordered fields",
     R"({"type":"wait","schema":"hetarch-job-v1"})"},
    {"missing params object",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"x","kind":"memory","priority":0,"seed":1})"},
    {"negative seed",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"x","kind":"memory","priority":0,"seed":-1,"params":{}})"},
    {"malformed param number",
     R"({"schema":"hetarch-job-v1","type":"submit","name":"x","kind":"memory","priority":0,"seed":1,"params":{"p":1.2.3}})"},
};

TEST(Wire, MalformedRequestCorpusIsRejectedWithDiagnostics)
{
    for (const BadLine& bad : kBadRequests) {
        Request out;
        std::string error;
        EXPECT_FALSE(parseRequestLine(bad.line, out, error))
            << "accepted " << bad.why << ": " << bad.line;
        EXPECT_FALSE(error.empty()) << bad.why;
        EXPECT_NE(error.find("offset"), std::string::npos) << error;
    }
}

const BadLine kBadResponses[] = {
    {"empty line", ""},
    {"bad state",
     R"({"schema":"hetarch-job-v1","type":"submitted","id":1,"name":"a","state":"paused"})"},
    {"unknown response type",
     R"({"schema":"hetarch-job-v1","type":"done","id":1})"},
    {"duplicate result field",
     R"({"schema":"hetarch-job-v1","type":"status","id":1,"name":"a","kind":"memory","state":"done","error":"","result":{"shots":5,"shots":5},"metrics":null})"},
    {"duplicate metric",
     R"({"schema":"hetarch-job-v1","type":"status","id":1,"name":"a","kind":"memory","state":"done","error":"","result":null,"metrics":{"m":1,"m":2}})"},
    {"bool where number expected",
     R"({"schema":"hetarch-job-v1","type":"idle","jobs":true})"},
    {"truncated bye",
     R"({"schema":"hetarch-job-v1","type":"bye","submitted":3,"completed":2})"},
    {"missing metrics field",
     R"({"schema":"hetarch-job-v1","type":"status","id":1,"name":"a","kind":"memory","state":"done","error":"","result":null})"},
};

TEST(Wire, MalformedResponseCorpusIsRejectedWithDiagnostics)
{
    for (const BadLine& bad : kBadResponses) {
        Response out;
        std::string error;
        EXPECT_FALSE(parseResponseLine(bad.line, out, error))
            << "accepted " << bad.why << ": " << bad.line;
        EXPECT_FALSE(error.empty()) << bad.why;
    }
}

TEST(Wire, MakeStatusResponseMapsTerminalStates)
{
    JobStatus status;
    status.id = 11;
    status.spec.name = "s";
    status.spec.kind = JobKind::Analysis;
    status.state = JobState::Done;
    status.result.addU64("errors", 0);

    const Response done = makeStatusResponse(status);
    EXPECT_TRUE(done.hasResult);

    status.state = JobState::Failed;
    status.error = "boom";
    const Response failed = makeStatusResponse(status);
    EXPECT_FALSE(failed.hasResult);
    EXPECT_EQ(failed.message, "boom");
}

} // namespace
