/**
 * JobQueue: strict priority order with FIFO tie-break, admission
 * capacity, and cancellation-by-removal.
 */

#include <gtest/gtest.h>

#include "service/scheduler.hh"

namespace {

using namespace hetarch::service;

TEST(JobQueue, PriorityDescendingFifoWithinPriority)
{
    JobQueue queue(16);
    ASSERT_TRUE(queue.push(1, 0));
    ASSERT_TRUE(queue.push(2, 5));
    ASSERT_TRUE(queue.push(3, 5));
    ASSERT_TRUE(queue.push(4, 9));
    ASSERT_TRUE(queue.push(5, -2));

    EXPECT_EQ(queue.pop(), 4u); // highest priority
    EXPECT_EQ(queue.pop(), 2u); // 5, submitted before 3
    EXPECT_EQ(queue.pop(), 3u);
    EXPECT_EQ(queue.pop(), 1u);
    EXPECT_EQ(queue.pop(), 5u); // negative priority last
    EXPECT_EQ(queue.pop(), kInvalidJobId);
}

TEST(JobQueue, ExtremePrioritiesDoNotOverflow)
{
    JobQueue queue(4);
    ASSERT_TRUE(queue.push(1, INT64_MIN));
    ASSERT_TRUE(queue.push(2, INT64_MAX));
    ASSERT_TRUE(queue.push(3, 0));
    EXPECT_EQ(queue.pop(), 2u);
    EXPECT_EQ(queue.pop(), 3u);
    EXPECT_EQ(queue.pop(), 1u);
}

TEST(JobQueue, CapacityIsAHardBound)
{
    JobQueue queue(2);
    EXPECT_TRUE(queue.push(1, 0));
    EXPECT_TRUE(queue.push(2, 0));
    EXPECT_FALSE(queue.push(3, 100)); // priority does not bypass admission
    EXPECT_EQ(queue.size(), 2u);

    // Removal frees a slot.
    EXPECT_TRUE(queue.remove(1));
    EXPECT_TRUE(queue.push(3, 100));
    EXPECT_EQ(queue.pop(), 3u);
    EXPECT_EQ(queue.pop(), 2u);
}

TEST(JobQueue, RemoveUnknownIdIsRefused)
{
    JobQueue queue(4);
    ASSERT_TRUE(queue.push(1, 0));
    EXPECT_FALSE(queue.remove(99));
    EXPECT_TRUE(queue.remove(1));
    EXPECT_FALSE(queue.remove(1)); // already gone
    EXPECT_TRUE(queue.empty());
}

TEST(JobQueue, PopBatchTakesSchedulingOrder)
{
    JobQueue queue(8);
    ASSERT_TRUE(queue.push(1, 1));
    ASSERT_TRUE(queue.push(2, 3));
    ASSERT_TRUE(queue.push(3, 2));
    ASSERT_TRUE(queue.push(4, 3));

    const auto batch = queue.popBatch(3);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0], 2u);
    EXPECT_EQ(batch[1], 4u);
    EXPECT_EQ(batch[2], 3u);
    EXPECT_EQ(queue.size(), 1u);

    // A batch larger than the queue drains it without inventing ids.
    const auto rest = queue.popBatch(10);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], 1u);
}

} // namespace
