/**
 * The service determinism contract (the acceptance gate for the job
 * service): a batch of concurrent jobs of every kind — one cancelled
 * mid-queue — produces results bit-identical to sequential direct-API
 * runs of the same specs, at 1, 2, and 8 exec workers, and the
 * service.jobs.* counters are thread-invariant.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "distill/module_sim.hh"
#include "exec/thread_pool.hh"
#include "lint/lint.hh"
#include "obs/obs.hh"
#include "qec/memory_experiment.hh"
#include "qec/noise_model.hh"
#include "qec/stream_experiment.hh"
#include "qec/surface_circuit.hh"
#include "service/job_service.hh"

namespace {

using namespace hetarch;
using namespace hetarch::service;

struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

qec::CircuitNoise
fig6Noise()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1e6;
    noise.ancT1 = noise.ancT2 = 0.1e6;
    return noise;
}

constexpr std::uint64_t kMemorySeed = 41;
constexpr std::uint64_t kStreamSeed = 43;
constexpr std::uint64_t kSweepSeed = 47;
constexpr std::uint64_t kDistillSeed = 53;

std::vector<JobSpec>
batchSpecs()
{
    std::vector<JobSpec> specs;

    JobSpec memory;
    memory.name = "memory";
    memory.kind = JobKind::Memory;
    memory.seed = kMemorySeed;
    memory.add("distance", ParamValue::num(3));
    memory.add("rounds", ParamValue::num(3));
    memory.add("shots", ParamValue::num(400));
    memory.add("p1", ParamValue::num(1e-3));
    memory.add("p2", ParamValue::num(1e-2));
    specs.push_back(memory);

    JobSpec stream;
    stream.name = "stream";
    stream.kind = JobKind::Stream;
    stream.seed = kStreamSeed;
    stream.add("distance", ParamValue::num(3));
    stream.add("rounds", ParamValue::num(6));
    stream.add("shots", ParamValue::num(300));
    stream.add("p1", ParamValue::num(1e-3));
    stream.add("p2", ParamValue::num(1e-2));
    stream.add("window", ParamValue::num(4));
    stream.add("commit", ParamValue::num(2));
    specs.push_back(stream);

    JobSpec sweep;
    sweep.name = "sweep";
    sweep.kind = JobKind::SweepPoint;
    sweep.seed = kSweepSeed;
    sweep.add("distance", ParamValue::num(3));
    sweep.add("rounds", ParamValue::num(3));
    sweep.add("shots", ParamValue::num(300));
    sweep.add("p2", ParamValue::num(8e-3));
    specs.push_back(sweep);

    JobSpec distill;
    distill.name = "distill";
    distill.kind = JobKind::Distill;
    distill.seed = kDistillSeed;
    distill.add("trajectories", ParamValue::num(3));
    distill.add("horizon_us", ParamValue::num(50));
    specs.push_back(distill);

    JobSpec analysis;
    analysis.name = "analysis";
    analysis.kind = JobKind::Analysis;
    analysis.add("builder", ParamValue::str("surface-d3"));
    analysis.add("distance", ParamValue::num(1));
    analysis.add("timing", ParamValue::num(1));
    analysis.add("flow", ParamValue::num(1));
    specs.push_back(analysis);

    // The victim: same shape as the memory job, cancelled while
    // queued, so it must retire without contributing work.
    JobSpec victim = memory;
    victim.name = "victim";
    victim.seed = 59;
    specs.push_back(victim);

    return specs;
}

/** Run the batch through a fresh service; cancel the last job. */
std::vector<JobStatus>
runBatch(std::size_t max_concurrent)
{
    ServiceConfig config;
    config.autoStart = false;
    config.maxConcurrent = max_concurrent;
    JobService jobs(config);

    std::vector<JobId> ids;
    for (const JobSpec& spec : batchSpecs()) {
        const SubmitOutcome outcome = jobs.submit(spec);
        EXPECT_TRUE(outcome.accepted()) << spec.name << ": "
                                        << outcome.error;
        ids.push_back(outcome.id);
    }
    EXPECT_TRUE(jobs.cancel(ids.back()));
    jobs.drain();

    std::vector<JobStatus> statuses;
    for (JobId id : ids) {
        JobStatus status;
        EXPECT_TRUE(jobs.status(id, status));
        statuses.push_back(status);
    }
    return statuses;
}

struct CounterSnapshot
{
    std::uint64_t submitted, rejected, completed, failed, cancelled;

    static CounterSnapshot now()
    {
        return {obs::counter("service.jobs.submitted").load(),
                obs::counter("service.jobs.rejected").load(),
                obs::counter("service.jobs.completed").load(),
                obs::counter("service.jobs.failed").load(),
                obs::counter("service.jobs.cancelled").load()};
    }
};

TEST(ServiceDeterminism, ConcurrentBatchesMatchDirectApisAtAnyWorkerCount)
{
    // Direct-API expectations, computed sequentially first.
    const auto circuit3x3 = qec::surfaceMemoryZ(3, 3, fig6Noise());
    Rng memory_rng(kMemorySeed);
    const auto memory_direct = qec::runMemoryExperiment(
        circuit3x3, 400, 3, qec::DecoderKind::UnionFind, memory_rng);

    const auto circuit3x6 = qec::surfaceMemoryZ(3, 6, fig6Noise());
    qec::StreamConfig stream_config;
    stream_config.windowRounds = 4;
    stream_config.commitRounds = 2;
    Rng stream_rng(kStreamSeed);
    const auto stream_direct = qec::runStreamingMemoryExperiment(
        circuit3x6, 300, 6, qec::DecoderKind::UnionFind, stream_rng,
        stream_config);

    qec::CircuitNoise sweep_noise;
    sweep_noise.p2 = 8e-3;
    const double sweep_direct = qec::surfaceLogicalErrorPerRound(
        3, 3, sweep_noise, 300, kSweepSeed);

    distill::DistillConfig distill_config;
    distill_config.seed = kDistillSeed;
    const auto distill_direct = distill::simulateDistillationEnsemble(
        distill_config, 50 * 1000.0, 3);

    for (unsigned workers : {1u, 2u, 8u}) {
        ThreadCountGuard guard(workers);
        const CounterSnapshot before = CounterSnapshot::now();
        const std::vector<JobStatus> statuses = runBatch(4);
        const CounterSnapshot after = CounterSnapshot::now();
        ASSERT_EQ(statuses.size(), 6u) << workers << " workers";

        const JobStatus& memory = statuses[0];
        EXPECT_EQ(memory.state, JobState::Done);
        EXPECT_EQ(memory.result.find("failures")->u64,
                  memory_direct.failures)
            << workers << " workers";
        EXPECT_EQ(memory.result.find("per_round")->real,
                  memory_direct.perRound());

        const JobStatus& stream = statuses[1];
        EXPECT_EQ(stream.state, JobState::Done);
        EXPECT_EQ(stream.result.find("failures")->u64,
                  stream_direct.memory.failures)
            << workers << " workers";
        EXPECT_EQ(stream.result.find("windows")->u64,
                  stream_direct.windows);
        EXPECT_EQ(stream.result.find("carry_defects")->u64,
                  stream_direct.carryDefects);
        EXPECT_EQ(stream.result.find("peak_rounds")->u64,
                  stream_direct.peakStoredRounds);

        const JobStatus& sweep = statuses[2];
        EXPECT_EQ(sweep.state, JobState::Done);
        // Bit-identical double, not approximately equal.
        EXPECT_EQ(sweep.result.find("per_round")->real, sweep_direct)
            << workers << " workers";

        const JobStatus& distilled = statuses[3];
        EXPECT_EQ(distilled.state, JobState::Done);
        EXPECT_EQ(distilled.result.find("distilled")->u64,
                  distill_direct.totalDistilled())
            << workers << " workers";
        EXPECT_EQ(distilled.result.find("attempts")->u64,
                  distill_direct.totalAttempts());
        EXPECT_EQ(distilled.result.find("rate_per_ms")->real,
                  distill_direct.meanDistilledRatePerMs());

        const JobStatus& analysis = statuses[4];
        EXPECT_EQ(analysis.state, JobState::Done);
        EXPECT_EQ(analysis.result.find("errors")->u64, 0u);
        ASSERT_NE(analysis.result.find("min_distance"), nullptr);
        EXPECT_EQ(analysis.result.find("min_distance")->u64, 3u);
        EXPECT_EQ(analysis.result.find("hazard_errors")->u64, 0u);

        const JobStatus& victim = statuses[5];
        EXPECT_EQ(victim.state, JobState::Cancelled);
        EXPECT_TRUE(victim.result.empty());

        // Counters are events, not timings: the same script moves
        // them identically at every worker count.
        EXPECT_EQ(after.submitted - before.submitted, 6u);
        EXPECT_EQ(after.completed - before.completed, 5u);
        EXPECT_EQ(after.cancelled - before.cancelled, 1u);
        EXPECT_EQ(after.failed - before.failed, 0u);
        EXPECT_EQ(after.rejected - before.rejected, 0u);
    }
}

TEST(ServiceDeterminism, BatchWidthDoesNotChangeResults)
{
    ThreadCountGuard guard(2);
    const std::vector<JobStatus> narrow = runBatch(1);
    const std::vector<JobStatus> wide = runBatch(6);
    ASSERT_EQ(narrow.size(), wide.size());
    for (std::size_t i = 0; i < narrow.size(); ++i) {
        EXPECT_EQ(narrow[i].state, wide[i].state) << i;
        EXPECT_TRUE(narrow[i].result == wide[i].result)
            << "job " << i << " diverged between maxConcurrent=1 and 6";
    }
}

} // namespace
