/**
 * JobService lifecycle: admission validation, priority scheduling,
 * queue-capacity rejection, queued and mid-run cancellation, failure
 * capture (including HETARCH_FATAL from experiment code), and the
 * service.jobs.* counter contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/logging.hh"
#include "dse/builder_registry.hh"
#include "lint/dataflow.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "qec/memory_experiment.hh"
#include "qec/noise_model.hh"
#include "qec/surface_circuit.hh"
#include "service/job_service.hh"
#include "service/job_validation.hh"

namespace {

using namespace hetarch;
using namespace hetarch::service;

JobSpec
memorySpec(const std::string& name, std::uint64_t seed,
           std::int64_t priority = 0)
{
    JobSpec spec;
    spec.name = name;
    spec.kind = JobKind::Memory;
    spec.priority = priority;
    spec.seed = seed;
    spec.add("distance", ParamValue::num(3));
    spec.add("rounds", ParamValue::num(2));
    spec.add("shots", ParamValue::num(200));
    return spec;
}

ServiceConfig
manualConfig(std::size_t max_concurrent = 1, std::size_t max_queued = 64)
{
    ServiceConfig config;
    config.autoStart = false;
    config.maxConcurrent = max_concurrent;
    config.maxQueued = max_queued;
    return config;
}

struct CounterDelta
{
    std::uint64_t submitted, rejected, completed, failed, cancelled;

    static CounterDelta now()
    {
        return {obs::counter("service.jobs.submitted").load(),
                obs::counter("service.jobs.rejected").load(),
                obs::counter("service.jobs.completed").load(),
                obs::counter("service.jobs.failed").load(),
                obs::counter("service.jobs.cancelled").load()};
    }

    CounterDelta since(const CounterDelta& base) const
    {
        return {submitted - base.submitted, rejected - base.rejected,
                completed - base.completed, failed - base.failed,
                cancelled - base.cancelled};
    }
};

TEST(Validation, RejectsMalformedSpecs)
{
    JobSpec spec = memorySpec("ok", 1);
    EXPECT_TRUE(validateJob(spec).ok);

    JobSpec unnamed = spec;
    unnamed.name.clear();
    EXPECT_FALSE(validateJob(unnamed).ok);

    JobSpec unknown_param = spec;
    unknown_param.add("window", ParamValue::num(2)); // stream-only key
    EXPECT_FALSE(validateJob(unknown_param).ok);

    JobSpec duplicate = spec;
    duplicate.add("shots", ParamValue::num(10));
    EXPECT_FALSE(validateJob(duplicate).ok);

    JobSpec even_distance = spec;
    even_distance.params[0].second = ParamValue::num(4);
    EXPECT_FALSE(validateJob(even_distance).ok);

    JobSpec fractional = spec;
    fractional.params[2].second = ParamValue::num(10.5);
    EXPECT_FALSE(validateJob(fractional).ok);

    JobSpec missing;
    missing.name = "missing";
    missing.kind = JobKind::Memory;
    EXPECT_FALSE(validateJob(missing).ok);

    JobSpec bad_decoder = spec;
    bad_decoder.add("decoder", ParamValue::str("mwpm"));
    EXPECT_FALSE(validateJob(bad_decoder).ok);
}

TEST(Validation, StreamDecoderAndWindowConstraints)
{
    JobSpec spec = memorySpec("s", 1);
    spec.kind = JobKind::Stream;
    spec.add("window", ParamValue::num(2));
    spec.add("commit", ParamValue::num(1));
    EXPECT_TRUE(validateJob(spec).ok);

    JobSpec greedy_windowed = spec;
    greedy_windowed.add("decoder", ParamValue::str("greedy"));
    EXPECT_FALSE(validateJob(greedy_windowed).ok);

    JobSpec commit_too_big = memorySpec("s", 1);
    commit_too_big.kind = JobKind::Stream;
    commit_too_big.add("window", ParamValue::num(2));
    commit_too_big.add("commit", ParamValue::num(3));
    EXPECT_FALSE(validateJob(commit_too_big).ok);
}

TEST(Validation, AnalysisResolvesCircuitSources)
{
    JobSpec builder;
    builder.name = "b";
    builder.kind = JobKind::Analysis;
    builder.add("builder", ParamValue::str("surface-d3"));
    EXPECT_TRUE(validateJob(builder).ok);

    JobSpec unknown_builder = builder;
    unknown_builder.params[0].second = ParamValue::str("surface-d99");
    EXPECT_FALSE(validateJob(unknown_builder).ok);

    JobSpec both = builder;
    both.add("circuit", ParamValue::str("H 0\n"));
    EXPECT_FALSE(validateJob(both).ok);

    JobSpec neither;
    neither.name = "n";
    neither.kind = JobKind::Analysis;
    EXPECT_FALSE(validateJob(neither).ok);

    JobSpec inline_ok;
    inline_ok.name = "inline";
    inline_ok.kind = JobKind::Analysis;
    inline_ok.add("circuit", ParamValue::str("H 0\nCX 0 1\nM 0 1\n"));
    EXPECT_TRUE(validateJob(inline_ok).ok);

    // A parse failure must reject the job, not kill the process.
    JobSpec inline_bad;
    inline_bad.name = "bad";
    inline_bad.kind = JobKind::Analysis;
    inline_bad.add("circuit", ParamValue::str("FROB 0 1\n"));
    const Validation v = validateJob(inline_bad);
    EXPECT_FALSE(v.ok);
    EXPECT_FALSE(v.error.empty());
}

TEST(JobService, SingleJobMatchesDirectApi)
{
    JobService jobs(manualConfig());
    const SubmitOutcome outcome = jobs.submit(memorySpec("m", 20260808));
    ASSERT_TRUE(outcome.accepted());
    EXPECT_EQ(outcome.id, 1u);
    jobs.drain();

    JobStatus status;
    ASSERT_TRUE(jobs.status(outcome.id, status));
    EXPECT_EQ(status.state, JobState::Done);

    Rng rng(20260808);
    const auto circuit = qec::surfaceMemoryZ(3, 2, qec::CircuitNoise{});
    const auto direct = qec::runMemoryExperiment(
        circuit, 200, 2, qec::DecoderKind::UnionFind, rng);
    EXPECT_EQ(status.result.find("failures")->u64, direct.failures);
    EXPECT_EQ(status.result.find("shots")->u64, direct.shots);
    EXPECT_EQ(status.result.find("per_round")->real, direct.perRound());
}

TEST(JobService, AnalysisFlowFieldsMatchDirectApi)
{
    JobService jobs(manualConfig());
    JobSpec spec;
    spec.name = "flow";
    spec.kind = JobKind::Analysis;
    spec.add("builder", ParamValue::str("surface-d3"));
    spec.add("distance", ParamValue::num(1));
    spec.add("flow", ParamValue::num(1));
    const SubmitOutcome outcome = jobs.submit(spec);
    ASSERT_TRUE(outcome.accepted()) << outcome.error;
    jobs.drain();

    JobStatus status;
    ASSERT_TRUE(jobs.status(outcome.id, status));
    ASSERT_EQ(status.state, JobState::Done);

    const auto circuit = dse::findBuilder("surface-d3")->make();
    const auto faults =
        qec::DecoderCache::instance().faultAnalysis(circuit, {});
    lint::flow::FlowOptions options;
    options.faults = faults.get();
    options.gateBudget = true;
    const auto direct = lint::flow::FlowCache::instance().analysis(
        circuit, lint::sched::TimingModel::unit(circuit.numQubits()),
        options);

    EXPECT_EQ(status.result.find("flow_swaps")->u64, direct->swapCount);
    EXPECT_EQ(status.result.find("flow_movement_ns")->real,
              direct->movementNs);
    EXPECT_EQ(status.result.find("flow_peak_storage")->u64,
              direct->peakStorageOccupancy);
    EXPECT_EQ(status.result.find("flow_hazard_errors")->u64,
              direct->hazardErrors());
    ASSERT_NE(status.result.find("flow_budget"), nullptr);
    EXPECT_EQ(status.result.find("flow_budget")->real,
              direct->maxBudget());
    EXPECT_GT(status.result.find("flow_budget")->real, 0.0);
}

TEST(JobService, RejectionsDoNotConsumeIds)
{
    const CounterDelta base = CounterDelta::now();
    JobService jobs(manualConfig());

    JobSpec bad = memorySpec("bad", 1);
    bad.add("bogus", ParamValue::num(1));
    const SubmitOutcome rejected = jobs.submit(bad);
    EXPECT_FALSE(rejected.accepted());
    EXPECT_FALSE(rejected.error.empty());

    const SubmitOutcome accepted = jobs.submit(memorySpec("ok", 1));
    ASSERT_TRUE(accepted.accepted());
    EXPECT_EQ(accepted.id, 1u); // the rejection above used no id
    jobs.drain();

    const CounterDelta delta = CounterDelta::now().since(base);
    EXPECT_EQ(delta.submitted, 1u);
    EXPECT_EQ(delta.rejected, 1u);
    EXPECT_EQ(delta.completed, 1u);
}

TEST(JobService, QueueCapacityRejects)
{
    JobService jobs(manualConfig(1, 2));
    ASSERT_TRUE(jobs.submit(memorySpec("a", 1)).accepted());
    ASSERT_TRUE(jobs.submit(memorySpec("b", 2)).accepted());
    const SubmitOutcome overflow = jobs.submit(memorySpec("c", 3));
    EXPECT_FALSE(overflow.accepted());
    EXPECT_NE(overflow.error.find("queue full"), std::string::npos);
    EXPECT_EQ(jobs.queuedCount(), 2u);
    jobs.drain();
    EXPECT_EQ(jobs.queuedCount(), 0u);
}

TEST(JobService, PriorityOrderGovernsExecution)
{
    JobService jobs(manualConfig(1));
    std::vector<JobId> order;
    std::mutex order_mu;
    jobs.setRunner(JobKind::Memory,
                   [&](const JobSpec&, JobContext& ctx) {
                       std::lock_guard<std::mutex> lk(order_mu);
                       order.push_back(ctx.id());
                       return JobResult{};
                   });

    ASSERT_TRUE(jobs.submit(memorySpec("low", 1, 0)).accepted());
    ASSERT_TRUE(jobs.submit(memorySpec("mid-a", 2, 5)).accepted());
    ASSERT_TRUE(jobs.submit(memorySpec("mid-b", 3, 5)).accepted());
    ASSERT_TRUE(jobs.submit(memorySpec("high", 4, 9)).accepted());
    jobs.drain();

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 4u); // priority 9
    EXPECT_EQ(order[1], 2u); // priority 5, submitted first
    EXPECT_EQ(order[2], 3u);
    EXPECT_EQ(order[3], 1u);
}

TEST(JobService, CancelWhileQueuedIsImmediate)
{
    const CounterDelta base = CounterDelta::now();
    JobService jobs(manualConfig());
    const JobId id = jobs.submit(memorySpec("victim", 7)).id;
    ASSERT_NE(id, kInvalidJobId);
    EXPECT_TRUE(jobs.cancel(id));
    EXPECT_EQ(jobs.queuedCount(), 0u);
    jobs.drain(); // nothing left to run

    JobStatus status;
    ASSERT_TRUE(jobs.status(id, status));
    EXPECT_EQ(status.state, JobState::Cancelled);
    EXPECT_TRUE(status.result.empty());

    // Terminal jobs refuse a second cancellation.
    EXPECT_FALSE(jobs.cancel(id));
    EXPECT_FALSE(jobs.cancel(999));

    const CounterDelta delta = CounterDelta::now().since(base);
    EXPECT_EQ(delta.cancelled, 1u);
    EXPECT_EQ(delta.completed, 0u);
}

TEST(JobService, CancelMidRunRetiresAsCancelled)
{
    ServiceConfig config;
    config.maxConcurrent = 1;
    JobService jobs(config); // autoStart: dispatcher thread

    std::atomic<bool> entered{false};
    jobs.setRunner(JobKind::Distill,
                   [&](const JobSpec&, JobContext& ctx) {
                       entered.store(true);
                       while (!ctx.cancelled())
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(1));
                       JobResult partial;
                       partial.addU64("partial", 1);
                       return partial;
                   });

    JobSpec spec;
    spec.name = "blocker";
    spec.kind = JobKind::Distill;
    spec.add("trajectories", ParamValue::num(1));
    spec.add("horizon_us", ParamValue::num(1));
    const JobId id = jobs.submit(spec).id;
    ASSERT_NE(id, kInvalidJobId);

    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(jobs.cancel(id));

    const JobStatus status = jobs.wait(id);
    EXPECT_EQ(status.state, JobState::Cancelled);
    // The partial result a cancelled runner returned is discarded.
    EXPECT_TRUE(status.result.empty());
}

TEST(JobService, RunnerFailuresAreCaptured)
{
    JobService jobs(manualConfig());
    jobs.setRunner(JobKind::Memory,
                   [](const JobSpec&, JobContext&) -> JobResult {
                       throw std::runtime_error("kaput");
                   });
    jobs.setRunner(JobKind::Distill,
                   [](const JobSpec&, JobContext&) -> JobResult {
                       HETARCH_FATAL("fatal inside a runner");
                   });

    const JobId throwing = jobs.submit(memorySpec("throws", 1)).id;
    JobSpec fatal_spec;
    fatal_spec.name = "fatals";
    fatal_spec.kind = JobKind::Distill;
    fatal_spec.add("trajectories", ParamValue::num(1));
    fatal_spec.add("horizon_us", ParamValue::num(1));
    const JobId fataling = jobs.submit(fatal_spec).id;
    jobs.drain();

    JobStatus status;
    ASSERT_TRUE(jobs.status(throwing, status));
    EXPECT_EQ(status.state, JobState::Failed);
    EXPECT_EQ(status.error, "kaput");

    // HETARCH_FATAL inside a runner fails the job, not the process.
    ASSERT_TRUE(jobs.status(fataling, status));
    EXPECT_EQ(status.state, JobState::Failed);
    EXPECT_NE(status.error.find("fatal inside a runner"),
              std::string::npos);
}

TEST(JobService, AutoModeRunsConcurrentJobsToCompletion)
{
    ServiceConfig config;
    config.maxConcurrent = 4;
    JobService jobs(config);
    std::vector<JobId> ids;
    for (int i = 0; i < 6; ++i) {
        const SubmitOutcome outcome =
            jobs.submit(memorySpec("auto", 100 + i));
        ASSERT_TRUE(outcome.accepted());
        ids.push_back(outcome.id);
    }
    jobs.waitIdle();
    for (JobId id : ids) {
        JobStatus status;
        ASSERT_TRUE(jobs.status(id, status));
        EXPECT_EQ(status.state, JobState::Done);
        EXPECT_EQ(status.result.find("shots")->u64, 200u);
    }
    EXPECT_EQ(jobs.statusAll().size(), 6u);
}

TEST(JobService, DestructorCancelsQueuedJobs)
{
    const CounterDelta base = CounterDelta::now();
    {
        JobService jobs(manualConfig());
        ASSERT_TRUE(jobs.submit(memorySpec("doomed-1", 1)).accepted());
        ASSERT_TRUE(jobs.submit(memorySpec("doomed-2", 2)).accepted());
        // No drain: destruction must retire both as cancelled.
    }
    const CounterDelta delta = CounterDelta::now().since(base);
    EXPECT_EQ(delta.submitted, 2u);
    EXPECT_EQ(delta.cancelled, 2u);
    EXPECT_EQ(delta.completed, 0u);
}

TEST(JobService, CapturedMetricsTravelWithTheStatus)
{
    ServiceConfig config = manualConfig();
    config.captureMetrics = true;
    JobService jobs(config);
    const JobId id = jobs.submit(memorySpec("metered", 5)).id;
    jobs.drain();

    JobStatus status;
    ASSERT_TRUE(jobs.status(id, status));
    ASSERT_EQ(status.state, JobState::Done);
    // One job ran alone, so its delta must show the experiment's own
    // shot counter moving.
    bool saw_shots = false;
    for (const auto& [name, delta] : status.metricsDelta)
        if (name == "qec.decode.shots")
            saw_shots = delta >= 200;
    EXPECT_TRUE(saw_shots);
}

} // namespace
