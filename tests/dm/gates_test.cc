/**
 * @file
 * Gate-matrix identities: unitarity, conjugation relations, and the
 * algebra the simulators rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dm/gates.hh"

namespace hetarch {
namespace dm {
namespace {

using namespace gates;
using linalg::Matrix;

TEST(Gates, AllGatesUnitary)
{
    for (const Matrix* g : {&I(), &X(), &Y(), &Z(), &H(), &S(), &Sdg(),
                            &T(), &cnot(), &cz(), &swapGate(), &iswap()})
        EXPECT_TRUE(g->isUnitary(1e-12));
    EXPECT_TRUE(rx(0.3).isUnitary(1e-12));
    EXPECT_TRUE(ry(1.1).isUnitary(1e-12));
    EXPECT_TRUE(rz(2.7).isUnitary(1e-12));
}

TEST(Gates, PauliAlgebra)
{
    // X^2 = Y^2 = Z^2 = I; XY = iZ.
    EXPECT_LT((X() * X()).maxAbsDiff(I()), 1e-12);
    EXPECT_LT((Y() * Y()).maxAbsDiff(I()), 1e-12);
    EXPECT_LT((Z() * Z()).maxAbsDiff(I()), 1e-12);
    EXPECT_LT((X() * Y()).maxAbsDiff(Z() * Complex(0, 1)), 1e-12);
}

TEST(Gates, HadamardConjugations)
{
    // H X H = Z, H Z H = X, H Y H = -Y.
    EXPECT_LT((H() * X() * H()).maxAbsDiff(Z()), 1e-12);
    EXPECT_LT((H() * Z() * H()).maxAbsDiff(X()), 1e-12);
    EXPECT_LT((H() * Y() * H()).maxAbsDiff(Y() * Complex(-1, 0)), 1e-12);
}

TEST(Gates, PhaseGateConjugations)
{
    // S X S^dag = Y, S Y S^dag = -X, S Z S^dag = Z.
    EXPECT_LT((S() * X() * Sdg()).maxAbsDiff(Y()), 1e-12);
    EXPECT_LT((S() * Y() * Sdg()).maxAbsDiff(X() * Complex(-1, 0)),
              1e-12);
    EXPECT_LT((S() * Z() * Sdg()).maxAbsDiff(Z()), 1e-12);
    // S^2 = Z, T^2 = S.
    EXPECT_LT((S() * S()).maxAbsDiff(Z()), 1e-12);
    EXPECT_LT((T() * T()).maxAbsDiff(S()), 1e-12);
}

TEST(Gates, RotationComposition)
{
    // rx(a) rx(b) = rx(a+b); rx(2 pi) = -I.
    EXPECT_LT((rx(0.4) * rx(0.9)).maxAbsDiff(rx(1.3)), 1e-12);
    EXPECT_LT(rx(2.0 * M_PI).maxAbsDiff(
                  Matrix::identity(2) * Complex(-1, 0)),
              1e-12);
    // rz(pi) ~ Z up to global phase -i.
    EXPECT_LT(rz(M_PI).maxAbsDiff(Z() * Complex(0, -1)), 1e-12);
}

TEST(Gates, TwoQubitIdentities)
{
    // CNOT^2 = I, SWAP^2 = I, CZ^2 = I.
    EXPECT_LT((cnot() * cnot()).maxAbsDiff(Matrix::identity(4)), 1e-12);
    EXPECT_LT((swapGate() * swapGate()).maxAbsDiff(Matrix::identity(4)),
              1e-12);
    EXPECT_LT((cz() * cz()).maxAbsDiff(Matrix::identity(4)), 1e-12);
    // SWAP = CNOT01 * CNOT10 * CNOT01 with our kron convention.
    const Matrix cnot10 =
        linalg::kron(H(), H()) * cnot() * linalg::kron(H(), H());
    EXPECT_LT((cnot() * cnot10 * cnot()).maxAbsDiff(swapGate()), 1e-12);
}

TEST(Gates, CzFromCnot)
{
    // CZ = (I (x) H) CNOT (I (x) H) in the little-endian convention
    // (target is the high factor of the 4x4 matrix).
    const Matrix h_high = linalg::kron(H(), I());
    EXPECT_LT((h_high * cnot() * h_high).maxAbsDiff(cz()), 1e-12);
}

TEST(Gates, ProjectorsAndLadder)
{
    EXPECT_LT((proj0() + proj1()).maxAbsDiff(I()), 1e-12);
    EXPECT_LT((proj0() * proj0()).maxAbsDiff(proj0()), 1e-12);
    EXPECT_LT((proj1() * proj1()).maxAbsDiff(proj1()), 1e-12);
    EXPECT_LT((proj0() * proj1()).frobeniusNorm(), 1e-12);
    // sigma+ sigma- = |1><1|, sigma- sigma+ = |0><0|.
    EXPECT_LT((sigmaPlus() * sigmaMinus()).maxAbsDiff(proj1()), 1e-12);
    EXPECT_LT((sigmaMinus() * sigmaPlus()).maxAbsDiff(proj0()), 1e-12);
}

} // namespace
} // namespace dm
} // namespace hetarch
