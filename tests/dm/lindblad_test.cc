/**
 * @file
 * Unit tests for the RK4 Lindblad solver, including cross-validation
 * against the closed-form Kraus idle channel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"
#include "dm/lindblad.hh"

namespace hetarch {
namespace dm {
namespace {

using namespace units;

TEST(Lindblad, FreeDecayT1Population)
{
    const double t1 = 50.0 * us;
    const double t2 = 60.0 * us;
    auto solver = LindbladSolver::freeDecay(1, {t1}, {t2});

    DensityMatrix rho(1);
    rho.applyUnitary(gates::X(), {0});
    solver.evolve(rho, 20.0 * us, 50.0);
    EXPECT_NEAR(rho.probOne(0), std::exp(-20.0 * us / t1), 1e-6);
}

TEST(Lindblad, FreeDecayT2Coherence)
{
    const double t1 = 50.0 * us;
    const double t2 = 40.0 * us;
    auto solver = LindbladSolver::freeDecay(1, {t1}, {t2});

    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    solver.evolve(rho, 15.0 * us, 50.0);
    EXPECT_NEAR(std::abs(rho.matrix()(0, 1)),
                0.5 * std::exp(-15.0 * us / t2), 1e-6);
}

TEST(Lindblad, MatchesKrausIdleChannel)
{
    // The discrete idle channel and the continuous Lindblad evolution
    // must agree for a single qubit in an arbitrary state.
    const double t1 = 300.0 * us;
    const double t2 = 180.0 * us;
    const double t = 35.0 * us;

    DensityMatrix a(1);
    a.applyUnitary(gates::ry(0.7), {0});
    a.applyUnitary(gates::rz(0.3), {0});
    DensityMatrix b = a;

    auto solver = LindbladSolver::freeDecay(1, {t1}, {t2});
    solver.evolve(a, t, 25.0);
    b.applyKraus(channels::idleChannel(t, t1, t2), {0});

    EXPECT_LT(a.matrix().maxAbsDiff(b.matrix()), 1e-7);
}

TEST(Lindblad, TwoQubitIndependentDecay)
{
    const double t1a = 100.0 * us, t2a = 120.0 * us;
    const double t1b = 2.0 * ms, t2b = 2.0 * ms;
    auto solver = LindbladSolver::freeDecay(2, {t1a, t1b}, {t2a, t2b});

    DensityMatrix rho(2);
    rho.applyUnitary(gates::X(), {0});
    rho.applyUnitary(gates::X(), {1});
    solver.evolve(rho, 50.0 * us, 100.0);
    EXPECT_NEAR(rho.probOne(0), std::exp(-50.0 * us / t1a), 1e-5);
    EXPECT_NEAR(rho.probOne(1), std::exp(-50.0 * us / t1b), 1e-5);
}

TEST(Lindblad, HamiltonianRabiOscillation)
{
    // H = (Omega/2) X drives |0> -> |1> in t = pi/Omega.
    const double omega = 2.0 * M_PI * 5.0 * MHz; // rad/ns
    HamiltonianTerm drive{gates::X() * Complex(omega / 2.0, 0.0), {0}};
    LindbladSolver solver(1, {drive}, {});

    DensityMatrix rho(1);
    const double t_pi = M_PI / omega;
    solver.evolve(rho, t_pi, 0.05);
    EXPECT_NEAR(rho.probOne(0), 1.0, 1e-6);
}

TEST(Lindblad, DrivenGateWithDecoherenceLosesFidelity)
{
    // A pi rotation with T1 decay during the drive must land below
    // the ideal excited population, and slower drives must be worse.
    const double omega_fast = 2.0 * M_PI * 5.0 * MHz;
    const double omega_slow = 2.0 * M_PI * 0.5 * MHz;
    const double t1 = 20.0 * us, t2 = 20.0 * us;

    auto run = [&](double omega) {
        HamiltonianTerm drive{gates::X() * Complex(omega / 2.0, 0.0), {0}};
        std::vector<CollapseOp> collapse{
            {gates::sigmaMinus(), {0}, 1.0 / t1},
            {gates::Z(), {0},
             channels::pureDephasingRate(t1, t2) / 2.0}};
        LindbladSolver solver(1, {drive}, collapse);
        DensityMatrix rho(1);
        solver.evolve(rho, M_PI / omega, 0.5);
        return rho.probOne(0);
    };

    const double fast = run(omega_fast);
    const double slow = run(omega_slow);
    EXPECT_LT(fast, 1.0);
    EXPECT_GT(fast, 0.99);
    EXPECT_LT(slow, fast);
}

TEST(Lindblad, TracePreservedThroughEvolution)
{
    auto solver = LindbladSolver::freeDecay(2, {100 * us, 1 * ms},
                                            {80 * us, 1 * ms});
    DensityMatrix rho(2);
    rho.applyUnitary(gates::H(), {0});
    rho.applyUnitary(gates::cnot(), {0, 1});
    solver.evolve(rho, 200.0 * us, 100.0);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-8);
}

TEST(Lindblad, BellPairDecaysTowardMixture)
{
    auto solver = LindbladSolver::freeDecay(2, {100 * us, 100 * us},
                                            {100 * us, 100 * us});
    DensityMatrix rho = DensityMatrix::bellPair();
    const double f0 = rho.bellFidelity();
    solver.evolve(rho, 50.0 * us, 100.0);
    const double f1 = rho.bellFidelity();
    solver.evolve(rho, 50.0 * us, 100.0);
    const double f2 = rho.bellFidelity();
    EXPECT_GT(f0, f1);
    EXPECT_GT(f1, f2);
    EXPECT_GT(f2, 0.25); // never below fully mixed
}

TEST(Lindblad, ZeroDurationNoOp)
{
    auto solver = LindbladSolver::freeDecay(1, {100 * us}, {100 * us});
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    const auto before = rho.matrix();
    solver.evolve(rho, 0.0);
    EXPECT_LT(rho.matrix().maxAbsDiff(before), 1e-15);
}

} // namespace
} // namespace dm
} // namespace hetarch
