/**
 * @file
 * Unit tests for the density-matrix simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dm/density_matrix.hh"
#include "dm/gates.hh"

namespace hetarch {
namespace dm {
namespace {

const double kRoot2Inv = 1.0 / std::sqrt(2.0);

TEST(DensityMatrix, InitialStateAllZero)
{
    DensityMatrix rho(3);
    EXPECT_EQ(rho.numQubits(), 3u);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.probOne(0), 0.0, 1e-12);
    EXPECT_NEAR(rho.probOne(2), 0.0, 1e-12);
}

TEST(DensityMatrix, XFlipsQubit)
{
    DensityMatrix rho(2);
    rho.applyUnitary(gates::X(), {1});
    EXPECT_NEAR(rho.probOne(1), 1.0, 1e-12);
    EXPECT_NEAR(rho.probOne(0), 0.0, 1e-12);
}

TEST(DensityMatrix, HadamardMakesSuperposition)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    EXPECT_NEAR(rho.probOne(0), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, CnotEntangles)
{
    DensityMatrix rho(2);
    rho.applyUnitary(gates::H(), {0});
    rho.applyUnitary(gates::cnot(), {0, 1});
    EXPECT_NEAR(rho.bellFidelity(), 1.0, 1e-12);
    // Reduced state of either qubit must be maximally mixed.
    const DensityMatrix one = rho.partialTrace({0});
    EXPECT_NEAR(one.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, CnotControlQubitOrder)
{
    // CNOT with control q0: |01> (q0=1) -> |11>.
    DensityMatrix rho(2);
    rho.applyUnitary(gates::X(), {0});
    rho.applyUnitary(gates::cnot(), {0, 1});
    EXPECT_NEAR(rho.probOne(0), 1.0, 1e-12);
    EXPECT_NEAR(rho.probOne(1), 1.0, 1e-12);

    // Control q1 = 0: |10> stays (q0 is target now).
    DensityMatrix rho2(2);
    rho2.applyUnitary(gates::X(), {1});
    rho2.applyUnitary(gates::cnot(), {1, 0});
    EXPECT_NEAR(rho2.probOne(0), 1.0, 1e-12);
}

TEST(DensityMatrix, SwapGate)
{
    DensityMatrix rho(3);
    rho.applyUnitary(gates::X(), {0});
    rho.applyUnitary(gates::swapGate(), {0, 2});
    EXPECT_NEAR(rho.probOne(0), 0.0, 1e-12);
    EXPECT_NEAR(rho.probOne(2), 1.0, 1e-12);
}

TEST(DensityMatrix, GateOnNonAdjacentQubits)
{
    // CNOT between q0 and q2 in a 3-qubit register, q1 untouched.
    DensityMatrix rho(3);
    rho.applyUnitary(gates::X(), {0});
    rho.applyUnitary(gates::cnot(), {0, 2});
    EXPECT_NEAR(rho.probOne(2), 1.0, 1e-12);
    EXPECT_NEAR(rho.probOne(1), 0.0, 1e-12);
}

TEST(DensityMatrix, BellPairFactory)
{
    const DensityMatrix perfect = DensityMatrix::bellPair();
    EXPECT_NEAR(perfect.bellFidelity(), 1.0, 1e-12);

    const DensityMatrix noisy = DensityMatrix::bellPair(0.1);
    EXPECT_NEAR(noisy.bellFidelity(), 0.9, 1e-12);
    EXPECT_NEAR(noisy.traceReal(), 1.0, 1e-12);
}

TEST(DensityMatrix, TensorProduct)
{
    DensityMatrix a(1);
    a.applyUnitary(gates::X(), {0}); // |1>
    DensityMatrix b(1);              // |0>
    const DensityMatrix ab = DensityMatrix::tensor(a, b);
    // a occupies low-order qubit 0.
    EXPECT_NEAR(ab.probOne(0), 1.0, 1e-12);
    EXPECT_NEAR(ab.probOne(1), 0.0, 1e-12);
}

TEST(DensityMatrix, MeasurementCollapses)
{
    Rng rng(99);
    DensityMatrix rho(2);
    rho.applyUnitary(gates::H(), {0});
    rho.applyUnitary(gates::cnot(), {0, 1});
    const bool m0 = rho.measureZ(0, rng);
    // After measuring one half of a Bell pair the other is determined.
    EXPECT_NEAR(rho.probOne(1), m0 ? 1.0 : 0.0, 1e-12);
}

TEST(DensityMatrix, MeasurementStatistics)
{
    Rng rng(123);
    int ones = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        DensityMatrix rho(1);
        rho.applyUnitary(gates::H(), {0});
        if (rho.measureZ(0, rng))
            ++ones;
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.05);
}

TEST(DensityMatrix, PostselectProbability)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::ry(2.0 * std::acos(std::sqrt(0.25))), {0});
    // P(0) should be 0.25 by construction.
    EXPECT_NEAR(rho.probOne(0), 0.75, 1e-9);
    const double p = rho.postselectZ(0, true);
    EXPECT_NEAR(p, 0.75, 1e-9);
    EXPECT_NEAR(rho.probOne(0), 1.0, 1e-12);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfProduct)
{
    DensityMatrix rho(2);
    rho.applyUnitary(gates::X(), {1});
    const DensityMatrix q1 = rho.partialTrace({1});
    EXPECT_EQ(q1.numQubits(), 1u);
    EXPECT_NEAR(q1.probOne(0), 1.0, 1e-12);
}

TEST(DensityMatrix, FidelityWithKet)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    const double f = rho.fidelityWithKet(
        {Complex(kRoot2Inv, 0), Complex(kRoot2Inv, 0)});
    EXPECT_NEAR(f, 1.0, 1e-12);
    const double f_orth = rho.fidelityWithKet(
        {Complex(kRoot2Inv, 0), Complex(-kRoot2Inv, 0)});
    EXPECT_NEAR(f_orth, 0.0, 1e-12);
}

TEST(DensityMatrix, ExpectationValues)
{
    DensityMatrix rho(1);
    EXPECT_NEAR(rho.expectation(gates::Z(), {0}), 1.0, 1e-12);
    rho.applyUnitary(gates::X(), {0});
    EXPECT_NEAR(rho.expectation(gates::Z(), {0}), -1.0, 1e-12);
    rho.applyUnitary(gates::H(), {0});
    EXPECT_NEAR(rho.expectation(gates::Z(), {0}), 0.0, 1e-12);
}

TEST(DensityMatrix, GhzPreparation)
{
    DensityMatrix rho(4);
    rho.applyUnitary(gates::H(), {0});
    for (std::size_t q = 1; q < 4; ++q)
        rho.applyUnitary(gates::cnot(), {0, q});
    std::vector<Complex> ghz(16, Complex(0, 0));
    ghz[0] = Complex(kRoot2Inv, 0);
    ghz[15] = Complex(kRoot2Inv, 0);
    EXPECT_NEAR(rho.fidelityWithKet(ghz), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryPreservesTraceAndPurity)
{
    DensityMatrix rho(3);
    rho.applyUnitary(gates::H(), {1});
    rho.applyUnitary(gates::T(), {1});
    rho.applyUnitary(gates::cnot(), {1, 2});
    rho.applyUnitary(gates::S(), {0});
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

} // namespace
} // namespace dm
} // namespace hetarch
