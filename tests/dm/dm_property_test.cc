/**
 * @file
 * Parameterized property tests on the density-matrix substrate:
 * channel trace preservation across parameter sweeps, unitary
 * invariants on random circuits, twirl consistency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hh"
#include "core/units.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"
#include "qec/noise_model.hh"

namespace hetarch {
namespace dm {
namespace {

using namespace units;

class ChannelSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelSweep, AllChannelsTracePreserving)
{
    const double p = GetParam();
    using namespace channels;
    EXPECT_TRUE(isTracePreserving(amplitudeDamping(p)));
    EXPECT_TRUE(isTracePreserving(phaseDamping(p)));
    EXPECT_TRUE(isTracePreserving(depolarizing1(p)));
    EXPECT_TRUE(isTracePreserving(depolarizing2(p)));
    EXPECT_TRUE(isTracePreserving(bitFlip(p)));
    EXPECT_TRUE(isTracePreserving(phaseFlip(p)));
}

TEST_P(ChannelSweep, DepolarizingShrinksBloch)
{
    const double p = GetParam();
    if (p <= 0.0 || p >= 1.0)
        return;
    DensityMatrix rho(1);
    rho.applyUnitary(gates::ry(0.7), {0});
    const double z_before = rho.expectation(gates::Z(), {0});
    rho.applyKraus(channels::depolarizing1(p), {0});
    const double z_after = rho.expectation(gates::Z(), {0});
    EXPECT_NEAR(z_after, (1.0 - 4.0 * p / 3.0) * z_before, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ChannelSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 1.0));

class IdleSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(IdleSweep, IdleChannelMatchesAnalyticDecay)
{
    const auto [t1_us, t2_over_t1] = GetParam();
    const double t1 = t1_us * us;
    const double t2 = t2_over_t1 * t1;
    const double t = 0.2 * t1;

    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    rho.applyUnitary(gates::X(), {0});
    rho.applyKraus(channels::idleChannel(t, t1, t2), {0});
    // Coherence decays with T2; population relaxes with T1.
    EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.5 * std::exp(-t / t2),
                1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    CoherencePairs, IdleSweep,
    ::testing::Values(std::pair<double, double>{50.0, 0.5},
                      std::pair<double, double>{100.0, 1.0},
                      std::pair<double, double>{300.0, 1.5},
                      std::pair<double, double>{1000.0, 2.0}));

class RandomUnitaryCircuit : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomUnitaryCircuit, PreservesTraceAndPurity)
{
    Rng rng(500 + GetParam());
    DensityMatrix rho(4);
    for (int step = 0; step < 30; ++step) {
        const auto q = rng.uniformInt(4);
        switch (rng.uniformInt(5)) {
          case 0: rho.applyUnitary(gates::H(), {q}); break;
          case 1: rho.applyUnitary(gates::T(), {q}); break;
          case 2:
            rho.applyUnitary(gates::rx(rng.uniform() * 3.0), {q});
            break;
          case 3:
            rho.applyUnitary(gates::rz(rng.uniform() * 3.0), {q});
            break;
          default: {
            const auto other = rng.uniformInt(4);
            if (other != q)
                rho.applyUnitary(gates::cnot(), {q, other});
            break;
          }
        }
    }
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-9);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-9);
    EXPECT_TRUE(rho.matrix().isHermitian(1e-9));
}

TEST_P(RandomUnitaryCircuit, PartialTracePreservesTrace)
{
    Rng rng(900 + GetParam());
    DensityMatrix rho(3);
    rho.applyUnitary(gates::H(), {0});
    rho.applyUnitary(gates::cnot(), {0, 1});
    rho.applyUnitary(gates::ry(rng.uniform()), {2});
    rho.applyKraus(channels::depolarizing1(0.1), {1});
    for (const auto& keep :
         std::vector<std::vector<std::size_t>>{{0}, {1}, {2}, {0, 2}}) {
        const auto reduced = rho.partialTrace(keep);
        EXPECT_NEAR(reduced.traceReal(), 1.0, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUnitaryCircuit,
                         ::testing::Range(0, 6));

class TwirlSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TwirlSweep, TwirlProbabilitiesMatchChannelDiagonal)
{
    // The Pauli-twirled idle probabilities must reproduce the exact
    // channel's action on the maximally mixed + Z states.
    const double t = GetParam() * us;
    const double t1 = 120.0 * us, t2 = 150.0 * us;
    const auto twirl = qec::idleTwirl(t, t1, t2);

    DensityMatrix rho(1);
    rho.applyUnitary(gates::X(), {0});
    rho.applyKraus(channels::idleChannel(t, t1, t2), {0});
    // For the |1> state, twirl keeps P(flip to 0) = px + py.
    EXPECT_NEAR(1.0 - rho.probOne(0), 2.0 * (twirl.px + twirl.py), 0.06);
    EXPECT_GE(twirl.pz, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Durations, TwirlSweep,
                         ::testing::Values(1.0, 5.0, 20.0, 60.0));

} // namespace
} // namespace dm
} // namespace hetarch
