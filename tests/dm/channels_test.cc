/**
 * @file
 * Unit tests for Kraus noise channels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"

namespace hetarch {
namespace dm {
namespace {

using namespace units;

TEST(Channels, AllTracePreserving)
{
    using namespace channels;
    EXPECT_TRUE(isTracePreserving(amplitudeDamping(0.3)));
    EXPECT_TRUE(isTracePreserving(phaseDamping(0.4)));
    EXPECT_TRUE(isTracePreserving(depolarizing1(0.2)));
    EXPECT_TRUE(isTracePreserving(depolarizing2(0.2)));
    EXPECT_TRUE(isTracePreserving(bitFlip(0.1)));
    EXPECT_TRUE(isTracePreserving(phaseFlip(0.1)));
    EXPECT_TRUE(isTracePreserving(idleChannel(1.0 * us, 300.0 * us,
                                              200.0 * us)));
}

TEST(Channels, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::X(), {0});
    rho.applyKraus(channels::amplitudeDamping(0.25), {0});
    EXPECT_NEAR(rho.probOne(0), 0.75, 1e-12);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
}

TEST(Channels, AmplitudeDampingFixesGroundState)
{
    DensityMatrix rho(1);
    rho.applyKraus(channels::amplitudeDamping(0.9), {0});
    EXPECT_NEAR(rho.probOne(0), 0.0, 1e-12);
}

TEST(Channels, PhaseDampingKillsCoherence)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    rho.applyKraus(channels::phaseDamping(1.0), {0});
    // Fully dephased: diagonal preserved, coherence gone.
    EXPECT_NEAR(rho.probOne(0), 0.5, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(Channels, IdleChannelT1Population)
{
    const double t1 = 100.0 * us;
    const double t2 = 150.0 * us;
    const double t = 30.0 * us;
    DensityMatrix rho(1);
    rho.applyUnitary(gates::X(), {0});
    rho.applyKraus(channels::idleChannel(t, t1, t2), {0});
    EXPECT_NEAR(rho.probOne(0), std::exp(-t / t1), 1e-10);
}

TEST(Channels, IdleChannelT2Coherence)
{
    const double t1 = 100.0 * us;
    const double t2 = 120.0 * us;
    const double t = 25.0 * us;
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    rho.applyKraus(channels::idleChannel(t, t1, t2), {0});
    // Off-diagonal element should decay as e^{-t/T2}.
    const double coherence = std::abs(rho.matrix()(0, 1));
    EXPECT_NEAR(coherence, 0.5 * std::exp(-t / t2), 1e-10);
}

TEST(Channels, IdleChannelZeroTimeIsIdentity)
{
    DensityMatrix rho(1);
    rho.applyUnitary(gates::H(), {0});
    const auto before = rho.matrix();
    rho.applyKraus(channels::idleChannel(0.0, 100 * us, 100 * us), {0});
    EXPECT_LT(rho.matrix().maxAbsDiff(before), 1e-12);
}

TEST(Channels, T2EqualTwoT1IsPureAmplitudeDamping)
{
    // At T2 = 2*T1 there is no pure dephasing.
    EXPECT_DOUBLE_EQ(channels::pureDephasingRate(100 * us, 200 * us), 0.0);
}

TEST(Channels, Depolarizing1FullyMixes)
{
    DensityMatrix rho(1);
    rho.applyKraus(channels::depolarizing1(1.0), {0});
    // p=1 leaves rho = (X rho X + Y rho Y + Z rho Z)/3, whose
    // fixed-point distance from maximally mixed shrinks; check trace
    // and that population moved strictly toward 1/2.
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    EXPECT_GT(rho.probOne(0), 0.5);
}

TEST(Channels, Depolarizing1BellFidelityRelation)
{
    // One-sided depolarizing p on one half of a Bell pair gives
    // F = 1 - 2p/3... derive: F = (1-p) + p/3 * 0... Actually each of
    // X,Y,Z moves the Bell state to an orthogonal Bell state, so
    // F = 1 - p.
    DensityMatrix rho = DensityMatrix::bellPair();
    const double p = 0.12;
    rho.applyKraus(channels::depolarizing1(p), {0});
    EXPECT_NEAR(rho.bellFidelity(), 1.0 - p, 1e-12);
}

TEST(Channels, Depolarizing2Uniformity)
{
    DensityMatrix rho(2);
    rho.applyKraus(channels::depolarizing2(1.0), {0, 1});
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    // All Paulis applied uniformly: the result is close to maximally
    // mixed when starting from |00> (15/16 weight spread over all).
    EXPECT_LT(rho.purity(), 0.3);
}

TEST(Channels, BitFlipExpectation)
{
    DensityMatrix rho(1);
    rho.applyKraus(channels::bitFlip(0.2), {0});
    EXPECT_NEAR(rho.probOne(0), 0.2, 1e-12);
}

TEST(Channels, UnphysicalT2IsFatal)
{
    EXPECT_DEATH(channels::pureDephasingRate(100 * us, 300 * us),
                 "unphysical");
}

} // namespace
} // namespace dm
} // namespace hetarch
