/**
 * @file
 * Tests for circuit statistics and cross-architecture cost comparison.
 */

#include <gtest/gtest.h>

#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit_stats.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(CircuitStats, CountsSimpleCircuit)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.depolarize2(1, 2, 0.01);
    const auto m = c.measure(2);
    c.reset(2);
    c.detector({m});

    const auto stats = analyzeCircuit(c);
    EXPECT_EQ(stats.qubits, 3u);
    EXPECT_EQ(stats.oneQubitGates, 1u);
    EXPECT_EQ(stats.twoQubitGates, 2u);
    EXPECT_EQ(stats.measurements, 1u);
    EXPECT_EQ(stats.resets, 1u);
    EXPECT_EQ(stats.noiseSites, 1u);
    EXPECT_EQ(stats.detectors, 1u);
    // h(0); cx(0,1); cx(1,2); m(2); r(2) -> depth 5 on qubit chain.
    EXPECT_EQ(stats.depth, 5u);
}

TEST(CircuitStats, ParallelGatesShareDepth)
{
    Circuit c(4);
    c.cx(0, 1);
    c.cx(2, 3); // disjoint -> same depth step
    const auto stats = analyzeCircuit(c);
    EXPECT_EQ(stats.depth, 1u);
    EXPECT_EQ(stats.twoQubitGates, 2u);
}

TEST(CircuitStats, HomogeneousRoutingCostsMoreGates)
{
    // The reason non-planar codes lose on the lattice: routed SWAP
    // chains inflate the two-qubit gate count far beyond the UEC's.
    const auto code = qec::makeReedMuller15();
    const auto assignment = uec::roundRobinAssignment(code);
    uec::UecNoise un;
    const auto uec_circ = uec::uecMemoryZ(code, assignment, 2, un);

    const auto emb = uec::embedOnLattice(code);
    uec::LatticeNoise ln;
    const auto lat_circ = uec::latticeMemoryZ(code, emb, 2, ln);

    const auto uec_stats = analyzeCircuit(uec_circ);
    const auto lat_stats = analyzeCircuit(lat_circ);
    EXPECT_GT(lat_stats.twoQubitGates, uec_stats.twoQubitGates);
}

TEST(CircuitStats, SurfaceCircuitScaling)
{
    qec::CircuitNoise noise;
    const auto small = analyzeCircuit(qec::surfaceMemoryZ(3, 3, noise));
    const auto large = analyzeCircuit(qec::surfaceMemoryZ(5, 5, noise));
    EXPECT_GT(large.twoQubitGates, small.twoQubitGates);
    EXPECT_GT(large.qubits, small.qubits);
    EXPECT_EQ(small.qubits, 9u + 8u);
    EXPECT_EQ(large.qubits, 25u + 24u);
}

} // namespace
} // namespace stab
} // namespace hetarch
