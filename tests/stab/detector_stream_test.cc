/**
 * @file
 * Pins the streaming sampler contract (frame_program.hh slices +
 * DetectorStream): sliced execution must consume the RNG stream
 * identically to the whole-buffer batch path and reassemble to
 * bit-identical packed samples, while the per-stream measurement
 * storage stays bounded by the program's lookback, independent of the
 * round count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hh"
#include "qec/noise_model.hh"
#include "qec/surface_circuit.hh"
#include "stab/frame.hh"
#include "stab/frame_program.hh"

namespace hetarch {
namespace stab {
namespace {

qec::CircuitNoise
testNoise()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    return noise;
}

TEST(FrameProgramSlices, SurfaceCircuitSlicesOncePerRound)
{
    for (std::size_t rounds : {2u, 5u}) {
        const auto circ = qec::surfaceMemoryZ(3, rounds, testNoise());
        const auto prog = FrameProgram::compile(circ);
        // The slice boundary rule (close before a qubit's second
        // measurement since the last boundary) lands exactly one QEC
        // round per slice; the final data readout joins the last round.
        EXPECT_EQ(prog->numSlices(), rounds) << "rounds " << rounds;

        // Slices tile the detector/measurement/op ranges contiguously.
        std::size_t det_cursor = 0;
        for (std::size_t s = 0; s < prog->numSlices(); ++s) {
            const auto& info = prog->sliceInfo(s);
            EXPECT_EQ(info.detBegin, det_cursor);
            EXPECT_GE(info.detEnd, info.detBegin);
            det_cursor = info.detEnd;
        }
        EXPECT_EQ(det_cursor, prog->numDetectors());
    }
}

TEST(FrameProgramSlices, MeasurementRingIsBoundedByLookbackNotRounds)
{
    const auto short_prog =
        FrameProgram::compile(qec::surfaceMemoryZ(3, 4, testNoise()));
    const auto long_prog =
        FrameProgram::compile(qec::surfaceMemoryZ(3, 32, testNoise()));

    // Detectors compare at most adjacent rounds, so the lookback — and
    // with it the ring — must not grow with the round count.
    EXPECT_EQ(long_prog->measRingCapacity(),
              short_prog->measRingCapacity());
    EXPECT_LT(long_prog->measRingCapacity(), long_prog->numMeasurements());
    EXPECT_GE(long_prog->measRingCapacity(), long_prog->measLookback());
}

TEST(DetectorStream, ReassemblesToBatchSamplerBitsExactly)
{
    const auto circ = qec::surfaceMemoryZ(5, 6, testNoise());
    const auto prog = FrameProgram::compile(circ);
    const FrameSimulator sim(prog);

    // 100 shots: one full 64-lane batch plus a 36-lane partial batch.
    const std::size_t shots = 100;
    Rng batch_rng(424242);
    const auto samples = sim.sampleDetectors(shots, batch_rng);

    Rng stream_rng(424242);
    DetectorStream stream(prog, shots);
    EXPECT_EQ(stream.numBatches(), samples.numWords);

    DetectorSamples rebuilt;
    rebuilt.resize(shots, prog->numDetectors(), prog->numObservables());
    std::size_t blocks = 0;
    SyndromeBlock block;
    while (stream.next(stream_rng, block)) {
        ++blocks;
        ASSERT_LT(block.batch, rebuilt.numWords);
        const auto& info = prog->sliceInfo(block.slice);
        ASSERT_EQ(block.detBegin, info.detBegin);
        ASSERT_EQ(block.detWords.size(), info.detEnd - info.detBegin);
        for (std::size_t i = 0; i < block.detWords.size(); ++i)
            rebuilt.detWords[(block.detBegin + i) * rebuilt.numWords +
                             block.batch] = block.detWords[i];
        // Observable words accumulate across a batch's blocks.
        for (std::size_t k = 0; k < block.obsWords.size(); ++k)
            rebuilt.obsWords[k * rebuilt.numWords + block.batch] ^=
                block.obsWords[k];
        EXPECT_EQ(block.lastSliceOfBatch,
                  block.slice + 1 == prog->numSlices());
    }
    EXPECT_EQ(blocks, stream.numBatches() * prog->numSlices());

    EXPECT_EQ(rebuilt.detWords, samples.detWords);
    EXPECT_EQ(rebuilt.obsWords, samples.obsWords);

    // RNG-consumption parity: both generators must sit at the same
    // stream position after sampling the same shots.
    EXPECT_EQ(batch_rng(), stream_rng());
}

TEST(DetectorStream, SliceSequenceConsumesRngLikeRunBatch)
{
    const auto circ = qec::surfaceMemoryZ(3, 3, testNoise());
    const auto prog = FrameProgram::compile(circ);

    FrameScratch batch_scratch;
    Rng batch_rng(77);
    const std::uint64_t batch_flips =
        prog->runBatch(batch_scratch, batch_rng);

    FrameStreamScratch stream_scratch;
    Rng slice_rng(77);
    prog->beginStream(stream_scratch);
    std::uint64_t slice_flips = 0;
    for (std::size_t s = 0; s < prog->numSlices(); ++s)
        slice_flips += prog->runSlice(s, stream_scratch, slice_rng);

    EXPECT_EQ(slice_flips, batch_flips);
    EXPECT_EQ(batch_rng(), slice_rng());
}

} // namespace
} // namespace stab
} // namespace hetarch
