/**
 * @file
 * Tests for compiled frame programs and the bit-packed sampler: the
 * compiled fast path must be bit-identical to the op-list reference
 * interpreter on fixed seeds (including RNG stream consumption), the
 * packed layout must keep idle lanes zero, and the DEPOL2
 * rejection-sampling loop must produce the advertised lane marginals —
 * including the forced-X fallback when the retry budget is exhausted.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "core/rng.hh"
#include "stab/circuit.hh"
#include "stab/frame.hh"
#include "stab/frame_program.hh"

namespace hetarch {
namespace stab {
namespace {

/** A circuit touching every opcode the compiler handles. */
Circuit
kitchenSinkCircuit()
{
    Circuit c(4);
    c.h(0);
    c.s(1);
    c.sdg(2);
    c.x(0); // dropped by the compiler: no frame effect, no rng draw
    c.y(1);
    c.z(2);
    c.cx(0, 1);
    c.cz(1, 2);
    c.swap(2, 3);
    c.xError(0, 0.3);
    c.zError(1, 0.2);
    c.xError(2, 0.0); // kept: biasedWord(0) draws nothing either way
    c.pauliChannel1(0, 0.1, 0.05, 0.02);
    c.pauliChannel1(1, 0.0, 0.0, 0.0); // dropped: breaks before drawing
    c.pauliChannel1(2, 0.1, 0.0, 0.0); // rest == 0 branch
    c.depolarize1(3, 0.15);
    c.depolarize2(0, 1, 0.2);
    const auto m0 = c.measureReset(0);
    const auto m1 = c.measure(1);
    c.reset(2);
    const auto m2 = c.measure(2);
    c.detector({m0});
    c.detector({m0, m1});
    c.detector({m2});
    c.observableInclude(0, {m1});
    c.observableInclude(0, {m2});
    c.observableInclude(1, {m0});
    return c;
}

TEST(FrameProgram, CompileDropsInertOpsAndBuildsCsrMasks)
{
    const auto c = kitchenSinkCircuit();
    const auto prog = FrameProgram::compile(c);

    EXPECT_EQ(prog->numQubits(), c.numQubits());
    EXPECT_EQ(prog->numMeasurements(), c.numMeasurements());
    EXPECT_EQ(prog->numDetectors(), 3u);
    EXPECT_EQ(prog->numObservables(), 2u);

    // 3 Paulis, the zero-probability PAULI1, and 6 annotations are
    // gone; everything else (including the p=0 X_ERROR) is kept.
    std::size_t interpreted = 0;
    for (const auto& op : c.ops()) {
        switch (op.code) {
          case OpCode::X:
          case OpCode::Y:
          case OpCode::Z:
          case OpCode::DETECTOR:
          case OpCode::OBSERVABLE:
            break;
          case OpCode::PAULI1:
            if (op.params[0] + op.params[1] + op.params[2] > 0.0)
                ++interpreted;
            break;
          default:
            ++interpreted;
        }
    }
    EXPECT_EQ(prog->ops().size(), interpreted);

    // Detector 1 = {m0, m1} = measurement records 0 and 1.
    ASSERT_EQ(prog->detMeasEnd(1) - prog->detMeasBegin(1), 2);
    EXPECT_EQ(prog->detMeasBegin(1)[0], 0u);
    EXPECT_EQ(prog->detMeasBegin(1)[1], 1u);
    // Observable 0 concatenates both includes: {m1, m2}.
    ASSERT_EQ(prog->obsMeasEnd(0) - prog->obsMeasBegin(0), 2);
    EXPECT_EQ(prog->obsMeasBegin(0)[0], 1u);
    EXPECT_EQ(prog->obsMeasBegin(0)[1], 2u);
    // Observable 1 = {m0}.
    ASSERT_EQ(prog->obsMeasEnd(1) - prog->obsMeasBegin(1), 1);
    EXPECT_EQ(prog->obsMeasBegin(1)[0], 0u);
}

TEST(FrameProgram, PackedSamplerMatchesReferenceBitForBit)
{
    const auto c = kitchenSinkCircuit();
    const FrameSimulator sim(c);

    for (const std::size_t shots : {std::size_t{64}, std::size_t{37},
                                    std::size_t{1000}}) {
        for (const std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
            Rng rng_fast(seed);
            Rng rng_ref(seed);
            const auto fast = sim.sampleDetectors(shots, rng_fast);
            const auto ref = sim.sampleDetectorsReference(shots, rng_ref);

            ASSERT_EQ(fast.shots, ref.shots);
            ASSERT_EQ(fast.numWords, ref.numWords);
            EXPECT_EQ(fast.detWords, ref.detWords)
                << "shots=" << shots << " seed=" << seed;
            EXPECT_EQ(fast.obsWords, ref.obsWords)
                << "shots=" << shots << " seed=" << seed;

            // Both paths must also consume the RNG stream identically:
            // the next draw after sampling has to agree.
            EXPECT_EQ(rng_fast(), rng_ref())
                << "rng stream diverged at shots=" << shots
                << " seed=" << seed;
        }
    }
}

TEST(FrameProgram, IdleLanesOfFinalPartialWordStayZero)
{
    Circuit c(1);
    c.xError(0, 1.0); // every live lane fires
    c.detector({c.measure(0)});
    const FrameSimulator sim(c);
    Rng rng(7);
    const std::size_t shots = 100; // 64 + 36 live lanes
    const auto s = sim.sampleDetectors(shots, rng);
    ASSERT_EQ(s.numWords, 2u);
    EXPECT_EQ(s.detWord(0, 0), ~std::uint64_t{0});
    EXPECT_EQ(s.detWord(0, 1), (std::uint64_t{1} << 36) - 1);
    // shotWeight popcounts whole columns, so idle-lane garbage would
    // show up here too.
    for (std::size_t shot = 0; shot < shots; ++shot)
        EXPECT_EQ(s.shotWeight(shot), 1u);
}

/**
 * Observe the full two-qubit Pauli applied by DEPOL2 via ancilla
 * readout: CX/H draw no randomness, so the gadget leaves the channel's
 * RNG stream untouched.  Readout of (x0, z0, x1, z1):
 *   - cx(0,a) copies qubit 0's X frame onto ancilla a;
 *   - cx(a,0) then h(a) moves qubit 0's Z frame into a's X frame;
 * and measuring an ancilla records its X frame.
 */
Circuit
depol2ProbeCircuit()
{
    Circuit c(6);
    c.depolarize2(0, 1, 1.0);
    c.cx(0, 2);
    c.detector({c.measure(2)}); // x0
    c.cx(3, 0);
    c.h(3);
    c.detector({c.measure(3)}); // z0
    c.cx(1, 4);
    c.detector({c.measure(4)}); // x1
    c.cx(5, 1);
    c.h(5);
    c.detector({c.measure(5)}); // z1
    return c;
}

TEST(FrameProgram, Depol2LaneMarginalsAreUniformOverNonIdentityPaulis)
{
    const auto c = depol2ProbeCircuit();
    const FrameSimulator sim(c);
    Rng rng(12345);
    const std::size_t shots = 60000;
    const auto s = sim.sampleDetectors(shots, rng);

    std::array<std::size_t, 16> histogram{};
    for (std::size_t shot = 0; shot < shots; ++shot) {
        const unsigned pauli = s.det(shot, 0) | (s.det(shot, 1) << 1) |
                               (s.det(shot, 2) << 2) |
                               (s.det(shot, 3) << 3);
        ++histogram[pauli];
    }
    // At p=1 every lane errs, so the identity must never appear and
    // each of the 15 non-identity two-qubit Paulis is ~uniform.
    EXPECT_EQ(histogram[0], 0u);
    for (unsigned pauli = 1; pauli < 16; ++pauli) {
        const double freq = static_cast<double>(histogram[pauli]) /
                            static_cast<double>(shots);
        EXPECT_NEAR(freq, 1.0 / 15.0, 0.01) << "pauli " << pauli;
    }
}

TEST(FrameProgram, Depol2ExhaustedRetriesForceXOnFirstQubit)
{
    // Compile with a zero retry budget (test hook): a lane whose first
    // 4-bit draw is all-zero (probability 1/16) skips the rejection
    // loop entirely and is forced to X on the first qubit, so the
    // X-on-qubit-0 outcome absorbs the identity's probability mass.
    const auto c = depol2ProbeCircuit();
    const auto prog = FrameProgram::compile(c, 0);
    const FrameSimulator sim(prog);
    Rng rng(777);
    const std::size_t shots = 60000;
    const auto s = sim.sampleDetectors(shots, rng);

    std::array<std::size_t, 16> histogram{};
    for (std::size_t shot = 0; shot < shots; ++shot) {
        const unsigned pauli = s.det(shot, 0) | (s.det(shot, 1) << 1) |
                               (s.det(shot, 2) << 2) |
                               (s.det(shot, 3) << 3);
        ++histogram[pauli];
    }
    EXPECT_EQ(histogram[0], 0u);
    const auto freq = [&](unsigned pauli) {
        return static_cast<double>(histogram[pauli]) /
               static_cast<double>(shots);
    };
    EXPECT_NEAR(freq(0b0001), 2.0 / 16.0, 0.01); // X on qubit 0
    for (unsigned pauli = 2; pauli < 16; ++pauli)
        EXPECT_NEAR(freq(pauli), 1.0 / 16.0, 0.01) << "pauli " << pauli;
}

TEST(FrameProgram, PackedAccessorsRejectOutOfRangeInDebugBuilds)
{
#ifdef NDEBUG
    GTEST_SKIP() << "bounds asserts compile out under NDEBUG";
#else
    Circuit c(1);
    c.detector({c.measure(0)});
    c.observableInclude(0, {0});
    const FrameSimulator sim(c);
    Rng rng(1);
    const auto s = sim.sampleDetectors(10, rng);
    EXPECT_DEATH((void)s.det(10, 0), "out of range");
    EXPECT_DEATH((void)s.det(0, 1), "out of range");
    EXPECT_DEATH((void)s.obs(10, 0), "out of range");
    EXPECT_DEATH((void)s.obs(0, 1), "out of range");
#endif
}

} // namespace
} // namespace stab
} // namespace hetarch
