/**
 * @file
 * Tests for detector-error-model extraction, cross-validated against
 * direct frame sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stab/circuit.hh"
#include "stab/dem.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(Dem, SingleXErrorSingleDetector)
{
    Circuit c(1);
    c.xError(0, 0.1);
    c.detector({c.measure(0)});

    const auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_NEAR(dem.mechanisms[0].probability, 0.1, 1e-12);
    ASSERT_EQ(dem.mechanisms[0].detectors.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].detectors[0], 0u);
}

TEST(Dem, ZErrorBeforeZMeasurementDropsOut)
{
    Circuit c(1);
    c.zError(0, 0.3);
    c.detector({c.measure(0)});
    const auto dem = buildDetectorErrorModel(c);
    EXPECT_TRUE(dem.mechanisms.empty());
}

TEST(Dem, HadamardRoutesZToDetector)
{
    Circuit c(1);
    c.zError(0, 0.25);
    c.h(0);
    c.detector({c.measure(0)});
    const auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_NEAR(dem.mechanisms[0].probability, 0.25, 1e-12);
}

TEST(Dem, CnotPropagatesToTwoDetectors)
{
    Circuit c(2);
    c.xError(0, 0.1);
    c.cx(0, 1);
    c.detector({c.measure(0)});
    c.detector({c.measure(1)});
    const auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].detectors.size(), 2u);
}

TEST(Dem, DepolarizeSplitsIntoComponents)
{
    Circuit c(1);
    c.depolarize1(0, 0.3);
    c.detector({c.measure(0)});
    const auto dem = buildDetectorErrorModel(c);
    // X and Y both flip the measurement and merge into one mechanism:
    // p = p/3 + p/3 - 2 p^2/9.
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    const double p3 = 0.1;
    EXPECT_NEAR(dem.mechanisms[0].probability,
                p3 + p3 - 2 * p3 * p3, 1e-12);
}

TEST(Dem, ObservableMaskRecorded)
{
    Circuit c(1);
    c.xError(0, 0.2);
    const auto m = c.measure(0);
    c.detector({m});
    c.observableInclude(3, {m});
    const auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].observables, 1u << 3);
    EXPECT_EQ(dem.numObservables, 4u);
}

TEST(Dem, IdenticalMechanismsMerge)
{
    Circuit c(1);
    c.xError(0, 0.1);
    c.xError(0, 0.2);
    c.detector({c.measure(0)});
    const auto dem = buildDetectorErrorModel(c);
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    EXPECT_NEAR(dem.mechanisms[0].probability,
                0.1 * 0.8 + 0.2 * 0.9, 1e-12);
}

TEST(Dem, ResetErasesSensitivity)
{
    Circuit c(1);
    c.xError(0, 0.4);
    c.reset(0);
    c.detector({c.measure(0)});
    const auto dem = buildDetectorErrorModel(c);
    EXPECT_TRUE(dem.mechanisms.empty());
}

TEST(Dem, MeasureResetSeparatesRounds)
{
    // Two rounds of ancilla reuse: an error in round 1 should flip
    // only round-1-adjacent detectors.
    Circuit c(2);
    c.xError(0, 0.1);
    c.cx(0, 1);
    const auto m1 = c.measureReset(1);
    c.cx(0, 1);
    const auto m2 = c.measureReset(1);
    c.detector({m1});
    c.detector({m1, m2});
    const auto dem = buildDetectorErrorModel(c);
    // X on q0 flips both measurements; detector 1 (m1 xor m2) stays 0,
    // detector 0 fires.
    ASSERT_EQ(dem.mechanisms.size(), 1u);
    ASSERT_EQ(dem.mechanisms[0].detectors.size(), 1u);
    EXPECT_EQ(dem.mechanisms[0].detectors[0], 0u);
}

/** Shared helper: compare DEM-sampled and frame-sampled marginals. */
void
expectDemMatchesFrame(const Circuit& c, std::uint64_t seed)
{
    const auto dem = buildDetectorErrorModel(c);
    FrameSimulator frame(c);

    const std::size_t shots = 40000;
    Rng rng_f(seed);
    const auto fs = frame.sampleDetectors(shots, rng_f);

    std::vector<double> frame_rate(fs.numDetectors, 0.0);
    std::vector<double> dem_rate(fs.numDetectors, 0.0);
    double frame_obs = 0.0, dem_obs = 0.0;

    for (std::size_t s = 0; s < shots; ++s) {
        for (std::size_t d = 0; d < fs.numDetectors; ++d)
            frame_rate[d] += fs.det(s, d);
        if (fs.numObservables)
            frame_obs += fs.obs(s, 0);
    }
    Rng rng_d(seed + 1);
    for (std::size_t s = 0; s < shots; ++s) {
        const auto [dets, obs] = dem.sample(rng_d);
        for (std::size_t d = 0; d < dets.size(); ++d)
            dem_rate[d] += dets[d];
        dem_obs += obs & 1;
    }
    for (std::size_t d = 0; d < fs.numDetectors; ++d) {
        EXPECT_NEAR(frame_rate[d] / shots, dem_rate[d] / shots, 0.015)
            << "detector " << d;
    }
    if (fs.numObservables) {
        EXPECT_NEAR(frame_obs / shots, dem_obs / shots, 0.015);
    }
}

TEST(Dem, MatchesFrameSamplerOnMixedNoiseCircuit)
{
    Circuit c(4);
    c.h(0);
    c.depolarize1(0, 0.05);
    c.cx(0, 1);
    c.depolarize2(0, 1, 0.08);
    c.cx(1, 2);
    c.pauliChannel1(2, 0.02, 0.03, 0.04);
    c.cx(2, 3);
    c.xError(3, 0.06);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    const auto m2 = c.measure(2);
    const auto m3 = c.measure(3);
    c.detector({m0, m1});
    c.detector({m1, m2});
    c.detector({m2, m3});
    c.observableInclude(0, {m3});
    expectDemMatchesFrame(c, 404);
}

TEST(Dem, MatchesFrameSamplerWithAncillaReuse)
{
    Circuit c(3);
    for (int round = 0; round < 3; ++round) {
        c.depolarize1(0, 0.04);
        c.depolarize1(1, 0.04);
        c.cx(0, 2);
        c.cx(1, 2);
        c.measureReset(2);
    }
    // Detectors: first round absolute, then consecutive diffs.
    c.detector({0});
    c.detector({0, 1});
    c.detector({1, 2});
    const auto mf0 = c.measure(0);
    c.observableInclude(0, {mf0});
    expectDemMatchesFrame(c, 707);
}

TEST(Dem, TotalWeightReflectsNoise)
{
    Circuit quiet(1);
    quiet.detector({quiet.measure(0)});
    EXPECT_DOUBLE_EQ(buildDetectorErrorModel(quiet).totalErrorWeight(), 0.0);

    Circuit noisy(1);
    noisy.xError(0, 0.5);
    noisy.detector({noisy.measure(0)});
    EXPECT_GT(buildDetectorErrorModel(noisy).totalErrorWeight(), 0.4);
}

} // namespace
} // namespace stab
} // namespace hetarch
