/**
 * @file
 * Tests for the Pauli-frame sampler, including cross-validation against
 * the tableau simulator on noisy circuits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stab/circuit.hh"
#include "stab/frame.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace stab {
namespace {

/** Repetition-code memory circuit with X noise on data. */
Circuit
repetitionCircuit(int distance, int rounds, double p)
{
    // Data qubits 0..d-1, ancillas d..2d-2.
    Circuit c(static_cast<std::size_t>(2 * distance - 1));
    const auto d = static_cast<std::uint32_t>(distance);
    std::vector<std::size_t> prev(distance - 1, SIZE_MAX);

    for (int r = 0; r < rounds; ++r) {
        for (std::uint32_t i = 0; i < d; ++i)
            c.xError(i, p);
        for (std::uint32_t a = 0; a + 1 < d; ++a) {
            const std::uint32_t anc = d + a;
            c.cx(a, anc);
            c.cx(a + 1, anc);
            const auto m = c.measureReset(anc);
            if (prev[a] == SIZE_MAX)
                c.detector({m});
            else
                c.detector({prev[a], m});
            prev[a] = m;
        }
    }
    // Final data readout.
    std::vector<std::size_t> final_meas(distance);
    for (std::uint32_t i = 0; i < d; ++i)
        final_meas[i] = c.measure(i);
    for (std::uint32_t a = 0; a + 1 < d; ++a)
        c.detector({final_meas[a], final_meas[a + 1], prev[a]});
    c.observableInclude(0, {final_meas[0]});
    return c;
}

TEST(Frame, NoiselessCircuitHasQuietDetectors)
{
    auto c = repetitionCircuit(3, 3, 0.0);
    FrameSimulator sim(c);
    Rng rng(1);
    const auto samples = sim.sampleDetectors(256, rng);
    for (std::size_t s = 0; s < samples.shots; ++s) {
        for (std::size_t d = 0; d < samples.numDetectors; ++d)
            EXPECT_EQ(samples.det(s, d), 0);
        EXPECT_EQ(samples.obs(s, 0), 0);
    }
}

TEST(Frame, DetectorsAreDeterministicPrecondition)
{
    auto c = repetitionCircuit(3, 3, 0.05);
    EXPECT_TRUE(TableauSimulator::checkDetectorsDeterministic(c));
}

TEST(Frame, CertainErrorFiresDetector)
{
    Circuit c(2);
    c.xError(0, 1.0);
    c.cx(0, 1);
    const auto m = c.measureReset(1);
    c.detector({m});
    FrameSimulator sim(c);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(64, rng);
    for (std::size_t s = 0; s < 64; ++s)
        EXPECT_EQ(samples.det(s, 0), 1);
}

TEST(Frame, ZErrorInvisibleToZMeasurement)
{
    Circuit c(1);
    c.zError(0, 1.0);
    const auto m = c.measure(0);
    c.detector({m});
    FrameSimulator sim(c);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(64, rng);
    for (std::size_t s = 0; s < 64; ++s)
        EXPECT_EQ(samples.det(s, 0), 0);
}

TEST(Frame, HadamardConvertsZToX)
{
    Circuit c(1);
    c.zError(0, 1.0);
    c.h(0);
    const auto m = c.measure(0);
    c.detector({m});
    FrameSimulator sim(c);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(64, rng);
    for (std::size_t s = 0; s < 64; ++s)
        EXPECT_EQ(samples.det(s, 0), 1);
}

TEST(Frame, ErrorRateMatchesInjectedProbability)
{
    Circuit c(1);
    const double p = 0.2;
    c.xError(0, p);
    const auto m = c.measure(0);
    c.detector({m});
    FrameSimulator sim(c);
    Rng rng(17);
    const auto samples = sim.sampleDetectors(20000, rng);
    std::size_t fired = 0;
    for (std::size_t s = 0; s < samples.shots; ++s)
        fired += samples.det(s, 0);
    EXPECT_NEAR(static_cast<double>(fired) / samples.shots, p, 0.01);
}

TEST(Frame, MatchesTableauOnNoisyRepetitionCode)
{
    // Cross-validate per-detector marginal firing rates between the
    // frame sampler and the exact tableau simulator.
    auto c = repetitionCircuit(3, 2, 0.08);
    const std::size_t shots = 30000;

    FrameSimulator frame(c);
    Rng rng_f(101);
    const auto fs = frame.sampleDetectors(shots, rng_f);

    std::vector<double> frame_rate(fs.numDetectors, 0.0);
    double frame_obs = 0.0;
    for (std::size_t s = 0; s < shots; ++s) {
        for (std::size_t d = 0; d < fs.numDetectors; ++d)
            frame_rate[d] += fs.det(s, d);
        frame_obs += fs.obs(s, 0);
    }

    Rng rng_t(202);
    std::vector<double> tab_rate(fs.numDetectors, 0.0);
    double tab_obs = 0.0;
    // Tableau reference outcomes differ from noisy outcomes only by
    // the frame, and detectors cancel the reference, so annotation
    // values can be compared directly.
    for (std::size_t s = 0; s < shots / 10; ++s) {
        TableauSimulator sim(c.numQubits());
        const auto record = sim.run(c, rng_t);
        const auto [dets, obs] =
            TableauSimulator::annotationsFromRecord(c, record);
        for (std::size_t d = 0; d < dets.size(); ++d)
            tab_rate[d] += dets[d];
        tab_obs += obs[0];
    }

    for (std::size_t d = 0; d < fs.numDetectors; ++d) {
        const double fr = frame_rate[d] / static_cast<double>(shots);
        const double tr = tab_rate[d] / static_cast<double>(shots / 10);
        EXPECT_NEAR(fr, tr, 0.02) << "detector " << d;
    }
    EXPECT_NEAR(frame_obs / static_cast<double>(shots),
                tab_obs / static_cast<double>(shots / 10), 0.02);
}

TEST(Frame, Depolarize2ProducesBothSidedErrors)
{
    Circuit c(2);
    c.depolarize2(0, 1, 1.0);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    FrameSimulator sim(c);
    Rng rng(3);
    const auto samples = sim.sampleDetectors(20000, rng);
    double r0 = 0, r1 = 0;
    for (std::size_t s = 0; s < samples.shots; ++s) {
        r0 += samples.det(s, 0);
        r1 += samples.det(s, 1);
    }
    // 8 of 15 non-identity Paulis flip qubit a's Z measurement (X or Y
    // on a), same for b.
    EXPECT_NEAR(r0 / samples.shots, 8.0 / 15.0, 0.02);
    EXPECT_NEAR(r1 / samples.shots, 8.0 / 15.0, 0.02);
}

TEST(Frame, PauliChannelSelectsComponents)
{
    // Only Z component -> no Z-measurement flip; only X -> always flip.
    Circuit cz_only(1);
    cz_only.pauliChannel1(0, 0.0, 0.0, 1.0);
    cz_only.detector({cz_only.measure(0)});
    FrameSimulator sim_z(cz_only);
    Rng rng(9);
    const auto sz = sim_z.sampleDetectors(128, rng);
    for (std::size_t s = 0; s < 128; ++s)
        EXPECT_EQ(sz.det(s, 0), 0);

    Circuit cx_only(1);
    cx_only.pauliChannel1(0, 1.0, 0.0, 0.0);
    cx_only.detector({cx_only.measure(0)});
    FrameSimulator sim_x(cx_only);
    const auto sx = sim_x.sampleDetectors(128, rng);
    for (std::size_t s = 0; s < 128; ++s)
        EXPECT_EQ(sx.det(s, 0), 1);
}

TEST(Frame, ObservableAccumulatesAcrossIncludes)
{
    Circuit c(2);
    c.xError(0, 1.0);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.observableInclude(0, {m0});
    c.observableInclude(0, {m1}); // no flip; XOR total should stay 1
    FrameSimulator sim(c);
    Rng rng(2);
    const auto samples = sim.sampleDetectors(64, rng);
    for (std::size_t s = 0; s < 64; ++s)
        EXPECT_EQ(samples.obs(s, 0), 1);
}

} // namespace
} // namespace stab
} // namespace hetarch
