/**
 * @file
 * Tests for the circuit IR builder: measurement-record bookkeeping,
 * append() offset remapping, qubit growth, and validation.
 */

#include <gtest/gtest.h>

#include "stab/circuit.hh"
#include "stab/frame.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(Circuit, MeasurementIndicesAreSequential)
{
    Circuit c(3);
    EXPECT_EQ(c.measure(0), 0u);
    EXPECT_EQ(c.measureReset(1), 1u);
    EXPECT_EQ(c.measure(2), 2u);
    EXPECT_EQ(c.numMeasurements(), 3u);
}

TEST(Circuit, EnsureQubitGrowsRegister)
{
    Circuit c(1);
    c.h(5);
    EXPECT_EQ(c.numQubits(), 6u);
}

TEST(Circuit, DetectorValidatesMeasurementIndices)
{
    Circuit c(1);
    c.measure(0);
    EXPECT_DEATH(c.detector({3}), "references measurement");
}

TEST(Circuit, ObservableTracksMaxIndex)
{
    Circuit c(2);
    const auto m = c.measure(0);
    c.observableInclude(4, {m});
    EXPECT_EQ(c.numObservables(), 5u);
}

TEST(Circuit, ZeroProbabilityNoiseElided)
{
    Circuit c(1);
    c.xError(0, 0.0);
    c.depolarize1(0, 0.0);
    c.pauliChannel1(0, 0.0, 0.0, 0.0);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, AppendRemapsMeasurementReferences)
{
    // Two copies of a detector-bearing block: the second block's
    // detectors must reference the second block's measurements.
    Circuit block(2);
    block.xError(0, 1.0);
    // measure-reset keeps blocks independent when repeated.
    const auto m0 = block.measureReset(0);
    const auto m1 = block.measure(1);
    block.detector({m0}, 7);
    block.observableInclude(0, {m1});

    Circuit total(2);
    total.append(block);
    total.append(block);
    EXPECT_EQ(total.numMeasurements(), 4u);
    EXPECT_EQ(total.numDetectors(), 2u);
    EXPECT_EQ(total.detectorTags().size(), 2u);
    EXPECT_EQ(total.detectorTags()[1], 7u);

    // Both detectors must fire (each block has its own X error).
    FrameSimulator sim(total);
    Rng rng(5);
    const auto s = sim.sampleDetectors(64, rng);
    for (std::size_t shot = 0; shot < 64; ++shot) {
        EXPECT_EQ(s.det(shot, 0), 1);
        EXPECT_EQ(s.det(shot, 1), 1);
        // Observable accumulated across both blocks: two X errors on
        // qubit 1? No: the X error hits qubit 0 only; qubit 1 is
        // untouched, so both measurements read 0 and the XOR is 0.
        EXPECT_EQ(s.obs(shot, 0), 0);
    }
}

TEST(Circuit, AppendGrowsQubitCount)
{
    Circuit small(2);
    Circuit big(5);
    small.append(big);
    EXPECT_EQ(small.numQubits(), 5u);
}

TEST(Circuit, ToStringMentionsOps)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.depolarize2(0, 1, 0.25);
    c.measure(1);
    const auto text = c.toString();
    EXPECT_NE(text.find("H 0"), std::string::npos);
    EXPECT_NE(text.find("CX 0 1"), std::string::npos);
    EXPECT_NE(text.find("DEPOLARIZE2"), std::string::npos);
    EXPECT_NE(text.find("p=0.25"), std::string::npos);
}

TEST(Circuit, SelfTargetTwoQubitOpDies)
{
    Circuit c(2);
    EXPECT_DEATH(c.cx(1, 1), "distinct");
    EXPECT_DEATH(c.depolarize2(0, 0, 0.1), "distinct");
}

TEST(Circuit, AppendedRepetitionBlocksDecodeCorrectly)
{
    // Build a two-round repetition experiment via append() and verify
    // it behaves identically to the inline construction.
    Circuit round_block(3);
    for (std::uint32_t q = 0; q < 2; ++q)
        round_block.xError(q, 0.1);
    round_block.cx(0, 2);
    round_block.cx(1, 2);
    round_block.measureReset(2);

    Circuit total(3);
    total.append(round_block);
    total.detector({0});
    total.append(round_block);
    total.detector({0, 1});

    EXPECT_TRUE(TableauSimulator::checkDetectorsDeterministic(total));
    EXPECT_EQ(total.numDetectors(), 2u);
}

} // namespace
} // namespace stab
} // namespace hetarch
