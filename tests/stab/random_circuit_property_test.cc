/**
 * @file
 * Property tests on random Clifford circuits: the batched Pauli-frame
 * sampler, the exact tableau simulator, and the detector-error-model
 * sampler must agree on detector marginals for *any* circuit whose
 * detectors are noise-deterministic.  Parameterized over random seeds.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "stab/circuit.hh"
#include "stab/dem.hh"
#include "stab/frame.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace stab {
namespace {

/**
 * Random syndrome-extraction-like circuit: a few data qubits, a few
 * ancillas measured twice with difference detectors, random Clifford
 * scrambling in between, and noise sprinkled throughout.  Detectors
 * built this way are deterministic by construction.
 */
Circuit
randomCircuit(std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t n_data = 3 + rng.uniformInt(3);
    const std::size_t n_anc = 2 + rng.uniformInt(2);
    Circuit c(n_data + n_anc);

    auto random_clifford_layer = [&]() {
        for (std::uint32_t q = 0; q < n_data; ++q) {
            switch (rng.uniformInt(4)) {
              case 0: c.h(q); break;
              case 1: c.s(q); break;
              case 2: break;
              default: {
                const auto other = static_cast<std::uint32_t>(
                    rng.uniformInt(n_data));
                if (other != q)
                    c.cx(q, other);
                break;
              }
            }
        }
    };
    auto noise_layer = [&]() {
        for (std::uint32_t q = 0; q < n_data; ++q) {
            if (rng.bernoulli(0.5))
                c.depolarize1(q, 0.02 + 0.05 * rng.uniform());
            if (rng.bernoulli(0.3))
                c.xError(q, 0.05 * rng.uniform());
        }
    };

    random_clifford_layer();

    // Two rounds of identical random stabilizer-ish measurements with
    // difference detectors.
    std::vector<std::vector<std::uint32_t>> supports(n_anc);
    for (std::size_t a = 0; a < n_anc; ++a) {
        const std::size_t w = 1 + rng.uniformInt(3);
        for (std::size_t i = 0; i < w; ++i) {
            supports[a].push_back(
                static_cast<std::uint32_t>(rng.uniformInt(n_data)));
        }
    }
    std::vector<std::size_t> first(n_anc);
    for (int round = 0; round < 2; ++round) {
        noise_layer();
        for (std::size_t a = 0; a < n_anc; ++a) {
            const auto anc = static_cast<std::uint32_t>(n_data + a);
            for (auto q : supports[a])
                c.cx(q, anc);
            const auto m = c.measureReset(anc);
            if (round == 0)
                first[a] = m;
            else
                c.detector({first[a], m});
        }
    }
    // Observable: parity of two consecutive Z readouts of qubit 0,
    // which is deterministic (zero) without noise but sensitive to X
    // errors in between.
    const auto m_first = c.measure(0);
    for (std::uint32_t q = 0; q < n_data; ++q)
        c.xError(q, 0.02);
    const auto m_second = c.measure(0);
    c.observableInclude(0, {m_first, m_second});
    return c;
}

class RandomCircuitAgreement : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCircuitAgreement, DetectorsAreDeterministic)
{
    const auto c = randomCircuit(1000 + GetParam());
    EXPECT_TRUE(TableauSimulator::checkDetectorsDeterministic(c));
}

TEST_P(RandomCircuitAgreement, FrameMatchesTableauMarginals)
{
    const auto c = randomCircuit(1000 + GetParam());

    const std::size_t frame_shots = 20000;
    FrameSimulator frame(c);
    Rng rng_f(1 + GetParam());
    const auto fs = frame.sampleDetectors(frame_shots, rng_f);

    const std::size_t tab_shots = 3000;
    Rng rng_t(2 + GetParam());
    std::vector<double> tab_rate(c.numDetectors(), 0.0);
    for (std::size_t s = 0; s < tab_shots; ++s) {
        TableauSimulator sim(c.numQubits());
        const auto record = sim.run(c, rng_t);
        const auto [dets, obs] =
            TableauSimulator::annotationsFromRecord(c, record);
        for (std::size_t d = 0; d < dets.size(); ++d)
            tab_rate[d] += dets[d];
    }
    for (std::size_t d = 0; d < c.numDetectors(); ++d) {
        double frame_rate = 0.0;
        for (std::size_t s = 0; s < frame_shots; ++s)
            frame_rate += fs.det(s, d);
        EXPECT_NEAR(frame_rate / frame_shots, tab_rate[d] / tab_shots,
                    0.035)
            << "detector " << d << " seed " << GetParam();
    }
}

TEST_P(RandomCircuitAgreement, DemMatchesFrameMarginals)
{
    const auto c = randomCircuit(1000 + GetParam());
    const auto dem = buildDetectorErrorModel(c);

    const std::size_t shots = 20000;
    FrameSimulator frame(c);
    Rng rng_f(3 + GetParam());
    const auto fs = frame.sampleDetectors(shots, rng_f);

    Rng rng_d(4 + GetParam());
    std::vector<double> dem_rate(c.numDetectors(), 0.0);
    for (std::size_t s = 0; s < shots; ++s) {
        const auto [dets, obs] = dem.sample(rng_d);
        for (std::size_t d = 0; d < dets.size(); ++d)
            dem_rate[d] += dets[d];
    }
    for (std::size_t d = 0; d < c.numDetectors(); ++d) {
        double frame_rate = 0.0;
        for (std::size_t s = 0; s < shots; ++s)
            frame_rate += fs.det(s, d);
        EXPECT_NEAR(frame_rate / shots, dem_rate[d] / shots, 0.025)
            << "detector " << d << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitAgreement,
                         ::testing::Range(0, 8));

} // namespace
} // namespace stab
} // namespace hetarch
