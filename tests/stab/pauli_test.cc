/**
 * @file
 * Unit tests for Pauli-string algebra.
 */

#include <gtest/gtest.h>

#include "stab/pauli.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(BitVec, SetGetFlip)
{
    BitVec v(130);
    EXPECT_FALSE(v.get(129));
    v.set(129, true);
    EXPECT_TRUE(v.get(129));
    v.flip(129);
    EXPECT_FALSE(v.get(129));
    EXPECT_TRUE(v.allZero());
}

TEST(BitVec, PopcountAndParity)
{
    BitVec a(100), b(100);
    a.set(3, true);
    a.set(64, true);
    a.set(99, true);
    EXPECT_EQ(a.popcount(), 3u);
    b.set(64, true);
    b.set(99, true);
    EXPECT_FALSE(a.andParity(b)); // two common bits -> even parity
    b.set(3, true);
    EXPECT_TRUE(a.andParity(b)); // three common -> odd
}

TEST(PauliString, FromToString)
{
    const auto p = PauliString::fromString("XIZY");
    EXPECT_EQ(p.letter(0), 'X');
    EXPECT_EQ(p.letter(1), 'I');
    EXPECT_EQ(p.letter(2), 'Z');
    EXPECT_EQ(p.letter(3), 'Y');
    EXPECT_EQ(p.toString(), "+XIZY");
    EXPECT_EQ(PauliString::fromString("-XX").toString(), "-XX");
}

TEST(PauliString, Weight)
{
    EXPECT_EQ(PauliString::fromString("IXYZI").weight(), 3u);
    EXPECT_EQ(PauliString(5).weight(), 0u);
    EXPECT_TRUE(PauliString(5).isIdentity());
}

TEST(PauliString, SingleQubitProducts)
{
    const auto X = PauliString::fromString("X");
    const auto Y = PauliString::fromString("Y");
    const auto Z = PauliString::fromString("Z");

    // X * Y = iZ
    auto xy = X * Y;
    EXPECT_EQ(xy.letter(0), 'Z');
    EXPECT_EQ(xy.phase(), 1);
    // Y * X = -iZ
    auto yx = Y * X;
    EXPECT_EQ(yx.phase(), 3);
    // Z * X = iY
    auto zx = Z * X;
    EXPECT_EQ(zx.letter(0), 'Y');
    EXPECT_EQ(zx.phase(), 1);
    // X * Z = -iY
    auto xz = X * Z;
    EXPECT_EQ(xz.phase(), 3);
    // Y * Z = iX
    auto yz = Y * Z;
    EXPECT_EQ(yz.letter(0), 'X');
    EXPECT_EQ(yz.phase(), 1);
    // X * X = I
    auto xx = X * X;
    EXPECT_TRUE(xx.isIdentity());
    EXPECT_EQ(xx.phase(), 0);
    // Y * Y = I
    EXPECT_EQ((Y * Y).phase(), 0);
}

TEST(PauliString, MultiQubitProductPhase)
{
    // (X x Y) * (Y x X) = (XY) x (YX) = (iZ) x (-iZ) = Z x Z.
    const auto a = PauliString::fromString("XY");
    const auto b = PauliString::fromString("YX");
    const auto p = a * b;
    EXPECT_EQ(p.toString(), "+ZZ");
}

TEST(PauliString, Commutation)
{
    const auto xx = PauliString::fromString("XX");
    const auto zz = PauliString::fromString("ZZ");
    const auto zi = PauliString::fromString("ZI");
    EXPECT_TRUE(xx.commutesWith(zz));  // two anticommuting sites
    EXPECT_FALSE(xx.commutesWith(zi)); // one anticommuting site
    EXPECT_TRUE(zz.commutesWith(zi));
}

TEST(PauliString, CommutationMatchesProductOrder)
{
    // P and Q commute iff PQ == QP including phase.
    const std::vector<std::string> strs = {"XIY", "ZZI", "YXZ", "IIX"};
    for (const auto& s1 : strs) {
        for (const auto& s2 : strs) {
            const auto p = PauliString::fromString(s1);
            const auto q = PauliString::fromString(s2);
            const auto pq = p * q;
            const auto qp = q * p;
            const bool same_phase = pq.phase() == qp.phase();
            EXPECT_EQ(p.commutesWith(q), same_phase)
                << s1 << " vs " << s2;
        }
    }
}

TEST(PauliString, SingleFactory)
{
    const auto p = PauliString::single(5, 3, 'Y');
    EXPECT_EQ(p.letter(3), 'Y');
    EXPECT_EQ(p.weight(), 1u);
    EXPECT_EQ(p.numQubits(), 5u);
}

} // namespace
} // namespace stab
} // namespace hetarch
