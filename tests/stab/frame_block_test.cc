/**
 * @file
 * Pins the word-parallel block sampler's contracts:
 *
 *   - samples are bit-identical at every block width (1, 4, 8 words),
 *     including ragged shot counts that end in a partial word and in a
 *     partial block;
 *   - the block path consumes the RNG stream exactly like the
 *     sequential 64-shot path (noise words are resolved in the same
 *     order), so generator state after sampling matches too;
 *   - runBatchBlock over W words reproduces W sequential runBatch
 *     calls word for word (measurement rows and flip totals);
 *   - every stab.sampler.* counter delta is invariant under the
 *     configured width.
 *
 * The circuit under test covers every opcode the frame pipeline
 * lowers: all unitaries, M/R/MR, both biased errors, the Pauli-1
 * channel, and both depolarizing channels (DEPOL2 exercises the
 * rejection-retry tape rows).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "obs/obs.hh"
#include "stab/circuit.hh"
#include "stab/frame.hh"
#include "stab/frame_program.hh"

namespace hetarch {
namespace stab {
namespace {

/** Restore the configured block width on scope exit. */
struct WidthGuard
{
    std::size_t saved = frameBlockWords();
    ~WidthGuard() { setFrameBlockWords(saved); }
};

/** A circuit touching every lowered opcode, over two noisy rounds. */
Circuit
opcodeSoup()
{
    Circuit c(4);
    c.h(0);
    c.s(1);
    c.sdg(2);
    c.x(3);
    c.y(0);
    c.z(1);
    c.xError(0, 0.3);
    c.zError(1, 0.2);
    c.pauliChannel1(2, 0.05, 0.1, 0.15);
    c.depolarize1(3, 0.25);
    c.depolarize2(0, 1, 0.2);
    c.cx(0, 1);
    c.cz(1, 2);
    c.swap(2, 3);
    std::vector<std::size_t> r0;
    for (std::uint32_t q = 0; q < 4; ++q)
        r0.push_back(c.measureReset(q));
    c.depolarize2(2, 3, 0.15);
    c.h(0);
    c.reset(1);
    c.xError(2, 0.4);
    std::vector<std::size_t> r1;
    for (std::uint32_t q = 0; q < 4; ++q)
        r1.push_back(c.measure(q));
    for (std::uint32_t q = 0; q < 4; ++q)
        c.detector({r0[q], r1[q]});
    c.observableInclude(0, {r1[0], r1[2]});
    return c;
}

std::uint64_t
counterValue(const obs::Snapshot& snap, const std::string& name)
{
    for (const auto& [n, v] : snap.counters)
        if (n == name)
            return v;
    return 0;
}

TEST(FrameBlock, SamplesAreBitIdenticalAtEveryWidth)
{
    const auto circuit = opcodeSoup();
    const FrameSimulator frame(circuit);
    WidthGuard guard;

    // 300 shots = 4 full words + a 44-lane partial word; with width 4
    // the last block also holds fewer words than the width.
    for (const std::size_t shots : {std::size_t{300}, std::size_t{64},
                                    std::size_t{1}, std::size_t{513}}) {
        setFrameBlockWords(1);
        Rng rng_ref(777);
        const auto ref = frame.sampleDetectors(shots, rng_ref);
        // RNG-consumption parity: every width must leave the generator
        // exactly where the 1-word path left it.
        const std::uint64_t next_draw = rng_ref();

        for (const std::size_t width : {std::size_t{4}, std::size_t{8}}) {
            setFrameBlockWords(width);
            Rng rng(777);
            const auto got = frame.sampleDetectors(shots, rng);
            EXPECT_EQ(got.detWords, ref.detWords)
                << "width=" << width << " shots=" << shots;
            EXPECT_EQ(got.obsWords, ref.obsWords)
                << "width=" << width << " shots=" << shots;
            EXPECT_EQ(rng(), next_draw)
                << "width=" << width << " shots=" << shots;
        }
    }
}

TEST(FrameBlock, BlockPathMatchesReferenceInterpreter)
{
    const auto circuit = opcodeSoup();
    const FrameSimulator frame(circuit);
    WidthGuard guard;
    setFrameBlockWords(8);

    Rng rng_packed(42);
    Rng rng_ref(42);
    const auto packed = frame.sampleDetectors(500, rng_packed);
    const auto ref = frame.sampleDetectorsReference(500, rng_ref);
    EXPECT_EQ(packed.detWords, ref.detWords);
    EXPECT_EQ(packed.obsWords, ref.obsWords);
    EXPECT_EQ(rng_packed(), rng_ref());
}

TEST(FrameBlock, RunBatchBlockReproducesSequentialBatches)
{
    const auto circuit = opcodeSoup();
    const auto prog = FrameProgram::compile(circuit);
    const std::size_t words = 4;

    Rng rng_seq(9001);
    FrameScratch seq;
    std::vector<std::vector<std::uint64_t>> meas_by_word;
    std::uint64_t flips_seq = 0;
    for (std::size_t j = 0; j < words; ++j) {
        flips_seq += prog->runBatch(seq, rng_seq);
        meas_by_word.push_back(seq.meas);
    }

    Rng rng_blk(9001);
    FrameBlockScratch blk;
    const std::uint64_t flips_blk =
        prog->runBatchBlock(blk, words, rng_blk);

    EXPECT_EQ(flips_blk, flips_seq);
    ASSERT_EQ(blk.meas.size(), prog->numMeasurements() * words);
    for (std::size_t m = 0; m < prog->numMeasurements(); ++m)
        for (std::size_t j = 0; j < words; ++j)
            EXPECT_EQ(blk.meas[m * words + j], meas_by_word[j][m])
                << "measurement " << m << " word " << j;
    EXPECT_EQ(rng_blk(), rng_seq());
}

TEST(FrameBlock, CounterDeltasAreWidthInvariant)
{
    const auto circuit = opcodeSoup();
    const FrameSimulator frame(circuit);
    WidthGuard guard;

    const auto deltas = [&](std::size_t width) {
        setFrameBlockWords(width);
        obs::Registry::instance().reset();
        Rng rng(31337);
        const auto unused = frame.sampleDetectors(777, rng);
        (void)unused;
        return obs::Registry::instance().snapshot();
    };

    const auto ref = deltas(1);
    EXPECT_EQ(counterValue(ref, "stab.sampler.shots"), 777u);
    EXPECT_EQ(counterValue(ref, "stab.sampler.batches"), 13u);
    EXPECT_GT(counterValue(ref, "stab.sampler.noise_words"), 0u);
    for (const std::size_t width : {std::size_t{4}, std::size_t{8}}) {
        const auto got = deltas(width);
        for (const char* name :
             {"stab.sampler.calls", "stab.sampler.shots",
              "stab.sampler.batches", "stab.sampler.frame_flips",
              "stab.sampler.noise_words"}) {
            EXPECT_EQ(counterValue(got, name), counterValue(ref, name))
                << name << " at width " << width;
        }
    }
}

TEST(FrameBlock, ConfiguredWidthIsClampedToSupportedRange)
{
    WidthGuard guard;
    setFrameBlockWords(0);
    EXPECT_EQ(frameBlockWords(), 1u);
    setFrameBlockWords(3);
    EXPECT_EQ(frameBlockWords(), 3u);
    setFrameBlockWords(99);
    EXPECT_EQ(frameBlockWords(), kMaxFrameBlockWords);
}

} // namespace
} // namespace stab
} // namespace hetarch
