/**
 * @file
 * Unit tests for the tableau simulator.
 */

#include <gtest/gtest.h>

#include "stab/circuit.hh"
#include "stab/tableau.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(Tableau, InitialStateMeasuresZero)
{
    TableauSimulator sim(3);
    Rng rng(1);
    for (std::size_t q = 0; q < 3; ++q) {
        bool was_random = true;
        EXPECT_FALSE(sim.measure(q, rng, &was_random));
        EXPECT_FALSE(was_random);
    }
}

TEST(Tableau, XFlipsMeasurement)
{
    TableauSimulator sim(2);
    Rng rng(1);
    sim.x(1);
    EXPECT_FALSE(sim.measure(0, rng));
    EXPECT_TRUE(sim.measure(1, rng));
}

TEST(Tableau, HadamardGivesRandomOutcome)
{
    Rng rng(7);
    int ones = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        TableauSimulator sim(1);
        sim.h(0);
        bool was_random = false;
        if (sim.measure(0, rng, &was_random))
            ++ones;
        EXPECT_TRUE(was_random);
    }
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.05);
}

TEST(Tableau, MeasurementIsRepeatable)
{
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        TableauSimulator sim(1);
        sim.h(0);
        const bool first = sim.measure(0, rng);
        bool was_random = true;
        const bool second = sim.measure(0, rng, &was_random);
        EXPECT_EQ(first, second);
        EXPECT_FALSE(was_random);
    }
}

TEST(Tableau, BellPairCorrelations)
{
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        TableauSimulator sim(2);
        sim.h(0);
        sim.cx(0, 1);
        const bool a = sim.measure(0, rng);
        bool was_random = true;
        const bool b = sim.measure(1, rng, &was_random);
        EXPECT_EQ(a, b);
        EXPECT_FALSE(was_random);
    }
}

TEST(Tableau, GhzParity)
{
    Rng rng(13);
    for (int i = 0; i < 30; ++i) {
        TableauSimulator sim(4);
        sim.h(0);
        for (std::size_t q = 1; q < 4; ++q)
            sim.cx(0, q);
        bool parity = false;
        for (std::size_t q = 0; q < 4; ++q)
            parity ^= sim.measure(q, rng);
        EXPECT_FALSE(parity); // all equal -> even parity
    }
}

TEST(Tableau, ExpectationValues)
{
    TableauSimulator sim(2);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZI")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("XI")), 0);
    sim.x(0);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZI")), -1);
    sim.h(1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("IX")), 1);
}

TEST(Tableau, BellStabilizers)
{
    TableauSimulator sim(2);
    sim.h(0);
    sim.cx(0, 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("XX")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZZ")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("YY")), -1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZI")), 0);
}

TEST(Tableau, CzMatchesHCxH)
{
    // CZ|++> stays symmetric; verify via stabilizer expectations on a
    // known state: CZ (H x H)|00> has stabilizers XZ and ZX.
    TableauSimulator sim(2);
    sim.h(0);
    sim.h(1);
    sim.cz(0, 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("XZ")), 1);
    EXPECT_EQ(sim.expectation(PauliString::fromString("ZX")), 1);
}

TEST(Tableau, SwapMovesState)
{
    Rng rng(5);
    TableauSimulator sim(2);
    sim.x(0);
    sim.swapQubits(0, 1);
    EXPECT_FALSE(sim.measure(0, rng));
    EXPECT_TRUE(sim.measure(1, rng));
}

TEST(Tableau, SGateActsOnY)
{
    // S|+> has stabilizer Y.
    TableauSimulator sim(1);
    sim.h(0);
    sim.s(0);
    EXPECT_EQ(sim.expectation(PauliString::fromString("Y")), 1);
    // SDG undoes it.
    sim.sdg(0);
    EXPECT_EQ(sim.expectation(PauliString::fromString("X")), 1);
}

TEST(Tableau, ResetClearsState)
{
    Rng rng(9);
    TableauSimulator sim(1);
    sim.h(0);
    sim.reset(0, rng);
    bool was_random = true;
    EXPECT_FALSE(sim.measure(0, rng, &was_random));
    EXPECT_FALSE(was_random);
}

TEST(Tableau, RunCircuitWithRecord)
{
    Circuit c(3);
    c.x(0);
    c.measure(0);
    c.measure(1);
    c.h(2);
    c.measure(2);

    TableauSimulator sim(3);
    Rng rng(21);
    const auto record = sim.run(c, rng);
    ASSERT_EQ(record.size(), 3u);
    EXPECT_TRUE(record[0]);
    EXPECT_FALSE(record[1]);
}

TEST(Tableau, DetectorsFromRecord)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0, m1});

    TableauSimulator sim(2);
    Rng rng(33);
    const auto record = sim.run(c, rng);
    const auto [dets, obs] =
        TableauSimulator::annotationsFromRecord(c, record);
    ASSERT_EQ(dets.size(), 1u);
    EXPECT_FALSE(dets[0]); // Bell parity is deterministic even parity
}

TEST(Tableau, CheckDetectorsDeterministicAcceptsGood)
{
    // Repetition-code style circuit: parity of neighbouring data
    // measurements is deterministic.
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    const auto m2 = c.measure(2);
    c.detector({m0, m1});
    c.detector({m1, m2});
    EXPECT_TRUE(TableauSimulator::checkDetectorsDeterministic(c));
}

TEST(Tableau, CheckDetectorsDeterministicRejectsBad)
{
    Circuit c(1);
    c.h(0);
    const auto m = c.measure(0); // random outcome
    c.detector({m});
    EXPECT_FALSE(TableauSimulator::checkDetectorsDeterministic(c, 8));
}

TEST(Tableau, NoiseChangesOutcomes)
{
    Circuit c(1);
    c.xError(0, 1.0); // always flips
    c.measure(0);
    TableauSimulator sim(1);
    Rng rng(2);
    const auto record = sim.run(c, rng);
    EXPECT_TRUE(record[0]);
}

TEST(Tableau, MeasureResetLeavesZero)
{
    Circuit c(1);
    c.x(0);
    c.measureReset(0);
    c.measure(0);
    TableauSimulator sim(1);
    Rng rng(4);
    const auto record = sim.run(c, rng);
    EXPECT_TRUE(record[0]);
    EXPECT_FALSE(record[1]);
}

} // namespace
} // namespace stab
} // namespace hetarch
