/**
 * @file
 * Tests for circuit text serialization: parsing, round-tripping, and
 * equivalence of parsed circuits under simulation.
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit_io.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace stab {
namespace {

TEST(CircuitIo, ParsesBasicOps)
{
    const auto c = parseCircuit(R"(
        # prepare a Bell pair and check its parity
        H 0
        CX 0 1
        X_ERROR p=0.125 1
        M 0
        M 1
        DETECTOR 0 1
        OBSERVABLE_INCLUDE(0) 1
    )");
    EXPECT_EQ(c.numQubits(), 2u);
    EXPECT_EQ(c.numMeasurements(), 2u);
    EXPECT_EQ(c.numDetectors(), 1u);
    EXPECT_EQ(c.numObservables(), 1u);
}

TEST(CircuitIo, RoundTripSmallCircuit)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.depolarize2(0, 1, 0.03125);
    c.pauliChannel1(2, 0.01, 0.02, 0.0303);
    c.swap(1, 2);
    const auto m0 = c.measureReset(1);
    const auto m1 = c.measure(2);
    c.detector({m0}, 1);
    c.detector({m0, m1}, 0);
    c.observableInclude(2, {m1});

    const auto parsed = parseCircuit(c.toString());
    EXPECT_TRUE(circuitsEquivalent(c, parsed));
    EXPECT_EQ(parsed.detectorTags(), c.detectorTags());
}

TEST(CircuitIo, RoundTripSurfaceCodeCircuit)
{
    qec::CircuitNoise noise;
    const auto c = qec::surfaceMemoryZ(3, 2, noise);
    const auto parsed = parseCircuit(c.toString());
    EXPECT_TRUE(circuitsEquivalent(c, parsed));

    // Parsed circuit must produce the identical detector error model.
    const auto dem_a = buildDetectorErrorModel(c);
    const auto dem_b = buildDetectorErrorModel(parsed);
    ASSERT_EQ(dem_a.mechanisms.size(), dem_b.mechanisms.size());
    for (std::size_t i = 0; i < dem_a.mechanisms.size(); ++i) {
        EXPECT_EQ(dem_a.mechanisms[i].detectors,
                  dem_b.mechanisms[i].detectors);
        EXPECT_NEAR(dem_a.mechanisms[i].probability,
                    dem_b.mechanisms[i].probability, 1e-12);
    }
}

TEST(CircuitIo, RejectsUnknownOp)
{
    EXPECT_DEATH(parseCircuit("FROBNICATE 0"), "unknown op");
}

TEST(CircuitIo, RejectsBadArity)
{
    EXPECT_DEATH(parseCircuit("CX 0"), "expects");
    EXPECT_DEATH(parseCircuit("X_ERROR 0"), "expects");
}

TEST(CircuitIo, RejectsDanglingRecordReference)
{
    EXPECT_DEATH(parseCircuit("M 0\nDETECTOR 5"),
                 "references measurement");
}

TEST(CircuitIo, CommentsAndBlanksIgnored)
{
    const auto c = parseCircuit("\n  # nothing here\n\nH 0 # trailing\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(CircuitIo, EquivalenceDetectsDifferences)
{
    Circuit a(1), b(1);
    a.h(0);
    b.s(0);
    EXPECT_FALSE(circuitsEquivalent(a, b));
    Circuit c(1), d(1);
    c.xError(0, 0.1);
    d.xError(0, 0.2);
    EXPECT_FALSE(circuitsEquivalent(c, d));
}

} // namespace
} // namespace stab
} // namespace hetarch
