/**
 * @file
 * Table-driven sweep over the timing fixture corpus
 * (tests/lint/fixtures/timing/): each .circ file carries
 * "# timing-device:" / "# storage-device:" / "# storage-qubits:" /
 * "# expect-latency:" / "# expect-hazard:" annotations, and the
 * schedule analyzer must reproduce exactly those expectations.  The
 * same corpus is swept through the hetarch-lint CLI (--timing) by
 * scripts/check_lint_clean.sh; this test exercises the library path
 * with full structural access.  Companion of fault_fixture_test.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "devices/device.hh"
#include "lint/lint.hh"
#include "lint/schedule.hh"
#include "stab/circuit_io.hh"

#ifndef HETARCH_LINT_FIXTURE_DIR
#error "HETARCH_LINT_FIXTURE_DIR must point at tests/lint/fixtures"
#endif

namespace hetarch {
namespace lint {
namespace sched {
namespace {

struct Fixture
{
    std::string name;
    std::string text;
    std::string device = "fixed-frequency-transmon";
    std::string storageDevice;
    std::vector<std::uint32_t> storageQubits;
    /** Parsed "# expect-latency:" (< 0 = not annotated). */
    double expectLatency = -1.0;
    /** Every "# expect-hazard:" line, in file order. */
    std::vector<std::string> expectHazards;
};

std::vector<std::string>
annotations(const std::string& text, const std::string& key)
{
    std::vector<std::string> out;
    const std::string tag = "# " + key + ": ";
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        if (line.rfind(tag, 0) == 0)
            out.push_back(line.substr(tag.size()));
    return out;
}

std::string
annotation(const std::string& text, const std::string& key)
{
    const auto all = annotations(text, key);
    return all.empty() ? "" : all.front();
}

Fixture
loadFixture(const std::string& name)
{
    const std::string path = std::string(HETARCH_LINT_FIXTURE_DIR) +
                             "/timing/" + name + ".circ";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();

    Fixture f;
    f.name = name;
    f.text = buf.str();
    const auto device = annotation(f.text, "timing-device");
    EXPECT_FALSE(device.empty()) << name << " lacks # timing-device";
    f.device = device;
    f.storageDevice = annotation(f.text, "storage-device");
    const auto qubits = annotation(f.text, "storage-qubits");
    if (!qubits.empty()) {
        std::istringstream ss(qubits);
        std::string item;
        while (std::getline(ss, item, ','))
            f.storageQubits.push_back(static_cast<std::uint32_t>(
                std::stoul(item)));
        EXPECT_FALSE(f.storageQubits.empty()) << name;
    }
    const auto latency = annotation(f.text, "expect-latency");
    if (!latency.empty())
        f.expectLatency = std::strtod(latency.c_str(), nullptr);
    f.expectHazards = annotations(f.text, "expect-hazard");
    return f;
}

devices::DeviceModel
catalogDevice(const std::string& name)
{
    for (const auto& d : devices::table1Catalog())
        if (d.name == name)
            return d;
    ADD_FAILURE() << "unknown catalog device " << name;
    return devices::fixedFrequencyTransmon();
}

TimingModel
fixtureModel(const Fixture& f, std::size_t num_qubits)
{
    if (f.storageQubits.empty())
        return TimingModel::uniform(catalogDevice(f.device),
                                    num_qubits);
    return TimingModel::withStorage(catalogDevice(f.device),
                                    catalogDevice(f.storageDevice),
                                    num_qubits, f.storageQubits);
}

/** Every fixture in the corpus; keep in sync with the directory. */
const char* const kCorpus[] = {
    "clean_parity",       "gate_on_storage", "measure_storage",
    "storage_capacity",   "storage_port_conflict",
    "measure_then_reuse",
};

/** The one warning-severity pass; everything else is an error. */
bool
isWarningPass(const std::string& pass)
{
    return pass == "sched-reset-gap";
}

TEST(TimingFixtures, AnnotationsMatchAnalyzerOutput)
{
    for (const auto* name : kCorpus) {
        const auto fixture = loadFixture(name);
        const auto circuit = stab::parseCircuit(fixture.text);

        // Timing fixtures are structurally sound: the damage lives in
        // the schedule layer, not the IR.
        const auto lint_report = lintCircuit(circuit);
        EXPECT_TRUE(lint_report.clean())
            << name << "\n" << lint_report.toString();

        const auto analysis = analyzeSchedule(
            circuit, fixtureModel(fixture, circuit.numQubits()));

        if (fixture.expectLatency >= 0.0) {
            EXPECT_NEAR(analysis.criticalPathNs, fixture.expectLatency,
                        1e-6 * std::max(1.0, fixture.expectLatency))
                << name << ": annotated latency mismatch";
        }

        // Exactly the annotated hazard passes fire, with the pinned
        // severity split (sched-reset-gap warns, the rest error).
        std::vector<std::string> firing;
        for (const auto& h : analysis.hazards) {
            firing.push_back(h.pass);
            EXPECT_EQ(h.severity, isWarningPass(h.pass)
                                      ? Severity::Warning
                                      : Severity::Error)
                << name << ": " << h.pass;
        }
        for (const auto& want : fixture.expectHazards) {
            const auto hits = static_cast<std::size_t>(
                std::count(firing.begin(), firing.end(), want));
            EXPECT_GE(hits, 1u)
                << name << ": annotated hazard " << want
                << " did not fire";
        }
        for (const auto& got : firing) {
            const auto annotated = static_cast<std::size_t>(
                std::count(fixture.expectHazards.begin(),
                           fixture.expectHazards.end(), got));
            EXPECT_GE(annotated, 1u)
                << name << ": unannotated hazard " << got;
        }
        if (fixture.expectHazards.empty()) {
            EXPECT_TRUE(analysis.hazards.empty())
                << name << ": expected a hazard-free schedule";
        }
    }
}

TEST(TimingFixtures, PerturbedDurationsBreakAnnotatedLatencies)
{
    // The negative self-check the CI timing gate relies on: scaling
    // every duration must move an annotated latency off its pin.
    for (const auto* name : kCorpus) {
        const auto fixture = loadFixture(name);
        if (fixture.expectLatency < 0.0)
            continue;
        const auto circuit = stab::parseCircuit(fixture.text);
        auto model = fixtureModel(fixture, circuit.numQubits());
        model.scaleDurations(2.0);
        const auto analysis = analyzeSchedule(circuit, model);
        EXPECT_GT(std::abs(analysis.criticalPathNs -
                           fixture.expectLatency),
                  1e-6 * fixture.expectLatency)
            << name;
    }
}

} // namespace
} // namespace sched
} // namespace lint
} // namespace hetarch
