/**
 * @file
 * Worker-count invariance of the fault-path analyzer.  The per-source
 * BFS fan-out runs on the exec engine; by the engine's determinism
 * contract (size-only partition, pre-sized slots, ordered reduction)
 * the full FaultAnalysis — distances, certificates, union bounds —
 * must be bit-identical at 1, 2, and 8 workers.  This is the test the
 * ISSUE pins the contract with; the obs counters the analyzer bumps
 * are deterministic too, so they are checked alongside.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/thread_pool.hh"
#include "lint/faults.hh"
#include "obs/obs.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "uec/assignment.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace lint {
namespace {

/** Restore the worker-count default even when an assertion throws. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

std::vector<stab::Circuit>
corpus()
{
    std::vector<stab::Circuit> circuits;
    circuits.push_back(qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    circuits.push_back(qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{}));
    circuits.push_back(
        qec::codeCapacityMemoryZ(qec::makeSteane(), 2, 0.01, 0.01));
    const auto code = qec::makeSteane();
    circuits.push_back(uec::uecMemoryZ(
        code, uec::roundRobinAssignment(code), 2, uec::UecNoise{}));
    return circuits;
}

TEST(FaultDeterminism, AnalysisBitIdenticalAtOneTwoEightWorkers)
{
    ThreadCountGuard guard;
    auto& expansions = obs::counter("lint.faults.expansions");

    for (const auto& circuit : corpus()) {
        const auto dem = stab::buildDetectorErrorModel(circuit);

        exec::setThreadCount(1);
        const auto before1 = expansions.load();
        const auto serial = analyzeFaults(dem);
        const auto delta1 = expansions.load() - before1;

        for (unsigned workers : {2u, 8u}) {
            exec::setThreadCount(workers);
            const auto before = expansions.load();
            const auto parallel = analyzeFaults(dem);
            const auto delta = expansions.load() - before;
            EXPECT_TRUE(parallel == serial)
                << "analysis diverged at " << workers << " workers";
            EXPECT_EQ(delta, delta1)
                << "expansion count diverged at " << workers
                << " workers";
        }
    }
}

TEST(FaultDeterminism, CertificatesStableAcrossRepeatedRuns)
{
    // Same thread count, repeated runs: certificates are value-stable
    // (no dependence on allocation addresses or scheduling).
    const auto dem = stab::buildDetectorErrorModel(
        qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    const auto first = analyzeFaults(dem);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(analyzeFaults(dem) == first);
}

TEST(FaultDeterminism, NestedInsideParallelForStillCorrect)
{
    // The engine serializes nested parallelFor; an analysis launched
    // from inside a worker must still match the top-level result.
    ThreadCountGuard guard;
    exec::setThreadCount(4);
    const auto dem = stab::buildDetectorErrorModel(
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01,
                                 0.01));
    const auto outer = analyzeFaults(dem);

    std::vector<FaultAnalysis> nested(4);
    exec::parallelFor(nested.size(), [&](std::size_t i) {
        nested[i] = analyzeFaults(dem);
    });
    for (const auto& fa : nested)
        EXPECT_TRUE(fa == outer);
}

} // namespace
} // namespace lint
} // namespace hetarch
