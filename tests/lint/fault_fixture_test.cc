/**
 * @file
 * Table-driven sweep over the fault-injection fixture corpus
 * (tests/lint/fixtures/faults/): each .circ file carries
 * "# expect-distance:" / "# expect-finding:" / "# baseline-distance:"
 * annotations describing the damage injected into it, and the
 * analyzer must reproduce exactly those expectations.  The same corpus
 * is swept through the hetarch-lint CLI by scripts/check_lint_clean.sh;
 * this test exercises the library path with full structural access.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/faults.hh"
#include "lint/lint.hh"
#include "stab/circuit_io.hh"

#ifndef HETARCH_LINT_FIXTURE_DIR
#error "HETARCH_LINT_FIXTURE_DIR must point at tests/lint/fixtures"
#endif

namespace hetarch {
namespace lint {
namespace {

struct Fixture
{
    std::string name;
    std::string text;
    /** Parsed "# expect-distance:" (kInfiniteDistance = unbounded). */
    std::size_t expectDistance = 0;
    /** Parsed "# baseline-distance:" (0 = not annotated). */
    std::size_t baselineDistance = 0;
    /** Parsed "# expect-finding:" (empty = none). */
    std::string expectFinding;
};

std::string
annotation(const std::string& text, const std::string& key)
{
    const std::string tag = "# " + key + ": ";
    const auto pos = text.find(tag);
    if (pos == std::string::npos)
        return "";
    const auto end = text.find('\n', pos);
    return text.substr(pos + tag.size(), end - pos - tag.size());
}

Fixture
loadFixture(const std::string& name)
{
    const std::string path = std::string(HETARCH_LINT_FIXTURE_DIR) +
                             "/faults/" + name + ".circ";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();

    Fixture f;
    f.name = name;
    f.text = buf.str();
    const auto expect = annotation(f.text, "expect-distance");
    EXPECT_FALSE(expect.empty()) << name << " lacks # expect-distance";
    f.expectDistance = expect == "unbounded"
                           ? kInfiniteDistance
                           : static_cast<std::size_t>(
                                 std::stoull(expect));
    const auto baseline = annotation(f.text, "baseline-distance");
    if (!baseline.empty())
        f.baselineDistance =
            static_cast<std::size_t>(std::stoull(baseline));
    f.expectFinding = annotation(f.text, "expect-finding");
    return f;
}

/** Every fixture in the corpus; keep in sync with the directory. */
const char* const kCorpus[] = {
    "dropped_detector",
    "skipped_round",
    "miswired_observable",
    "uec_steane_hook",
};

TEST(FaultFixtures, AnnotationsMatchAnalyzerOutput)
{
    for (const auto* name : kCorpus) {
        const auto fixture = loadFixture(name);
        const auto circuit = stab::parseCircuit(fixture.text);

        // All fault fixtures are structurally sound: the damage is in
        // the fault-tolerance layer, not the IR.
        LintOptions options;
        options.checkFaults = true;
        const auto report = lintCircuit(circuit, options);
        EXPECT_EQ(report.errorCount() > 0,
                  fixture.expectFinding == "fault-coverage")
            << name << "\n" << report.toString();

        const auto fa = analyzeCircuitFaults(circuit);
        EXPECT_EQ(fa.minDistance(), fixture.expectDistance)
            << name << ": annotated distance mismatch";

        // The injected damage must move the distance off the
        // undamaged circuit's baseline (down for dropped checks,
        // to unbounded for a mis-wired observable).
        if (fixture.baselineDistance != 0) {
            EXPECT_NE(fa.minDistance(), fixture.baselineDistance)
                << name << ": damage did not change the distance";
        }

        if (!fixture.expectFinding.empty()) {
            bool found = false;
            for (const auto& f : report.findings)
                found = found || (f.pass == fixture.expectFinding &&
                                  f.severity != Severity::Info);
            EXPECT_TRUE(found)
                << name << ": no non-info " << fixture.expectFinding
                << " finding\n" << report.toString();
        }
    }
}

TEST(FaultFixtures, CertificatesVerifyAgainstTheirDems)
{
    for (const auto* name : kCorpus) {
        const auto fixture = loadFixture(name);
        const auto circuit = stab::parseCircuit(fixture.text);
        const auto dem = stab::buildDetectorErrorModel(circuit);
        const auto fa = analyzeFaults(dem);
        for (const auto& o : fa.observables) {
            if (o.certificate.exists()) {
                EXPECT_TRUE(verifyFaultPath(dem, o.observable,
                                            o.certificate.mechanisms))
                    << name << " observable " << o.observable;
            }
        }
    }
}

} // namespace
} // namespace lint
} // namespace hetarch
