/**
 * @file
 * Cross-validation of the certified end-to-end flow budget against
 * Monte-Carlo decoding: for every registry builder with at least one
 * flippable observable, the analyzer's per-observable budgets (gate
 * union bound at k = ceil(distance / 2) composed with live idle
 * decoherence) summed across observables must dominate the empirical
 * logical error rate measured by qec::runMemoryExperiment at fixed
 * seeds.  The idle half only ever adds on top of the gate half, so
 * dominance also certifies the composition itself.  Companion of
 * union_bound_test.cc, which validates the gate half in isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.hh"
#include "devices/device.hh"
#include "dse/builder_registry.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace lint {
namespace flow {
namespace {

/** Per-shot budget across all observables (what the MC failure count
 *  compares against), capped at certainty. */
double
totalBudget(const FlowAnalysis& analysis)
{
    double sum = 0.0;
    for (const auto& o : analysis.observables)
        sum += o.budget;
    return std::min(1.0, sum);
}

TEST(FlowBudgetVsMonteCarlo, BudgetDominatesEmpiricalRateOnBuilders)
{
    std::size_t validated = 0;
    for (const auto& builder : dse::builderRegistry()) {
        const auto circuit = builder.make();
        const auto faults = analyzeCircuitFaults(circuit);
        const auto model = sched::TimingModel::uniform(
            devices::fixedFrequencyTransmon(), circuit.numQubits());
        FlowOptions options;
        options.faults = &faults;
        options.gateBudget = true;
        const auto analysis = analyzeFlow(circuit, model, options);
        const double budget = totalBudget(analysis);
        if (budget == 0.0)
            continue; // no flippable observable — nothing to bound

        // Shots scale down with circuit size so the sweep stays cheap;
        // failures are plentiful at the builders' built-in noise.
        const std::size_t shots = circuit.numQubits() <= 20 ? 8000
                                  : circuit.numQubits() <= 60 ? 4000
                                                              : 2000;
        const bool graphlike = std::all_of(
            faults.observables.begin(), faults.observables.end(),
            [](const ObservableFaults& o) { return o.graphlike; });
        Rng rng(20260808 + validated);
        const auto mc = qec::runMemoryExperiment(
            circuit, shots, 2,
            graphlike ? qec::DecoderKind::UnionFind
                      : qec::DecoderKind::GreedyDem,
            rng);
        EXPECT_GE(budget, mc.perShot())
            << builder.name << ": certified budget " << budget
            << " below empirical rate " << mc.perShot() << " ("
            << mc.failures << "/" << mc.shots << ")";
        ++validated;
    }
    // The corpus must actually exercise the bound — at minimum the
    // surface-code memories have a flippable observable.
    EXPECT_GE(validated, 4u);
}

TEST(FlowBudgetVsMonteCarlo, BudgetIsNonVacuousOnSmallBuilders)
{
    // A budget that always reads 1.0 would pass dominance trivially;
    // pin that the corpus exercises budgets strictly inside (0, 1).
    const auto circuit = dse::findBuilder("css-rep3")->make();
    const auto faults = analyzeCircuitFaults(circuit);
    const auto model = sched::TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    FlowOptions options;
    options.faults = &faults;
    options.gateBudget = true;
    const auto analysis = analyzeFlow(circuit, model, options);
    const double budget = totalBudget(analysis);
    EXPECT_GT(budget, 0.0);
    EXPECT_LT(budget, 1.0);
}

} // namespace
} // namespace flow
} // namespace lint
} // namespace hetarch
