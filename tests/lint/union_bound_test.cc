/**
 * @file
 * Cross-validation of the static union-bound pass against Monte-Carlo
 * decoding: for every (distance, noise) grid point the analytic bound
 * e_k at k = ceil(d / 2) must dominate the empirical logical error
 * rate measured by qec::runMemoryExperiment at fixed seeds.  Also
 * pins basic analytic properties (monotonicity in weight, scaling
 * with noise strength) that make the bound trustworthy as a budget.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "lint/faults.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {
namespace {

qec::CircuitNoise
scaledNoise(double scale)
{
    qec::CircuitNoise noise; // paper defaults
    noise.p1 *= scale;
    noise.p2 *= scale;
    // Stretch coherences so idle noise scales down alongside the gate
    // errors; otherwise idling dominates and the grid points collapse.
    noise.dataT1 /= scale;
    noise.dataT2 /= scale;
    noise.ancT1 /= scale;
    noise.ancT2 /= scale;
    return noise;
}

TEST(UnionBoundVsMonteCarlo, BoundDominatesEmpiricalRateOnGrid)
{
    // Noise low enough that the bound is non-vacuous (< 1) yet high
    // enough that 20k shots see failures at d=3.
    const std::size_t kShots = 20000;
    for (std::size_t d : {3u, 5u}) {
        for (double scale : {0.1, 0.3}) {
            const auto noise = scaledNoise(scale);
            const auto circuit = qec::surfaceMemoryZ(d, d, noise);
            const auto fa = analyzeCircuitFaults(circuit);
            ASSERT_EQ(fa.observables.size(), 1u);
            const auto bound = fa.observables[0].unionBound;
            ASSERT_EQ(fa.observables[0].distance, d);

            Rng rng(12345 + d * 100 +
                    static_cast<std::uint64_t>(scale * 10));
            const auto mc = qec::runMemoryExperiment(
                circuit, kShots, d, qec::DecoderKind::UnionFind, rng);
            EXPECT_GE(bound, mc.perShot())
                << "d=" << d << " scale=" << scale << " bound=" << bound
                << " empirical=" << mc.perShot() << " ("
                << mc.failures << "/" << mc.shots << ")";
        }
    }
}

TEST(UnionBoundVsMonteCarlo, BoundIsNonVacuousAtLowNoise)
{
    // A budget that always reads 1.0 would pass dominance trivially;
    // pin that the grid above actually exercises bounds below 1.
    const auto circuit = qec::surfaceMemoryZ(3, 3, scaledNoise(0.1));
    const auto fa = analyzeCircuitFaults(circuit);
    EXPECT_LT(fa.observables[0].unionBound, 1.0);
    EXPECT_GT(fa.observables[0].unionBound, 0.0);
}

TEST(UnionBoundAnalytic, DecreasesWithWeight)
{
    // e_k over probabilities summing below 1 is decreasing in k, so
    // deeper certified distances buy exponentially smaller budgets.
    const auto dem = stab::buildDetectorErrorModel(
        qec::surfaceMemoryZ(3, 3, scaledNoise(0.1)));
    double prev = unionBoundAtWeight(dem, 1);
    for (std::size_t k = 2; k <= 4; ++k) {
        const double cur = unionBoundAtWeight(dem, k);
        EXPECT_LT(cur, prev) << "k=" << k;
        prev = cur;
    }
}

TEST(UnionBoundAnalytic, ScalesWithNoiseStrength)
{
    const auto weak = analyzeCircuitFaults(
        qec::surfaceMemoryZ(3, 3, scaledNoise(0.1)));
    const auto strong = analyzeCircuitFaults(
        qec::surfaceMemoryZ(3, 3, scaledNoise(0.3)));
    EXPECT_LT(weak.observables[0].unionBound,
              strong.observables[0].unionBound);
}

} // namespace
} // namespace lint
} // namespace hetarch
