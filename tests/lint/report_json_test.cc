/**
 * @file
 * Tests for the hetarch-lint-v1 JSON schema: serialization with
 * name-sorted keys, exact round-trips through the strict parser
 * (including null distances and fault payloads), and fatal rejection
 * of malformed or schema-deviating documents.
 */

#include <gtest/gtest.h>

#include <string>

#include "lint/faults.hh"
#include "lint/lint.hh"
#include "lint/report_json.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {
namespace {

LintDocument
sampleDocument()
{
    LintDocument doc;

    FileReport plain;
    plain.path = "plain.circ";
    plain.report.add("liveness", Severity::Warning, 4,
                     "qubit 1 never measured");
    plain.report.add("prob-range", Severity::Info, kNoOpIndex,
                     "zero probability \"noise\"\n\ttrailing");
    doc.files.push_back(plain);

    FileReport analyzed;
    analyzed.path = "analyzed";
    analyzed.hasFaults = true;
    analyzed.faults = analyzeCircuitFaults(
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01,
                                 0.01));
    doc.files.push_back(analyzed);

    // An analysis with an unbounded observable: distance serializes
    // as null.
    FileReport unbounded;
    unbounded.path = "unbounded";
    unbounded.hasFaults = true;
    stab::DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    stab::ErrorMechanism m;
    m.probability = 0.25;
    m.detectors = {0};
    dem.mechanisms = {m};
    unbounded.faults = analyzeFaults(dem);
    doc.files.push_back(unbounded);

    return doc;
}

bool
sameReport(const LintReport& a, const LintReport& b)
{
    if (a.findings.size() != b.findings.size())
        return false;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        const auto& x = a.findings[i];
        const auto& y = b.findings[i];
        if (x.pass != y.pass || x.severity != y.severity ||
            x.opIndex != y.opIndex || x.message != y.message)
            return false;
    }
    return true;
}

TEST(LintJson, RoundTripsExactly)
{
    const auto doc = sampleDocument();
    const auto text = toLintJson(doc);
    const auto parsed = parseLintJson(text);

    ASSERT_EQ(parsed.files.size(), doc.files.size());
    for (std::size_t i = 0; i < doc.files.size(); ++i) {
        EXPECT_EQ(parsed.files[i].path, doc.files[i].path);
        EXPECT_EQ(parsed.files[i].hasFaults, doc.files[i].hasFaults);
        EXPECT_TRUE(sameReport(parsed.files[i].report,
                               doc.files[i].report))
            << doc.files[i].path;
        if (doc.files[i].hasFaults) {
            EXPECT_TRUE(parsed.files[i].faults == doc.files[i].faults)
                << doc.files[i].path;
        }
    }
    // Serialization is a pure function of the document.
    EXPECT_EQ(toLintJson(parsed), text);
}

TEST(LintJson, GoldenShapeIsStable)
{
    // Key order is part of the contract: name-sorted, schema last.
    LintDocument doc;
    FileReport file;
    file.path = "x.circ";
    doc.files.push_back(file);
    const auto text = toLintJson(doc);

    EXPECT_NE(text.find("\"clean\": true"), std::string::npos) << text;
    EXPECT_NE(text.find("\"schema\": \"hetarch-lint-v1\""),
              std::string::npos);
    EXPECT_LT(text.find("\"clean\""), text.find("\"errors\""));
    EXPECT_LT(text.find("\"errors\""), text.find("\"faults\""));
    EXPECT_LT(text.find("\"faults\""), text.find("\"findings\""));
    EXPECT_LT(text.find("\"findings\""), text.find("\"infos\""));
    EXPECT_LT(text.find("\"infos\""), text.find("\"path\""));
    EXPECT_LT(text.find("\"path\""), text.find("\"strict_clean\""));
    EXPECT_LT(text.find("\"strict_clean\""), text.find("\"warnings\""));
    EXPECT_NE(text.find("\"faults\": null"), std::string::npos);
}

TEST(LintJson, DerivedCountsMatchFindings)
{
    const auto doc = sampleDocument();
    const auto text = toLintJson(doc);
    // plain.circ has one warning and one info, no errors.
    EXPECT_NE(text.find("\"errors\": 0"), std::string::npos);
    EXPECT_NE(text.find("\"warnings\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"infos\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"strict_clean\": false"), std::string::npos);
    // The unbounded observable serializes a null distance.
    EXPECT_NE(text.find("\"distance\": null"), std::string::npos);
    EXPECT_NE(text.find("\"min_distance\": null"), std::string::npos);
}

using LintJsonDeathTest = ::testing::Test;

TEST(LintJsonDeathTest, MalformedDocumentsAreFatal)
{
    EXPECT_DEATH(parseLintJson(""), "parse error at byte");
    EXPECT_DEATH(parseLintJson("{}"), "parse error at byte");
    EXPECT_DEATH(parseLintJson("{\"files\": []}"),
                 "parse error at byte");
    // Wrong schema string.
    EXPECT_DEATH(
        parseLintJson("{\"files\": [], \"schema\": \"hetarch-lint-v2\"}"),
        "parse error at byte");
    // Keys out of sorted order inside a file object.
    const auto doc = toLintJson(sampleDocument());
    auto swapped = doc;
    const auto clean_pos = swapped.find("\"clean\"");
    ASSERT_NE(clean_pos, std::string::npos);
    swapped.replace(clean_pos, 7, "\"zlean\"");
    EXPECT_DEATH(parseLintJson(swapped), "parse error at byte");
    // Trailing garbage after the document.
    EXPECT_DEATH(parseLintJson(doc + "x"), "parse error at byte");
}

} // namespace
} // namespace lint
} // namespace hetarch
