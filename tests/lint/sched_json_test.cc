/**
 * @file
 * Tests for the hetarch-sched-v1 JSON schema: serialization with
 * name-sorted keys, round-trips through the strict parser (modulo the
 * documented omission of the raw per-op schedule and idle-window
 * lists), and fatal rejection of malformed or schema-deviating
 * documents.  Sibling of report_json_test.cc.
 */

#include <gtest/gtest.h>

#include <string>

#include "devices/device.hh"
#include "lint/sched_json.hh"
#include "lint/schedule.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace lint {
namespace sched {
namespace {

SchedDocument
sampleDocument()
{
    SchedDocument doc;

    {
        const auto circuit = qec::codeCapacityMemoryZ(
            qec::makeRepetition(3), 2, 0.01, 0.01);
        const auto model = TimingModel::uniform(
            devices::fixedFrequencyTransmon(), circuit.numQubits());
        doc.files.push_back({"builder:css-rep3", model.name,
                             analyzeSchedule(circuit, model)});
    }
    {
        // A hazardous unit so the hazards array serializes non-empty.
        stab::Circuit c(3);
        c.reset(0);
        c.x(0);
        c.swap(0, 2);
        c.x(2);
        const auto model = TimingModel::withStorage(
            devices::fixedFrequencyTransmon(),
            devices::multimodeResonator3D(), c.numQubits(), {2});
        doc.files.push_back(
            {"hazard.circ", model.name, analyzeSchedule(c, model)});
    }
    {
        // An empty-circuit unit: every array serializes empty.
        doc.files.push_back({"empty.circ", "unit",
                             analyzeSchedule(stab::Circuit(0),
                                             TimingModel::unit(0))});
    }
    return doc;
}

/** The parser contract: everything except the bulky in-process-only
    schedule / idleWindows vectors survives the round trip. */
void
expectSameModuloOmissions(const ScheduleAnalysis& parsed,
                          const ScheduleAnalysis& original)
{
    EXPECT_EQ(parsed.criticalPathNs, original.criticalPathNs);
    EXPECT_EQ(parsed.opsScheduled, original.opsScheduled);
    EXPECT_EQ(parsed.totalIdleNs, original.totalIdleNs);
    EXPECT_TRUE(parsed.qubits == original.qubits);
    EXPECT_TRUE(parsed.observables == original.observables);
    ASSERT_EQ(parsed.hazards.size(), original.hazards.size());
    for (std::size_t i = 0; i < parsed.hazards.size(); ++i) {
        EXPECT_EQ(parsed.hazards[i].pass, original.hazards[i].pass);
        EXPECT_EQ(parsed.hazards[i].severity,
                  original.hazards[i].severity);
        EXPECT_EQ(parsed.hazards[i].opIndex,
                  original.hazards[i].opIndex);
        EXPECT_EQ(parsed.hazards[i].message,
                  original.hazards[i].message);
    }
    EXPECT_TRUE(parsed.schedule.empty());
    EXPECT_TRUE(parsed.idleWindows.empty());
}

TEST(SchedJson, RoundTripsExactly)
{
    const auto doc = sampleDocument();
    const auto text = toSchedJson(doc);
    const auto parsed = parseSchedJson(text);

    ASSERT_EQ(parsed.files.size(), doc.files.size());
    for (std::size_t i = 0; i < doc.files.size(); ++i) {
        EXPECT_EQ(parsed.files[i].path, doc.files[i].path);
        EXPECT_EQ(parsed.files[i].device, doc.files[i].device);
        expectSameModuloOmissions(parsed.files[i].analysis,
                                  doc.files[i].analysis);
    }
    // Serialization is a pure function of the (parsed) document.
    EXPECT_EQ(toSchedJson(parsed), text);
}

TEST(SchedJson, GoldenShapeIsStable)
{
    // Key order is part of the contract: name-sorted per object,
    // schema last.
    const auto doc = sampleDocument();
    const auto text = toSchedJson(doc);

    EXPECT_NE(text.find("\"schema\": \"hetarch-sched-v1\""),
              std::string::npos);
    EXPECT_LT(text.find("\"critical_path_ns\""), text.find("\"device\""));
    EXPECT_LT(text.find("\"device\""), text.find("\"hazards\""));
    EXPECT_LT(text.find("\"hazards\""), text.find("\"observables\""));
    EXPECT_LT(text.find("\"observables\""), text.find("\"path\""));
    EXPECT_LT(text.find("\"path\""), text.find("\"qubits\""));
    EXPECT_LT(text.find("\"qubits\""), text.find("\"timed_ops\""));
    EXPECT_LT(text.find("\"timed_ops\""),
              text.find("\"total_idle_ns\""));
    // Hazard objects: message < op < pass < severity.
    EXPECT_NE(text.find("\"pass\": \"sched-gateset\""),
              std::string::npos);
    EXPECT_NE(text.find("\"severity\": \"error\""), std::string::npos);
}

TEST(SchedJson, EmptyDocument)
{
    const SchedDocument empty;
    const auto text = toSchedJson(empty);
    const auto parsed = parseSchedJson(text);
    EXPECT_TRUE(parsed.files.empty());
    EXPECT_EQ(toSchedJson(parsed), text);
}

using SchedJsonDeathTest = ::testing::Test;

TEST(SchedJsonDeathTest, MalformedDocumentsAreFatal)
{
    EXPECT_DEATH(parseSchedJson(""), "parse error at byte");
    EXPECT_DEATH(parseSchedJson("{}"), "parse error at byte");
    EXPECT_DEATH(parseSchedJson("{\"files\": []}"),
                 "parse error at byte");
    // Wrong schema string.
    EXPECT_DEATH(parseSchedJson(
                     "{\"files\": [], \"schema\": \"hetarch-sched-v2\"}"),
                 "parse error at byte");
    // Keys out of sorted order inside a file object.
    const auto doc = toSchedJson(sampleDocument());
    auto swapped = doc;
    const auto pos = swapped.find("\"critical_path_ns\"");
    ASSERT_NE(pos, std::string::npos);
    swapped.replace(pos, 18, "\"xritical_path_ns\"");
    EXPECT_DEATH(parseSchedJson(swapped), "parse error at byte");
    // Trailing garbage after the document.
    EXPECT_DEATH(parseSchedJson(doc + "x"), "parse error at byte");
}

} // namespace
} // namespace sched
} // namespace lint
} // namespace hetarch
