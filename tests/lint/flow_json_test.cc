/**
 * @file
 * Tests for the hetarch-flow-v1 JSON schema: serialization with
 * name-sorted keys, exact full-struct round-trips through the strict
 * parser (unlike the sched document, nothing is omitted), and fatal
 * rejection of malformed or schema-deviating documents.  Sibling of
 * sched_json_test.cc.
 */

#include <gtest/gtest.h>

#include <string>

#include "devices/device.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "lint/flow_json.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace lint {
namespace flow {
namespace {

FlowDocument
sampleDocument()
{
    FlowDocument doc;

    {
        // A clean park/retrieve register: residencies and instances
        // serialize non-empty, hazards empty.
        stab::Circuit c(2);
        c.reset(0);
        c.x(0);
        c.swap(0, 1);
        c.swap(0, 1);
        const auto m = c.measure(0);
        c.detector({m});
        const auto model = TimingModel::withStorage(
            devices::fixedFrequencyTransmon(),
            devices::multimodeResonator3D(), c.numQubits(), {1});
        doc.files.push_back(
            {"register.circ", model.name, analyzeFlow(c, model)});
    }
    {
        // A hazardous unit with a certified budget: the surface d=3
        // memory carries noise, so gate bounds are non-trivial.
        const auto circuit =
            qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
        const auto faults = analyzeCircuitFaults(circuit);
        const auto model = TimingModel::uniform(
            devices::fixedFrequencyTransmon(), circuit.numQubits());
        FlowOptions options;
        options.faults = &faults;
        options.gateBudget = true;
        doc.files.push_back({"builder:surface-d3", model.name,
                             analyzeFlow(circuit, model, options)});
    }
    {
        // An orphaning unit so hazards and orphaned residencies (null
        // retrieve_op) serialize.
        stab::Circuit c(2);
        c.reset(0);
        c.x(0);
        c.swap(0, 1);
        const auto m = c.measure(0);
        c.detector({m});
        const auto model = TimingModel::withStorage(
            devices::fixedFrequencyTransmon(),
            devices::multimodeResonator3D(), c.numQubits(), {1});
        doc.files.push_back(
            {"orphan.circ", model.name, analyzeFlow(c, model)});
    }
    {
        // An empty-circuit unit: every array serializes empty.
        doc.files.push_back({"empty.circ", "unit",
                             analyzeFlow(stab::Circuit(0),
                                         TimingModel::unit(0))});
    }
    return doc;
}

TEST(FlowJson, RoundTripsExactly)
{
    const auto doc = sampleDocument();
    const auto text = toFlowJson(doc);
    const auto parsed = parseFlowJson(text);

    ASSERT_EQ(parsed.files.size(), doc.files.size());
    for (std::size_t i = 0; i < doc.files.size(); ++i) {
        EXPECT_EQ(parsed.files[i].path, doc.files[i].path);
        EXPECT_EQ(parsed.files[i].device, doc.files[i].device);
        // The flow document carries the whole analysis: the parsed
        // struct is bit-identical to the original.
        EXPECT_TRUE(parsed.files[i].analysis == doc.files[i].analysis)
            << doc.files[i].path;
    }
    // Serialization is a pure function of the (parsed) document.
    EXPECT_EQ(toFlowJson(parsed), text);
}

TEST(FlowJson, GoldenShapeIsStable)
{
    // Key order is part of the contract: name-sorted per object,
    // schema last.
    const auto doc = sampleDocument();
    const auto text = toFlowJson(doc);

    EXPECT_NE(text.find("\"schema\": \"hetarch-flow-v1\""),
              std::string::npos);
    EXPECT_LT(text.find("\"critical_path_ns\""), text.find("\"device\""));
    EXPECT_LT(text.find("\"device\""), text.find("\"hazards\""));
    EXPECT_LT(text.find("\"hazards\""), text.find("\"instances\""));
    EXPECT_LT(text.find("\"instances\""), text.find("\"live_idle_ns\""));
    EXPECT_LT(text.find("\"live_idle_ns\""),
              text.find("\"live_idle_windows\""));
    EXPECT_LT(text.find("\"live_idle_windows\""),
              text.find("\"movement_ns\""));
    EXPECT_LT(text.find("\"movement_ns\""), text.find("\"observables\""));
    EXPECT_LT(text.find("\"observables\""), text.find("\"path\""));
    EXPECT_LT(text.find("\"path\""), text.find("\"peak_storage\""));
    // (instances objects also carry a scalar "residencies" count, so
    // the top-level array is matched with its bracket.)
    EXPECT_LT(text.find("\"peak_storage\""),
              text.find("\"residencies\": ["));
    EXPECT_LT(text.find("\"storage_qubit_ns\""), text.find("\"swaps\""));
    EXPECT_LT(text.find("\"swaps\""), text.find("\"timed_ops\""));
    // The orphaned residency serializes its sentinel as null.
    EXPECT_NE(text.find("\"retrieve_op\": null"), std::string::npos);
    EXPECT_NE(text.find("\"orphaned\": true"), std::string::npos);
    EXPECT_NE(text.find("\"pass\": \"flow-orphan\""),
              std::string::npos);
}

TEST(FlowJson, EmptyDocument)
{
    const FlowDocument empty;
    const auto text = toFlowJson(empty);
    const auto parsed = parseFlowJson(text);
    EXPECT_TRUE(parsed.files.empty());
    EXPECT_EQ(toFlowJson(parsed), text);
}

using FlowJsonDeathTest = ::testing::Test;

TEST(FlowJsonDeathTest, MalformedDocumentsAreFatal)
{
    EXPECT_DEATH(parseFlowJson(""), "parse error at byte");
    EXPECT_DEATH(parseFlowJson("{}"), "parse error at byte");
    EXPECT_DEATH(parseFlowJson("{\"files\": []}"),
                 "parse error at byte");
    // Wrong schema string.
    EXPECT_DEATH(parseFlowJson(
                     "{\"files\": [], \"schema\": \"hetarch-sched-v1\"}"),
                 "parse error at byte");
    // Keys out of sorted order inside a file object.
    const auto doc = toFlowJson(sampleDocument());
    auto swapped = doc;
    const auto pos = swapped.find("\"peak_storage\"");
    ASSERT_NE(pos, std::string::npos);
    swapped.replace(pos, 14, "\"xeak_storage\"");
    EXPECT_DEATH(parseFlowJson(swapped), "parse error at byte");
    // Trailing garbage after the document.
    EXPECT_DEATH(parseFlowJson(doc + "x"), "parse error at byte");
}

} // namespace
} // namespace flow
} // namespace lint
} // namespace hetarch
