/**
 * @file
 * Unit tests of the static timing/schedule analyzer
 * (lint/schedule.hh, lint/timing_model.hh): hand-verified ASAP
 * timelines, the depth-parity contract with stab::analyzeCircuit over
 * every builder circuit the lint CLI exposes, the hazard taxonomy, the
 * cross-validation of idleError against the density-matrix "idle-1us"
 * characterization, the shared elementary-symmetric budget kernel, a
 * Bernoulli Monte-Carlo dominance check of the idle bound, and the
 * ScheduleCache memoization contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cells/characterize.hh"
#include "cells/standard_cells.hh"
#include "core/rng.hh"
#include "core/units.hh"
#include "devices/device.hh"
#include "distill/dejmps.hh"
#include "lint/faults.hh"
#include "lint/schedule.hh"
#include "lint/timing_model.hh"
#include "obs/obs.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit_stats.hh"
#include "stab/dem.hh"
#include "uec/assignment.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace lint {
namespace sched {
namespace {

/**
 * The circuits behind the lint CLI's builder registry (keep in sync
 * with tools/hetarch_lint.cc): the depth-parity contract is pinned
 * over every one of them.
 */
std::vector<std::pair<std::string, stab::Circuit>>
builderCircuits()
{
    std::vector<std::pair<std::string, stab::Circuit>> out;
    out.emplace_back("surface-d3",
                     qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    out.emplace_back("surface-d5",
                     qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{}));
    out.emplace_back("surface-d7",
                     qec::surfaceMemoryZ(7, 7, qec::CircuitNoise{}));
    out.emplace_back("surface-x-d3",
                     qec::surfaceMemory(3, 3, qec::CircuitNoise{},
                                        qec::MemoryBasis::X));
    out.emplace_back("css-rep3",
                     qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2,
                                              0.01, 0.01));
    out.emplace_back("css-steane",
                     qec::codeCapacityMemoryZ(qec::makeSteane(), 2,
                                              0.01, 0.01));
    {
        const auto code = qec::makeSteane();
        out.emplace_back(
            "uec-steane",
            uec::uecMemoryZ(code, uec::roundRobinAssignment(code), 2,
                            uec::UecNoise{}));
    }
    {
        const auto code = qec::makeSteane();
        uec::UecChain chain;
        chain.numUscExt = 1;
        out.emplace_back(
            "uec-chained-steane",
            uec::uecChainedMemoryZ(
                code, uec::roundRobinAssignment(code,
                                                chain.numRegisters()),
                chain, 2, uec::UecNoise{}));
    }
    {
        const auto code = qec::makeSteane();
        out.emplace_back("lattice-steane",
                         uec::latticeMemoryZ(code,
                                             uec::embedOnLattice(code),
                                             2, uec::LatticeNoise{}));
    }
    out.emplace_back("dejmps", distill::dejmpsCircuit());
    return out;
}

// --- ASAP schedule ----------------------------------------------------

TEST(Schedule, UnitCriticalPathEqualsCircuitStatsDepthOnAllBuilders)
{
    // The contract that keeps the two ASAP schedulers from drifting:
    // under 1 ns per op the makespan IS the circuit depth, on every
    // circuit the repo can build.
    for (const auto& [name, circuit] : builderCircuits()) {
        const auto stats = stab::analyzeCircuit(circuit);
        const auto analysis = analyzeSchedule(
            circuit, TimingModel::unit(circuit.numQubits()));
        EXPECT_EQ(analysis.criticalPathNs,
                  static_cast<double>(stats.depth))
            << name;
        EXPECT_EQ(analysis.hazardErrors(), 0u) << name;
    }
}

TEST(Schedule, HandVerifiedTransmonTimeline)
{
    // R 0 1 [0,1000) ; X 0 [1000,1040) ; CX 0 1 joint-starts at 1040
    // (max of its targets' ready times) [1040,1140) ; M 1 [1140,2140).
    stab::Circuit c(2);
    c.reset(0);
    c.reset(1);
    c.x(0);
    c.cx(0, 1);
    const auto m = c.measure(1);
    c.detector({m});

    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), c.numQubits());
    const auto a = analyzeSchedule(c, model);

    ASSERT_EQ(a.schedule.size(), 5u);
    EXPECT_EQ(a.opsScheduled, 5u);
    EXPECT_DOUBLE_EQ(a.schedule[2].startNs, 1000.0); // R as two ops
    EXPECT_DOUBLE_EQ(a.schedule[2].endNs, 1040.0);
    EXPECT_DOUBLE_EQ(a.schedule[3].startNs, 1040.0);
    EXPECT_DOUBLE_EQ(a.schedule[3].endNs, 1140.0);
    EXPECT_DOUBLE_EQ(a.criticalPathNs, 2140.0);
    EXPECT_TRUE(a.hazards.empty());

    // Qubit 1 idles between its reset (end 1000) and the CX (1040).
    ASSERT_EQ(a.idleWindows.size(), 1u);
    EXPECT_EQ(a.idleWindows[0].qubit, 1u);
    EXPECT_DOUBLE_EQ(a.idleWindows[0].startNs, 1000.0);
    EXPECT_DOUBLE_EQ(a.idleWindows[0].endNs, 1040.0);
    EXPECT_DOUBLE_EQ(a.totalIdleNs, 40.0);
    ASSERT_EQ(a.qubits.size(), 2u);
    EXPECT_DOUBLE_EQ(a.qubits[0].busyNs, 1000.0 + 40.0 + 100.0);
    EXPECT_DOUBLE_EQ(a.qubits[0].idleNs, 0.0);
    EXPECT_DOUBLE_EQ(a.qubits[1].busyNs, 1000.0 + 100.0 + 1000.0);
    EXPECT_DOUBLE_EQ(a.qubits[1].idleNs, 40.0);
    EXPECT_EQ(a.qubits[1].idleWindows, 1u);
    EXPECT_EQ(a.qubits[1].device, "fixed-frequency-transmon");
}

TEST(Schedule, ScalingDurationsScalesTheCriticalPath)
{
    const auto circuit =
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01, 0.01);
    auto model = TimingModel::uniform(devices::fixedFrequencyTransmon(),
                                      circuit.numQubits());
    const auto base = analyzeSchedule(circuit, model);
    model.scaleDurations(2.0);
    const auto scaled = analyzeSchedule(circuit, model);
    EXPECT_DOUBLE_EQ(scaled.criticalPathNs, 2.0 * base.criticalPathNs);
    EXPECT_DOUBLE_EQ(scaled.totalIdleNs, 2.0 * base.totalIdleNs);
}

TEST(Schedule, NoiseAndAnnotationsAreUntimed)
{
    stab::Circuit c(1);
    c.reset(0);
    c.xError(0, 0.25);
    c.depolarize1(0, 0.125);
    const auto m = c.measure(0);
    c.detector({m});
    const auto a =
        analyzeSchedule(c, TimingModel::unit(c.numQubits()));
    EXPECT_EQ(a.opsScheduled, 2u); // R and M only
    EXPECT_DOUBLE_EQ(a.criticalPathNs, 2.0);
    EXPECT_TRUE(a.idleWindows.empty());
}

// --- idle-decoherence model -------------------------------------------

TEST(IdleError, MatchesDensityMatrixCharacterizationExactly)
{
    // cells::characterizeRegister derives "idle-1us" by exact density-
    // matrix simulation of dm::channels::idleChannel; the analytic
    // formula must agree to numerical precision on the same (T1, T2).
    const auto storage = devices::multimodeResonator3D();
    const auto reg = cells::makeRegister(
        storage, devices::fixedFrequencyTransmon());
    const auto ch = cells::characterizeRegister(reg);
    const auto& idle = ch.op("idle-1us");
    EXPECT_NEAR(idleError(1000.0, storage.t1, storage.t2),
                idle.errorRate, 1e-12);
}

TEST(IdleError, BasicShape)
{
    const double t1 = 300.0 * units::us;
    const double t2 = 550.0 * units::us;
    EXPECT_DOUBLE_EQ(idleError(0.0, t1, t2), 0.0);
    // Monotone in duration, clamped to [0, 1].
    double prev = 0.0;
    for (double t : {1e2, 1e4, 1e6, 1e8, 1e10}) {
        const double e = idleError(t, t1, t2);
        EXPECT_GE(e, prev);
        EXPECT_LE(e, 1.0);
        prev = e;
    }
    // Fully decohered limit: average error of the replace-with-mixed
    // channel over amplitude damping to |0> is 1/2.
    EXPECT_NEAR(idleError(1e12, t1, t2), 0.5, 1e-9);
}

// --- the shared budget kernel -----------------------------------------

TEST(ElementarySymmetricBound, MatchesUnionBoundAtWeight)
{
    // faults.cc delegates its union bound to the same kernel; pin the
    // equivalence through the public surfaces.
    const auto dem = stab::buildDetectorErrorModel(
        qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    std::vector<double> probs;
    for (const auto& m : dem.mechanisms)
        probs.push_back(m.probability);
    for (std::size_t k = 1; k <= 4; ++k)
        EXPECT_DOUBLE_EQ(elementarySymmetricBound(probs, k),
                         unionBoundAtWeight(dem, k))
            << "k=" << k;
}

TEST(ElementarySymmetricBound, EdgeCases)
{
    EXPECT_DOUBLE_EQ(elementarySymmetricBound({}, 0), 1.0);
    EXPECT_DOUBLE_EQ(elementarySymmetricBound({0.5}, 0), 1.0);
    EXPECT_DOUBLE_EQ(elementarySymmetricBound({}, 1), 0.0);
    EXPECT_DOUBLE_EQ(elementarySymmetricBound({0.25}, 2), 0.0);
    EXPECT_DOUBLE_EQ(elementarySymmetricBound({0.1, 0.2}, 1), 0.3);
    EXPECT_NEAR(elementarySymmetricBound({0.1, 0.2, 0.3}, 2),
                0.1 * 0.2 + 0.1 * 0.3 + 0.2 * 0.3, 1e-15);
    // Cap at 1.
    EXPECT_DOUBLE_EQ(
        elementarySymmetricBound({0.9, 0.9, 0.9, 0.9, 0.9}, 1), 1.0);
}

TEST(IdleBound, BernoulliMonteCarloDominance)
{
    // e_k over independent window probabilities upper-bounds the
    // probability that >= k windows fire — the exact event the bound
    // budgets.  Sample it directly at fixed seed.
    const std::vector<double> probs = {0.12, 0.05, 0.2, 0.08, 0.15,
                                       0.03, 0.1};
    Rng rng(20260808);
    const std::size_t kShots = 200000;
    std::vector<std::size_t> atLeast(4, 0);
    for (std::size_t s = 0; s < kShots; ++s) {
        std::size_t fired = 0;
        for (const double p : probs)
            fired += rng.uniform() < p ? 1 : 0;
        for (std::size_t k = 1; k <= 3; ++k)
            atLeast[k] += fired >= k ? 1 : 0;
    }
    for (std::size_t k = 1; k <= 3; ++k) {
        const double empirical =
            static_cast<double>(atLeast[k]) / kShots;
        EXPECT_GE(elementarySymmetricBound(probs, k), empirical)
            << "k=" << k;
    }
}

TEST(IdleBound, WeightComesFromTheFaultStructure)
{
    // Surface d=3 memory: one observable, certified distance 3, so the
    // idle budget is evaluated at k = ceil(3 / 2) = 2.
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto faults = analyzeCircuitFaults(circuit);
    ASSERT_EQ(faults.observables.size(), 1u);
    ASSERT_EQ(faults.observables[0].distance, 3u);

    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    SchedOptions options;
    options.faults = &faults;
    const auto a = analyzeSchedule(circuit, model, options);
    ASSERT_EQ(a.observables.size(), 1u);
    EXPECT_EQ(a.observables[0].weight, 2u);

    // Without the fault structure the bound degrades to k = 1 and can
    // only grow.
    const auto plain = analyzeSchedule(circuit, model);
    ASSERT_EQ(plain.observables.size(), 1u);
    EXPECT_EQ(plain.observables[0].weight, 1u);
    EXPECT_GE(plain.observables[0].idleBound,
              a.observables[0].idleBound);
    EXPECT_GT(plain.certifiedIdleBound(), 0.0);
}

TEST(IdleBound, UnflippableObservableGetsZeroBudget)
{
    // An observable with no undetected fault path (kInfiniteDistance)
    // cannot be flipped by idle decoherence through the fault graph:
    // weight 0, bound 0.
    stab::Circuit c(2);
    c.reset(0);
    c.reset(1);
    c.cx(0, 1);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    c.observableInclude(0, {m0});
    const auto faults = analyzeCircuitFaults(c);
    ASSERT_EQ(faults.observables.size(), 1u);
    ASSERT_EQ(faults.observables[0].distance, kInfiniteDistance);

    SchedOptions options;
    options.faults = &faults;
    const auto a = analyzeSchedule(
        c,
        TimingModel::uniform(devices::fixedFrequencyTransmon(),
                             c.numQubits()),
        options);
    ASSERT_EQ(a.observables.size(), 1u);
    EXPECT_EQ(a.observables[0].weight, 0u);
    EXPECT_DOUBLE_EQ(a.observables[0].idleBound, 0.0);
    EXPECT_DOUBLE_EQ(a.certifiedIdleBound(), 0.0);
}

// --- hazard taxonomy --------------------------------------------------

/** Count hazards from one pass. */
std::size_t
countPass(const ScheduleAnalysis& a, const std::string& pass)
{
    std::size_t n = 0;
    for (const auto& h : a.hazards)
        n += h.pass == pass ? 1 : 0;
    return n;
}

/** Compute/storage register: qubit 2 on one shared storage instance. */
TimingModel
registerModel(std::size_t num_qubits,
              const std::vector<std::uint32_t>& storage_qubits,
              const devices::DeviceModel& storage =
                  devices::multimodeResonator3D())
{
    return TimingModel::withStorage(devices::fixedFrequencyTransmon(),
                                    storage, num_qubits,
                                    storage_qubits);
}

TEST(Hazards, GateOnStorageDevice)
{
    stab::Circuit c(3);
    c.reset(0);
    c.x(0);
    c.swap(0, 2);
    c.x(2); // storage devices are SWAP-only (DR2)
    const auto a = analyzeSchedule(c, registerModel(3, {2}));
    EXPECT_EQ(countPass(a, "sched-gateset"), 1u);
    EXPECT_EQ(a.hazardErrors(), 1u);
}

TEST(Hazards, MeasurementWithoutReadoutAndDoomedFeedback)
{
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1);
    const auto m = c.measure(1); // storage has no readout circuitry
    c.detector({m});             // ... so this record never completes
    const auto a = analyzeSchedule(c, registerModel(2, {1}));
    EXPECT_EQ(countPass(a, "sched-readout"), 1u);
    EXPECT_EQ(countPass(a, "sched-feedback"), 1u);
    EXPECT_EQ(a.hazardErrors(), 2u);

    // The same record consumed on a readout-capable device is fine.
    stab::Circuit ok(2);
    ok.reset(0);
    ok.x(0);
    const auto mok = ok.measure(0);
    ok.detector({mok});
    const auto clean = analyzeSchedule(ok, registerModel(2, {1}));
    EXPECT_TRUE(clean.hazards.empty());
}

TEST(Hazards, InstanceOverCapacity)
{
    stab::Circuit c(3);
    c.reset(0);
    c.swap(0, 1);
    c.swap(0, 2);
    const auto m = c.measure(0);
    c.detector({m});
    // 3d-quantum-memory has a single mode; hosting two qubits on one
    // instance of it is a static capacity violation.
    const auto a = analyzeSchedule(
        c, registerModel(3, {1, 2}, devices::quantumMemory3D()));
    EXPECT_EQ(countPass(a, "sched-capacity"), 1u);
    // The SWAPs serialize through qubit 0, so no port overlap rides
    // along.
    EXPECT_EQ(countPass(a, "sched-overlap"), 0u);
}

TEST(Hazards, ConcurrentSwapsConflictOnTheStoragePort)
{
    stab::Circuit c(4);
    c.reset(0);
    c.reset(1);
    c.swap(0, 2); // both SWAPs become ready at the same instant and
    c.swap(1, 3); // land on the shared instance's single port
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    const auto a = analyzeSchedule(c, registerModel(4, {2, 3}));
    EXPECT_EQ(countPass(a, "sched-overlap"), 1u);
    EXPECT_EQ(countPass(a, "sched-capacity"), 0u);

    // Serialized accesses (forced by a shared compute qubit) are fine.
    stab::Circuit ser(3);
    ser.reset(0);
    ser.swap(0, 1);
    ser.swap(0, 2);
    const auto m = ser.measure(0);
    ser.detector({m});
    const auto ok = analyzeSchedule(ser, registerModel(3, {1, 2}));
    EXPECT_EQ(countPass(ok, "sched-overlap"), 0u);
}

TEST(Hazards, GateAfterMeasurementWithoutResetWarns)
{
    stab::Circuit c(2);
    c.reset(0);
    c.reset(1);
    const auto m0 = c.measure(0);
    c.x(0); // collapsed qubit re-enters gates: warning, not error
    c.cx(0, 1);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    const auto a = analyzeSchedule(
        c, TimingModel::uniform(devices::fixedFrequencyTransmon(),
                                c.numQubits()));
    EXPECT_EQ(countPass(a, "sched-reset-gap"), 1u);
    EXPECT_EQ(a.hazardErrors(), 0u); // warning-severity
    ASSERT_EQ(countPass(a, "sched-reset-gap"), 1u);
    for (const auto& h : a.hazards) {
        if (h.pass == "sched-reset-gap") {
            EXPECT_EQ(h.severity, Severity::Warning);
        }
    }

    // MR clears the collapse: no warning.
    stab::Circuit ok(1);
    ok.reset(0);
    const auto m = ok.measureReset(0);
    ok.x(0);
    const auto m2 = ok.measure(0);
    ok.detector({m});
    ok.detector({m2});
    const auto clean = analyzeSchedule(
        ok, TimingModel::uniform(devices::fixedFrequencyTransmon(), 1));
    EXPECT_EQ(countPass(clean, "sched-reset-gap"), 0u);
}

TEST(Hazards, FindingsCarryThroughScheduleFindings)
{
    stab::Circuit c(3);
    c.reset(0);
    c.x(0);
    c.swap(0, 2);
    c.x(2);
    const auto a = analyzeSchedule(c, registerModel(3, {2}));
    LintReport report;
    scheduleFindings(a, report);
    EXPECT_EQ(report.errorCount(), a.hazardErrors());
    bool latency_info = false;
    for (const auto& f : report.findings)
        latency_info = latency_info || f.pass == "sched-latency";
    EXPECT_TRUE(latency_info);
}

// --- memoization ------------------------------------------------------

TEST(ScheduleCacheTest, HitsAndMissesAreKeyedOnContent)
{
    auto& cache = ScheduleCache::instance();
    cache.clear();
    auto& hits = obs::counter("lint.sched.cache_hits");
    auto& misses = obs::counter("lint.sched.cache_misses");

    const auto circuit =
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01, 0.01);
    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());

    const auto h0 = hits.load();
    const auto m0 = misses.load();
    const auto first = cache.analysis(circuit, model);
    EXPECT_EQ(misses.load(), m0 + 1);
    const auto again = cache.analysis(circuit, model);
    EXPECT_EQ(hits.load(), h0 + 1);
    EXPECT_TRUE(*again == *first);
    EXPECT_EQ(cache.size(), 1u);

    // A different timing model is a different key.
    auto scaled = model;
    scaled.scaleDurations(2.0);
    (void)cache.analysis(circuit, scaled);
    EXPECT_EQ(misses.load(), m0 + 2);
    EXPECT_EQ(cache.size(), 2u);

    // So is the same model with a fault structure attached.
    const auto faults = analyzeCircuitFaults(circuit);
    SchedOptions options;
    options.faults = &faults;
    (void)cache.analysis(circuit, model, options);
    EXPECT_EQ(misses.load(), m0 + 3);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCacheTest, CachedAnalysisEqualsFreshRun)
{
    auto& cache = ScheduleCache::instance();
    cache.clear();
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = TimingModel::uniform(
        devices::fluxTunableQubit(), circuit.numQubits());
    const auto cached = cache.analysis(circuit, model);
    EXPECT_TRUE(*cached == analyzeSchedule(circuit, model));
    cache.clear();
}

// --- timing model -----------------------------------------------------

TEST(TimingModelTest, WithStorageSharesOneInstance)
{
    const auto model = registerModel(4, {1, 3});
    ASSERT_EQ(model.assignment.size(), 4u);
    // Storage qubits share instance 0; compute qubits get private
    // instances.
    EXPECT_EQ(model.assignment[1], model.assignment[3]);
    EXPECT_NE(model.assignment[0], model.assignment[2]);
    EXPECT_TRUE(model.deviceFor(1).storage);
    EXPECT_FALSE(model.deviceFor(0).storage);
    EXPECT_FALSE(model.deviceFor(1).hasReadout);
    EXPECT_TRUE(model.deviceFor(0).hasReadout);
}

TEST(TimingModelTest, HashSeparatesContent)
{
    const auto a = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), 4);
    auto b = a;
    EXPECT_EQ(hashTimingModel(a), hashTimingModel(b));
    b.scaleDurations(2.0);
    EXPECT_NE(hashTimingModel(a), hashTimingModel(b));
    const auto c =
        TimingModel::uniform(devices::fluxTunableQubit(), 4);
    EXPECT_NE(hashTimingModel(a), hashTimingModel(c));
}

} // namespace
} // namespace sched
} // namespace lint
} // namespace hetarch
