/**
 * @file
 * Tests for the static fault-path analyzer (hetarch::lint::faults):
 * fault-graph construction from hand-built DEMs, exact distances with
 * verified certificates, detector-coverage findings, the
 * certifiedDistance == d pins for the surface-code builders (the CI
 * gate's in-process twin), and DecoderCache fault-entry reuse.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lint/fault_graph.hh"
#include "lint/faults.hh"
#include "lint/lint.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/decoder_cache.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {
namespace {

using stab::DetectorErrorModel;
using stab::ErrorMechanism;

ErrorMechanism
mech(double p, std::vector<std::uint32_t> dets, std::uint32_t obs = 0)
{
    ErrorMechanism m;
    m.probability = p;
    m.detectors = std::move(dets);
    m.observables = obs;
    return m;
}

/**
 * 3-qubit repetition-code DEM under code-capacity noise: data errors
 * q0/q2 flip one detector each (boundary edges), q1 flips both, and
 * every data error flips the logical.  Distance 3, certificate
 * {0, 1, 2}.
 */
DetectorErrorModel
repCodeDem()
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms = {mech(0.1, {0}, 1), mech(0.1, {0, 1}, 1),
                      mech(0.1, {1}, 1)};
    return dem;
}

// --- fault-graph construction -----------------------------------------

TEST(FaultGraph, ClassifiesMechanismsByDetectorCount)
{
    DetectorErrorModel dem;
    dem.numDetectors = 4;
    dem.numObservables = 2;
    dem.mechanisms = {
        mech(0.1, {0, 1}),         // interior edge
        mech(0.2, {2}, 0b01),      // boundary edge
        mech(0.3, {0, 1, 2}, 0b10), // hyperedge: excluded
        mech(0.4, {}, 0b01),       // undetectable
    };

    const auto g = FaultGraph::fromDem(dem);
    EXPECT_EQ(g.numDetectors(), 4u);
    EXPECT_EQ(g.boundaryNode(), 4u);
    EXPECT_EQ(g.numNodes(), 5u);

    ASSERT_EQ(g.edges().size(), 2u);
    EXPECT_EQ(g.edges()[0].u, 0u);
    EXPECT_EQ(g.edges()[0].v, 1u);
    EXPECT_EQ(g.edges()[0].mechanism, 0u);
    EXPECT_EQ(g.edges()[1].u, 2u);
    EXPECT_EQ(g.edges()[1].v, g.boundaryNode());
    EXPECT_EQ(g.edges()[1].observables, 0b01u);

    EXPECT_EQ(g.hyperedgeMechanisms(),
              (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(g.hyperedgeObservables(), 0b10u);
    EXPECT_EQ(g.undetectableMechanisms(),
              (std::vector<std::uint32_t>{3}));
    // Detector 3 is touched by nothing (the hyperedge still counts as
    // flipping detectors 0-2 for coverage purposes).
    EXPECT_EQ(g.deadDetectors(), (std::vector<std::uint32_t>{3}));
}

TEST(FaultGraph, IncidenceListsAreAscendingPerNode)
{
    const auto g = FaultGraph::fromDem(repCodeDem());
    ASSERT_EQ(g.incidence().size(), g.numNodes());
    for (const auto& inc : g.incidence())
        for (std::size_t i = 1; i < inc.size(); ++i)
            EXPECT_LT(inc[i - 1], inc[i]);
    // Boundary node sees both boundary edges (mechanisms 0 and 2).
    EXPECT_EQ(g.incidence()[g.boundaryNode()],
              (std::vector<std::uint32_t>{0, 2}));
}

// --- distance + certificates on hand DEMs ------------------------------

TEST(FaultDistance, RepCodeDistanceThreeWithVerifiedCertificate)
{
    const auto fa = analyzeFaults(repCodeDem());
    ASSERT_EQ(fa.observables.size(), 1u);
    const auto& o = fa.observables[0];
    EXPECT_EQ(o.distance, 3u);
    EXPECT_TRUE(o.graphlike);
    EXPECT_EQ(o.certificate.mechanisms,
              (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_TRUE(verifyFaultPath(repCodeDem(), 0,
                                o.certificate.mechanisms));
    EXPECT_EQ(fa.minDistance(), 3u);
}

TEST(FaultDistance, UndetectableMechanismIsDistanceOne)
{
    auto dem = repCodeDem();
    dem.mechanisms.push_back(mech(0.01, {}, 1));
    const auto fa = analyzeFaults(dem);
    EXPECT_EQ(fa.undetectableMechanisms,
              (std::vector<std::uint32_t>{3}));
    EXPECT_EQ(fa.observables[0].distance, 1u);
    EXPECT_EQ(fa.observables[0].certificate.mechanisms,
              (std::vector<std::uint32_t>{3}));
}

TEST(FaultDistance, UnflippableObservableIsUnbounded)
{
    DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    // Flips a detector but never the observable: no undetected logical
    // fault exists.
    dem.mechanisms = {mech(0.1, {0}, 0)};
    const auto fa = analyzeFaults(dem);
    EXPECT_EQ(fa.observables[0].distance, kInfiniteDistance);
    EXPECT_FALSE(fa.observables[0].certificate.exists());
    EXPECT_EQ(fa.minDistance(), kInfiniteDistance);
}

TEST(FaultDistance, HyperedgeObservableLosesGraphlikeFlag)
{
    DetectorErrorModel dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    dem.mechanisms = {
        mech(0.1, {0}, 1),
        mech(0.1, {1}, 0),
        mech(0.1, {0, 1}, 0),
        mech(0.1, {0, 1, 2}, 1), // hyperedge flipping the observable
    };
    const auto fa = analyzeFaults(dem);
    EXPECT_EQ(fa.numHyperedges, 1u);
    EXPECT_FALSE(fa.observables[0].graphlike);
    // The graphlike subset still certifies an upper bound: the cycle
    // boundary-0-1-boundary with odd observable parity.
    EXPECT_EQ(fa.observables[0].distance, 3u);
    EXPECT_EQ(fa.observables[0].certificate.mechanisms,
              (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_TRUE(verifyFaultPath(dem, 0,
                                fa.observables[0].certificate.mechanisms));
}

TEST(FaultDistance, CertificateTiesResolveToEarliestSource)
{
    // Two disjoint weight-2 undetected logical paths; the analyzer
    // must deterministically pick the one through the earliest source
    // edge (mechanism 0).
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms = {mech(0.1, {0}, 1), mech(0.1, {0}, 0),
                      mech(0.1, {1}, 1), mech(0.1, {1}, 0)};
    const auto fa = analyzeFaults(dem);
    EXPECT_EQ(fa.observables[0].distance, 2u);
    EXPECT_EQ(fa.observables[0].certificate.mechanisms,
              (std::vector<std::uint32_t>{0, 1}));
}

// --- verifyFaultPath ---------------------------------------------------

TEST(VerifyFaultPath, AcceptsOnlyUndetectedObservableFlips)
{
    const auto dem = repCodeDem();
    EXPECT_TRUE(verifyFaultPath(dem, 0, {0, 1, 2}));
    EXPECT_FALSE(verifyFaultPath(dem, 0, {}));       // empty set
    EXPECT_FALSE(verifyFaultPath(dem, 0, {0}));      // fires detector 0
    EXPECT_FALSE(verifyFaultPath(dem, 0, {0, 1}));   // fires detector 1
    // {0, 1, 2} twice-cancelled via duplicate handling is out of scope:
    // indices are distinct by contract; a wrong observable bit fails.
    EXPECT_FALSE(verifyFaultPath(dem, 1, {0, 1, 2}));
}

// --- union bound -------------------------------------------------------

TEST(UnionBound, MatchesElementarySymmetricPolynomialByHand)
{
    DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    dem.mechanisms = {mech(0.1, {0}, 1), mech(0.2, {0}, 1),
                      mech(0.3, {0}, 1)};
    // e_1 = 0.6; e_2 = 0.1*0.2 + 0.1*0.3 + 0.2*0.3 = 0.11;
    // e_3 = 0.006.
    EXPECT_DOUBLE_EQ(unionBoundAtWeight(dem, 1), 0.6);
    EXPECT_DOUBLE_EQ(unionBoundAtWeight(dem, 2), 0.11);
    EXPECT_DOUBLE_EQ(unionBoundAtWeight(dem, 3), 0.006);
    // Weight above the mechanism count: no fault set exists.
    EXPECT_DOUBLE_EQ(unionBoundAtWeight(dem, 4), 0.0);
    // Weight 0 is vacuous.
    EXPECT_DOUBLE_EQ(unionBoundAtWeight(dem, 0), 1.0);
}

TEST(UnionBound, AnalyzerEvaluatesAtCeilHalfDistance)
{
    const auto fa = analyzeFaults(repCodeDem());
    const auto& o = fa.observables[0];
    EXPECT_EQ(o.unionBoundWeight, 2u); // ceil(3 / 2)
    EXPECT_DOUBLE_EQ(o.unionBound,
                     unionBoundAtWeight(repCodeDem(), 2));
}

TEST(UnionBound, MaxWeightOverrideWins)
{
    FaultOptions options;
    options.maxWeight = 1;
    const auto fa = analyzeFaults(repCodeDem(), options);
    EXPECT_EQ(fa.observables[0].unionBoundWeight, 1u);
    EXPECT_DOUBLE_EQ(fa.observables[0].unionBound,
                     unionBoundAtWeight(repCodeDem(), 1));
}

// --- findings ----------------------------------------------------------

bool
hasFinding(const LintReport& report, const std::string& pass,
           Severity severity, const std::string& needle)
{
    for (const auto& f : report.findings)
        if (f.pass == pass && f.severity == severity &&
            f.message.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(FaultFindings, SeveritiesMatchTheContract)
{
    DetectorErrorModel dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    dem.mechanisms = {mech(0.1, {0}, 1), mech(0.05, {}, 1)};

    LintReport report;
    faultFindings(analyzeFaults(dem), report);
    // Undetectable mechanism: error.  Dead detector 1: info.
    EXPECT_TRUE(hasFinding(report, "fault-coverage", Severity::Error,
                           "distance-1 hole"));
    EXPECT_TRUE(hasFinding(report, "fault-coverage", Severity::Info,
                           "detector 1 can never fire"));
    EXPECT_TRUE(hasFinding(report, "fault-distance", Severity::Info,
                           "certified fault distance 1"));
    EXPECT_EQ(report.errorCount(), 1u);
}

TEST(FaultFindings, UnboundedDistanceWarnsAboutMiswiring)
{
    DetectorErrorModel dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    dem.mechanisms = {mech(0.1, {0}, 0)};
    LintReport report;
    faultFindings(analyzeFaults(dem), report);
    EXPECT_TRUE(hasFinding(report, "fault-distance", Severity::Warning,
                           "may be mis-wired"));
}

TEST(FaultFindings, LintCircuitRunsFaultPassWhenAsked)
{
    const auto c = qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2,
                                            0.01, 0.01);
    LintOptions options;
    options.checkFaults = true;
    const auto report = lintCircuit(c, options);
    EXPECT_TRUE(report.clean()) << report.toString();
    EXPECT_TRUE(hasFinding(report, "fault-distance", Severity::Info,
                           "certified fault distance 3"));
}

// --- builder pins: the CI gate's in-process twin -----------------------

TEST(CertifiedDistance, SurfaceMemoryEqualsCodeDistance)
{
    for (std::size_t d : {3u, 5u, 7u}) {
        const auto c = qec::surfaceMemoryZ(d, d, qec::CircuitNoise{});
        EXPECT_EQ(certifiedDistance(c), d) << "d=" << d;
    }
}

TEST(CertifiedDistance, SurfaceMemoryXBasis)
{
    const auto c = qec::surfaceMemory(3, 3, qec::CircuitNoise{},
                                      qec::MemoryBasis::X);
    EXPECT_EQ(certifiedDistance(c), 3u);
}

TEST(CertifiedDistance, DroppingADetectorReducesSurfaceD3)
{
    // The CI negative self-check in C++ form: remove the first
    // DETECTOR op and the certified distance must drop below 3.
    const auto c = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    std::vector<stab::Op> ops(c.ops().begin(), c.ops().end());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].code == stab::OpCode::DETECTOR) {
            ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    const auto perturbed =
        stab::Circuit::fromRawOps(c.numQubits(), std::move(ops));
    EXPECT_LT(certifiedDistance(perturbed), 3u);
}

// --- DecoderCache fault entries ----------------------------------------

TEST(DecoderCacheFaults, SecondLookupHitsTheCache)
{
    auto& cache = qec::DecoderCache::instance();
    cache.clear();
    const auto c = qec::surfaceMemoryZ(3, 2, qec::CircuitNoise{});

    const auto a = cache.faultAnalysis(c);
    const auto size_after_first = cache.size();
    const auto b = cache.faultAnalysis(c);
    EXPECT_EQ(cache.size(), size_after_first);
    // Build-once: both handles alias one analysis.
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->minDistance(), 3u);

    // Different options are a different cache key.
    FaultOptions options;
    options.maxWeight = 1;
    const auto d = cache.faultAnalysis(c, options);
    EXPECT_NE(d.get(), a.get());
    EXPECT_GT(cache.size(), size_after_first);
    cache.clear();
}

TEST(DecoderCacheFaults, MatchesDirectAnalysis)
{
    auto& cache = qec::DecoderCache::instance();
    cache.clear();
    const auto c = qec::codeCapacityMemoryZ(qec::makeSteane(), 2, 0.01,
                                            0.01);
    const auto cached = cache.faultAnalysis(c);
    EXPECT_TRUE(*cached == analyzeCircuitFaults(c));
    cache.clear();
}

} // namespace
} // namespace lint
} // namespace hetarch
