/**
 * @file
 * Worker-count invariance of the schedule analyzer.  The per-observable
 * idle-bound fan-out runs on the exec engine; by the engine's
 * determinism contract (size-only partition, pre-sized slots, ordered
 * reduction) the full ScheduleAnalysis — timeline, idle windows,
 * bounds, hazards — must be bit-identical at 1, 2, and 8 workers, and
 * the deterministic obs counters the analyzer bumps must move by the
 * same deltas.  Companion of fault_determinism_test.cc.
 */

#include <gtest/gtest.h>

#include <vector>

#include "devices/device.hh"
#include "exec/thread_pool.hh"
#include "lint/faults.hh"
#include "lint/schedule.hh"
#include "obs/obs.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "uec/assignment.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace lint {
namespace sched {
namespace {

/** Restore the worker-count default even when an assertion throws. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

std::vector<stab::Circuit>
corpus()
{
    std::vector<stab::Circuit> circuits;
    circuits.push_back(qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    circuits.push_back(qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{}));
    circuits.push_back(
        qec::codeCapacityMemoryZ(qec::makeSteane(), 2, 0.01, 0.01));
    const auto code = qec::makeSteane();
    circuits.push_back(uec::uecMemoryZ(
        code, uec::roundRobinAssignment(code), 2, uec::UecNoise{}));
    return circuits;
}

TEST(SchedDeterminism, AnalysisBitIdenticalAtOneTwoEightWorkers)
{
    ThreadCountGuard guard;
    auto& opsScheduled = obs::counter("lint.sched.ops_scheduled");

    for (const auto& circuit : corpus()) {
        const auto faults = analyzeCircuitFaults(circuit);
        const auto model = TimingModel::uniform(
            devices::fixedFrequencyTransmon(), circuit.numQubits());
        SchedOptions options;
        options.faults = &faults;

        exec::setThreadCount(1);
        const auto before1 = opsScheduled.load();
        const auto serial = analyzeSchedule(circuit, model, options);
        const auto delta1 = opsScheduled.load() - before1;

        for (unsigned workers : {2u, 8u}) {
            exec::setThreadCount(workers);
            const auto before = opsScheduled.load();
            const auto parallel =
                analyzeSchedule(circuit, model, options);
            const auto delta = opsScheduled.load() - before;
            EXPECT_TRUE(parallel == serial)
                << "analysis diverged at " << workers << " workers";
            EXPECT_EQ(delta, delta1)
                << "counter delta diverged at " << workers
                << " workers";
        }
    }
}

TEST(SchedDeterminism, StableAcrossRepeatedRuns)
{
    // Same thread count, repeated runs: no dependence on allocation
    // addresses, map iteration order, or scheduling.
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = TimingModel::uniform(
        devices::fluxTunableQubit(), circuit.numQubits());
    const auto first = analyzeSchedule(circuit, model);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(analyzeSchedule(circuit, model) == first);
}

TEST(SchedDeterminism, NestedInsideParallelForStillCorrect)
{
    // The engine serializes nested parallelFor; an analysis launched
    // from inside a worker must still match the top-level result.
    ThreadCountGuard guard;
    exec::setThreadCount(4);
    const auto circuit =
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01, 0.01);
    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    const auto outer = analyzeSchedule(circuit, model);

    std::vector<ScheduleAnalysis> nested(4);
    exec::parallelFor(nested.size(), [&](std::size_t i) {
        nested[i] = analyzeSchedule(circuit, model);
    });
    for (const auto& a : nested)
        EXPECT_TRUE(a == outer);
}

} // namespace
} // namespace sched
} // namespace lint
} // namespace hetarch
