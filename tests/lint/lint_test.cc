/**
 * @file
 * Tests for the static-verification subsystem (hetarch::lint): a
 * table of known-bad circuits (one per pass), exact determinism
 * checking cross-validated against the Monte-Carlo
 * TableauSimulator::checkDetectorsDeterministic, and a sweep asserting
 * every circuit builder in the repo produces lint-clean output.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cells/standard_cells.hh"
#include "core/rng.hh"
#include "distill/dejmps.hh"
#include "lint/lint.hh"
#include "lint/verify_cell.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "stab/circuit_io.hh"
#include "stab/tableau.hh"
#include "uec/assignment.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace lint {
namespace {

using stab::Circuit;
using stab::Op;
using stab::OpCode;

/** Does the report carry a finding matching all the given fields? */
bool
hasFinding(const LintReport& report, const std::string& pass,
           Severity severity, std::size_t op_index,
           const std::string& needle)
{
    for (const auto& f : report.findings) {
        if (f.pass == pass && f.severity == severity &&
            f.opIndex == op_index &&
            f.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

std::size_t
countIn(const LintReport& report, const std::string& pass)
{
    std::size_t n = 0;
    for (const auto& f : report.findings)
        n += f.pass == pass;
    return n;
}

// --- table of known-bad circuits, one per pass ------------------------

struct BadCase
{
    const char* name;
    Circuit circuit;
    const char* pass;       ///< pass expected to flag it
    Severity severity;
    std::size_t opIndex;    ///< expected finding anchor
    const char* needle;     ///< message substring
};

std::vector<BadCase>
badCases()
{
    std::vector<BadCase> cases;
    auto raw = [](std::size_t nq, std::vector<Op> ops) {
        return Circuit::fromRawOps(nq, std::move(ops));
    };

    cases.push_back({"cx_wrong_arity",
                     raw(3, {{OpCode::CX, {0, 1, 2}, {}, 0}}),
                     "structural", Severity::Error, 0,
                     "canonical IR requires 2"});
    cases.push_back({"cx_self_pair",
                     raw(2, {{OpCode::CX, {0, 0}, {}, 0}}),
                     "structural", Severity::Error, 0,
                     "targets qubit 0 twice"});
    cases.push_back({"target_out_of_range",
                     raw(1, {{OpCode::H, {5}, {}, 0}}),
                     "structural", Severity::Error, 0,
                     "register has 1 qubits"});
    cases.push_back({"gate_with_params",
                     raw(1, {{OpCode::H, {0}, {0.5}, 0}}),
                     "structural", Severity::Error, 0,
                     "expected 0"});
    cases.push_back({"annotation_with_params",
                     raw(1, {{OpCode::M, {0}, {}, 0},
                             {OpCode::DETECTOR, {0}, {0.1}, 0}}),
                     "structural", Severity::Error, 1,
                     "annotations take none"});
    cases.push_back({"empty_detector",
                     raw(1, {{OpCode::DETECTOR, {}, {}, 0}}),
                     "structural", Severity::Warning, 0,
                     "dead annotation"});

    cases.push_back({"forward_detector",
                     raw(1, {{OpCode::M, {0}, {}, 0},
                             {OpCode::DETECTOR, {3}, {}, 0}}),
                     "record-ref", Severity::Error, 1,
                     "forward or dangling"});
    cases.push_back({"detector_before_measure",
                     raw(1, {{OpCode::DETECTOR, {0}, {}, 0},
                             {OpCode::M, {0}, {}, 0}}),
                     "record-ref", Severity::Error, 0,
                     "only 0 exist"});
    cases.push_back({"duplicate_record_ref",
                     raw(1, {{OpCode::M, {0}, {}, 0},
                             {OpCode::OBSERVABLE, {0, 0}, {}, 0}}),
                     "record-ref", Severity::Warning, 1,
                     "duplicate pairs cancel"});

    cases.push_back({"probability_above_one",
                     raw(1, {{OpCode::X_ERROR, {0}, {1.5}, 0}}),
                     "prob-range", Severity::Error, 0,
                     "outside [0, 1]"});
    cases.push_back({"probability_negative",
                     raw(1, {{OpCode::DEPOL1, {0}, {-0.1}, 0}}),
                     "prob-range", Severity::Error, 0,
                     "outside [0, 1]"});
    cases.push_back({"pauli1_sum_above_one",
                     raw(1, {{OpCode::PAULI1, {0}, {0.5, 0.4, 0.3}, 0}}),
                     "prob-range", Severity::Error, 0,
                     "sum to"});
    cases.push_back({"zero_probability_noise",
                     raw(1, {{OpCode::X_ERROR, {0}, {0.0}, 0}}),
                     "prob-range", Severity::Info, 0,
                     "zero probability"});

    cases.push_back({"redundant_measurement",
                     raw(1, {{OpCode::H, {0}, {}, 0},
                             {OpCode::M, {0}, {}, 0},
                             {OpCode::M, {0}, {}, 0}}),
                     "liveness", Severity::Warning, 2,
                     "redundant measurement"});
    cases.push_back({"measure_untouched_qubit",
                     raw(1, {{OpCode::M, {0}, {}, 0}}),
                     "liveness", Severity::Warning, 0,
                     "before any gate or reset"});
    cases.push_back({"dead_component",
                     raw(3, {{OpCode::H, {0}, {}, 0},
                             {OpCode::CX, {0, 1}, {}, 0},
                             {OpCode::H, {2}, {}, 0},
                             {OpCode::M, {2}, {}, 0}}),
                     "liveness", Severity::Warning, kNoOpIndex,
                     "never measured"});

    cases.push_back({"nondeterministic_detector",
                     raw(1, {{OpCode::H, {0}, {}, 0},
                             {OpCode::M, {0}, {}, 0},
                             {OpCode::DETECTOR, {0}, {}, 0}}),
                     "determinism", Severity::Error, 2,
                     "not deterministic"});
    cases.push_back({"nondeterministic_observable",
                     raw(1, {{OpCode::H, {0}, {}, 0},
                             {OpCode::M, {0}, {}, 0},
                             {OpCode::OBSERVABLE, {0}, {}, 0}}),
                     "determinism", Severity::Error, 2,
                     "not deterministic"});
    // Resetting half an entangled pair leaves the partner's outcome
    // tied to the collapse coin: the reset is NOT a no-op for
    // determinism.
    cases.push_back({"reset_half_of_bell_pair",
                     raw(2, {{OpCode::H, {0}, {}, 0},
                             {OpCode::CX, {0, 1}, {}, 0},
                             {OpCode::R, {0}, {}, 0},
                             {OpCode::M, {1}, {}, 0},
                             {OpCode::DETECTOR, {0}, {}, 0}}),
                     "determinism", Severity::Error, 4,
                     "random collapse"});
    return cases;
}

TEST(LintBadCircuits, EachPassFlagsItsFixture)
{
    for (auto& c : badCases()) {
        const auto report = lintCircuit(c.circuit);
        EXPECT_TRUE(hasFinding(report, c.pass, c.severity, c.opIndex,
                               c.needle))
            << c.name << " expected " << severityName(c.severity) << "["
            << c.pass << "] op " << c.opIndex << " containing '"
            << c.needle << "'; got:\n"
            << report.toString();
    }
}

TEST(LintBadCircuits, ErrorsSuppressDeterminismPass)
{
    // A structurally broken circuit must not reach the symbolic
    // tableau; the report says so explicitly.
    const auto circ =
        Circuit::fromRawOps(1, {{OpCode::H, {5}, {}, 0}});
    const auto report = lintCircuit(circ);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(hasFinding(report, "determinism", Severity::Info,
                           kNoOpIndex, "pass skipped"));
}

TEST(LintReportApi, CountsAndRendering)
{
    LintReport report;
    report.add("structural", Severity::Error, 3, "broken");
    report.add("liveness", Severity::Warning, kNoOpIndex, "smelly");
    report.add("prob-range", Severity::Info, 0, "note");
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.cleanStrict());
    const auto text = report.toString();
    EXPECT_NE(text.find("error[structural] op 3: broken"),
              std::string::npos);
    EXPECT_NE(text.find("warning[liveness]: smelly"), std::string::npos);

    LintReport warn_only;
    warn_only.add("liveness", Severity::Warning, 0, "w");
    EXPECT_TRUE(warn_only.clean());
    EXPECT_FALSE(warn_only.cleanStrict());
}

// --- determinism pass: positive cases ---------------------------------

TEST(LintDeterminism, BellPairParityIsDeterministic)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const auto a = c.measure(0);
    const auto b = c.measure(1);
    c.detector({a, b});
    c.observableInclude(0, {a, b});
    const auto report = lintCircuit(c);
    EXPECT_TRUE(report.cleanStrict()) << report.toString();
}

TEST(LintDeterminism, RepeatedMeasurementCoinCancels)
{
    // The first M of |+> is a coin; the second repeats it, so the
    // parity of the two is deterministic even though each is random.
    Circuit c(1);
    c.h(0);
    const auto a = c.measure(0);
    const auto b = c.measure(0);
    c.detector({a, b});
    LintReport report;
    passDeterminism(c, report);
    EXPECT_TRUE(report.clean()) << report.toString();
}

TEST(LintDeterminism, MeasureResetDifferenceDetector)
{
    // Standard syndrome idiom: MR twice, difference detector.
    Circuit c(2);
    c.reset(1);
    c.h(0);
    c.cx(0, 1);
    const auto a = c.measureReset(1);
    c.cx(0, 1);
    const auto b = c.measureReset(1);
    c.detector({a, b});
    const auto report = lintCircuit(c);
    EXPECT_TRUE(report.clean()) << report.toString();
}

TEST(LintDeterminism, AgreesWithMonteCarloOnHandCases)
{
    Circuit good(2);
    good.h(0);
    good.cx(0, 1);
    good.detector({good.measure(0), good.measure(1)});
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(good));
    LintReport good_report;
    passDeterminism(good, good_report);
    EXPECT_TRUE(good_report.clean());

    Circuit bad(2);
    bad.h(0);
    bad.cx(0, 1);
    bad.reset(0);
    bad.detector({bad.measure(1)});
    EXPECT_FALSE(
        stab::TableauSimulator::checkDetectorsDeterministic(bad, 32));
    LintReport bad_report;
    passDeterminism(bad, bad_report);
    EXPECT_FALSE(bad_report.clean());
}

// --- cross-validation against the stab property-test generator --------

/**
 * Same construction as tests/stab/random_circuit_property_test.cc:
 * random Clifford scrambling, two rounds of random stabilizer-ish
 * checks with difference detectors, noise throughout.  Deterministic
 * by construction.
 */
Circuit
randomCircuit(std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t n_data = 3 + rng.uniformInt(3);
    const std::size_t n_anc = 2 + rng.uniformInt(2);
    Circuit c(n_data + n_anc);

    auto random_clifford_layer = [&]() {
        for (std::uint32_t q = 0; q < n_data; ++q) {
            switch (rng.uniformInt(4)) {
              case 0: c.h(q); break;
              case 1: c.s(q); break;
              case 2: break;
              default: {
                const auto other = static_cast<std::uint32_t>(
                    rng.uniformInt(n_data));
                if (other != q)
                    c.cx(q, other);
                break;
              }
            }
        }
    };
    auto noise_layer = [&]() {
        for (std::uint32_t q = 0; q < n_data; ++q) {
            if (rng.bernoulli(0.5))
                c.depolarize1(q, 0.02 + 0.05 * rng.uniform());
            if (rng.bernoulli(0.3))
                c.xError(q, 0.05 * rng.uniform());
        }
    };

    random_clifford_layer();

    std::vector<std::vector<std::uint32_t>> supports(n_anc);
    for (std::size_t a = 0; a < n_anc; ++a) {
        const std::size_t w = 1 + rng.uniformInt(3);
        for (std::size_t i = 0; i < w; ++i) {
            supports[a].push_back(
                static_cast<std::uint32_t>(rng.uniformInt(n_data)));
        }
    }
    std::vector<std::size_t> first(n_anc);
    for (int round = 0; round < 2; ++round) {
        noise_layer();
        for (std::size_t a = 0; a < n_anc; ++a) {
            const auto anc = static_cast<std::uint32_t>(n_data + a);
            for (auto q : supports[a])
                c.cx(q, anc);
            const auto m = c.measureReset(anc);
            if (round == 0)
                first[a] = m;
            else
                c.detector({first[a], m});
        }
    }
    const auto m_first = c.measure(0);
    for (std::uint32_t q = 0; q < n_data; ++q)
        c.xError(q, 0.02);
    const auto m_second = c.measure(0);
    c.observableInclude(0, {m_first, m_second});
    return c;
}

class DeterminismCrossValidation : public ::testing::TestWithParam<int>
{
};

TEST_P(DeterminismCrossValidation, SymbolicProofMatchesMonteCarlo)
{
    const auto c = randomCircuit(1000 + GetParam());

    LintReport report;
    passDeterminism(c, report);
    EXPECT_TRUE(report.clean()) << report.toString();
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(c));
}

TEST_P(DeterminismCrossValidation, MutatedCircuitFlaggedByBoth)
{
    // Break the circuit: a fresh-coin measurement wired straight into
    // a detector.  Both the exact pass and the sampler must reject it.
    auto c = randomCircuit(1000 + GetParam());
    const std::uint32_t q = 0;
    c.h(q);
    const auto m = c.measure(q);
    c.detector({m});

    LintReport report;
    passDeterminism(c, report);
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(
        stab::TableauSimulator::checkDetectorsDeterministic(c, 32));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismCrossValidation,
                         ::testing::Range(0, 8));

// --- builder sweep: every generated circuit lints clean ----------------

TEST(LintBuilders, SurfaceMemoryAllDistancesAndBases)
{
    const qec::CircuitNoise noise;
    for (std::size_t d : {2u, 3u, 4u}) {
        for (auto basis : {qec::MemoryBasis::Z, qec::MemoryBasis::X}) {
            const auto c = qec::surfaceMemory(d, 2, noise, basis);
            const auto report = lintCircuit(c);
            EXPECT_TRUE(report.cleanStrict())
                << "d=" << d << " basis="
                << (basis == qec::MemoryBasis::X ? "X" : "Z") << "\n"
                << report.toString();
        }
    }
}

TEST(LintBuilders, CodeCapacityMemoryZ)
{
    for (const auto& code :
         {qec::makeRepetition(3), qec::makeSteane()}) {
        const auto c = qec::codeCapacityMemoryZ(code, 2, 0.01, 0.01);
        const auto report = lintCircuit(c);
        EXPECT_TRUE(report.cleanStrict())
            << code.name << "\n" << report.toString();
    }
}

TEST(LintBuilders, UecMemoryCircuits)
{
    const auto code = qec::makeSteane();
    const uec::UecNoise noise;

    const auto single = uec::uecMemoryZ(
        code, uec::roundRobinAssignment(code), 2, noise);
    const auto single_report = lintCircuit(single);
    EXPECT_TRUE(single_report.cleanStrict()) << single_report.toString();

    uec::UecChain chain;
    chain.numUscExt = 1;
    const auto chained = uec::uecChainedMemoryZ(
        code, uec::roundRobinAssignment(code, chain.numRegisters()),
        chain, 2, noise);
    const auto chained_report = lintCircuit(chained);
    EXPECT_TRUE(chained_report.cleanStrict())
        << chained_report.toString();
}

TEST(LintBuilders, LatticeBaselineMemory)
{
    const auto code = qec::makeSteane();
    const auto emb = uec::embedOnLattice(code);
    const auto c = uec::latticeMemoryZ(code, emb, 2, uec::LatticeNoise{});
    const auto report = lintCircuit(c);
    EXPECT_TRUE(report.cleanStrict()) << report.toString();
}

TEST(LintBuilders, DejmpsCircuit)
{
    const auto c = distill::dejmpsCircuit();
    const auto report = lintCircuit(c);
    EXPECT_TRUE(report.cleanStrict()) << report.toString();
    EXPECT_TRUE(stab::TableauSimulator::checkDetectorsDeterministic(c));
}

TEST(LintBuilders, RoundTripThroughTextStaysClean)
{
    const auto c = qec::surfaceMemoryZ(3, 2, qec::CircuitNoise{});
    const auto reparsed = stab::parseCircuit(c.toString());
    EXPECT_TRUE(stab::circuitsEquivalent(c, reparsed));
    EXPECT_TRUE(lintCircuit(reparsed).cleanStrict());
}

// --- cell-level verification ------------------------------------------

TEST(VerifyCell, Table2CellsAllVerify)
{
    for (const auto& cell : cells::table2Cells()) {
        const auto report = verifyCell(cell);
        EXPECT_TRUE(report.cleanStrict())
            << cell.name() << "\n" << report.toString();
    }
}

TEST(VerifyCell, ExcessReadoutIsReported)
{
    // DR4 (minimal readout): a cell with more readout sites than its
    // operations need must surface as a cell-drc finding.  The
    // Register cell has no readout, so pick the first cell that does.
    cells::StandardCell cell("none");
    for (auto& c : cells::table2Cells())
        if (c.readoutCount() >= 1)
            cell = std::move(c);
    ASSERT_GE(cell.readoutCount(), 1u);
    const auto report = verifyCell(cell, cell.readoutCount() - 1);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(countIn(report, "cell-drc"), report.errorCount());
    EXPECT_TRUE(hasFinding(report, "cell-drc", Severity::Error,
                           kNoOpIndex, "DR4"));
}

// --- parse-time validation (satellite: line-numbered diagnostics) ------

using LintParseDeathTest = ::testing::Test;

TEST(LintParseDeathTest, NoiseParamsValidatedWithLineNumbers)
{
    EXPECT_DEATH(stab::parseCircuit("H 0\nX_ERROR p=1.5 0\n"),
                 "line 2.*outside \\[0, 1\\]");
    EXPECT_DEATH(
        stab::parseCircuit("PAULI_CHANNEL_1 p=0.5 p=0.4 p=0.3 0\n"),
        "line 1.*probabilities sum to");
    EXPECT_DEATH(stab::parseCircuit("CX 0 1 2\n"),
                 "line 1.*even number of targets");
    EXPECT_DEATH(stab::parseCircuit("SWAP 1 1\n"),
                 "line 1.*pairs qubit 1 with itself");
    EXPECT_DEATH(stab::parseCircuit("M 0\nOBSERVABLE_INCLUDE(0) 7\n"),
                 "line 2.*references measurement 7");
}

TEST(LintParseDeathTest, MalformedTokensGetLineNumberedFatalsNotThrows)
{
    // These used to escape as uncaught std::invalid_argument from the
    // std::sto* family; they must die through HETARCH_FATAL instead.
    EXPECT_DEATH(stab::parseCircuit("this is not a circuit\n"),
                 "line 1.*expected a target index, got 'is'");
    EXPECT_DEATH(stab::parseCircuit("H 0\nM -1\n"),
                 "line 2.*expected a target index, got '-1'");
    EXPECT_DEATH(stab::parseCircuit("X_ERROR p=oops 0\n"),
                 "line 1.*bad parameter value 'oops'");
    EXPECT_DEATH(stab::parseCircuit("X_ERROR p= 0\n"),
                 "line 1.*bad parameter value ''");
    EXPECT_DEATH(stab::parseCircuit("M 0\nOBSERVABLE_INCLUDE(x) 0\n"),
                 "line 2.*expected an observable index, got 'x'");
    EXPECT_DEATH(stab::parseCircuit("M 99999999999999999999\n"),
                 "line 1.*out of range");
}

TEST(LintParse, BroadcastTargetListsSplitIntoCanonicalOps)
{
    const auto c = stab::parseCircuit("R 0 1 2\nCX 0 1 1 2\nM 0 1 2\n");
    ASSERT_EQ(c.ops().size(), 8u);
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numMeasurements(), 3u);
    EXPECT_EQ(c.ops()[3].code, OpCode::CX);
    EXPECT_EQ(c.ops()[3].targets, (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(c.ops()[4].targets, (std::vector<std::uint32_t>{1, 2}));
    EXPECT_TRUE(lintCircuit(c).cleanStrict());
}

} // namespace
} // namespace lint
} // namespace hetarch
