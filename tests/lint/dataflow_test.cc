/**
 * @file
 * Unit tests of the qubit-dataflow / storage-residency analyzer
 * (lint/dataflow.hh): hand-verified residency intervals on a
 * park/retrieve register, every hazard in the flow taxonomy with its
 * clean counterpart, the live-idle refinement against the schedule
 * analyzer, the certified end-to-end budget composition, and the
 * FlowCache memoization contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "devices/device.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "lint/schedule.hh"
#include "obs/obs.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {
namespace flow {
namespace {

/** Count hazards from one pass. */
std::size_t
countPass(const FlowAnalysis& a, const std::string& pass)
{
    std::size_t n = 0;
    for (const auto& h : a.hazards)
        n += h.pass == pass ? 1 : 0;
    return n;
}

/** Compute/storage register (same helper as the schedule tests). */
TimingModel
registerModel(std::size_t num_qubits,
              const std::vector<std::uint32_t>& storage_qubits,
              const devices::DeviceModel& storage =
                  devices::multimodeResonator3D())
{
    return TimingModel::withStorage(devices::fixedFrequencyTransmon(),
                                    storage, num_qubits,
                                    storage_qubits);
}

// --- the clean park/retrieve cycle ------------------------------------

TEST(Dataflow, HandVerifiedParkRetrieve)
{
    // R 0 [0,1000) ; X 0 [1000,1040) ; SWAP 0 1 (deposit)
    // [1040,1440) ; SWAP 0 1 (retrieve) [1440,1840) ; M 0
    // [1840,2840).  3d-multimode-resonator swap = 400 ns.
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1);
    c.swap(0, 1);
    const auto m = c.measure(0);
    c.detector({m});

    const auto a = analyzeFlow(c, registerModel(2, {1}));
    EXPECT_TRUE(a.hazards.empty());
    EXPECT_EQ(a.opsTracked, 5u);
    EXPECT_EQ(a.swapCount, 2u);
    EXPECT_DOUBLE_EQ(a.movementNs, 800.0);

    ASSERT_EQ(a.residencies.size(), 1u);
    const auto& r = a.residencies[0];
    EXPECT_EQ(r.qubit, 1u);
    EXPECT_DOUBLE_EQ(r.startNs, 1440.0); // deposit SWAP completes
    EXPECT_DOUBLE_EQ(r.endNs, 1440.0);   // retrieval SWAP starts
    EXPECT_EQ(r.depositOp, 2u);
    EXPECT_EQ(r.retrieveOp, 3u);
    EXPECT_FALSE(r.orphaned);

    EXPECT_EQ(a.peakStorageOccupancy, 1u);
    ASSERT_EQ(a.instances.size(), 1u);
    EXPECT_EQ(a.instances[0].device, "3d-multimode-resonator");
    EXPECT_EQ(a.instances[0].residencies, 1u);
    EXPECT_EQ(a.instances[0].peakOccupancy, 1u);
}

// --- hazard taxonomy --------------------------------------------------

TEST(Hazards, SwapWithNeverWrittenStorageRetrievesVacuum)
{
    // The SWAP's "retrieval" half brings back vacuum: the storage mode
    // was never deposited into.  The hazard cascades — the vacuum then
    // flows into the measurement record the DETECTOR consumes.
    stab::Circuit c(2);
    c.reset(0);
    c.swap(0, 1); // q0 holds Fresh |0>, storage holds vacuum
    const auto m = c.measure(0);
    c.detector({m});
    const auto a = analyzeFlow(c, registerModel(2, {1}));
    EXPECT_EQ(countPass(a, "flow-use-before-init"), 2u);
    EXPECT_EQ(a.hazardErrors(), 2u);
    EXPECT_EQ(a.hazards[0].opIndex, 1u); // the SWAP
    EXPECT_EQ(a.hazards[1].opIndex, 3u); // the DETECTOR
}

TEST(Hazards, MeasuringMovedVacuumPoisonsTheRecord)
{
    // Deposit, forget to retrieve, measure the compute qubit anyway:
    // the DETECTOR consumes the measurement of vacuum, and the parked
    // state is orphaned.
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1); // deposit; q0 now holds moved vacuum
    const auto m = c.measure(0);
    c.detector({m});
    const auto a = analyzeFlow(c, registerModel(2, {1}));
    EXPECT_EQ(countPass(a, "flow-use-before-init"), 1u);
    EXPECT_EQ(countPass(a, "flow-orphan"), 1u);

    // A local reset between deposit and measurement makes the record
    // legitimate |0> physics: only the orphan remains.
    stab::Circuit ok(2);
    ok.reset(0);
    ok.x(0);
    ok.swap(0, 1);
    ok.reset(0);
    const auto mok = ok.measure(0);
    ok.detector({mok});
    const auto b = analyzeFlow(ok, registerModel(2, {1}));
    EXPECT_EQ(countPass(b, "flow-use-before-init"), 0u);
    EXPECT_EQ(countPass(b, "flow-orphan"), 1u);
}

TEST(Hazards, StaleStorageHonorsTheThreshold)
{
    // The parked state sits ~1000 ns (the compute qubit's reset)
    // between deposit and retrieval.
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1);
    c.reset(0); // 1000 ns on the transmon
    c.swap(0, 1);
    const auto m = c.measure(0);
    c.detector({m});

    const auto model = registerModel(2, {1});
    FlowOptions strict;
    strict.staleAfterNs = 500.0;
    const auto a = analyzeFlow(c, model, strict);
    EXPECT_EQ(countPass(a, "flow-stale-storage"), 1u);
    EXPECT_EQ(a.hazardErrors(), 0u); // warning-severity

    // Default threshold is the hosting device's T2 (2.5 ms here):
    // 1000 ns resident is nowhere near stale.
    const auto b = analyzeFlow(c, model);
    EXPECT_EQ(countPass(b, "flow-stale-storage"), 0u);
    ASSERT_EQ(b.residencies.size(), 1u);
    EXPECT_DOUBLE_EQ(b.residencies[0].durationNs(), 1000.0);
}

TEST(Hazards, DoubleSwapClobbersTheParkedState)
{
    stab::Circuit c(3);
    c.reset(0);
    c.reset(1);
    c.x(0);
    c.x(1);
    c.swap(0, 2); // deposit
    c.swap(1, 2); // second deposit: the first state pops out into q1
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m1});
    c.observableInclude(0, {m0, m1});
    const auto a = analyzeFlow(c, registerModel(3, {2}));
    EXPECT_EQ(countPass(a, "flow-double-swap"), 1u);
    // The exchange preserves state, so q1 ends up holding the first
    // deposit — still Data, so its record is not vacuum; but m0 reads
    // moved vacuum.
    EXPECT_EQ(countPass(a, "flow-use-before-init"), 1u);
    // The second deposit is still resident at circuit end.
    EXPECT_EQ(countPass(a, "flow-orphan"), 1u);
}

TEST(Hazards, LiveOccupancyOverflowsTheModeCount)
{
    // 3d-quantum-memory has one mode; two simultaneous live deposits
    // on the shared instance overflow it.
    stab::Circuit c(4);
    c.reset(0);
    c.reset(1);
    c.x(0);
    c.x(1);
    c.swap(0, 2);
    c.swap(1, 3);
    c.swap(0, 2);
    c.swap(1, 3);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    const auto a = analyzeFlow(
        c, registerModel(4, {2, 3}, devices::quantumMemory3D()));
    EXPECT_EQ(countPass(a, "flow-capacity"), 1u);
    EXPECT_EQ(a.peakStorageOccupancy, 2u);

    // Sequential residencies (retrieve before the second deposit)
    // respect the single mode.
    stab::Circuit seq(4);
    seq.reset(0);
    seq.reset(1);
    seq.x(0);
    seq.x(1);
    seq.swap(0, 2);
    seq.swap(0, 2);
    seq.swap(1, 3);
    seq.swap(1, 3);
    const auto n0 = seq.measure(0);
    const auto n1 = seq.measure(1);
    seq.detector({n0});
    seq.detector({n1});
    const auto b = analyzeFlow(
        seq, registerModel(4, {2, 3}, devices::quantumMemory3D()));
    EXPECT_EQ(countPass(b, "flow-capacity"), 0u);
    EXPECT_EQ(b.peakStorageOccupancy, 1u);
    EXPECT_EQ(b.residencies.size(), 2u);
}

TEST(Hazards, GateOnMeasuredStateWarnsThroughTheFlow)
{
    stab::Circuit c(1);
    c.reset(0);
    const auto m = c.measure(0);
    c.x(0); // consumes Collapsed content
    const auto m2 = c.measure(0);
    c.detector({m});
    c.detector({m2});
    const auto a = analyzeFlow(
        c, TimingModel::uniform(devices::fixedFrequencyTransmon(), 1));
    EXPECT_EQ(countPass(a, "flow-measure-reuse"), 1u);
    EXPECT_EQ(a.hazardErrors(), 0u);

    // MR clears the collapse.
    stab::Circuit ok(1);
    ok.reset(0);
    const auto mm = ok.measureReset(0);
    ok.x(0);
    const auto mm2 = ok.measure(0);
    ok.detector({mm});
    ok.detector({mm2});
    const auto b = analyzeFlow(
        ok, TimingModel::uniform(devices::fixedFrequencyTransmon(), 1));
    EXPECT_EQ(countPass(b, "flow-measure-reuse"), 0u);
}

TEST(Hazards, FindingsCarryThroughFlowFindings)
{
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1);
    const auto m = c.measure(0);
    c.detector({m});
    const auto a = analyzeFlow(c, registerModel(2, {1}));
    LintReport report;
    flowFindings(a, report);
    EXPECT_EQ(report.errorCount(), a.hazardErrors());
    bool summary = false;
    for (const auto& f : report.findings)
        summary = summary || f.pass == "flow-summary";
    EXPECT_TRUE(summary);
}

// --- live idle refinement ---------------------------------------------

TEST(Dataflow, LiveIdleIsASubsetOfScheduleIdle)
{
    // Every live idle window is a schedule idle window; windows where
    // the location holds vacuum are excluded from the budget.
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    const auto sched_a = sched::analyzeSchedule(circuit, model);
    const auto flow_a = analyzeFlow(circuit, model);
    EXPECT_LE(flow_a.liveIdleWindows, sched_a.idleWindows.size());
    EXPECT_LE(flow_a.liveIdleNs, sched_a.totalIdleNs);
    EXPECT_EQ(flow_a.opsTracked, sched_a.opsScheduled);
    EXPECT_DOUBLE_EQ(flow_a.criticalPathNs, sched_a.criticalPathNs);
}

// --- certified end-to-end budgets -------------------------------------

TEST(Budget, ComposesGateAndIdleBoundsAtTheCertifiedWeight)
{
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto faults = analyzeCircuitFaults(circuit);
    ASSERT_EQ(faults.observables.size(), 1u);
    ASSERT_EQ(faults.observables[0].distance, 3u);

    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    FlowOptions options;
    options.faults = &faults;
    options.gateBudget = true;
    const auto a = analyzeFlow(circuit, model, options);

    ASSERT_EQ(a.observables.size(), 1u);
    const auto& b = a.observables[0];
    EXPECT_EQ(b.weight, 2u); // ceil(3 / 2)
    // The gate half IS the PR-4 union bound at the same weight.
    EXPECT_DOUBLE_EQ(b.gateBound, faults.observables[0].unionBound);
    // The composition dominates both halves and is non-vacuous.
    EXPECT_GE(b.budget, b.gateBound);
    EXPECT_GE(b.budget, b.idleBound);
    EXPECT_GT(b.budget, 0.0);
    EXPECT_LE(b.budget, 1.0);
    EXPECT_DOUBLE_EQ(a.maxBudget(), b.budget);
}

TEST(Budget, WithoutGateBudgetTheIdleHalfStands)
{
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    const auto a = analyzeFlow(circuit, model);
    ASSERT_EQ(a.observables.size(), 1u);
    EXPECT_EQ(a.observables[0].weight, 1u); // no fault structure
    EXPECT_DOUBLE_EQ(a.observables[0].gateBound, 0.0);
    EXPECT_DOUBLE_EQ(a.observables[0].budget,
                     a.observables[0].idleBound);
}

TEST(Budget, UnflippableObservableGetsZeroBudget)
{
    stab::Circuit c(2);
    c.reset(0);
    c.reset(1);
    c.cx(0, 1);
    const auto m0 = c.measure(0);
    const auto m1 = c.measure(1);
    c.detector({m0});
    c.detector({m1});
    c.observableInclude(0, {m0});
    const auto faults = analyzeCircuitFaults(c);
    ASSERT_EQ(faults.observables[0].distance, kInfiniteDistance);

    FlowOptions options;
    options.faults = &faults;
    const auto a = analyzeFlow(
        c,
        TimingModel::uniform(devices::fixedFrequencyTransmon(),
                             c.numQubits()),
        options);
    ASSERT_EQ(a.observables.size(), 1u);
    EXPECT_EQ(a.observables[0].weight, 0u);
    EXPECT_DOUBLE_EQ(a.observables[0].budget, 0.0);
}

// --- memoization ------------------------------------------------------

TEST(FlowCacheTest, HitsAndMissesAreKeyedOnContent)
{
    auto& cache = FlowCache::instance();
    cache.clear();
    auto& hits = obs::counter("lint.flow.cache_hits");
    auto& misses = obs::counter("lint.flow.cache_misses");

    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());

    const auto h0 = hits.load();
    const auto m0 = misses.load();
    const auto first = cache.analysis(circuit, model);
    EXPECT_EQ(misses.load(), m0 + 1);
    const auto again = cache.analysis(circuit, model);
    EXPECT_EQ(hits.load(), h0 + 1);
    EXPECT_TRUE(*again == *first);
    EXPECT_EQ(cache.size(), 1u);

    // A different staleness threshold is a different key.
    FlowOptions strict;
    strict.staleAfterNs = 123.0;
    (void)cache.analysis(circuit, model, strict);
    EXPECT_EQ(misses.load(), m0 + 2);

    // So is enabling the gate budget.
    FlowOptions gate;
    gate.gateBudget = true;
    (void)cache.analysis(circuit, model, gate);
    EXPECT_EQ(misses.load(), m0 + 3);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(FlowCacheTest, CachedAnalysisEqualsFreshRun)
{
    auto& cache = FlowCache::instance();
    cache.clear();
    stab::Circuit c(2);
    c.reset(0);
    c.x(0);
    c.swap(0, 1);
    c.swap(0, 1);
    const auto m = c.measure(0);
    c.detector({m});
    const auto model = registerModel(2, {1});
    const auto cached = cache.analysis(c, model);
    EXPECT_TRUE(*cached == analyzeFlow(c, model));
    cache.clear();
}

} // namespace
} // namespace flow
} // namespace lint
} // namespace hetarch
