/**
 * @file
 * Worker-count invariance of the dataflow analyzer.  The
 * per-observable budget fan-out runs on the exec engine; by the
 * engine's determinism contract (size-only partition, pre-sized
 * slots, ordered reduction) the full FlowAnalysis — residencies,
 * pressure timelines, budgets, hazards — must be bit-identical at 1,
 * 2, and 8 workers, and the deterministic obs counters the analyzer
 * bumps must move by the same deltas.  Companion of
 * sched_determinism_test.cc.
 */

#include <gtest/gtest.h>

#include <vector>

#include "devices/device.hh"
#include "exec/thread_pool.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "obs/obs.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/surface_circuit.hh"
#include "uec/assignment.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace lint {
namespace flow {
namespace {

/** Restore the worker-count default even when an assertion throws. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

std::vector<stab::Circuit>
corpus()
{
    std::vector<stab::Circuit> circuits;
    circuits.push_back(qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}));
    circuits.push_back(qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{}));
    circuits.push_back(
        qec::codeCapacityMemoryZ(qec::makeSteane(), 2, 0.01, 0.01));
    const auto code = qec::makeSteane();
    circuits.push_back(uec::uecMemoryZ(
        code, uec::roundRobinAssignment(code), 2, uec::UecNoise{}));
    return circuits;
}

TEST(FlowDeterminism, AnalysisBitIdenticalAtOneTwoEightWorkers)
{
    ThreadCountGuard guard;
    auto& analyses = obs::counter("lint.flow.analyses");
    auto& hazards = obs::counter("lint.flow.hazards");

    for (const auto& circuit : corpus()) {
        const auto faults = analyzeCircuitFaults(circuit);
        const auto model = sched::TimingModel::uniform(
            devices::fixedFrequencyTransmon(), circuit.numQubits());
        FlowOptions options;
        options.faults = &faults;
        options.gateBudget = true;

        exec::setThreadCount(1);
        const auto base_a = analyses.load();
        const auto base_h = hazards.load();
        const auto serial = analyzeFlow(circuit, model, options);
        const auto delta_a1 = analyses.load() - base_a;
        const auto delta_h1 = hazards.load() - base_h;

        for (unsigned workers : {2u, 8u}) {
            exec::setThreadCount(workers);
            const auto before_a = analyses.load();
            const auto before_h = hazards.load();
            const auto parallel = analyzeFlow(circuit, model, options);
            EXPECT_TRUE(parallel == serial)
                << "analysis diverged at " << workers << " workers";
            EXPECT_EQ(analyses.load() - before_a, delta_a1)
                << "analysis counter diverged at " << workers
                << " workers";
            EXPECT_EQ(hazards.load() - before_h, delta_h1)
                << "hazard counter diverged at " << workers
                << " workers";
        }
    }
}

TEST(FlowDeterminism, StableAcrossRepeatedRuns)
{
    // Same thread count, repeated runs: no dependence on allocation
    // addresses, map iteration order, or scheduling.
    const auto circuit = qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{});
    const auto model = sched::TimingModel::uniform(
        devices::fluxTunableQubit(), circuit.numQubits());
    const auto first = analyzeFlow(circuit, model);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(analyzeFlow(circuit, model) == first);
}

TEST(FlowDeterminism, NestedInsideParallelForStillCorrect)
{
    // The engine serializes nested parallelFor; an analysis launched
    // from inside a worker must still match the top-level result.
    ThreadCountGuard guard;
    exec::setThreadCount(4);
    const auto circuit =
        qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2, 0.01, 0.01);
    const auto model = sched::TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    const auto outer = analyzeFlow(circuit, model);

    std::vector<FlowAnalysis> nested(4);
    exec::parallelFor(nested.size(), [&](std::size_t i) {
        nested[i] = analyzeFlow(circuit, model);
    });
    for (const auto& a : nested)
        EXPECT_TRUE(a == outer);
}

} // namespace
} // namespace flow
} // namespace lint
} // namespace hetarch
