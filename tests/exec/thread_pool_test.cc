/**
 * @file
 * Tests for the exec engine's thread pool: coverage, nesting,
 * configuration, and exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/rng.hh"
#include "exec/thread_pool.hh"

namespace hetarch {
namespace exec {
namespace {

/** Restores the default worker count when a test exits. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { setThreadCount(n); }
    ~ThreadCountGuard() { setThreadCount(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned workers : {1u, 2u, 8u}) {
        ThreadCountGuard guard(workers);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> counts(n);
        parallelFor(n, [&](std::size_t i) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(counts[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, ZeroAndOneTaskWork)
{
    ThreadCountGuard guard(4);
    parallelFor(0, [](std::size_t) { FAIL() << "no task expected"; });
    int calls = 0;
    parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallsRunSerialInline)
{
    ThreadCountGuard guard(4);
    std::atomic<int> inner_total{0};
    parallelFor(8, [&](std::size_t) {
        EXPECT_TRUE(inParallelRegion());
        // The nested loop must execute inline (and in order) on this
        // worker rather than re-entering the pool.
        std::size_t expected = 0;
        parallelFor(16, [&](std::size_t j) {
            EXPECT_EQ(j, expected++);
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(expected, 16u);
    });
    EXPECT_FALSE(inParallelRegion());
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelFor, SetThreadCountOverridesEnvironment)
{
    ThreadCountGuard guard(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1u);
}

TEST(ParallelFor, FirstExceptionInTaskOrderPropagates)
{
    for (unsigned workers : {1u, 4u}) {
        ThreadCountGuard guard(workers);
        try {
            parallelFor(64, [&](std::size_t i) {
                if (i % 2 == 1)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            if (workers == 1)
                EXPECT_STREQ(e.what(), "task 1");
            else
                EXPECT_NE(std::string(e.what()).find("task"),
                          std::string::npos);
        }
    }
}

TEST(ParallelInvoke, RunsEveryTask)
{
    ThreadCountGuard guard(4);
    int a = 0, b = 0, c = 0;
    parallelInvoke({
        [&] { a = 1; },
        [&] { b = 2; },
        [&] { c = 3; },
    });
    EXPECT_EQ(a + b + c, 6);
}

TEST(DeriveStream, IsStatelessAndWellSeparated)
{
    // Stateless: same inputs, same stream.
    EXPECT_EQ(Rng::deriveStream(42, 7), Rng::deriveStream(42, 7));
    // Distinct streams for nearby indices and nearby seeds.
    EXPECT_NE(Rng::deriveStream(42, 0), Rng::deriveStream(42, 1));
    EXPECT_NE(Rng::deriveStream(42, 0), Rng::deriveStream(43, 0));
    // A derived stream differs from the parent seed's own stream.
    EXPECT_NE(Rng::deriveStream(42, 0), 42u);

    // Generators from adjacent streams should look uncorrelated: the
    // first draws must all differ.
    Rng a(Rng::deriveStream(1, 0));
    Rng b(Rng::deriveStream(1, 1));
    Rng c(Rng::deriveStream(2, 0));
    const auto da = a(), db = b(), dc = c();
    EXPECT_NE(da, db);
    EXPECT_NE(da, dc);
    EXPECT_NE(db, dc);
}

} // namespace
} // namespace exec
} // namespace hetarch
