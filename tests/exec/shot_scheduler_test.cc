/**
 * @file
 * Tests for the shot scheduler: 64-shot alignment, exact coverage,
 * and thread-count independence of the partition.
 */

#include <gtest/gtest.h>

#include "exec/shot_scheduler.hh"

namespace hetarch {
namespace exec {
namespace {

TEST(ShotScheduler, PartitionCoversBudgetExactly)
{
    for (std::size_t shots : {1u, 63u, 64u, 100u, 256u, 1000u, 4096u}) {
        ShotScheduler sched(shots);
        std::size_t covered = 0;
        for (std::size_t i = 0; i < sched.numChunks(); ++i) {
            const auto chunk = sched.chunk(i);
            EXPECT_EQ(chunk.index, i);
            EXPECT_EQ(chunk.begin, covered);
            covered += chunk.count;
        }
        EXPECT_EQ(covered, shots);
    }
}

TEST(ShotScheduler, ChunksAre64Aligned)
{
    ShotScheduler sched(1000);
    for (std::size_t i = 0; i + 1 < sched.numChunks(); ++i)
        EXPECT_EQ(sched.chunk(i).count % 64, 0u);
    // Last chunk takes the ragged remainder.
    EXPECT_EQ(sched.chunk(sched.numChunks() - 1).count,
              1000 % sched.chunkShots());
}

TEST(ShotScheduler, ChunkSizeRoundsUpToBatch)
{
    EXPECT_EQ(ShotScheduler(100, 1).chunkShots(), 64u);
    EXPECT_EQ(ShotScheduler(100, 65).chunkShots(), 128u);
    EXPECT_EQ(ShotScheduler(100, 0).chunkShots(),
              ShotScheduler::kDefaultChunkShots);
}

TEST(ShotScheduler, ZeroShotsMeansZeroChunks)
{
    EXPECT_EQ(ShotScheduler(0).numChunks(), 0u);
}

TEST(ShotScheduler, PartitionIndependentOfAnythingButShots)
{
    // The partition is a pure function of the budget: two schedulers
    // over the same budget agree chunk for chunk.
    ShotScheduler a(5000), b(5000);
    ASSERT_EQ(a.numChunks(), b.numChunks());
    for (std::size_t i = 0; i < a.numChunks(); ++i) {
        EXPECT_EQ(a.chunk(i).begin, b.chunk(i).begin);
        EXPECT_EQ(a.chunk(i).count, b.chunk(i).count);
    }
}

TEST(ShotScheduler, ChunkRngMatchesDeriveStream)
{
    Rng direct(Rng::deriveStream(99, 3));
    Rng via = ShotScheduler::chunkRng(99, 3);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(direct(), via());
}

} // namespace
} // namespace exec
} // namespace hetarch
