/**
 * @file
 * Golden determinism tests for the exec engine: every Monte-Carlo
 * entry point must produce bit-identical output for any worker count.
 * Each test runs the same seeded experiment at 1, 2, and 8 workers and
 * compares results exactly (integer counts and raw doubles — no
 * tolerances).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/rng.hh"
#include "distill/module_sim.hh"
#include "dse/sweep.hh"
#include "exec/thread_pool.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace {

const unsigned kWorkerCounts[] = {1, 2, 8};

/** Restores the default worker count when a test exits. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(unsigned n) { exec::setThreadCount(n); }
    ~ThreadCountGuard() { exec::setThreadCount(0); }
};

TEST(Determinism, MemoryExperimentIsThreadCountInvariant)
{
    qec::CircuitNoise noise;
    noise.p2 = 3e-3;
    const auto circuit = qec::surfaceMemoryZ(3, 3, noise);

    for (auto kind :
         {qec::DecoderKind::UnionFind, qec::DecoderKind::GreedyDem}) {
        std::vector<qec::MemoryResult> results;
        for (unsigned workers : kWorkerCounts) {
            ThreadCountGuard guard(workers);
            Rng rng(1234);
            results.push_back(
                qec::runMemoryExperiment(circuit, 2000, 3, kind, rng));
        }
        for (std::size_t i = 1; i < results.size(); ++i) {
            EXPECT_EQ(results[i].failures, results[0].failures)
                << "workers " << kWorkerCounts[i];
            EXPECT_EQ(results[i].shots, results[0].shots);
        }
        // The seeded experiment is not degenerate.
        EXPECT_GT(results[0].failures, 0u);
        EXPECT_LT(results[0].failures, results[0].shots);
    }
}

TEST(Determinism, SurfacePerRoundIsThreadCountInvariant)
{
    qec::CircuitNoise noise;
    noise.p2 = 2e-3;
    std::vector<double> values;
    for (unsigned workers : kWorkerCounts) {
        ThreadCountGuard guard(workers);
        values.push_back(
            qec::surfaceLogicalErrorPerRound(3, 3, noise, 1500, 77));
    }
    EXPECT_EQ(values[1], values[0]);
    EXPECT_EQ(values[2], values[0]);
}

TEST(Determinism, DistillEnsembleIsThreadCountInvariant)
{
    distill::DistillConfig config;
    config.seed = 7;
    const double horizon = 2.0 * units::ms;

    std::vector<distill::DistillEnsemble> runs;
    for (unsigned workers : kWorkerCounts) {
        ThreadCountGuard guard(workers);
        runs.push_back(
            distill::simulateDistillationEnsemble(config, horizon, 4));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        ASSERT_EQ(runs[i].runs.size(), runs[0].runs.size());
        for (std::size_t t = 0; t < runs[0].runs.size(); ++t) {
            const auto& a = runs[0].runs[t];
            const auto& b = runs[i].runs[t];
            EXPECT_EQ(b.rawGenerated, a.rawGenerated) << "traj " << t;
            EXPECT_EQ(b.distilled, a.distilled) << "traj " << t;
            EXPECT_EQ(b.attempts, a.attempts) << "traj " << t;
            EXPECT_EQ(b.failures, a.failures) << "traj " << t;
        }
        EXPECT_EQ(runs[i].meanDistilledRatePerMs(),
                  runs[0].meanDistilledRatePerMs());
    }
}

TEST(Determinism, EnsembleTrajectoryZeroMatchesSingleRun)
{
    distill::DistillConfig config;
    config.seed = 21;
    const double horizon = 1.5 * units::ms;

    const auto single = distill::simulateDistillation(config, horizon);
    const auto ensemble =
        distill::simulateDistillationEnsemble(config, horizon, 3);
    ASSERT_EQ(ensemble.runs.size(), 3u);
    EXPECT_EQ(ensemble.runs[0].rawGenerated, single.rawGenerated);
    EXPECT_EQ(ensemble.runs[0].distilled, single.distilled);
    EXPECT_EQ(ensemble.runs[0].attempts, single.attempts);
    EXPECT_EQ(ensemble.runs[0].failures, single.failures);
    // Other trajectories explore genuinely different streams.
    EXPECT_NE(ensemble.runs[1].rawGenerated,
              ensemble.runs[0].rawGenerated);
}

TEST(Determinism, UecExperimentIsThreadCountInvariant)
{
    const auto code = qec::makeSteane();
    std::vector<double> het, hom;
    for (unsigned workers : kWorkerCounts) {
        ThreadCountGuard guard(workers);
        het.push_back(uec::uecLogicalErrorPerRound(
            code, 10.0 * units::ms, 2, 600, 11));
        hom.push_back(
            uec::homogeneousLogicalErrorPerRound(code, 2, 600, 11));
    }
    EXPECT_EQ(het[1], het[0]);
    EXPECT_EQ(het[2], het[0]);
    EXPECT_EQ(hom[1], hom[0]);
    EXPECT_EQ(hom[2], hom[0]);
}

TEST(Determinism, SweepRunMatchesSequentialAtEveryThreadCount)
{
    dse::Sweep sweep;
    sweep.parameter("d", {3, 5})
        .parameter("p", {1e-3, 3e-3});

    const auto eval = [](const dse::DesignPoint& pt) -> dse::Metrics {
        qec::CircuitNoise noise;
        noise.p2 = pt.at("p");
        const auto d = static_cast<std::size_t>(pt.at("d"));
        const double ler = qec::surfaceLogicalErrorPerRound(
            d, 2, noise, 500, 42 + d);
        return {{"ler", ler}};
    };

    const auto reference = sweep.runSequential(eval);
    for (unsigned workers : kWorkerCounts) {
        ThreadCountGuard guard(workers);
        const auto parallel = sweep.run(eval);
        ASSERT_EQ(parallel.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(parallel[i].first, reference[i].first)
                << "grid order changed at " << i;
            ASSERT_EQ(parallel[i].second.size(),
                      reference[i].second.size());
            for (std::size_t m = 0; m < reference[i].second.size(); ++m) {
                EXPECT_EQ(parallel[i].second[m].first,
                          reference[i].second[m].first);
                EXPECT_EQ(parallel[i].second[m].second,
                          reference[i].second[m].second)
                    << "metric " << m << " at point " << i;
            }
        }
    }
}

} // namespace
} // namespace hetarch
