/**
 * @file
 * Tests for the BBPSSW comparison protocol and protocol selection in
 * the distillation module.
 */

#include <gtest/gtest.h>

#include "core/units.hh"
#include "distill/dejmps.hh"
#include "distill/module_sim.hh"

namespace hetarch {
namespace distill {
namespace {

using namespace units;

TEST(Bbpssw, TwirlPreservesFidelity)
{
    BellDiag in{0.8, 0.12, 0.05, 0.03};
    const auto w = twirlToWerner(in);
    EXPECT_DOUBLE_EQ(w.fidelity(), in.fidelity());
    EXPECT_NEAR(w.sum(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(w.b, w.c);
    EXPECT_DOUBLE_EQ(w.c, w.d);
}

TEST(Bbpssw, ImprovesAboveHalf)
{
    const auto w = BellDiag::werner(0.2);
    const auto out = bbpssw(w, w);
    EXPECT_GT(out.output.fidelity(), w.fidelity());
}

TEST(Bbpssw, MatchesKnownFormula)
{
    // F' = (F^2 + e^2) / (F^2 + 2 F e + 5 e^2) with e = (1-F)/3.
    const double f = 0.9;
    const double e = (1.0 - f) / 3.0;
    const auto out = bbpssw(BellDiag::werner(1.0 - f),
                            BellDiag::werner(1.0 - f));
    const double expected =
        (f * f + e * e) / (f * f + 2.0 * f * e + 5.0 * e * e);
    EXPECT_NEAR(out.output.fidelity(), expected, 1e-12);
}

TEST(Bbpssw, ConvergesSlowerThanDejmps)
{
    // Same inputs, same rounds: DEJMPS reaches higher fidelity because
    // it preserves the coefficient structure the twirl destroys.
    BellDiag d = BellDiag::werner(0.05);
    BellDiag b = BellDiag::werner(0.05);
    for (int round = 0; round < 2; ++round) {
        d = dejmps(d, d).output;
        b = bbpssw(b, b).output;
    }
    EXPECT_GT(d.fidelity(), b.fidelity());
}

TEST(Bbpssw, ModuleRunsWithEitherProtocol)
{
    DistillConfig cfg;
    cfg.ts = 12.5 * ms;
    cfg.epRate = 2.0 * MHz;
    cfg.epInfidelity = 0.03;
    cfg.seed = 4;
    const auto dej = simulateDistillation(cfg, 1.0 * ms);
    cfg.protocol = Protocol::Bbpssw;
    const auto bbp = simulateDistillation(cfg, 1.0 * ms);
    EXPECT_GT(dej.distilled, 0u);
    // BBPSSW needs more raw pairs per output; at equal supply it
    // produces no more than DEJMPS.
    EXPECT_LE(bbp.distilled, dej.distilled);
}

} // namespace
} // namespace distill
} // namespace hetarch
