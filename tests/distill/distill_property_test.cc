/**
 * @file
 * Parameterized property tests for DEJMPS: the closed form must match
 * the exact density-matrix protocol on random Bell-diagonal inputs,
 * and physical invariants must hold across the parameter space.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "core/units.hh"
#include "distill/dejmps.hh"
#include "distill/module_sim.hh"

namespace hetarch {
namespace distill {
namespace {

using namespace units;

BellDiag
randomBellDiag(Rng& rng, double min_fidelity)
{
    BellDiag out;
    out.a = min_fidelity + (1.0 - min_fidelity) * rng.uniform();
    const double rest = 1.0 - out.a;
    const double u1 = rng.uniform(), u2 = rng.uniform();
    const double lo = std::min(u1, u2), hi = std::max(u1, u2);
    out.b = rest * lo;
    out.c = rest * (hi - lo);
    out.d = rest * (1.0 - hi);
    return out;
}

class DejmpsRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(DejmpsRandom, ClosedFormMatchesExact)
{
    Rng rng(77 + GetParam());
    const auto p1 = randomBellDiag(rng, 0.4);
    const auto p2 = randomBellDiag(rng, 0.4);
    const auto closed = dejmps(p1, p2);
    const auto exact =
        dejmpsExact(p1.toDensityMatrix(), p2.toDensityMatrix());
    EXPECT_NEAR(closed.successProb, exact.successProb, 1e-9);
    EXPECT_NEAR(closed.output.a, exact.output.a, 1e-9);
    EXPECT_NEAR(closed.output.b, exact.output.b, 1e-9);
    EXPECT_NEAR(closed.output.c, exact.output.c, 1e-9);
    EXPECT_NEAR(closed.output.d, exact.output.d, 1e-9);
}

TEST_P(DejmpsRandom, OutputIsNormalized)
{
    Rng rng(177 + GetParam());
    const auto p1 = randomBellDiag(rng, 0.3);
    const auto p2 = randomBellDiag(rng, 0.3);
    const auto out = dejmps(p1, p2);
    if (out.successProb > 1e-12) {
        EXPECT_NEAR(out.output.sum(), 1.0, 1e-9);
        EXPECT_GE(out.output.a, -1e-12);
        EXPECT_GE(out.output.b, -1e-12);
        EXPECT_GE(out.output.c, -1e-12);
        EXPECT_GE(out.output.d, -1e-12);
    }
    EXPECT_GE(out.successProb, 0.0);
    EXPECT_LE(out.successProb, 1.0 + 1e-12);
}

TEST_P(DejmpsRandom, DecayIsTracePreservingAndContractive)
{
    Rng rng(277 + GetParam());
    auto state = randomBellDiag(rng, 0.6);
    const double t1 = (0.2 + rng.uniform()) * ms;
    const double t2 = t1 * (0.5 + rng.uniform());
    const auto later = decaySymmetric(state, 50.0 * us, t1, t2);
    EXPECT_NEAR(later.sum(), 1.0, 1e-9);
    EXPECT_LE(later.fidelity(), state.fidelity() + 1e-12);
    // Never below the fully mixed fidelity.
    EXPECT_GE(later.fidelity(), 0.25 - 1e-12);
}

TEST_P(DejmpsRandom, DecayComposes)
{
    // decay(t1) then decay(t2) == decay(t1 + t2).
    Rng rng(377 + GetParam());
    const auto state = randomBellDiag(rng, 0.5);
    const double t1 = 400.0 * us, t2 = 150.0 * us;
    const double tc = 1.0 * ms;
    const auto two_step = decaySymmetric(
        decaySymmetric(state, t1, tc, tc), t2, tc, tc);
    const auto one_step = decaySymmetric(state, t1 + t2, tc, tc);
    EXPECT_NEAR(two_step.a, one_step.a, 1e-6);
    EXPECT_NEAR(two_step.d, one_step.d, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DejmpsRandom, ::testing::Range(0, 12));

class RateMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(RateMonotonicity, LongerStorageNeverHurtsThroughput)
{
    const double rate_khz = GetParam();
    auto run = [&](double ts_ms) {
        DistillConfig cfg;
        cfg.ts = ts_ms * ms;
        cfg.epRate = rate_khz * kHz;
        cfg.epInfidelity = 0.03;
        cfg.seed = 5;
        return simulateDistillation(cfg, 3.0 * ms).distilled;
    };
    const auto short_ts = run(0.5);
    const auto long_ts = run(25.0);
    // Allow a little Monte-Carlo slack on the comparison.
    EXPECT_GE(long_ts + 3, short_ts);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateMonotonicity,
                         ::testing::Values(100.0, 500.0, 2000.0));

} // namespace
} // namespace distill
} // namespace hetarch
