/**
 * @file
 * Tests for DEJMPS distillation: closed form vs exact density-matrix
 * implementation, decay model, and convergence properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hh"
#include "distill/dejmps.hh"
#include "dm/channels.hh"

namespace hetarch {
namespace distill {
namespace {

using namespace units;

TEST(BellDiag, WernerConstruction)
{
    const auto w = BellDiag::werner(0.06);
    EXPECT_NEAR(w.fidelity(), 0.94, 1e-12);
    EXPECT_NEAR(w.sum(), 1.0, 1e-12);
    EXPECT_NEAR(w.b, 0.02, 1e-12);
}

TEST(BellDiag, DensityMatrixRoundTrip)
{
    BellDiag in{0.7, 0.15, 0.1, 0.05};
    const auto rho = in.toDensityMatrix();
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    const auto back = BellDiag::fromDensityMatrix(rho);
    EXPECT_NEAR(back.a, in.a, 1e-12);
    EXPECT_NEAR(back.b, in.b, 1e-12);
    EXPECT_NEAR(back.c, in.c, 1e-12);
    EXPECT_NEAR(back.d, in.d, 1e-12);
}

TEST(BellDiag, BellFidelityMatchesDensityMatrix)
{
    BellDiag in{0.9, 0.04, 0.03, 0.03};
    EXPECT_NEAR(in.toDensityMatrix().bellFidelity(), 0.9, 1e-12);
}

TEST(Decay, ReducesFidelity)
{
    auto w = BellDiag::werner(0.01);
    const auto later = decaySymmetric(w, 100.0 * us, 1.0 * ms, 1.0 * ms);
    EXPECT_LT(later.fidelity(), w.fidelity());
    EXPECT_NEAR(later.sum(), 1.0, 1e-9);
}

TEST(Decay, LongerStorageDecaysLess)
{
    auto w = BellDiag::werner(0.01);
    const auto fast = decaySymmetric(w, 50.0 * us, 0.5 * ms, 0.5 * ms);
    const auto slow = decaySymmetric(w, 50.0 * us, 50.0 * ms, 50.0 * ms);
    EXPECT_LT(fast.fidelity(), slow.fidelity());
}

TEST(Decay, MatchesExactDensityMatrixTwirl)
{
    // The twirled decay must match the exact two-sided idle channel
    // followed by a Bell-basis diagonal extraction.
    BellDiag in{0.85, 0.07, 0.05, 0.03};
    const double t = 10.0 * us, t1 = 300.0 * us, t2 = 400.0 * us;
    const auto twirled = decaySymmetric(in, t, t1, t2);

    auto rho = in.toDensityMatrix();
    rho.applyKraus(dm::channels::idleChannel(t, t1, t2), {0});
    rho.applyKraus(dm::channels::idleChannel(t, t1, t2), {1});
    const auto exact = BellDiag::fromDensityMatrix(rho);
    // Twirl keeps the Bell-diagonal part; tolerances cover the
    // amplitude-damping asymmetry the twirl discards.
    EXPECT_NEAR(twirled.a, exact.a, 2e-3);
    EXPECT_NEAR(twirled.d, exact.d, 2e-3);
}

TEST(Dejmps, ImprovesWernerAboveHalf)
{
    const auto w = BellDiag::werner(0.05);
    const auto out = dejmps(w, w);
    EXPECT_GT(out.output.fidelity(), w.fidelity());
    EXPECT_GT(out.successProb, 0.8);
    EXPECT_NEAR(out.output.sum(), 1.0, 1e-12);
}

TEST(Dejmps, BelowHalfDoesNotImprove)
{
    const auto w = BellDiag::werner(0.6); // F = 0.4 < 0.5
    const auto out = dejmps(w, w);
    EXPECT_LE(out.output.fidelity(), 0.5);
}

TEST(Dejmps, RecursionConvergesToTarget)
{
    // Repeated rounds on identical pairs converge toward F = 1.
    BellDiag pair = BellDiag::werner(0.05);
    for (int round = 0; round < 6; ++round) {
        const auto out = dejmps(pair, pair);
        pair = out.output;
    }
    EXPECT_GT(pair.fidelity(), 0.9999);
}

TEST(Dejmps, TwoRoundsReachPaperTarget)
{
    // Paper setting: EP infidelity a few percent, target 0.995.
    BellDiag pair = BellDiag::werner(0.03);
    pair = dejmps(pair, pair).output;
    pair = dejmps(pair, pair).output;
    EXPECT_GE(pair.fidelity(), 0.995);
}

TEST(Dejmps, ExactMatchesClosedFormWerner)
{
    const auto w = BellDiag::werner(0.08);
    const auto closed = dejmps(w, w);
    const auto exact =
        dejmpsExact(w.toDensityMatrix(), w.toDensityMatrix());
    EXPECT_NEAR(exact.successProb, closed.successProb, 1e-9);
    EXPECT_NEAR(exact.output.a, closed.output.a, 1e-9);
    EXPECT_NEAR(exact.output.b, closed.output.b, 1e-9);
    EXPECT_NEAR(exact.output.c, closed.output.c, 1e-9);
    EXPECT_NEAR(exact.output.d, closed.output.d, 1e-9);
}

TEST(Dejmps, ExactMatchesClosedFormAsymmetric)
{
    BellDiag p1{0.9, 0.05, 0.03, 0.02};
    BellDiag p2{0.8, 0.1, 0.06, 0.04};
    const auto closed = dejmps(p1, p2);
    const auto exact =
        dejmpsExact(p1.toDensityMatrix(), p2.toDensityMatrix());
    EXPECT_NEAR(exact.successProb, closed.successProb, 1e-9);
    EXPECT_NEAR(exact.output.a, closed.output.a, 1e-9);
    EXPECT_NEAR(exact.output.b, closed.output.b, 1e-9);
    EXPECT_NEAR(exact.output.c, closed.output.c, 1e-9);
    EXPECT_NEAR(exact.output.d, closed.output.d, 1e-9);
}

TEST(Dejmps, PerfectPairsStayPerfect)
{
    BellDiag perfect;
    const auto out = dejmps(perfect, perfect);
    EXPECT_NEAR(out.output.fidelity(), 1.0, 1e-12);
    EXPECT_NEAR(out.successProb, 1.0, 1e-12);
}

} // namespace
} // namespace distill
} // namespace hetarch
