/**
 * @file
 * Tests for the event-driven distillation-module simulation
 * (paper Section 4.1).
 */

#include <gtest/gtest.h>

#include "cells/design_rules.hh"
#include "distill/module_sim.hh"

namespace hetarch {
namespace distill {
namespace {

using namespace units;

DistillConfig
baseConfig()
{
    DistillConfig c;
    c.ts = 12.5 * ms;
    c.epRate = 2.0 * MHz;
    c.epInfidelity = 0.03;
    c.seed = 42;
    return c;
}

TEST(DistillSim, ProducesDistilledPairs)
{
    const auto res = simulateDistillation(baseConfig(), 200.0 * us);
    EXPECT_GT(res.rawGenerated, 100u);
    EXPECT_GT(res.attempts, 0u);
    EXPECT_GT(res.distilled, 0u);
}

TEST(DistillSim, TraceIsTimeOrderedAndBounded)
{
    const auto res = simulateDistillation(baseConfig(), 100.0 * us);
    ASSERT_GT(res.trace.size(), 2u);
    for (std::size_t i = 1; i < res.trace.size(); ++i) {
        EXPECT_GE(res.trace[i].time, res.trace[i - 1].time);
        EXPECT_GE(res.trace[i].bestInfidelity, 0.0);
        EXPECT_LE(res.trace[i].bestInfidelity, 1.0);
    }
}

TEST(DistillSim, OutputReachesTargetInfidelity)
{
    const auto res = simulateDistillation(baseConfig(), 300.0 * us);
    double best = 1.0;
    for (const auto& p : res.trace)
        best = std::min(best, p.bestInfidelity);
    EXPECT_LE(best, 0.005); // target fidelity 0.995
}

TEST(DistillSim, HeterogeneousBeatsHomogeneousAtLowRate)
{
    auto het = baseConfig();
    het.epRate = 100.0 * kHz;
    auto hom = het;
    hom.heterogeneous = false;
    hom.ts = hom.tc;

    const auto res_het = simulateDistillation(het, 5.0 * ms);
    const auto res_hom = simulateDistillation(hom, 5.0 * ms);
    EXPECT_GT(res_het.distilled, res_hom.distilled);
}

TEST(DistillSim, HomogeneousEffectivelyFailsAtVeryLowRate)
{
    // Paper: below ~1 MHz generation the homogeneous system distills
    // essentially nothing while heterogeneous systems keep working.
    auto hom = baseConfig();
    hom.heterogeneous = false;
    hom.ts = hom.tc;
    hom.epRate = 50.0 * kHz;
    const auto res_hom = simulateDistillation(hom, 5.0 * ms);

    auto het = baseConfig();
    het.epRate = 50.0 * kHz;
    const auto res_het = simulateDistillation(het, 5.0 * ms);

    EXPECT_LE(res_hom.distilled, 3u);
    EXPECT_GE(res_het.distilled, 10 * std::max<std::size_t>(
                                          res_hom.distilled, 1));
}

TEST(DistillSim, RateIncreasesWithGenerationRate)
{
    auto slow = baseConfig();
    slow.epRate = 200.0 * kHz;
    auto fast = baseConfig();
    fast.epRate = 5.0 * MHz;
    const auto res_slow = simulateDistillation(slow, 2.0 * ms);
    const auto res_fast = simulateDistillation(fast, 2.0 * ms);
    EXPECT_GT(res_fast.distilledRatePerMs(),
              res_slow.distilledRatePerMs());
}

TEST(DistillSim, LongerStorageHelpsAtLowRate)
{
    auto short_ts = baseConfig();
    short_ts.epRate = 100.0 * kHz;
    short_ts.ts = 0.5 * ms;
    auto long_ts = short_ts;
    long_ts.ts = 12.5 * ms;
    const auto res_short = simulateDistillation(short_ts, 5.0 * ms);
    const auto res_long = simulateDistillation(long_ts, 5.0 * ms);
    EXPECT_GE(res_long.distilled, res_short.distilled);
}

TEST(DistillSim, DeterministicForFixedSeed)
{
    const auto a = simulateDistillation(baseConfig(), 100.0 * us);
    const auto b = simulateDistillation(baseConfig(), 100.0 * us);
    EXPECT_EQ(a.distilled, b.distilled);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.rawGenerated, b.rawGenerated);
}

TEST(DistillSim, NoOverflowAtPaperOperatingPoint)
{
    // Paper: 2x3-mode input + 1 ParCheck + 3-mode output suffice
    // without overflow across the swept generation rates.
    auto cfg = baseConfig();
    cfg.epRate = 1.0 * MHz;
    const auto res = simulateDistillation(cfg, 1.0 * ms);
    const double accept_ratio =
        static_cast<double>(res.rawAccepted) /
        static_cast<double>(res.rawGenerated);
    EXPECT_GT(accept_ratio, 0.9);
}

TEST(DistillModule, HierarchyAndDrc)
{
    const auto mod = buildDistillationModule(12.5 * ms);
    EXPECT_EQ(mod.subModules().size(), 3u);
    EXPECT_GT(mod.qubitCapacity(), 10);
    for (const auto& sub : mod.subModules())
        for (const auto& cell : sub.cellList())
            EXPECT_TRUE(
                cells::checkDesignRules(cell, cell.readoutCount())
                    .clean())
                << cell.name();
}

TEST(DistillConfig, DurationReflectsHeterogeneity)
{
    DistillConfig het;
    DistillConfig hom;
    hom.heterogeneous = false;
    EXPECT_GT(het.distillDuration(), hom.distillDuration());
}

} // namespace
} // namespace distill
} // namespace hetarch
