#!/usr/bin/env python3
"""Compare bench-regression artifacts against a committed baseline.

Two kinds of artifact per benchmark name:

  METRICS_<name>.json  obs snapshot (schema hetarch-obs-v1).  Counters
                       are deterministic by contract and are compared
                       EXACTLY: a missing, extra, or different counter
                       fails the run.  Histograms and spans carry
                       timing/scheduling data and are never gated.
  BENCH_<name>.json    google-benchmark output.  Timings are advisory:
                       deviations beyond the tolerance only print
                       warnings (CI machines are too noisy to gate on).

Usage:
  compare_bench.py --baseline DIR --current DIR [name...]
  compare_bench.py --self-test

With no names, every METRICS_*.json in the baseline directory is
compared.  Exit status: 0 clean, 1 counter mismatch or missing
artifact, 2 usage error.

When instrumentation changes legitimately (new counters, new events on
an existing path), regenerate the baseline:
  scripts/run_bench.sh --quick --no-micro --out-dir bench-results <names>
"""

import argparse
import json
import os
import sys
import tempfile

# Advisory only: warn when a microbenchmark's real_time moved by more
# than this factor relative to baseline.
TIMING_TOLERANCE = 0.5

SCHEMA = "hetarch-obs-v1"

# Machine-dependent counters: recorded for provenance (which SIMD
# backend produced an artifact), excluded from exact comparison so a
# baseline generated on an AVX2 host still compares clean on a
# scalar-only or NEON runner.  Everything else stays exactly gated —
# the pipelines' own counters are bit-identical across backends by the
# scalar-fallback guarantee.
MACHINE_DEPENDENT = {"stab.sampler.simd_width"}

# Companion-counter rules: when the key counter appears in a snapshot,
# every listed companion must appear too.  Exact comparison alone can't
# catch instrumentation that silently vanishes from BOTH sides when a
# baseline is regenerated; these rules pin counters a pipeline is
# contractually required to emit (the trivial-shot decode bypass must
# be live on every decoding path).
REQUIRED_COMPANIONS = {
    "qec.decode.shots": ("qec.decode.trivial_shots",),
    # The schedule analyzer's memoization telemetry must stay live on
    # every pipeline that runs an analysis.
    "lint.sched.analyses": ("lint.sched.cache_hits",
                            "lint.sched.cache_misses"),
    # Likewise for the dataflow analyzer: hazard and memoization
    # telemetry must stay live wherever a flow analysis runs.
    "lint.flow.analyses": ("lint.flow.hazards",
                           "lint.flow.cache_hits",
                           "lint.flow.cache_misses"),
    # The streaming engine's window accounting must stay live wherever
    # streaming decode runs: dropping any of these silently would hide
    # a commit-rule or storage-bound regression.
    "qec.stream.shots": ("qec.stream.blocks",
                         "qec.stream.windows",
                         "qec.stream.committed_rounds",
                         "qec.stream.lane_decodes",
                         "qec.stream.carry_defects"),
    # Every job the service admits must be accounted for in exactly
    # one terminal tally; dropping any of these would hide lost jobs.
    "service.jobs.submitted": ("service.jobs.completed",
                               "service.jobs.failed",
                               "service.jobs.cancelled",
                               "service.jobs.rejected"),
    # The shot-batched decoder's block accounting must stay live on
    # every batch-decode path; dropping it silently would hide the
    # word-block pipeline falling back to per-shot decoding.
    "qec.decode.batch_blocks": ("qec.decode.batch_shots",
                                "qec.decode.batch_dedup_hits"),
    # The word-parallel sampler's noise-tape accounting must stay live
    # wherever the packed sampler runs.
    "stab.sampler.batches": ("stab.sampler.noise_words",),
}


def check_required_counters(name, doc, which):
    """Enforce REQUIRED_COMPANIONS on one snapshot."""
    failures = []
    counters = doc.get("counters", {})
    for key, companions in sorted(REQUIRED_COMPANIONS.items()):
        if key not in counters:
            continue
        for companion in companions:
            if companion not in counters:
                failures.append(
                    f"{name}: {which} snapshot has '{key}' but lacks "
                    f"its required companion counter '{companion}'")
    return failures


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {path}: {exc}", file=sys.stderr)
        return None


def compare_counters(name, baseline, current):
    """Exact comparison of the deterministic counter section."""
    failures = []
    for doc, which in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema") != SCHEMA:
            failures.append(
                f"{name}: {which} snapshot has schema "
                f"{doc.get('schema')!r}, expected {SCHEMA!r}")
    if failures:
        return failures

    base = baseline.get("counters", {})
    cur = current.get("counters", {})
    for counter in sorted(set(base) | set(cur)):
        if counter in MACHINE_DEPENDENT:
            continue
        if counter not in cur:
            failures.append(f"{name}: counter '{counter}' missing from "
                            f"current run (baseline={base[counter]})")
        elif counter not in base:
            failures.append(f"{name}: unexpected new counter "
                            f"'{counter}'={cur[counter]} (regenerate "
                            "the baseline if intentional)")
        elif base[counter] != cur[counter]:
            failures.append(f"{name}: counter '{counter}' deviates: "
                            f"baseline={base[counter]} "
                            f"current={cur[counter]}")
    return failures


def compare_timings(name, baseline, current):
    """Advisory comparison of google-benchmark real_time entries."""
    warnings = []

    def times(doc):
        out = {}
        for entry in doc.get("benchmarks", []):
            if entry.get("run_type", "iteration") == "iteration":
                out[entry.get("name")] = entry.get("real_time")
        return out

    base, cur = times(baseline), times(current)
    for bench in sorted(set(base) & set(cur)):
        b, c = base[bench], cur[bench]
        if not b or not c or b <= 0:
            continue
        ratio = c / b
        if abs(ratio - 1.0) > TIMING_TOLERANCE:
            warnings.append(f"{name}: {bench} real_time moved "
                            f"{ratio:.2f}x (baseline={b:.0f}ns "
                            f"current={c:.0f}ns) [advisory]")
    return warnings


def run_compare(args):
    names = args.names
    if not names:
        names = sorted(
            fn[len("METRICS_"):-len(".json")]
            for fn in os.listdir(args.baseline)
            if fn.startswith("METRICS_") and fn.endswith(".json"))
    if not names:
        print(f"error: no METRICS_*.json under {args.baseline}",
              file=sys.stderr)
        return 2

    failures, warnings = [], []
    for name in names:
        metrics = f"METRICS_{name}.json"
        base_doc = load_json(os.path.join(args.baseline, metrics))
        cur_doc = load_json(os.path.join(args.current, metrics))
        if base_doc is None or cur_doc is None:
            failures.append(f"{name}: metrics artifact missing")
            continue
        failures += compare_counters(name, base_doc, cur_doc)
        failures += check_required_counters(name, base_doc, "baseline")
        failures += check_required_counters(name, cur_doc, "current")

        bench = f"BENCH_{name}.json"
        base_bench = os.path.join(args.baseline, bench)
        cur_bench = os.path.join(args.current, bench)
        if os.path.exists(base_bench) and os.path.exists(cur_bench):
            base_doc = load_json(base_bench)
            cur_doc = load_json(cur_bench)
            if base_doc is not None and cur_doc is not None:
                warnings += compare_timings(name, base_doc, cur_doc)

    for warning in warnings:
        print(f"WARN  {warning}")
    for failure in failures:
        print(f"FAIL  {failure}")
    if failures:
        print(f"bench comparison FAILED "
              f"({len(failures)} counter deviation(s))")
        return 1
    print(f"bench comparison clean ({len(names)} benchmark(s), "
          f"{len(warnings)} advisory warning(s))")
    return 0


def self_test():
    """Exercise the comparator against synthetic artifacts."""
    metrics = {
        "schema": SCHEMA,
        "counters": {"exec.tasks": 128, "qec.decode.shots": 4096,
                     "qec.decode.trivial_shots": 512,
                     "lint.sched.analyses": 12,
                     "lint.sched.cache_hits": 6,
                     "lint.sched.cache_misses": 6,
                     "lint.flow.analyses": 9,
                     "lint.flow.hazards": 2,
                     "lint.flow.cache_hits": 4,
                     "lint.flow.cache_misses": 5,
                     "qec.stream.shots": 4096,
                     "qec.stream.blocks": 448,
                     "qec.stream.windows": 64,
                     "qec.stream.committed_rounds": 448,
                     "qec.stream.lane_decodes": 3800,
                     "qec.stream.carry_defects": 900,
                     "qec.decode.batch_blocks": 16,
                     "qec.decode.batch_shots": 4096,
                     "qec.decode.batch_dedup_hits": 700,
                     "stab.sampler.batches": 64,
                     "stab.sampler.noise_words": 35840,
                     "stab.sampler.simd_width": 4},
        "histograms": {},
        "spans": [],
    }
    bench = {
        "benchmarks": [
            {"name": "BM_Decode", "run_type": "iteration",
             "real_time": 1000.0},
        ],
    }

    def write(root, which, metrics_doc, bench_doc):
        d = os.path.join(root, which)
        os.makedirs(d, exist_ok=True)
        with open(os.path.join(d, "METRICS_x.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(metrics_doc, fh)
        with open(os.path.join(d, "BENCH_x.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(bench_doc, fh)
        return d

    def result(base_doc, cur_doc, cur_bench):
        with tempfile.TemporaryDirectory() as root:
            args = argparse.Namespace(
                baseline=write(root, "base", base_doc, bench),
                current=write(root, "cur", cur_doc, cur_bench),
                names=["x"])
            return run_compare(args)

    checks = []

    # Identical artifacts compare clean.
    checks.append(("identical", result(metrics, metrics, bench) == 0))

    # A perturbed counter value must fail.
    perturbed = json.loads(json.dumps(metrics))
    perturbed["counters"]["qec.decode.shots"] += 1
    checks.append(("perturbed counter",
                   result(metrics, perturbed, bench) == 1))

    # A dropped counter must fail.
    dropped = json.loads(json.dumps(metrics))
    del dropped["counters"]["exec.tasks"]
    checks.append(("dropped counter",
                   result(metrics, dropped, bench) == 1))

    # An extra counter must fail (baseline is stale).
    extra = json.loads(json.dumps(metrics))
    extra["counters"]["new.counter"] = 7
    checks.append(("extra counter",
                   result(metrics, extra, bench) == 1))

    # A big timing swing is advisory: still clean.
    slow = json.loads(json.dumps(bench))
    slow["benchmarks"][0]["real_time"] = 9000.0
    checks.append(("slow timing is advisory",
                   result(metrics, metrics, slow) == 0))

    # A required companion dropped from BOTH sides must still fail:
    # exact comparison alone would call the snapshots identical.
    no_companion = json.loads(json.dumps(metrics))
    del no_companion["counters"]["qec.decode.trivial_shots"]
    checks.append(("companion counter dropped from both sides",
                   result(no_companion, no_companion, bench) == 1))

    # The companion rule is dormant when the key counter is absent.
    no_decode = json.loads(json.dumps(metrics))
    del no_decode["counters"]["qec.decode.shots"]
    del no_decode["counters"]["qec.decode.trivial_shots"]
    checks.append(("companion rule dormant without key counter",
                   result(no_decode, no_decode, bench) == 0))

    # Same contract for the schedule analyzer's cache telemetry.
    no_sched_cache = json.loads(json.dumps(metrics))
    del no_sched_cache["counters"]["lint.sched.cache_hits"]
    checks.append(("sched cache companion dropped from both sides",
                   result(no_sched_cache, no_sched_cache, bench) == 1))

    # And for the dataflow analyzer's hazard/cache telemetry.
    no_flow_hazards = json.loads(json.dumps(metrics))
    del no_flow_hazards["counters"]["lint.flow.hazards"]
    checks.append(("flow hazard companion dropped from both sides",
                   result(no_flow_hazards, no_flow_hazards, bench) == 1))
    no_flow = json.loads(json.dumps(metrics))
    for key in list(no_flow["counters"]):
        if key.startswith("lint.flow."):
            del no_flow["counters"][key]
    checks.append(("flow rule dormant without key counter",
                   result(no_flow, no_flow, bench) == 0))

    # And for the streaming engine's window accounting.
    no_windows = json.loads(json.dumps(metrics))
    del no_windows["counters"]["qec.stream.windows"]
    checks.append(("stream window companion dropped from both sides",
                   result(no_windows, no_windows, bench) == 1))
    no_stream = json.loads(json.dumps(metrics))
    for key in list(no_stream["counters"]):
        if key.startswith("qec.stream."):
            del no_stream["counters"][key]
    checks.append(("stream rule dormant without key counter",
                   result(no_stream, no_stream, bench) == 0))

    # And for the shot-batched decoder's block accounting.
    no_batch = json.loads(json.dumps(metrics))
    del no_batch["counters"]["qec.decode.batch_dedup_hits"]
    checks.append(("batch decode companion dropped from both sides",
                   result(no_batch, no_batch, bench) == 1))
    no_batch_all = json.loads(json.dumps(metrics))
    for key in list(no_batch_all["counters"]):
        if key.startswith("qec.decode.batch_"):
            del no_batch_all["counters"][key]
    checks.append(("batch rule dormant without key counter",
                   result(no_batch_all, no_batch_all, bench) == 0))

    # And for the sampler's noise-tape accounting.
    no_tape = json.loads(json.dumps(metrics))
    del no_tape["counters"]["stab.sampler.noise_words"]
    checks.append(("noise-word companion dropped from both sides",
                   result(no_tape, no_tape, bench) == 1))

    # Machine-dependent counters never gate: differing values and
    # one-sided presence both compare clean.
    other_width = json.loads(json.dumps(metrics))
    other_width["counters"]["stab.sampler.simd_width"] = 1
    checks.append(("differing simd_width is not gated",
                   result(metrics, other_width, bench) == 0))
    no_width = json.loads(json.dumps(metrics))
    del no_width["counters"]["stab.sampler.simd_width"]
    checks.append(("one-sided simd_width is not gated",
                   result(metrics, no_width, bench) == 0))
    checks.append(("one-sided simd_width is not gated (baseline)",
                   result(no_width, metrics, bench) == 0))

    # A wrong schema tag must fail.
    bad_schema = json.loads(json.dumps(metrics))
    bad_schema["schema"] = "hetarch-obs-v0"
    checks.append(("schema mismatch",
                   result(metrics, bad_schema, bench) == 1))

    ok = True
    for label, passed in checks:
        print(f"self-test {'PASS' if passed else 'FAIL'}: {label}")
        ok = ok and passed
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="committed baseline directory")
    parser.add_argument("--current", help="freshly produced directory")
    parser.add_argument("--self-test", action="store_true",
                        help="run the comparator's own checks and exit")
    parser.add_argument("names", nargs="*",
                        help="benchmark names (default: every "
                             "METRICS_*.json in the baseline)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --self-test)")
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
