#!/usr/bin/env bash
# Run benchmark binaries with machine-readable output so the perf
# trajectory is recorded, not eyeballed.
#
# For every benchmark binary it writes, into --out-dir:
#   BENCH_<name>.json   google-benchmark results (--benchmark_format=json)
#   BENCH_<name>.txt    the paper-artifact table the binary prints
#
# Usage:
#   scripts/run_bench.sh [--build-dir build] [--out-dir bench-results]
#                        [--quick] [--threads N] [bench_name...]
#
# With no bench names, every bench_* binary in <build-dir>/bench runs.
# HETARCH_QUICK / HETARCH_THREADS in the environment are honored.

set -euo pipefail

build_dir=build
out_dir=bench-results
threads="${HETARCH_THREADS:-}"
quick="${HETARCH_QUICK:-}"
benches=()

while [[ $# -gt 0 ]]; do
    case "$1" in
        --build-dir) build_dir=$2; shift 2 ;;
        --out-dir)   out_dir=$2; shift 2 ;;
        --quick)     quick=1; shift ;;
        --threads)   threads=$2; shift 2 ;;
        -h|--help)   grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *)           benches+=("$1"); shift ;;
    esac
done

bench_bin_dir="$build_dir/bench"
if [[ ! -d "$bench_bin_dir" ]]; then
    echo "error: $bench_bin_dir not found (build first: cmake --build $build_dir)" >&2
    exit 1
fi

if [[ ${#benches[@]} -eq 0 ]]; then
    for bin in "$bench_bin_dir"/bench_*; do
        [[ -x "$bin" ]] && benches+=("$(basename "$bin")")
    done
fi
if [[ ${#benches[@]} -eq 0 ]]; then
    echo "error: no bench_* binaries in $bench_bin_dir" >&2
    exit 1
fi

mkdir -p "$out_dir"
env_args=()
[[ -n "$quick" ]] && env_args+=("HETARCH_QUICK=1")
[[ -n "$threads" ]] && env_args+=("HETARCH_THREADS=$threads")

for name in "${benches[@]}"; do
    bin="$bench_bin_dir/$name"
    if [[ ! -x "$bin" ]]; then
        echo "error: benchmark binary $bin not found" >&2
        exit 1
    fi
    echo ">>> $name (threads=${threads:-auto}, quick=${quick:-0})"
    env "${env_args[@]}" "$bin" \
        --benchmark_format=console \
        --benchmark_out="$out_dir/BENCH_$name.json" \
        --benchmark_out_format=json \
        | tee "$out_dir/BENCH_$name.txt"
done

echo "results in $out_dir/"
