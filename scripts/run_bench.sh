#!/usr/bin/env bash
# Run benchmark binaries with machine-readable output so the perf
# trajectory is recorded, not eyeballed.
#
# For every benchmark binary it writes, into --out-dir:
#   BENCH_<name>.json     google-benchmark results (--benchmark_format=json)
#   BENCH_<name>.txt      the paper-artifact table the binary prints
#   METRICS_<name>.json   the obs counter/histogram snapshot
#
# Usage:
#   scripts/run_bench.sh [--build-dir build] [--out-dir bench-results]
#                        [--quick] [--threads N|auto] [--simd-width N]
#                        [--no-micro] [bench_name...]
#
# With no bench names, every bench_* binary in <build-dir>/bench runs.
# HETARCH_QUICK / HETARCH_THREADS / HETARCH_SIMD_WIDTH in the
# environment are honored.  --threads auto resolves to the machine's
# core count (1 when nproc is unavailable).  --simd-width N sets the
# sampler's block width in 64-shot words (1..8; artifacts are
# bit-identical at every width, only throughput changes).  --no-micro
# skips the google-benchmark microbenchmarks and only produces the
# deterministic artifact + metrics snapshot.
#
# Outputs are staged in a temp directory and moved into --out-dir only
# after the binary exits cleanly: a crashed benchmark leaves no partial
# result files and the script exits non-zero.

set -euo pipefail

build_dir=build
out_dir=bench-results
threads="${HETARCH_THREADS:-}"
quick="${HETARCH_QUICK:-}"
simd_width="${HETARCH_SIMD_WIDTH:-}"
no_micro=
benches=()

while [[ $# -gt 0 ]]; do
    case "$1" in
        --build-dir) build_dir=$2; shift 2 ;;
        --out-dir)   out_dir=$2; shift 2 ;;
        --quick)     quick=1; shift ;;
        --threads)   threads=$2; shift 2 ;;
        --simd-width) simd_width=$2; shift 2 ;;
        --no-micro)  no_micro=1; shift ;;
        -h|--help)   grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *)           benches+=("$1"); shift ;;
    esac
done

if [[ "$threads" == "auto" ]]; then
    if command -v nproc >/dev/null 2>&1; then
        threads="$(nproc)"
    else
        echo "warning: nproc unavailable, --threads auto -> 1" >&2
        threads=1
    fi
fi
if [[ -n "$threads" && ! "$threads" =~ ^[0-9]+$ ]]; then
    echo "error: --threads expects a positive integer or 'auto', got '$threads'" >&2
    exit 1
fi
if [[ -n "$simd_width" && ! "$simd_width" =~ ^[1-8]$ ]]; then
    echo "error: --simd-width expects an integer in 1..8, got '$simd_width'" >&2
    exit 1
fi

bench_bin_dir="$build_dir/bench"
if [[ ! -d "$bench_bin_dir" ]]; then
    echo "error: $bench_bin_dir not found (build first: cmake --build $build_dir)" >&2
    exit 1
fi

if [[ ${#benches[@]} -eq 0 ]]; then
    for bin in "$bench_bin_dir"/bench_*; do
        [[ -x "$bin" ]] && benches+=("$(basename "$bin")")
    done
fi
if [[ ${#benches[@]} -eq 0 ]]; then
    echo "error: no bench_* binaries in $bench_bin_dir" >&2
    exit 1
fi

mkdir -p "$out_dir"
staging="$(mktemp -d "${TMPDIR:-/tmp}/hetarch-bench.XXXXXX")"
trap 'rm -rf "$staging"' EXIT

env_args=()
[[ -n "$quick" ]] && env_args+=("HETARCH_QUICK=1")
[[ -n "$threads" ]] && env_args+=("HETARCH_THREADS=$threads")
[[ -n "$simd_width" ]] && env_args+=("HETARCH_SIMD_WIDTH=$simd_width")

bench_args=()
# '^$' matches no benchmark name: artifact + metrics only.  Without
# microbenchmarks there is nothing worth writing to BENCH_<name>.json,
# so the flag set below drops the --benchmark_out pair entirely (an
# empty file would otherwise shadow a real timing baseline).
[[ -n "$no_micro" ]] && bench_args+=("--benchmark_filter=^\$")

for name in "${benches[@]}"; do
    bin="$bench_bin_dir/$name"
    if [[ ! -x "$bin" ]]; then
        echo "error: benchmark binary $bin not found" >&2
        exit 1
    fi
    echo ">>> $name (threads=${threads:-auto}, quick=${quick:-0}, simd-width=${simd_width:-default}, micro=$([[ -n "$no_micro" ]] && echo no || echo yes))"
    out_args=(--benchmark_format=console)
    if [[ -z "$no_micro" ]]; then
        out_args+=("--benchmark_out=$staging/BENCH_$name.json"
                   --benchmark_out_format=json)
    fi
    if ! env "${env_args[@]}" "$bin" \
        "--metrics-out=$staging/METRICS_$name.json" \
        "${out_args[@]}" \
        "${bench_args[@]}" \
        | tee "$staging/BENCH_$name.txt"; then
        echo "error: $name failed; discarding its partial output" >&2
        exit 1
    fi
    for artifact in "METRICS_$name.json" "BENCH_$name.json" "BENCH_$name.txt"; do
        if [[ -f "$staging/$artifact" ]]; then
            mv "$staging/$artifact" "$out_dir/$artifact"
        fi
    done
done

echo "results in $out_dir/"
