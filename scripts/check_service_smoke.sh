#!/usr/bin/env bash
# End-to-end smoke gate for the experiment job service (CI runs this).
#
# Drives hetarch-serve over the hetarch-job-v1 wire protocol with a
# scripted client session built by hetarch-job:
#
#   - four submits against a deliberately tiny queue
#     (--hold --max-queue=3): memory, sweep-point, analysis are
#     accepted; the fourth (distill) must be REJECTED by admission
#     control
#   - job 2 cancelled while queued
#   - wait (runs the surviving batch to completion), then shutdown
#
# The transcript must strict-parse under `hetarch-job check`, and the
# service.jobs.* bye tallies must match exactly:
#   submitted=3 completed=2 cancelled=1 rejected=1 failed=0
#
# Negative self-checks prove the gate has teeth:
#   - a malformed request line makes hetarch-serve exit 2
#   - a corrupted transcript makes `hetarch-job check` exit 1
#   - an empty transcript makes `hetarch-job check` exit 1
#   - wrong --require-counters makes `hetarch-job check` exit 2
#
# The request script and transcript are left in OUT-DIR so CI can
# upload them as artifacts.
#
# Registered with CTest as service.smoke; also runnable by hand:
#   scripts/check_service_smoke.sh build/tools service-smoke-out
set -u

case "${1:-}" in
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
esac

BIN=${1:?usage: check_service_smoke.sh path/to/tools-bin-dir [out-dir]}
OUT=${2:-service-smoke-out}
SERVE="$BIN/hetarch-serve"
JOB="$BIN/hetarch-job"
for tool in "$SERVE" "$JOB"; do
    if [ ! -x "$tool" ]; then
        echo "error: service binary '$tool' not found or not executable" \
             "(build first: cmake --build build --target" \
             "hetarch-serve hetarch-job)" >&2
        exit 1
    fi
done
mkdir -p "$OUT"

fail=0

expect_rc() { # DESCRIPTION EXPECTED_RC CMD...
    local desc=$1 want=$2
    shift 2
    "$@" > /dev/null 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, expected $want"
        fail=1
    fi
}

# --- the scripted session ---------------------------------------------
{
    "$JOB" submit --kind=memory --name=m1 --seed=7 \
        --param distance=3 --param rounds=3 --param shots=200
    "$JOB" submit --kind=sweep-point --name=sp --seed=11 --priority=5 \
        --param distance=3 --param rounds=3 --param shots=100
    "$JOB" submit --kind=analysis --name=an \
        --param builder=surface-d3 --param distance=1 --param timing=1
    "$JOB" submit --kind=distill --name=reject-me --seed=13 \
        --param trajectories=2 --param horizon_us=10
    "$JOB" cancel --id=2
    "$JOB" wait
    "$JOB" shutdown
} > "$OUT/requests.jsonl"

"$SERVE" --hold --max-queue=3 \
    < "$OUT/requests.jsonl" > "$OUT/transcript.jsonl"
rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: hetarch-serve exited $rc on a clean session"
    cat "$OUT/transcript.jsonl"
    fail=1
fi

if ! "$JOB" check \
     --require-counters=submitted=3,completed=2,cancelled=1,rejected=1,failed=0 \
     < "$OUT/transcript.jsonl"; then
    echo "FAIL: transcript did not validate under hetarch-job check"
    cat "$OUT/transcript.jsonl"
    fail=1
fi

done_count=$(grep -c '"state":"done"' "$OUT/transcript.jsonl")
if [ "$done_count" -ne 2 ]; then
    echo "FAIL: expected 2 done status lines, saw $done_count"
    fail=1
fi

# --- negative self-checks ---------------------------------------------
expect_rc "malformed request makes the daemon exit 2" 2 \
    bash -c "printf 'not a request\n' | '$SERVE'"

sed 's/"type":"bye"/"type":"byebye"/' "$OUT/transcript.jsonl" \
    > "$OUT/corrupted.jsonl"
expect_rc "corrupted transcript fails strict parse" 1 \
    "$JOB" check < "$OUT/corrupted.jsonl"

: > "$OUT/empty.jsonl"
expect_rc "empty transcript is rejected" 1 \
    "$JOB" check < "$OUT/empty.jsonl"

expect_rc "wrong counter expectation is caught" 2 \
    bash -c "'$JOB' check --require-counters=submitted=4 \
             < '$OUT/transcript.jsonl'"

expect_rc "hetarch-serve --help exits 0" 0 "$SERVE" --help
expect_rc "hetarch-job --help exits 0" 0 "$JOB" --help

if [ "$fail" -eq 0 ]; then
    echo "service smoke holds (3 accepted + reject + cancel + bye tallies)"
fi
exit "$fail"
