#!/usr/bin/env bash
# Run hetarch-lint over every .circ fixture and pin the CLI contract:
#
#   good/    must pass --strict, and the --format=json document must
#            parse with strict_clean=true
#   bad/     must be rejected (parse failure -> exit 1, or findings
#            -> exit 2; never 0)
#   faults/  structurally clean circuits with injected fault-tolerance
#            damage; each file's "# expect-distance:" and
#            "# expect-finding:" annotations are checked against the
#            --distance --format=json output
#   timing/  structurally clean circuits with schedule-layer damage;
#            each file's "# timing-device:" / "# storage-device:" /
#            "# storage-qubits:" / "# expect-latency:" /
#            "# expect-hazard:" annotations are swept through --timing,
#            hazard-free fixtures must exit 0 with the annotated
#            latency, hazardous ones must exit 2 with the annotated
#            pass in the hetarch-sched-v1 JSON; one negative self-check
#            perturbs every duration (--scale-durations=2) and demands
#            the latency pin then fails
#   flow/    structurally clean circuits with qubit-movement damage;
#            the same register annotations plus "# flow-stale-after:" /
#            "# expect-flow-hazard:" / "# expect-peak-storage:" /
#            "# expect-budget:" are swept through --flow, hazard-free
#            fixtures must exit 0 with the annotated peak occupancy
#            pinned via --expect-peak-storage, hazardous ones must exit
#            2 under --strict with exactly the annotated pass set in
#            the hetarch-flow-v1 JSON; expect-budget caps the certified
#            end-to-end budget (which must also be > 0); one negative
#            self-check demands peak+1 on a clean fixture and must fail
#
# Also pins the exit-code contract: 0 clean / 1 unreadable-or-parse
# failure / 2 findings above threshold (--strict promotes warnings).
#
# JSON assertions need python3; without it only exit codes are checked.
# Registered with CTest as lint.fixtures; also runnable by hand:
#   scripts/check_lint_clean.sh build/tools/hetarch-lint
set -u

case "${1:-}" in
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
esac

LINT=${1:?usage: check_lint_clean.sh path/to/hetarch-lint [fixtures-dir]}
DIR=${2:-$(dirname "$0")/../tests/lint/fixtures}
if [ ! -x "$LINT" ]; then
    echo "error: hetarch-lint binary '$LINT' not found or not executable" \
         "(build first: cmake --build build --target hetarch-lint)" >&2
    exit 1
fi
if [ ! -d "$DIR" ]; then
    echo "error: fixtures directory '$DIR' not found" >&2
    exit 1
fi
PYTHON=$(command -v python3 || true)

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
shopt -s nullglob

# check_json FILE.json EXPECT_STRICT_CLEAN EXPECT_DISTANCE EXPECT_PASS
# Empty expectation strings skip that check.
check_json() {
    [ -n "$PYTHON" ] || return 0
    "$PYTHON" - "$1" "$2" "$3" "$4" <<'PYEOF'
import json, sys
path, strict_clean, distance, finding_pass = sys.argv[1:5]
with open(path) as fh:
    doc = json.load(fh)
if doc["schema"] != "hetarch-lint-v1":
    sys.exit(f"{path}: unexpected schema {doc['schema']!r}")
f = doc["files"][0]
if strict_clean and f["strict_clean"] != (strict_clean == "true"):
    sys.exit(f"{path}: strict_clean={f['strict_clean']}, "
             f"expected {strict_clean}")
if distance:
    want = None if distance == "unbounded" else int(distance)
    got = f["faults"]["min_distance"] if f["faults"] else "<no faults>"
    if got != want:
        sys.exit(f"{path}: min_distance={got}, expected {want}")
if finding_pass:
    passes = sorted({x["pass"] for x in f["findings"]})
    if finding_pass not in passes:
        sys.exit(f"{path}: no finding from pass {finding_pass!r}; "
                 f"have {passes}")
PYEOF
}

annotation() { # FILE KEY -> value or empty
    sed -n "s/^# $2: *//p" "$1" | head -n 1
}

for f in "$DIR"/good/*.circ; do
    if ! "$LINT" --strict --format=json "$f" > "$TMP/out.json" 2>&1; then
        echo "FAIL: expected clean under --strict: $f"
        "$LINT" --strict "$f"
        fail=1
    elif ! check_json "$TMP/out.json" true "" ""; then
        echo "FAIL: JSON report for $f"
        fail=1
    fi
done

for f in "$DIR"/bad/*.circ; do
    "$LINT" --strict "$f" > /dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 1 ] && [ "$rc" -ne 2 ]; then
        echo "FAIL: expected rejection (exit 1 or 2), got $rc: $f"
        fail=1
    fi
done

for f in "$DIR"/faults/*.circ; do
    expect_distance=$(annotation "$f" expect-distance)
    expect_finding=$(annotation "$f" expect-finding)
    "$LINT" --distance --format=json "$f" > "$TMP/out.json" 2>&1
    rc=$?
    # Fault fixtures are structurally clean: only lint findings (exit
    # 2) may reject them, never a parse failure.
    if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ]; then
        echo "FAIL: fault fixture did not parse (exit $rc): $f"
        fail=1
    elif ! check_json "$TMP/out.json" "" "$expect_distance" \
                      "$expect_finding"; then
        echo "FAIL: fault annotations not satisfied: $f"
        fail=1
    fi
done

# check_sched_json FILE.json EXPECT_HAZARD_PASSES (space-separated; "" = none)
check_sched_json() {
    [ -n "$PYTHON" ] || return 0
    "$PYTHON" - "$1" "$2" <<'PYEOF'
import json, sys
path, hazard_passes = sys.argv[1:3]
with open(path) as fh:
    doc = json.load(fh)
if doc["schema"] != "hetarch-sched-v1":
    sys.exit(f"{path}: unexpected schema {doc['schema']!r}")
f = doc["files"][0]
have = sorted({h["pass"] for h in f["hazards"]})
want = sorted(set(hazard_passes.split()))
if have != want:
    sys.exit(f"{path}: hazard passes {have}, expected {want}")
if f["critical_path_ns"] <= 0:
    sys.exit(f"{path}: non-positive critical path")
PYEOF
}

# Assemble the --timing invocation a fixture's annotations describe.
timing_args() { # FILE -> sets TIMING_ARGS array
    TIMING_ARGS=(--timing)
    local dev storage qubits
    dev=$(annotation "$1" timing-device)
    [ -n "$dev" ] && TIMING_ARGS+=("--device=$dev")
    storage=$(annotation "$1" storage-device)
    [ -n "$storage" ] && TIMING_ARGS+=("--storage-device=$storage")
    qubits=$(annotation "$1" storage-qubits)
    [ -n "$qubits" ] && TIMING_ARGS+=("--storage-qubits=$qubits")
}

for f in "$DIR"/timing/*.circ; do
    expect_latency=$(annotation "$f" expect-latency)
    expect_hazards=$(sed -n 's/^# expect-hazard: *//p' "$f" | tr '\n' ' ')
    expect_hazards=${expect_hazards% }
    timing_args "$f"
    latency_args=()
    [ -n "$expect_latency" ] && \
        latency_args=("--expect-latency=$expect_latency")

    "$LINT" "${TIMING_ARGS[@]}" "${latency_args[@]}" --format=json \
        "$f" > "$TMP/out.json" 2>&1
    rc=$?
    if [ -z "$expect_hazards" ]; then
        # sched-reset-gap is warning-severity: promote it with --strict
        # so warning fixtures are still rejected below.
        if [ "$rc" -ne 0 ]; then
            echo "FAIL: expected clean timing run (exit 0, got $rc): $f"
            fail=1
        fi
    else
        "$LINT" --strict "${TIMING_ARGS[@]}" "$f" > /dev/null 2>&1
        if [ $? -ne 2 ]; then
            echo "FAIL: expected hazard rejection (exit 2): $f"
            fail=1
        fi
    fi
    if ! check_sched_json "$TMP/out.json" "$expect_hazards"; then
        echo "FAIL: sched annotations not satisfied: $f"
        fail=1
    fi

    # Negative self-check: doubling every duration must break the
    # annotated latency pin (exit 2), proving the pin has teeth.
    if [ -n "$expect_latency" ]; then
        "$LINT" "${TIMING_ARGS[@]}" --scale-durations=2 \
            "--expect-latency=$expect_latency" "$f" > /dev/null 2>&1
        if [ $? -ne 2 ]; then
            echo "FAIL: perturbed durations did not break the" \
                 "latency pin: $f"
            fail=1
        fi
    fi
done

# check_flow_json FILE.json EXPECT_HAZARD_PASSES EXPECT_PEAK EXPECT_BUDGET
# Empty expectation strings skip that check (hazards: "" = none).
check_flow_json() {
    [ -n "$PYTHON" ] || return 0
    "$PYTHON" - "$1" "$2" "$3" "$4" <<'PYEOF'
import json, sys
path, hazard_passes, peak, budget_cap = sys.argv[1:5]
with open(path) as fh:
    doc = json.load(fh)
if doc["schema"] != "hetarch-flow-v1":
    sys.exit(f"{path}: unexpected schema {doc['schema']!r}")
f = doc["files"][0]
have = sorted({h["pass"] for h in f["hazards"]})
want = sorted(set(hazard_passes.split()))
if have != want:
    sys.exit(f"{path}: hazard passes {have}, expected {want}")
if peak and f["peak_storage"] != int(peak):
    sys.exit(f"{path}: peak_storage={f['peak_storage']}, "
             f"expected {peak}")
if budget_cap:
    budgets = [o["budget"] for o in f["observables"]]
    worst = max(budgets) if budgets else 0.0
    if not 0.0 < worst <= float(budget_cap):
        sys.exit(f"{path}: certified budget {worst} outside "
                 f"(0, {budget_cap}]")
PYEOF
}

# Assemble the --flow invocation a fixture's annotations describe.  The
# register annotations are shared with timing_args; expect-budget turns
# on --distance so the gate union bound composes into the budget.
flow_args() { # FILE -> sets FLOW_ARGS array
    FLOW_ARGS=(--flow)
    local dev storage qubits stale
    dev=$(annotation "$1" timing-device)
    [ -n "$dev" ] && FLOW_ARGS+=("--device=$dev")
    storage=$(annotation "$1" storage-device)
    [ -n "$storage" ] && FLOW_ARGS+=("--storage-device=$storage")
    qubits=$(annotation "$1" storage-qubits)
    [ -n "$qubits" ] && FLOW_ARGS+=("--storage-qubits=$qubits")
    stale=$(annotation "$1" flow-stale-after)
    [ -n "$stale" ] && FLOW_ARGS+=("--stale-after=$stale")
    [ -n "$(annotation "$1" expect-budget)" ] && \
        FLOW_ARGS+=(--distance --no-determinism)
}

for f in "$DIR"/flow/*.circ; do
    expect_hazards=$(sed -n 's/^# expect-flow-hazard: *//p' "$f" |
                     tr '\n' ' ')
    expect_hazards=${expect_hazards% }
    expect_peak=$(annotation "$f" expect-peak-storage)
    expect_budget=$(annotation "$f" expect-budget)
    flow_args "$f"
    peak_args=()
    [ -n "$expect_peak" ] && \
        peak_args=("--expect-peak-storage=$expect_peak")

    "$LINT" "${FLOW_ARGS[@]}" "${peak_args[@]}" --format=json \
        "$f" > "$TMP/out.json" 2>&1
    rc=$?
    if [ -z "$expect_hazards" ]; then
        if [ "$rc" -ne 0 ]; then
            echo "FAIL: expected clean flow run (exit 0, got $rc): $f"
            fail=1
        fi
        # Negative self-check: demanding one more mode of peak
        # occupancy must break the pin (exit 2), proving it has teeth.
        if [ -n "$expect_peak" ]; then
            "$LINT" "${FLOW_ARGS[@]}" \
                "--expect-peak-storage=$((expect_peak + 1))" \
                "$f" > /dev/null 2>&1
            if [ $? -ne 2 ]; then
                echo "FAIL: perturbed peak-storage pin did not" \
                     "fail: $f"
                fail=1
            fi
        fi
    else
        # flow warnings (stale/orphan/reuse) need --strict promotion.
        "$LINT" --strict "${FLOW_ARGS[@]}" "$f" > /dev/null 2>&1
        if [ $? -ne 2 ]; then
            echo "FAIL: expected flow hazard rejection (exit 2): $f"
            fail=1
        fi
    fi
    if ! check_flow_json "$TMP/out.json" "$expect_hazards" \
                         "$expect_peak" "$expect_budget"; then
        echo "FAIL: flow annotations not satisfied: $f"
        fail=1
    fi
done

# --- exit-code contract -----------------------------------------------
expect_rc() { # DESCRIPTION EXPECTED_RC CMD...
    local desc=$1 want=$2
    shift 2
    "$@" > /dev/null 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, expected $want"
        fail=1
    fi
}

expect_rc "clean file exits 0" 0 \
    "$LINT" --strict "$DIR/good/bell_pair.circ"
expect_rc "unreadable file exits 1" 1 \
    "$LINT" "$DIR/does_not_exist.circ"
expect_rc "usage error exits 1" 1 \
    "$LINT" --expect-distance=3 "$DIR/good/bell_pair.circ"
# miswired_observable carries a warning-level finding only: accepted by
# default, rejected by --strict (the contract this PR makes explicit).
expect_rc "warnings accepted without --strict" 0 \
    "$LINT" --distance "$DIR/faults/miswired_observable.circ"
expect_rc "--strict fails on warnings" 2 \
    "$LINT" --strict --distance "$DIR/faults/miswired_observable.circ"

if [ "$fail" -eq 0 ]; then
    echo "all fixtures behave as expected"
fi
exit "$fail"
