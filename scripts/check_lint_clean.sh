#!/usr/bin/env bash
# Run hetarch-lint over every .circ fixture: files under good/ must
# pass --strict, files under bad/ must be rejected (parse failure or
# findings).  Registered with CTest as lint.fixtures; also runnable by
# hand:
#   scripts/check_lint_clean.sh build/tools/hetarch-lint
set -u

LINT=${1:?usage: check_lint_clean.sh path/to/hetarch-lint [fixtures-dir]}
DIR=${2:-$(dirname "$0")/../tests/lint/fixtures}

fail=0
shopt -s nullglob

for f in "$DIR"/good/*.circ; do
    if ! "$LINT" --strict "$f" > /dev/null 2>&1; then
        echo "FAIL: expected clean under --strict: $f"
        "$LINT" --strict "$f"
        fail=1
    fi
done

for f in "$DIR"/bad/*.circ; do
    if "$LINT" --strict "$f" > /dev/null 2>&1; then
        echo "FAIL: expected a rejection: $f"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "all fixtures behave as expected"
fi
exit "$fail"
