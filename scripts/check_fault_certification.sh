#!/usr/bin/env bash
# Distance-certification gate for CI.
#
# Positive checks: the fault-path analyzer must certify distance d for
# the d x d surface-code memory builders, d in {3, 5, 7}, and the whole
# builder surface must be coverage-clean under --strict --distance.
#
# Negative self-check (bench-regression style): a perturbed circuit —
# surface-d3 with its first DETECTOR dropped, and the dropped-detector
# corpus fixture — must FAIL its baseline-distance gate.  This proves
# the gate can actually reject a regression, so a silently broken
# analyzer cannot pass CI by certifying everything.
#
# Registered with CTest as lint.certification; also runnable by hand:
#   scripts/check_fault_certification.sh build/tools/hetarch-lint
set -u

case "${1:-}" in
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
esac

LINT=${1:?usage: check_fault_certification.sh path/to/hetarch-lint [fixtures-dir]}
DIR=${2:-$(dirname "$0")/../tests/lint/fixtures}
if [ ! -x "$LINT" ]; then
    echo "error: hetarch-lint binary '$LINT' not found or not executable" \
         "(build first: cmake --build build --target hetarch-lint)" >&2
    exit 1
fi
if [ ! -d "$DIR" ]; then
    echo "error: fixtures directory '$DIR' not found" >&2
    exit 1
fi
fail=0

# --no-determinism: the analyzer needs the circuit accepted by the
# structural passes only; the symbolic determinism pass is covered by
# lint.fixtures and would dominate the gate's runtime here.
for d in 3 5 7; do
    if ! "$LINT" --distance --no-determinism "--expect-distance=$d" \
         "--builders=surface-d$d" > /dev/null; then
        echo "FAIL: surface-d$d did not certify distance $d"
        fail=1
    fi
done

if ! "$LINT" --strict --distance --no-determinism --builders \
     > /dev/null; then
    echo "FAIL: builder sweep not coverage-clean under --strict --distance"
    "$LINT" --strict --distance --no-determinism --builders
    fail=1
fi

if "$LINT" --distance --no-determinism --drop-detector=0 \
   --expect-distance=3 --builders=surface-d3 > /dev/null 2>&1; then
    echo "FAIL: gate accepted a detector-dropped surface-d3 circuit"
    fail=1
fi

if "$LINT" --distance --expect-distance=3 \
   "$DIR/faults/dropped_detector.circ" > /dev/null 2>&1; then
    echo "FAIL: gate accepted dropped_detector.circ at baseline distance"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "distance certification gate holds (d=3,5,7 + negative self-check)"
fi
exit "$fail"
