/**
 * @file
 * Paper Table 2: standard cells with design-rule status and
 * density-matrix characterization, plus characterization throughput.
 * Also prints the schedule-aware architecture ranking and the
 * dataflow-aware pressure ranking (the static analyzers costing
 * circuits on Table 1 devices with zero Monte-Carlo shots), so the
 * lint.sched.* and lint.flow.* counters land in this binary's metrics
 * snapshot.
 */

#include "bench_util.hh"
#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "devices/device.hh"
#include "lint/dataflow.hh"
#include "lint/schedule.hh"
#include "qec/surface_circuit.hh"

namespace {

using namespace hetarch;

void
BM_CharacterizeRegister(benchmark::State& state)
{
    const auto cell = cells::makeRegister(
        devices::multimodeResonator3D(), devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto ch = cells::characterizeRegister(cell);
        benchmark::DoNotOptimize(ch);
    }
}
BENCHMARK(BM_CharacterizeRegister);

void
BM_CharacterizeSeqOp(benchmark::State& state)
{
    const auto cell = cells::makeSeqOp(devices::multimodeResonator3D(),
                                       devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto ch = cells::characterizeSeqOp(cell);
        benchmark::DoNotOptimize(ch);
    }
}
BENCHMARK(BM_CharacterizeSeqOp);

void
BM_DesignRuleCheck(benchmark::State& state)
{
    const auto cell = cells::makeUsc(devices::multimodeResonator3D(),
                                     devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto report = cells::checkDesignRules(cell, 1);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_DesignRuleCheck);

void
BM_AnalyzeSchedule(benchmark::State& state)
{
    const auto circuit = qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{});
    const auto model = lint::sched::TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    for (auto _ : state) {
        auto analysis = lint::sched::analyzeSchedule(circuit, model);
        benchmark::DoNotOptimize(analysis);
    }
}
BENCHMARK(BM_AnalyzeSchedule);

void
BM_AnalyzeFlow(benchmark::State& state)
{
    const auto circuit = qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{});
    const auto model = lint::sched::TimingModel::uniform(
        devices::fixedFrequencyTransmon(), circuit.numQubits());
    for (auto _ : state) {
        auto analysis = lint::flow::analyzeFlow(circuit, model);
        benchmark::DoNotOptimize(analysis);
    }
}
BENCHMARK(BM_AnalyzeFlow);

} // namespace

// Hand-rolled main (instead of HETARCH_BENCH_MAIN): this binary prints
// three artifacts — the cell table, the schedule-burden ranking, and
// the dataflow-pressure ranking — before the metrics snapshot and the
// microbenchmarks.
int
main(int argc, char** argv)
{
    ::hetarch::bench::configure(argc, argv);
    ::hetarch::bench::printRunHeader();
    std::cout << "exec threads: " << ::hetarch::exec::threadCount()
              << "\n";
    {
        ::hetarch::obs::Span span("bench.artifact");
        ::hetarch::bench::printArtifact("Table 2: quantum standard cells",
                                        ::hetarch::dse::table2Cells());
        ::hetarch::bench::printArtifact(
            "Schedule-aware architecture ranking (static, no shots)",
            ::hetarch::dse::scheduleBurdenTable());
        ::hetarch::bench::printArtifact(
            "Dataflow pressure ranking (static, no shots)",
            ::hetarch::dse::flowPressureTable());
    }
    ::hetarch::bench::exportMetrics();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
