/**
 * @file
 * Paper Table 2: standard cells with design-rule status and
 * density-matrix characterization, plus characterization throughput.
 */

#include "bench_util.hh"
#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "devices/device.hh"

namespace {

using namespace hetarch;

void
BM_CharacterizeRegister(benchmark::State& state)
{
    const auto cell = cells::makeRegister(
        devices::multimodeResonator3D(), devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto ch = cells::characterizeRegister(cell);
        benchmark::DoNotOptimize(ch);
    }
}
BENCHMARK(BM_CharacterizeRegister);

void
BM_CharacterizeSeqOp(benchmark::State& state)
{
    const auto cell = cells::makeSeqOp(devices::multimodeResonator3D(),
                                       devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto ch = cells::characterizeSeqOp(cell);
        benchmark::DoNotOptimize(ch);
    }
}
BENCHMARK(BM_CharacterizeSeqOp);

void
BM_DesignRuleCheck(benchmark::State& state)
{
    const auto cell = cells::makeUsc(devices::multimodeResonator3D(),
                                     devices::fixedFrequencyTransmon());
    for (auto _ : state) {
        auto report = cells::checkDesignRules(cell, 1);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_DesignRuleCheck);

} // namespace

HETARCH_BENCH_MAIN("Table 2: quantum standard cells",
                   hetarch::dse::table2Cells())
