/**
 * @file
 * Paper Fig. 7: surface-code logical error per cycle for distances
 * 5..18 as a function of the data/ancilla coherence ratio.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "qec/surface_circuit.hh"
#include "stab/dem.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_CircuitGeneration(benchmark::State& state)
{
    qec::CircuitNoise noise;
    const auto d = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto circ = qec::surfaceMemoryZ(d, d, noise);
        benchmark::DoNotOptimize(circ);
    }
}
BENCHMARK(BM_CircuitGeneration)->Arg(5)->Arg(13)->Arg(18);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 7: surface-code logical error vs distance and Tcd/Tca",
    hetarch::dse::fig7SurfaceRatio(hetarch::bench::runScale()))
