/**
 * @file
 * Ablation: DEJMPS vs BBPSSW inside the distillation module.  DEJMPS
 * (the paper's choice) converges in fewer rounds because it preserves
 * the Bell-diagonal coefficient structure that the BBPSSW twirl
 * discards; this bench quantifies the throughput gap.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "distill/dejmps.hh"
#include "distill/module_sim.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_BbpsswRound(benchmark::State& state)
{
    const auto w = distill::BellDiag::werner(0.05);
    for (auto _ : state) {
        auto out = distill::bbpssw(w, w);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_BbpsswRound);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    std::cout << "\n=== Ablation: DEJMPS vs BBPSSW distillation ===\n";

    TextTable ladder({"round", "F(DEJMPS)", "F(BBPSSW)"});
    distill::BellDiag d = distill::BellDiag::werner(0.05);
    distill::BellDiag b = d;
    for (int round = 0; round <= 4; ++round) {
        ladder.addRow({std::to_string(round),
                       formatFixed(d.fidelity(), 6),
                       formatFixed(b.fidelity(), 6)});
        d = distill::dejmps(d, d).output;
        b = distill::bbpssw(b, b).output;
    }
    ladder.print(std::cout);

    TextTable module(
        {"rate(kHz)", "protocol", "distilled_per_ms", "best_fidelity"});
    for (double rate : {200.0, 1000.0, 5000.0}) {
        for (auto protocol :
             {distill::Protocol::Dejmps, distill::Protocol::Bbpssw}) {
            distill::DistillConfig cfg;
            cfg.protocol = protocol;
            cfg.ts = 12.5 * ms;
            cfg.epRate = rate * kHz;
            cfg.epInfidelity = 0.03;
            cfg.seed = 77;
            const auto res =
                distill::simulateDistillation(cfg, 5.0 * ms);
            double best = 1.0;
            for (const auto& point : res.trace)
                best = std::min(best, point.bestInfidelity);
            module.addRow(
                {formatFixed(rate, 0),
                 protocol == distill::Protocol::Dejmps ? "DEJMPS"
                                                       : "BBPSSW",
                 formatFixed(res.distilledRatePerMs(), 2),
                 formatFixed(1.0 - best, 4)});
        }
    }
    std::cout << "\nBBPSSW needs ~6 rounds (64 raw pairs) to pass the "
                 "0.995 target from F=0.97,\nso the paper-sized module "
                 "(6-slot input) cannot finish a ladder with it —\n"
                 "the quantitative case for choosing DEJMPS.\n";
    std::cout << "\n";
    module.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
