/**
 * @file
 * Shared scaffolding for the benchmark/reproduction binaries: each
 * binary prints its paper artifact (table or figure data series),
 * exports the observability snapshot, and then runs its
 * google-benchmark microbenchmarks.
 *
 * Environment / CLI knobs:
 *   HETARCH_QUICK=1        run the experiments at reduced shot counts
 *   HETARCH_THREADS=N      worker count of the exec engine (default:
 *                          all hardware threads); results are
 *                          bit-identical for any value
 *   --threads=N            same as HETARCH_THREADS, takes precedence
 *   HETARCH_METRICS_OUT=F  write the obs snapshot (JSON) to F
 *   --metrics-out=F        same, takes precedence
 *   HETARCH_SIMD_WIDTH=N   sampler block width in 64-shot words
 *                          (1..8, default 8); results are
 *                          bit-identical for any value
 *   --simd-width=N         same as HETARCH_SIMD_WIDTH, takes precedence
 *
 * The metrics snapshot is taken after the artifact but before the
 * microbenchmarks: google-benchmark picks iteration counts adaptively,
 * so counters recorded during it are machine-dependent and must not
 * reach the exported file (CI compares counter values exactly).
 */

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/simd.hh"
#include "dse/experiments.hh"
#include "exec/thread_pool.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "stab/frame.hh"

namespace hetarch {
namespace bench {

/** Scale from the environment: quick mode for smoke runs. */
inline dse::RunScale
runScale()
{
    dse::RunScale scale;
    if (std::getenv("HETARCH_QUICK"))
        scale.shotScale = 0.05;
    return scale;
}

/**
 * Consume a leading --threads=N argument (if any) into
 * exec::setThreadCount, leaving the remaining argv for
 * google-benchmark.
 */
inline void
configureThreads(int& argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        constexpr const char* kFlag = "--threads=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
            const long n = std::strtol(argv[i] + std::strlen(kFlag),
                                       nullptr, 10);
            if (n >= 1)
                ::hetarch::exec::setThreadCount(
                    static_cast<unsigned>(n));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

/**
 * Consume a leading --simd-width=N argument (if any) into
 * stab::setFrameBlockWords, leaving the remaining argv for
 * google-benchmark.
 */
inline void
configureSimdWidth(int& argc, char** argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        constexpr const char* kFlag = "--simd-width=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
            const long n = std::strtol(argv[i] + std::strlen(kFlag),
                                       nullptr, 10);
            if (n >= 1)
                ::hetarch::stab::setFrameBlockWords(
                    static_cast<std::size_t>(n));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

/**
 * Consume the bench-harness flags (--threads, --simd-width,
 * --metrics-out) and record the detected SIMD backend width as the
 * machine-dependent stab.sampler.simd_width counter.  Recording from
 * the harness — never from library paths — keeps per-job counter
 * deltas machine-independent for the service determinism contract.
 */
inline void
configure(int& argc, char** argv)
{
    configureThreads(argc, argv);
    configureSimdWidth(argc, argv);
    obs::configureMetricsFromArgs(argc, argv);
    stab::recordSimdTelemetry();
}

/**
 * Print the run configuration header: worker count plus the active
 * SIMD backend and sampler block width.  Custom bench mains call this
 * right after configure(); HETARCH_BENCH_MAIN does it for the rest.
 */
inline void
printRunHeader()
{
    std::cout << "exec threads: " << exec::threadCount() << "\n";
    std::cout << "simd backend: " << simd::backendName() << " ("
              << simd::vectorWords()
              << " words/vector), sampler block: "
              << stab::frameBlockWords() << " words\n";
}

/** Print one experiment table under a banner. */
inline void
printArtifact(const char* title, const TextTable& table)
{
    std::cout << "\n=== " << title << " ===\n";
    table.print(std::cout);
    std::cout.flush();
}

/**
 * Export the obs snapshot accumulated so far (when --metrics-out /
 * HETARCH_METRICS_OUT is set) and print its human-readable summary.
 * Must run before the microbenchmarks — see the file comment.
 */
inline void
exportMetrics()
{
    if (obs::metricsOutPath().empty())
        return;
    const auto snap = obs::Registry::instance().snapshot();
    std::cout << "\n=== metrics (" << obs::metricsOutPath()
              << ") ===\n";
    obs::snapshotTable(snap).print(std::cout);
    std::cout.flush();
    obs::flushConfiguredMetrics();
}

} // namespace bench
} // namespace hetarch

/**
 * Standard main: print the artifact (wrapped in a trace span), export
 * the metrics snapshot, then run microbenchmarks.
 */
#define HETARCH_BENCH_MAIN(TITLE, TABLE_EXPR)                            \
    int main(int argc, char** argv)                                     \
    {                                                                    \
        ::hetarch::bench::configure(argc, argv);                        \
        ::hetarch::bench::printRunHeader();                             \
        {                                                                \
            ::hetarch::obs::Span span("bench.artifact");                \
            ::hetarch::bench::printArtifact(TITLE, TABLE_EXPR);         \
        }                                                                \
        ::hetarch::bench::exportMetrics();                              \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        return 0;                                                        \
    }
