/**
 * @file
 * Shared scaffolding for the benchmark/reproduction binaries: each
 * binary prints its paper artifact (table or figure data series) and
 * then runs its google-benchmark microbenchmarks.
 *
 * Set HETARCH_QUICK=1 to run the experiments at reduced shot counts.
 */

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "dse/experiments.hh"

namespace hetarch {
namespace bench {

/** Scale from the environment: quick mode for smoke runs. */
inline dse::RunScale
runScale()
{
    dse::RunScale scale;
    if (std::getenv("HETARCH_QUICK"))
        scale.shotScale = 0.05;
    return scale;
}

/** Print one experiment table under a banner. */
inline void
printArtifact(const char* title, const TextTable& table)
{
    std::cout << "\n=== " << title << " ===\n";
    table.print(std::cout);
    std::cout.flush();
}

} // namespace bench
} // namespace hetarch

/** Standard main: print the artifact, then run microbenchmarks. */
#define HETARCH_BENCH_MAIN(TITLE, TABLE_EXPR)                            \
    int main(int argc, char** argv)                                     \
    {                                                                    \
        ::hetarch::bench::printArtifact(TITLE, TABLE_EXPR);             \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        return 0;                                                        \
    }
