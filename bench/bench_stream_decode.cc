/**
 * @file
 * Sustained-load benchmark for the streaming syndrome engine
 * (qec/stream_experiment.hh): a d = 7 surface memory at the fig. 6
 * noise point, decoded as the syndrome blocks arrive.
 *
 * The artifact contrasts the two kernel modes at two round counts:
 *
 *  - whole-buffer (window spans the run): bit-identical to
 *    runMemoryExperiment, cross-checked per row;
 *  - sliding window (W = 7, C = 3): peak syndrome storage pinned at
 *    W rounds regardless of run length, with per-window decode
 *    latency percentiles (p50/p90/p99) read from the
 *    qec.stream.window_decode_ns histogram via snapshot deltas.
 *
 * Timing instrumentation is enabled so the latency histograms fill;
 * the deterministic counters are unaffected.  The metrics snapshot is
 * exported before the microbenchmarks, like every other bench.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "core/table.hh"
#include "core/units.hh"
#include "obs/obs.hh"
#include "qec/memory_experiment.hh"
#include "qec/stream_experiment.hh"
#include "qec/surface_circuit.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

/** The fig. 6 noise point (p2 = 1e-2, p1 = 1e-3, T1 = T2 = 0.1 ms). */
qec::CircuitNoise
fig6Noise()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1 * ms;
    noise.ancT1 = noise.ancT2 = 0.1 * ms;
    return noise;
}

obs::Snapshot::HistogramEntry
windowLatency()
{
    const auto snap = obs::Registry::instance().snapshot();
    for (const auto& h : snap.histograms)
        if (h.name == "qec.stream.window_decode_ns")
            return h;
    return {};
}

/** Per-run view of a monotonically growing histogram. */
obs::Snapshot::HistogramEntry
histogramDelta(obs::Snapshot::HistogramEntry cur,
               const obs::Snapshot::HistogramEntry& prev)
{
    cur.count -= prev.count;
    cur.sum -= prev.sum;
    for (const auto& [lo, count] : prev.buckets)
        for (auto& bucket : cur.buckets)
            if (bucket.first == lo) {
                bucket.second -= count;
                break;
            }
    std::erase_if(cur.buckets,
                  [](const auto& b) { return b.second == 0; });
    return cur;
}

std::string
quantileUs(const obs::Snapshot::HistogramEntry& h, double q)
{
    if (h.count == 0)
        return "-";
    return formatFixed(obs::histogramQuantile(h, q) / 1e3, 1);
}

void
BM_StreamDecode(benchmark::State& state)
{
    // End-to-end streaming decode of a d = 5 memory; Arg(1) slides a
    // 4-round window with 2-round commits, Arg(0) is whole-buffer.
    const bool windowed = state.range(0) == 1;
    const std::size_t rounds = 10;
    const auto circ = qec::surfaceMemoryZ(5, rounds, fig6Noise());
    qec::StreamConfig config;
    if (windowed) {
        config.windowRounds = 4;
        config.commitRounds = 2;
    }
    Rng rng(9);
    for (auto _ : state) {
        auto res = qec::runStreamingMemoryExperiment(
            circ, 256, rounds, qec::DecoderKind::UnionFind, rng,
            config);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 256 * rounds));
}
BENCHMARK(BM_StreamDecode)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    obs::setTimingEnabled(true);
    const double shot_scale = hetarch::bench::runScale().shotScale;
    using clock = std::chrono::steady_clock;

    std::cout << "exec threads: " << exec::threadCount() << "\n";
    std::cout << "\n=== Streaming decode under sustained load "
                 "(surface d=7, fig6 noise) ===\n";
    TextTable t({"rounds", "window", "commit", "peak-rounds", "shots",
                 "failures", "batch-equal", "shot-rounds/s", "p50(us)",
                 "p90(us)", "p99(us)", "stall(ms)"});
    const auto shots = std::max<std::size_t>(
        128, static_cast<std::size_t>(4096 * shot_scale));
    for (std::size_t rounds : {std::size_t{7}, std::size_t{28}}) {
        const auto circ = qec::surfaceMemoryZ(7, rounds, fig6Noise());

        Rng batch_rng(2026);
        const auto batch = qec::runMemoryExperiment(
            circ, shots, rounds, qec::DecoderKind::UnionFind,
            batch_rng);

        for (int windowed = 0; windowed < 2; ++windowed) {
            qec::StreamConfig config;
            if (windowed) {
                config.windowRounds = 7;
                config.commitRounds = 3;
            }
            const auto before = windowLatency();
            Rng rng(2026);
            const auto t0 = clock::now();
            const auto res = qec::runStreamingMemoryExperiment(
                circ, shots, rounds, qec::DecoderKind::UnionFind, rng,
                config);
            const auto t1 = clock::now();
            const auto latency =
                histogramDelta(windowLatency(), before);

            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            const double rate =
                static_cast<double>(shots * rounds) / secs;
            // Whole-buffer mode must replay the batch experiment
            // bit-for-bit; windowed mode legitimately differs.
            const std::string batch_equal =
                windowed ? "-"
                         : (res.memory.failures == batch.failures
                                ? "yes"
                                : "NO");
            t.addRow({std::to_string(rounds),
                      windowed ? std::to_string(res.windowRounds)
                               : "full",
                      windowed ? std::to_string(res.commitRounds)
                               : "-",
                      std::to_string(res.peakStoredRounds),
                      std::to_string(shots),
                      std::to_string(res.memory.failures), batch_equal,
                      formatSci(rate, 2), quantileUs(latency, 0.5),
                      quantileUs(latency, 0.9),
                      quantileUs(latency, 0.99),
                      formatFixed(static_cast<double>(
                                      res.backpressureWaitNs) /
                                      1e6,
                                  2)});
        }
    }
    t.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
