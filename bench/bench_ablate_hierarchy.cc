/**
 * @file
 * Ablation: the paper's >= 10^4x simulation-burden reduction from the
 * hierarchical methodology.  Prints the analytic burden estimate for
 * each paper module, and times a real joint density-matrix step
 * against hierarchical characterization for a module small enough
 * that joint simulation is still feasible.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "cells/characterize.hh"
#include "cells/standard_cells.hh"
#include "core/table.hh"
#include "core/units.hh"
#include "distill/module_sim.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"
#include "dse/burden.hh"
#include "teleport/code_teleport.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_JointDensityMatrixStep(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    dm::DensityMatrix rho(n);
    const auto kraus =
        dm::channels::idleChannel(1.0 * us, 300.0 * us, 300.0 * us);
    for (auto _ : state) {
        rho.applyUnitary(dm::gates::cnot(), {0, 1});
        rho.applyKraus(kraus, {0});
        benchmark::DoNotOptimize(rho);
    }
}
BENCHMARK(BM_JointDensityMatrixStep)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    std::cout << "\n=== Ablation: hierarchical vs joint simulation burden "
                 "===\n";

    TextTable t({"module", "qubits", "largest_cell", "joint(flops/op)",
                 "hierarchical(flops/op)", "reduction"});
    const auto distill_mod = distill::buildDistillationModule(12.5 * ms);
    const auto ct_mod = teleport::buildCodeTeleportModule(50.0 * ms);
    for (const auto* mod : {&distill_mod, &ct_mod}) {
        const auto est = dse::estimateBurden(*mod);
        t.addRow({mod->name(), std::to_string(est.totalQubits),
                  std::to_string(est.largestCellQubits),
                  formatSci(est.jointCostFlops, 2),
                  formatSci(est.hierarchicalCostFlops, 2),
                  formatSci(est.reductionFactor(), 2) + "x"});
    }
    t.print(std::cout);

    // Measured: joint 8-qubit density-matrix op vs characterizing the
    // ParCheck cell (2 qubits) once.
    using clock = std::chrono::steady_clock;
    {
        dm::DensityMatrix joint(8);
        const auto j0 = clock::now();
        for (int i = 0; i < 10; ++i)
            joint.applyUnitary(dm::gates::cnot(), {0, 7});
        const auto j1 = clock::now();

        const auto cell =
            cells::makeParCheck(devices::fixedFrequencyTransmon());
        const auto h0 = clock::now();
        for (int i = 0; i < 10; ++i) {
            auto ch = cells::characterizeParCheck(cell);
            benchmark::DoNotOptimize(ch);
        }
        const auto h1 = clock::now();

        const double j_us =
            std::chrono::duration<double, std::micro>(j1 - j0).count() /
            10.0;
        const double h_us =
            std::chrono::duration<double, std::micro>(h1 - h0).count() /
            10.0;
        std::cout << "\nmeasured: one 8-qubit joint gate = "
                  << formatFixed(j_us, 1)
                  << " us; full 2-qubit cell characterization = "
                  << formatFixed(h_us, 1) << " us\n";
    }
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
