/**
 * @file
 * Paper Fig. 4: distilled-EP production rate (F >= 0.995) vs raw EP
 * generation rate for several storage coherence times.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "distill/module_sim.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_EventSimHighRate(benchmark::State& state)
{
    distill::DistillConfig cfg;
    cfg.ts = 2.5 * ms;
    cfg.epRate = 10.0 * MHz;
    cfg.seed = 11;
    for (auto _ : state) {
        auto res = distill::simulateDistillation(cfg, 1.0 * ms);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_EventSimHighRate);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 4: distilled-EP rate vs generation rate and Ts",
    hetarch::dse::fig4DistillationRate(hetarch::bench::runScale()))
