/**
 * @file
 * Ablation: closed-form Bell-diagonal DEJMPS vs the exact 4-qubit
 * density-matrix implementation.  Confirms the two agree and measures
 * the speedup that lets the event-driven module simulator run millions
 * of distillation rounds.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/table.hh"
#include "distill/dejmps.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::distill;

void
BM_DejmpsClosedForm(benchmark::State& state)
{
    const auto w = BellDiag::werner(0.05);
    for (auto _ : state) {
        auto out = dejmps(w, w);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_DejmpsClosedForm);

void
BM_DejmpsExact(benchmark::State& state)
{
    const auto rho = BellDiag::werner(0.05).toDensityMatrix();
    for (auto _ : state) {
        auto out = dejmpsExact(rho, rho);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_DejmpsExact);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    using clock = std::chrono::steady_clock;
    std::cout << "\n=== Ablation: DEJMPS closed form vs exact DM ===\n";

    TextTable t({"input_infidelity", "F'_closed", "F'_exact",
                 "|diff|", "closed(us)", "exact(us)"});
    for (double eps : {0.01, 0.05, 0.10, 0.25}) {
        const auto w = BellDiag::werner(eps);
        const auto rho = w.toDensityMatrix();

        const auto c0 = clock::now();
        DejmpsOutcome closed;
        for (int i = 0; i < 1000; ++i)
            closed = dejmps(w, w);
        const auto c1 = clock::now();

        const auto e0 = clock::now();
        DejmpsOutcome exact;
        for (int i = 0; i < 1000; ++i)
            exact = dejmpsExact(rho, rho);
        const auto e1 = clock::now();

        t.addRow({formatFixed(eps, 2),
                  formatFixed(closed.output.fidelity(), 6),
                  formatFixed(exact.output.fidelity(), 6),
                  formatSci(std::abs(closed.output.fidelity() -
                                     exact.output.fidelity()),
                            2),
                  formatFixed(std::chrono::duration<double, std::micro>(
                                  c1 - c0)
                                      .count() /
                                  1000.0,
                              3),
                  formatFixed(std::chrono::duration<double, std::micro>(
                                  e1 - e0)
                                      .count() /
                                  1000.0,
                              3)});
    }
    t.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
