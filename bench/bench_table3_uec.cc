/**
 * @file
 * Paper Table 3: pseudothresholds and heterogeneous-vs-homogeneous
 * logical error rates of the five codes.
 */

#include "bench_util.hh"
#include "qec/css_code.hh"
#include "uec/lattice_baseline.hh"

namespace {

using namespace hetarch;

void
BM_LatticeEmbedding(benchmark::State& state)
{
    const auto code = qec::makeReedMuller15();
    for (auto _ : state) {
        auto emb = uec::embedOnLattice(code);
        benchmark::DoNotOptimize(emb);
    }
}
BENCHMARK(BM_LatticeEmbedding);

void
BM_LatticeCircuitGeneration(benchmark::State& state)
{
    const auto code = qec::makeColorCode(5);
    const auto emb = uec::embedOnLattice(code);
    uec::LatticeNoise noise;
    for (auto _ : state) {
        auto circ = uec::latticeMemoryZ(code, emb, 3, noise);
        benchmark::DoNotOptimize(circ);
    }
}
BENCHMARK(BM_LatticeCircuitGeneration);

} // namespace

HETARCH_BENCH_MAIN(
    "Table 3: UEC (het, Ts=50ms) vs homogeneous lattice",
    hetarch::dse::table3UecComparison(hetarch::bench::runScale()))
