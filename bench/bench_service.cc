/**
 * @file
 * Throughput benchmark for the experiment job service
 * (service/job_service.hh): a mixed batch of every job kind — memory,
 * streaming memory, sweep point, distillation ensemble, and
 * lint/fault/schedule analysis — submitted with fixed per-job seeds
 * and drained at several scheduler widths.
 *
 * The artifact cross-checks the service determinism contract as it
 * measures: every width must retire the batch with results
 * bit-identical to the width-1 drain (the "identical" column), one
 * victim per repeat is cancelled while queued, and the service.jobs.*
 * counters land in the exported metrics snapshot so CI pins them
 * exactly.
 *
 * The metrics snapshot is exported before the microbenchmarks, like
 * every other bench.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.hh"
#include "obs/obs.hh"
#include "service/job_service.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::service;

/** One repeat of the mixed-kind batch; seeds derived from `repeat`. */
std::vector<JobSpec>
repeatSpecs(std::uint64_t repeat, std::size_t shots)
{
    const double n = static_cast<double>(shots);
    std::vector<JobSpec> specs;

    JobSpec memory;
    memory.name = "memory-" + std::to_string(repeat);
    memory.kind = JobKind::Memory;
    memory.seed = 100 + repeat;
    memory.add("distance", ParamValue::num(3));
    memory.add("rounds", ParamValue::num(3));
    memory.add("shots", ParamValue::num(n));
    memory.add("p1", ParamValue::num(1e-3));
    memory.add("p2", ParamValue::num(1e-2));
    specs.push_back(memory);

    JobSpec stream;
    stream.name = "stream-" + std::to_string(repeat);
    stream.kind = JobKind::Stream;
    stream.seed = 200 + repeat;
    stream.add("distance", ParamValue::num(3));
    stream.add("rounds", ParamValue::num(6));
    stream.add("shots", ParamValue::num(n));
    stream.add("p1", ParamValue::num(1e-3));
    stream.add("p2", ParamValue::num(1e-2));
    stream.add("window", ParamValue::num(4));
    stream.add("commit", ParamValue::num(2));
    specs.push_back(stream);

    JobSpec sweep;
    sweep.name = "sweep-" + std::to_string(repeat);
    sweep.kind = JobKind::SweepPoint;
    sweep.seed = 300 + repeat;
    sweep.add("distance", ParamValue::num(3));
    sweep.add("rounds", ParamValue::num(3));
    sweep.add("shots", ParamValue::num(n));
    sweep.add("p2", ParamValue::num(8e-3));
    specs.push_back(sweep);

    JobSpec distill;
    distill.name = "distill-" + std::to_string(repeat);
    distill.kind = JobKind::Distill;
    distill.seed = 400 + repeat;
    distill.add("trajectories", ParamValue::num(3));
    distill.add("horizon_us", ParamValue::num(50));
    specs.push_back(distill);

    JobSpec analysis;
    analysis.name = "analysis-" + std::to_string(repeat);
    analysis.kind = JobKind::Analysis;
    analysis.add("builder", ParamValue::str("surface-d3"));
    analysis.add("distance", ParamValue::num(1));
    analysis.add("timing", ParamValue::num(1));
    specs.push_back(analysis);

    // The victim: cancelled while queued, must retire without work.
    JobSpec victim = memory;
    victim.name = "victim-" + std::to_string(repeat);
    victim.seed = 500 + repeat;
    specs.push_back(victim);

    return specs;
}

struct BatchRun
{
    std::vector<JobStatus> statuses;
    double seconds = 0.0;
    std::size_t done = 0, cancelled = 0;
};

/** Submit the whole batch, cancel the victims, drain, collect. */
BatchRun
runBatch(std::size_t repeats, std::size_t shots,
         std::size_t max_concurrent)
{
    using clock = std::chrono::steady_clock;
    ServiceConfig config;
    config.autoStart = false;
    config.maxQueued = repeats * 6 + 1;
    config.maxConcurrent = max_concurrent;
    JobService jobs(config);

    std::vector<JobId> ids, victims;
    for (std::uint64_t repeat = 0; repeat < repeats; ++repeat) {
        for (const JobSpec& spec : repeatSpecs(repeat, shots)) {
            const SubmitOutcome outcome = jobs.submit(spec);
            ids.push_back(outcome.id);
            if (spec.name.rfind("victim-", 0) == 0)
                victims.push_back(outcome.id);
        }
    }
    for (JobId id : victims)
        jobs.cancel(id);

    const auto t0 = clock::now();
    jobs.drain();
    const auto t1 = clock::now();

    BatchRun run;
    run.seconds = std::chrono::duration<double>(t1 - t0).count();
    for (JobId id : ids) {
        JobStatus status;
        jobs.status(id, status);
        run.done += status.state == JobState::Done;
        run.cancelled += status.state == JobState::Cancelled;
        run.statuses.push_back(status);
    }
    return run;
}

bool
sameResults(const BatchRun& a, const BatchRun& b)
{
    if (a.statuses.size() != b.statuses.size())
        return false;
    for (std::size_t i = 0; i < a.statuses.size(); ++i)
        if (a.statuses[i].state != b.statuses[i].state ||
            !(a.statuses[i].result == b.statuses[i].result))
            return false;
    return true;
}

void
BM_SubmitDrainMemory(benchmark::State& state)
{
    // One tiny memory job end-to-end: admission + validation +
    // scheduling + decode + retirement.
    ServiceConfig config;
    config.autoStart = false;
    JobService jobs(config);
    JobSpec spec;
    spec.name = "micro";
    spec.kind = JobKind::Memory;
    spec.seed = 9;
    spec.add("distance", ParamValue::num(3));
    spec.add("rounds", ParamValue::num(1));
    spec.add("shots", ParamValue::num(32));
    for (auto _ : state) {
        const SubmitOutcome outcome = jobs.submit(spec);
        jobs.drain();
        JobStatus status;
        jobs.status(outcome.id, status);
        benchmark::DoNotOptimize(status);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitDrainMemory);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    const double shot_scale = hetarch::bench::runScale().shotScale;

    std::cout << "exec threads: " << exec::threadCount() << "\n";
    std::cout << "\n=== Job service mixed-batch drain "
                 "(5 kinds + 1 cancelled victim per repeat) ===\n";
    const std::size_t repeats = 3;
    const auto shots = std::max<std::size_t>(
        50, static_cast<std::size_t>(400 * shot_scale));

    TextTable t({"max-conc", "jobs", "done", "cancelled", "jobs/s",
                 "identical"});
    const BatchRun reference = runBatch(repeats, shots, 1);
    for (std::size_t width : {std::size_t{1}, std::size_t{4},
                              std::size_t{8}}) {
        const BatchRun run = runBatch(repeats, shots, width);
        const double rate =
            run.seconds > 0.0
                ? static_cast<double>(run.done) / run.seconds
                : 0.0;
        t.addRow({std::to_string(width),
                  std::to_string(run.statuses.size()),
                  std::to_string(run.done),
                  std::to_string(run.cancelled), formatFixed(rate, 1),
                  sameResults(run, reference) ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
