/**
 * @file
 * Paper Fig. 9: QEC-code performance on the Universal Error Correction
 * module as a function of storage coherence Ts.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "qec/css_code.hh"
#include "uec/assignment.hh"
#include "uec/uec_circuit.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_AssignmentOptimization(benchmark::State& state)
{
    const auto code = qec::makeColorCode(5);
    for (auto _ : state) {
        auto a = uec::optimizeAssignment(code);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_AssignmentOptimization);

void
BM_UecCircuitGeneration(benchmark::State& state)
{
    const auto code = qec::makeReedMuller15();
    const auto a = uec::roundRobinAssignment(code);
    uec::UecNoise noise;
    for (auto _ : state) {
        auto circ = uec::uecMemoryZ(code, a, 3, noise);
        benchmark::DoNotOptimize(circ);
    }
}
BENCHMARK(BM_UecCircuitGeneration);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 9: QEC codes on the universal error correction module vs Ts",
    hetarch::dse::fig9UecTsSweep(hetarch::bench::runScale()))
