/**
 * @file
 * Decoder ablations:
 *
 *  - weighted union-find vs greedy DEM decoding on the d = 3 surface
 *    code, where both apply (logical error rates and throughput);
 *  - the shot-batched decode pipeline (decodeBuffer: word-block fired
 *    scans + weight-sorted, dedup-aware decodeBatch) vs the per-word
 *    beginBatch/pushBufferColumn/finishBatch loop it replaced, and vs
 *    the dense per-shot scalar reference arm (unpack every detector of
 *    every shot, project the full syndrome, decode dense) at
 *    d in {3, 5, 7}, at the fig. 6 threshold-level noise point and at
 *    a sub-threshold production point.
 *
 * The three-arm table cross-checks that all loops count the same
 * failures before reporting the speedups.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/memory_experiment.hh"
#include "qec/sliding_window.hh"
#include "qec/surface_circuit.hh"
#include "qec/union_find.hh"
#include "stab/frame.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

qec::CircuitNoise
noiseModel(double p2)
{
    qec::CircuitNoise noise;
    noise.p2 = p2;
    noise.p1 = p2 / 10.0;
    noise.dataT1 = noise.dataT2 = 0.5 * ms;
    noise.ancT1 = noise.ancT2 = 0.5 * ms;
    return noise;
}

/** The fig. 6 noise point (p2 = 1e-2, p1 = 1e-3, T1 = T2 = 0.1 ms). */
qec::CircuitNoise
fig6Noise()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1 * ms;
    noise.ancT1 = noise.ancT2 = 0.1 * ms;
    return noise;
}

/**
 * The pre-packed decode loop, kept as the dense reference arm: unpack
 * each shot's full detector row, project the dense syndrome, decode
 * with the const (allocation-per-call) union-find path, and compare
 * every observable.
 */
std::size_t
denseReferenceFailures(const qec::DecoderSetup& setup,
                       const stab::DetectorSamples& samples)
{
    std::size_t failures = 0;
    std::vector<std::uint8_t> detectors(samples.numDetectors);
    qec::UnionFindDecoder dec_z(setup.graphZ);
    qec::UnionFindDecoder dec_x(setup.graphX);
    for (std::size_t s = 0; s < samples.shots; ++s) {
        const std::size_t w = s / 64;
        const std::size_t lane = s % 64;
        for (std::size_t d = 0; d < samples.numDetectors; ++d)
            detectors[d] = static_cast<std::uint8_t>(
                (samples.detWord(d, w) >> lane) & 1);
        std::uint32_t predicted = 0;
        predicted ^=
            dec_z.decode(setup.graphZ.projectSyndrome(detectors));
        predicted ^=
            dec_x.decode(setup.graphX.projectSyndrome(detectors));
        std::uint32_t actual = 0;
        for (std::size_t k = 0; k < samples.numObservables && k < 32; ++k)
            actual |= static_cast<std::uint32_t>(
                          (samples.obsWord(k, w) >> lane) & 1)
                      << k;
        failures += predicted != actual;
    }
    return failures;
}

void
BM_DecodeShot(benchmark::State& state)
{
    const bool use_uf = state.range(0) == 0;
    const auto circ = qec::surfaceMemoryZ(3, 3, noiseModel(5e-3));
    Rng rng(3);
    for (auto _ : state) {
        auto res = qec::runMemoryExperiment(
            circ, 256, 3,
            use_uf ? qec::DecoderKind::UnionFind
                   : qec::DecoderKind::GreedyDem,
            rng);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DecodeShot)->Arg(0)->Arg(1);

void
BM_DecodeBufferSparse(benchmark::State& state)
{
    // Production kernel on a pre-sampled fig. 6 d=7 buffer: word-block
    // fired-detector scans + trivial-shot bypass + shot-batched
    // decodeBatch (weight-sorted, dedup-aware).
    const auto circ = qec::surfaceMemoryZ(7, 7, fig6Noise());
    const auto setup =
        qec::DecoderSetup::build(circ, qec::DecoderKind::UnionFind);
    const stab::FrameSimulator sim(circ);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(256, rng);
    qec::SlidingWindowDecoder kernel(*setup, qec::DecoderKind::UnionFind);
    for (auto _ : state) {
        auto failures = kernel.decodeBuffer(samples);
        benchmark::DoNotOptimize(failures);
    }
    state.SetItemsProcessed(state.iterations() * samples.shots);
}
BENCHMARK(BM_DecodeBufferSparse);

void
BM_DecodeBufferPerWord(benchmark::State& state)
{
    // The pre-batch per-word loop on the identical buffer: one
    // beginBatch/pushBufferColumn/finishBatch round trip per 64-shot
    // word, shots decoded in arrival order without dedup.
    const auto circ = qec::surfaceMemoryZ(7, 7, fig6Noise());
    const auto setup =
        qec::DecoderSetup::build(circ, qec::DecoderKind::UnionFind);
    const stab::FrameSimulator sim(circ);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(256, rng);
    qec::SlidingWindowDecoder kernel(*setup, qec::DecoderKind::UnionFind);
    for (auto _ : state) {
        std::size_t failures = 0;
        for (std::size_t w = 0; w < samples.numWords; ++w) {
            const std::size_t lanes =
                std::min<std::size_t>(64, samples.shots - w * 64);
            kernel.beginBatch(lanes);
            kernel.pushBufferColumn(samples, w);
            failures += kernel.finishBatch();
        }
        benchmark::DoNotOptimize(failures);
    }
    state.SetItemsProcessed(state.iterations() * samples.shots);
}
BENCHMARK(BM_DecodeBufferPerWord);

void
BM_DecodeBufferDense(benchmark::State& state)
{
    // The pre-packed loop on the identical buffer, for the speedup
    // denominator.
    const auto circ = qec::surfaceMemoryZ(7, 7, fig6Noise());
    const auto setup =
        qec::DecoderSetup::build(circ, qec::DecoderKind::UnionFind);
    const stab::FrameSimulator sim(circ);
    Rng rng(5);
    const auto samples = sim.sampleDetectors(256, rng);
    for (auto _ : state) {
        auto failures = denseReferenceFailures(*setup, samples);
        benchmark::DoNotOptimize(failures);
    }
    state.SetItemsProcessed(state.iterations() * samples.shots);
}
BENCHMARK(BM_DecodeBufferDense);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    const double shot_scale = hetarch::bench::runScale().shotScale;
    using clock = std::chrono::steady_clock;

    std::cout << "\n=== Ablation: union-find vs greedy DEM decoder "
                 "(surface d=3) ===\n";
    TextTable t({"p2", "p_L(union-find)", "p_L(greedy-dem)"});
    const auto shots_pl =
        static_cast<std::size_t>(20000 * shot_scale);
    for (double p2 : {2e-3, 5e-3, 1e-2}) {
        const auto circ = qec::surfaceMemoryZ(3, 3, noiseModel(p2));
        Rng rng_a(11), rng_b(11);
        const auto uf = qec::runMemoryExperiment(
            circ, shots_pl, 3, qec::DecoderKind::UnionFind, rng_a);
        const auto gd = qec::runMemoryExperiment(
            circ, shots_pl, 3, qec::DecoderKind::GreedyDem, rng_b);
        t.addRow({formatSci(p2, 2), formatSci(uf.perRound(), 3),
                  formatSci(gd.perRound(), 3)});
    }
    t.print(std::cout);

    std::cout << "\n=== Ablation: shot-batched decode vs per-word loop "
                 "vs dense reference (single thread) ===\n";
    // "batched" is the production countLogicalFailures path
    // (decodeBuffer: word-block fired scans + weight-sorted, dedup-aware
    // decodeBatch), "per-word" is the loop it replaced (one
    // beginBatch/pushBufferColumn/finishBatch round trip per 64-shot
    // word), "dense" is the pre-packed scalar arm (unpack + dense
    // decode per shot).  All three decode the identical sample buffer
    // and must agree on the failure count.  Two noise points: the
    // fig. 6 threshold-level point (heavy syndromes — worst case for
    // dedup, the sort is pure overhead) and a sub-threshold production
    // point (light syndromes — duplicates abound and dedup pays).
    TextTable s({"noise", "distance", "shots", "batched(ms)",
                 "per-word(ms)", "dense(ms)", "vs-per-word", "vs-dense",
                 "failures-equal"});
    const std::pair<const char*, qec::CircuitNoise> noise_points[] = {
        {"fig6", fig6Noise()}, {"p2=2e-3", noiseModel(2e-3)}};
    for (const auto& [noise_name, noise] : noise_points)
    for (std::size_t d : {3ul, 5ul, 7ul}) {
        const auto circ = qec::surfaceMemoryZ(d, d, noise);
        const auto setup =
            qec::DecoderSetup::build(circ, qec::DecoderKind::UnionFind);
        const stab::FrameSimulator sim(circ);
        const auto shots = static_cast<std::size_t>(2048 * shot_scale);
        Rng rng(5);
        const auto samples = sim.sampleDetectors(shots, rng);

        // Both kernels are constructed outside the timed regions: the
        // comparison is between decode loops, not constructor cost
        // (production constructs one kernel per 256-shot chunk either
        // way).
        qec::SlidingWindowDecoder batch_kernel(
            *setup, qec::DecoderKind::UnionFind);
        const auto b0 = clock::now();
        const auto batched_failures = batch_kernel.decodeBuffer(samples);
        const auto b1 = clock::now();

        qec::SlidingWindowDecoder word_kernel(
            *setup, qec::DecoderKind::UnionFind);
        const auto w0 = clock::now();
        std::size_t word_failures = 0;
        for (std::size_t w = 0; w < samples.numWords; ++w) {
            const std::size_t lanes =
                std::min<std::size_t>(64, samples.shots - w * 64);
            word_kernel.beginBatch(lanes);
            word_kernel.pushBufferColumn(samples, w);
            word_failures += word_kernel.finishBatch();
        }
        const auto w1 = clock::now();

        const auto d0 = clock::now();
        const auto dense_failures =
            denseReferenceFailures(*setup, samples);
        const auto d1 = clock::now();

        const double b_ms =
            std::chrono::duration<double, std::milli>(b1 - b0).count();
        const double w_ms =
            std::chrono::duration<double, std::milli>(w1 - w0).count();
        const double d_ms =
            std::chrono::duration<double, std::milli>(d1 - d0).count();
        const bool equal = batched_failures == word_failures &&
                           batched_failures == dense_failures;
        s.addRow({noise_name, std::to_string(d), std::to_string(shots),
                  formatFixed(b_ms, 2), formatFixed(w_ms, 2),
                  formatFixed(d_ms, 2),
                  formatFixed(w_ms / b_ms, 1) + "x",
                  formatFixed(d_ms / b_ms, 1) + "x",
                  equal ? "yes" : "NO"});
    }
    s.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
