/**
 * @file
 * Ablation: weighted union-find vs greedy DEM decoding on the d = 3
 * surface code, where both apply.  Compares logical error rates and
 * throughput.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

qec::CircuitNoise
noiseModel(double p2)
{
    qec::CircuitNoise noise;
    noise.p2 = p2;
    noise.p1 = p2 / 10.0;
    noise.dataT1 = noise.dataT2 = 0.5 * ms;
    noise.ancT1 = noise.ancT2 = 0.5 * ms;
    return noise;
}

void
BM_DecodeShot(benchmark::State& state)
{
    const bool use_uf = state.range(0) == 0;
    const auto circ = qec::surfaceMemoryZ(3, 3, noiseModel(5e-3));
    Rng rng(3);
    for (auto _ : state) {
        auto res = qec::runMemoryExperiment(
            circ, 256, 3,
            use_uf ? qec::DecoderKind::UnionFind
                   : qec::DecoderKind::GreedyDem,
            rng);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DecodeShot)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    std::cout << "\n=== Ablation: union-find vs greedy DEM decoder "
                 "(surface d=3) ===\n";
    TextTable t({"p2", "p_L(union-find)", "p_L(greedy-dem)"});
    for (double p2 : {2e-3, 5e-3, 1e-2}) {
        const auto circ = qec::surfaceMemoryZ(3, 3, noiseModel(p2));
        Rng rng_a(11), rng_b(11);
        const auto uf = qec::runMemoryExperiment(
            circ, 20000, 3, qec::DecoderKind::UnionFind, rng_a);
        const auto gd = qec::runMemoryExperiment(
            circ, 20000, 3, qec::DecoderKind::GreedyDem, rng_b);
        t.addRow({formatSci(p2, 2), formatSci(uf.perRound(), 3),
                  formatSci(gd.perRound(), 3)});
    }
    t.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
