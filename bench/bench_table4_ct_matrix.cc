/**
 * @file
 * Paper Table 4: code-teleportation logical error probabilities for
 * all code pairs, heterogeneous vs homogeneous.
 */

#include "bench_util.hh"
#include "teleport/code_teleport.hh"

namespace {

using namespace hetarch;

void
BM_ComposeLogicalErrors(benchmark::State& state)
{
    std::vector<double> errs(64, 1e-3);
    for (auto _ : state) {
        auto e = teleport::composeLogicalErrors(errs);
        benchmark::DoNotOptimize(e);
    }
}
BENCHMARK(BM_ComposeLogicalErrors);

} // namespace

HETARCH_BENCH_MAIN(
    "Table 4: code-teleportation error matrix (het vs hom)",
    hetarch::dse::table4CtMatrix(hetarch::bench::runScale()))
