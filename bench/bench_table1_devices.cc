/**
 * @file
 * Paper Table 1: near-term superconducting device properties, plus
 * microbenchmarks of the device-derived idle channels.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "dm/channels.hh"
#include "dm/density_matrix.hh"
#include "dm/gates.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_IdleChannelConstruction(benchmark::State& state)
{
    for (auto _ : state) {
        auto kraus = dm::channels::idleChannel(1.0 * us, 300.0 * us,
                                               550.0 * us);
        benchmark::DoNotOptimize(kraus);
    }
}
BENCHMARK(BM_IdleChannelConstruction);

void
BM_IdleChannelApplication(benchmark::State& state)
{
    dm::DensityMatrix rho(2);
    rho.applyUnitary(dm::gates::H(), {0});
    rho.applyUnitary(dm::gates::cnot(), {0, 1});
    const auto kraus =
        dm::channels::idleChannel(1.0 * us, 300.0 * us, 550.0 * us);
    for (auto _ : state) {
        auto copy = rho;
        copy.applyKraus(kraus, {0});
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_IdleChannelApplication);

} // namespace

HETARCH_BENCH_MAIN("Table 1: superconducting device catalog",
                   hetarch::dse::table1Devices())
