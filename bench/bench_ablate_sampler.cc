/**
 * @file
 * Sampler ablations.  Two axes:
 *
 *  - batched Pauli-frame sampling vs exact tableau simulation (the
 *    frame sampler is what makes paper-scale experiments affordable);
 *  - the compiled, bit-packed frame pipeline vs the legacy op-list
 *    interpreter (the packed path is what the production experiments
 *    run; the reference interpreter survives as the equivalence
 *    oracle).
 *
 * The packed-vs-reference arm also cross-checks bit-for-bit sample
 * equality on a fixed seed — the speedup is only meaningful because
 * the outputs are identical.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/table.hh"
#include "core/units.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "stab/frame.hh"
#include "stab/tableau.hh"

#include "bench_util.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

qec::CircuitNoise
noiseModel()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1 * ms;
    noise.ancT1 = noise.ancT2 = 0.1 * ms;
    return noise;
}

void
BM_FrameSampler(benchmark::State& state)
{
    const auto d = static_cast<std::size_t>(state.range(0));
    const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
    stab::FrameSimulator sim(circ);
    Rng rng(3);
    for (auto _ : state) {
        auto s = sim.sampleDetectors(64, rng);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrameSampler)->Arg(3)->Arg(5)->Arg(9)->Arg(13);

void
BM_FrameSamplerReference(benchmark::State& state)
{
    // The legacy per-batch op-list interpreter, for comparison with
    // the compiled program BM_FrameSampler runs.
    const auto d = static_cast<std::size_t>(state.range(0));
    const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
    stab::FrameSimulator sim(circ);
    Rng rng(3);
    for (auto _ : state) {
        auto s = sim.sampleDetectorsReference(64, rng);
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrameSamplerReference)->Arg(3)->Arg(5)->Arg(9)->Arg(13);

void
BM_FrameReplayBlock(benchmark::State& state)
{
    // Pure frame propagation (the vectorized replay pass) at a given
    // block width; the noise tape is resolved once outside the loop.
    const auto words = static_cast<std::size_t>(state.range(0));
    const auto circ = qec::surfaceMemoryZ(9, 9, noiseModel());
    const auto prog = stab::FrameProgram::compile(circ);
    stab::FrameBlockScratch scratch;
    Rng rng(3);
    prog->resolveNoiseTape(scratch, words, rng);
    for (auto _ : state) {
        prog->replayBlock(scratch);
        benchmark::DoNotOptimize(scratch.meas.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(words * 64));
}
BENCHMARK(BM_FrameReplayBlock)->Arg(1)->Arg(4)->Arg(8);

void
BM_TableauSampler(benchmark::State& state)
{
    const auto d = static_cast<std::size_t>(state.range(0));
    const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
    Rng rng(3);
    for (auto _ : state) {
        stab::TableauSimulator sim(circ.numQubits());
        auto record = sim.run(circ, rng);
        benchmark::DoNotOptimize(record);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableauSampler)->Arg(3)->Arg(5)->Arg(9);

} // namespace

int
main(int argc, char** argv)
{
    hetarch::bench::configure(argc, argv);
    hetarch::bench::printRunHeader();
    using clock = std::chrono::steady_clock;
    std::cout << "\n=== Ablation: frame sampler vs tableau simulator ===\n";

    TextTable t({"distance", "shots", "frame(ms)", "tableau(ms)",
                 "speedup"});
    for (std::size_t d : {3ul, 5ul, 9ul}) {
        const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
        const std::size_t shots = 512;

        Rng rng_f(1);
        stab::FrameSimulator frame(circ);
        const auto f0 = clock::now();
        auto fs = frame.sampleDetectors(shots, rng_f);
        benchmark::DoNotOptimize(fs);
        const auto f1 = clock::now();

        Rng rng_t(1);
        const auto t0 = clock::now();
        for (std::size_t s = 0; s < shots; ++s) {
            stab::TableauSimulator sim(circ.numQubits());
            auto record = sim.run(circ, rng_t);
            benchmark::DoNotOptimize(record);
        }
        const auto t1 = clock::now();

        const double f_ms =
            std::chrono::duration<double, std::milli>(f1 - f0).count();
        const double t_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        t.addRow({std::to_string(d), std::to_string(shots),
                  formatFixed(f_ms, 2), formatFixed(t_ms, 2),
                  formatFixed(t_ms / f_ms, 1) + "x"});
    }
    t.print(std::cout);

    std::cout << "\n=== Ablation: compiled packed sampler vs op-list "
                 "interpreter ===\n";
    TextTable p({"distance", "shots", "packed(ms)", "reference(ms)",
                 "speedup", "bit-identical"});
    for (std::size_t d : {3ul, 5ul, 9ul, 13ul}) {
        const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
        const std::size_t shots = 2048;
        stab::FrameSimulator frame(circ);

        Rng rng_p(1);
        const auto p0 = clock::now();
        const auto packed = frame.sampleDetectors(shots, rng_p);
        const auto p1 = clock::now();

        Rng rng_r(1);
        const auto r0 = clock::now();
        const auto reference =
            frame.sampleDetectorsReference(shots, rng_r);
        const auto r1 = clock::now();

        const bool identical = packed.detWords == reference.detWords &&
                               packed.obsWords == reference.obsWords;
        const double p_ms =
            std::chrono::duration<double, std::milli>(p1 - p0).count();
        const double r_ms =
            std::chrono::duration<double, std::milli>(r1 - r0).count();
        p.addRow({std::to_string(d), std::to_string(shots),
                  formatFixed(p_ms, 2), formatFixed(r_ms, 2),
                  formatFixed(r_ms / p_ms, 1) + "x",
                  identical ? "yes" : "NO"});
    }
    p.print(std::cout);

    std::cout << "\n=== Ablation: word-parallel blocks (W=8) vs 1-word "
                 "blocks ===\n";
    // Two arms per distance: "sample" is end-to-end sampleDetectors
    // (sequential noise-tape resolution + vectorized replay), "replay"
    // is the frame-propagation pass alone.  Samples are bit-identical
    // at every width by the RNG-order invariant, so the speedup is a
    // pure throughput delta.
    TextTable w({"distance", "arm", "w=8(ms)", "w=1(ms)", "speedup",
                 "bit-identical"});
    const std::size_t saved_width = stab::frameBlockWords();
    for (std::size_t d : {3ul, 5ul, 9ul, 13ul}) {
        const auto circ = qec::surfaceMemoryZ(d, d, noiseModel());
        const std::size_t shots = 2048;
        stab::FrameSimulator frame(circ);

        stab::setFrameBlockWords(8);
        Rng rng_w(1);
        const auto s0 = clock::now();
        const auto wide = frame.sampleDetectors(shots, rng_w);
        const auto s1 = clock::now();

        stab::setFrameBlockWords(1);
        Rng rng_n(1);
        const auto n0 = clock::now();
        const auto narrow = frame.sampleDetectors(shots, rng_n);
        const auto n1 = clock::now();

        const bool identical = wide.detWords == narrow.detWords &&
                               wide.obsWords == narrow.obsWords;
        const double w_ms =
            std::chrono::duration<double, std::milli>(s1 - s0).count();
        const double n_ms =
            std::chrono::duration<double, std::milli>(n1 - n0).count();
        w.addRow({std::to_string(d), "sample", formatFixed(w_ms, 2),
                  formatFixed(n_ms, 2),
                  formatFixed(n_ms / w_ms, 1) + "x",
                  identical ? "yes" : "NO"});

        // Propagation-only arm: replay a resolved tape, W words per
        // walk vs one word per walk, equal shot totals.
        const auto prog = stab::FrameProgram::compile(circ);
        const std::size_t reps = 64;
        stab::FrameBlockScratch blk;
        Rng rng_b(1);
        prog->resolveNoiseTape(blk, 8, rng_b);
        const auto b0 = clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            prog->replayBlock(blk);
        const auto b1 = clock::now();

        stab::FrameBlockScratch one;
        Rng rng_o(1);
        prog->resolveNoiseTape(one, 1, rng_o);
        const auto o0 = clock::now();
        for (std::size_t r = 0; r < reps * 8; ++r)
            prog->replayBlock(one);
        const auto o1 = clock::now();

        const double b_ms =
            std::chrono::duration<double, std::milli>(b1 - b0).count();
        const double o_ms =
            std::chrono::duration<double, std::milli>(o1 - o0).count();
        w.addRow({std::to_string(d), "replay", formatFixed(b_ms, 2),
                  formatFixed(o_ms, 2),
                  formatFixed(o_ms / b_ms, 1) + "x", "-"});
    }
    stab::setFrameBlockWords(saved_width);
    w.print(std::cout);
    std::cout.flush();

    hetarch::bench::exportMetrics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
