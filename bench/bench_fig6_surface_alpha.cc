/**
 * @file
 * Paper Fig. 6: d = 13 surface-code logical error per cycle as data or
 * ancilla coherence is scaled by alpha (base 0.1 ms, 1% CNOT error),
 * plus sampler/decoder microbenchmarks at d = 13.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "qec/union_find.hh"
#include "stab/dem.hh"
#include "stab/frame.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

qec::CircuitNoise
fig6Noise()
{
    qec::CircuitNoise noise;
    noise.p2 = 1e-2;
    noise.p1 = 1e-3;
    noise.dataT1 = noise.dataT2 = 0.1 * ms;
    noise.ancT1 = noise.ancT2 = 0.1 * ms;
    return noise;
}

void
BM_FrameSampler_d13(benchmark::State& state)
{
    const auto circ = qec::surfaceMemoryZ(13, 13, fig6Noise());
    stab::FrameSimulator sim(circ);
    Rng rng(5);
    for (auto _ : state) {
        auto samples = sim.sampleDetectors(64, rng);
        benchmark::DoNotOptimize(samples);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrameSampler_d13);

void
BM_DemBuild_d13(benchmark::State& state)
{
    const auto circ = qec::surfaceMemoryZ(13, 13, fig6Noise());
    for (auto _ : state) {
        auto dem = stab::buildDetectorErrorModel(circ);
        benchmark::DoNotOptimize(dem);
    }
}
BENCHMARK(BM_DemBuild_d13);

void
BM_UnionFindDecode_d13(benchmark::State& state)
{
    const auto circ = qec::surfaceMemoryZ(13, 13, fig6Noise());
    const auto dem = stab::buildDetectorErrorModel(circ);
    const auto graph = qec::DecodingGraph::fromDem(
        dem, circ.detectorTags(), qec::kTagZ, true);
    qec::UnionFindDecoder decoder(graph);
    stab::FrameSimulator sim(circ);
    Rng rng(7);
    const auto samples = sim.sampleDetectors(64, rng);
    std::vector<std::uint8_t> full(samples.numDetectors);
    std::size_t shot = 0;
    for (auto _ : state) {
        // 64 shots = lanes of word 0 in the packed buffer.
        const std::size_t lane = shot % 64;
        for (std::size_t d = 0; d < samples.numDetectors; ++d)
            full[d] = static_cast<std::uint8_t>(
                (samples.detWord(d, 0) >> lane) & 1);
        auto obs = decoder.decode(graph.projectSyndrome(full));
        benchmark::DoNotOptimize(obs);
        ++shot;
    }
}
BENCHMARK(BM_UnionFindDecode_d13);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 6: d=13 surface code, data vs ancilla coherence scaling",
    hetarch::dse::fig6SurfaceAlpha(hetarch::bench::runScale()))
