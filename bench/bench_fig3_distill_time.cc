/**
 * @file
 * Paper Fig. 3: best output-register EP infidelity over time for the
 * heterogeneous (Ts = 12.5 ms) and homogeneous (0.5 ms) distillation
 * modules, plus DEJMPS microbenchmarks.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "distill/dejmps.hh"
#include "distill/module_sim.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_DejmpsClosedForm(benchmark::State& state)
{
    const auto w = distill::BellDiag::werner(0.05);
    for (auto _ : state) {
        auto out = distill::dejmps(w, w);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_DejmpsClosedForm);

void
BM_DistillationEventSim100us(benchmark::State& state)
{
    distill::DistillConfig cfg;
    cfg.ts = 12.5 * ms;
    cfg.epRate = 1.0 * MHz;
    cfg.seed = 9;
    for (auto _ : state) {
        auto res = distill::simulateDistillation(cfg, 100.0 * us);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_DistillationEventSim100us);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 3: distillation infidelity over time (het Ts=12.5ms vs hom)",
    hetarch::dse::fig3DistillationTrace(hetarch::bench::runScale()))
