/**
 * @file
 * Paper Fig. 12: code-teleportation logical error probability vs
 * storage coherence for three code pairs.
 */

#include "bench_util.hh"
#include "core/units.hh"
#include "qec/css_code.hh"
#include "teleport/code_teleport.hh"

namespace {

using namespace hetarch;
using namespace hetarch::units;

void
BM_CtStateCharacterization(benchmark::State& state)
{
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto steane = qec::makeSteane();
    teleport::CtConfig cfg;
    cfg.shots = 500;
    for (auto _ : state) {
        auto res = teleport::prepareCtState(sc3, steane, cfg);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_CtStateCharacterization);

} // namespace

HETARCH_BENCH_MAIN(
    "Fig. 12: code-teleportation error vs storage coherence",
    hetarch::dse::fig12CtTsSweep(hetarch::bench::runScale()))
