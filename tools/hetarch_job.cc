/**
 * @file
 * hetarch-job: client-side of the hetarch-job-v1 wire protocol.
 *
 * Usage: hetarch-job <command> [options]
 *
 * Request generators (one request line on stdout, for piping into
 * hetarch-serve):
 *
 *   submit --kind=KIND [--name=S] [--priority=N] [--seed=N]
 *          [--param key=value ...] [--circuit-file=PATH]
 *            kinds: memory stream sweep-point distill analysis
 *            --param values that parse as numbers travel as numbers,
 *            anything else as strings; --circuit-file reads PATH into
 *            the "circuit" param for analysis jobs
 *   status --id=N
 *   cancel --id=N
 *   wait
 *   shutdown
 *
 * Transcript consumers (response lines on stdin):
 *
 *   check [--require-counters=submitted=3,completed=2,...]
 *            strict-parse every line; with --require-counters, compare
 *            the bye tallies against the expectation
 *   watch    strict-parse and pretty-print one human line per response
 *
 * Exit status:
 *   0  request emitted / transcript clean and expectations met
 *   1  usage error, or a transcript line failed to parse
 *   2  transcript parsed but an expectation failed
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/job.hh"
#include "service/wire.hh"

namespace {

using namespace hetarch;

int
usage()
{
    std::cerr
        << "usage: hetarch-job submit --kind=KIND [--name=S] "
           "[--priority=N] [--seed=N]\n"
           "                          [--param key=value ...] "
           "[--circuit-file=PATH]\n"
           "       hetarch-job status --id=N\n"
           "       hetarch-job cancel --id=N\n"
           "       hetarch-job wait\n"
           "       hetarch-job shutdown\n"
           "       hetarch-job check "
           "[--require-counters=submitted=N,...]\n"
           "       hetarch-job watch\n";
    return 1;
}

bool
parseU64(const std::string& text, std::uint64_t& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stoull(text, &consumed);
    } catch (...) {
        return false;
    }
    return consumed == text.size();
}

bool
parseI64(const std::string& text, std::int64_t& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stoll(text, &consumed);
    } catch (...) {
        return false;
    }
    return consumed == text.size();
}

bool
parseNumber(const std::string& text, double& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stod(text, &consumed);
    } catch (...) {
        return false;
    }
    return consumed == text.size();
}

int
cmdSubmit(const std::vector<std::string>& args)
{
    service::Request request;
    request.type = service::RequestType::Submit;
    request.job.name = "job";
    bool have_kind = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg.rfind("--kind=", 0) == 0) {
            if (!service::parseJobKind(arg.substr(7), request.job.kind)) {
                std::cerr << "hetarch-job: unknown kind '"
                          << arg.substr(7) << "'\n";
                return 1;
            }
            have_kind = true;
        } else if (arg.rfind("--name=", 0) == 0) {
            request.job.name = arg.substr(7);
        } else if (arg.rfind("--priority=", 0) == 0) {
            if (!parseI64(arg.substr(11), request.job.priority))
                return usage();
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseU64(arg.substr(7), request.job.seed))
                return usage();
        } else if (arg == "--param") {
            if (i + 1 >= args.size())
                return usage();
            const std::string& kv = args[++i];
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                return usage();
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            double number = 0.0;
            if (parseNumber(value, number))
                request.job.add(key, service::ParamValue::num(number));
            else
                request.job.add(key, service::ParamValue::str(value));
        } else if (arg.rfind("--circuit-file=", 0) == 0) {
            const std::string path = arg.substr(15);
            std::ifstream in(path);
            if (!in) {
                std::cerr << "hetarch-job: cannot read '" << path
                          << "'\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            request.job.add("circuit",
                            service::ParamValue::str(text.str()));
        } else {
            return usage();
        }
    }
    if (!have_kind)
        return usage();
    std::cout << service::writeRequestLine(request) << '\n';
    return 0;
}

int
cmdWithId(service::RequestType type, const std::vector<std::string>& args)
{
    service::Request request;
    request.type = type;
    bool have_id = false;
    for (const std::string& arg : args) {
        if (arg.rfind("--id=", 0) == 0) {
            if (!parseU64(arg.substr(5), request.id) ||
                request.id == service::kInvalidJobId)
                return usage();
            have_id = true;
        } else {
            return usage();
        }
    }
    if (!have_id)
        return usage();
    std::cout << service::writeRequestLine(request) << '\n';
    return 0;
}

int
cmdBare(service::RequestType type, const std::vector<std::string>& args)
{
    if (!args.empty())
        return usage();
    service::Request request;
    request.type = type;
    std::cout << service::writeRequestLine(request) << '\n';
    return 0;
}

struct CounterExpectation
{
    std::string key;
    std::uint64_t value = 0;
};

bool
parseExpectations(const std::string& text,
                  std::vector<CounterExpectation>& out)
{
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        CounterExpectation expectation;
        expectation.key = item.substr(0, eq);
        if (!parseU64(item.substr(eq + 1), expectation.value))
            return false;
        out.push_back(expectation);
    }
    return !out.empty();
}

std::uint64_t
byeCounter(const service::Response& bye, const std::string& key,
           bool& known)
{
    known = true;
    if (key == "submitted")
        return bye.submitted;
    if (key == "completed")
        return bye.completed;
    if (key == "failed")
        return bye.failed;
    if (key == "cancelled")
        return bye.cancelled;
    if (key == "rejected")
        return bye.rejected;
    known = false;
    return 0;
}

int
cmdCheck(const std::vector<std::string>& args)
{
    std::vector<CounterExpectation> expectations;
    for (const std::string& arg : args) {
        if (arg.rfind("--require-counters=", 0) == 0) {
            if (!parseExpectations(arg.substr(19), expectations))
                return usage();
        } else {
            return usage();
        }
    }

    std::size_t lines = 0;
    bool have_bye = false;
    service::Response bye;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        ++lines;
        service::Response response;
        std::string error;
        if (!service::parseResponseLine(line, response, error)) {
            std::cerr << "hetarch-job: line " << lines << ": " << error
                      << '\n';
            return 1;
        }
        if (response.type == service::ResponseType::Bye) {
            have_bye = true;
            bye = response;
        }
    }
    if (lines == 0) {
        std::cerr << "hetarch-job: empty transcript\n";
        return 1;
    }
    if (!expectations.empty()) {
        if (!have_bye) {
            std::cerr << "hetarch-job: no bye response to check "
                         "counters against\n";
            return 2;
        }
        int failures = 0;
        for (const CounterExpectation& expectation : expectations) {
            bool known = false;
            const std::uint64_t actual =
                byeCounter(bye, expectation.key, known);
            if (!known) {
                std::cerr << "hetarch-job: unknown counter '"
                          << expectation.key << "'\n";
                return usage();
            }
            if (actual != expectation.value) {
                std::cerr << "hetarch-job: counter " << expectation.key
                          << " = " << actual << ", expected "
                          << expectation.value << '\n';
                ++failures;
            }
        }
        if (failures != 0)
            return 2;
    }
    std::cerr << "hetarch-job: " << lines << " response line(s) ok\n";
    return 0;
}

int
cmdWatch(const std::vector<std::string>& args)
{
    if (!args.empty())
        return usage();
    std::size_t lines = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        ++lines;
        service::Response response;
        std::string error;
        if (!service::parseResponseLine(line, response, error)) {
            std::cerr << "hetarch-job: line " << lines << ": " << error
                      << '\n';
            return 1;
        }
        switch (response.type) {
        case service::ResponseType::Submitted:
            std::cout << "job " << response.id << " '" << response.name
                      << "' queued\n";
            break;
        case service::ResponseType::Rejected:
            std::cout << "rejected '" << response.name
                      << "': " << response.message << '\n';
            break;
        case service::ResponseType::Status: {
            std::cout << "job " << response.id << " '" << response.name
                      << "' [" << service::jobKindName(response.kind)
                      << "] " << service::jobStateName(response.state);
            if (response.hasResult) {
                for (const auto& [key, value] : response.result.fields) {
                    std::cout << ' ' << key << '=';
                    switch (value.kind) {
                    case service::ResultValue::Kind::U64:
                        std::cout << value.u64;
                        break;
                    case service::ResultValue::Kind::Real:
                        std::cout << value.real;
                        break;
                    case service::ResultValue::Kind::Text:
                        std::cout << value.text;
                        break;
                    }
                }
            }
            if (!response.message.empty())
                std::cout << " error=" << response.message;
            std::cout << '\n';
            break;
        }
        case service::ResponseType::Cancelled:
            std::cout << "cancel " << response.id << ' '
                      << (response.ok ? "ok" : "refused") << '\n';
            break;
        case service::ResponseType::Idle:
            std::cout << "idle (" << response.jobs << " job(s))\n";
            break;
        case service::ResponseType::Error:
            std::cout << "server error: " << response.message << '\n';
            break;
        case service::ResponseType::Bye:
            std::cout << "bye submitted=" << response.submitted
                      << " completed=" << response.completed
                      << " failed=" << response.failed
                      << " cancelled=" << response.cancelled
                      << " rejected=" << response.rejected << '\n';
            break;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "submit")
        return cmdSubmit(args);
    if (command == "status")
        return cmdWithId(service::RequestType::Status, args);
    if (command == "cancel")
        return cmdWithId(service::RequestType::Cancel, args);
    if (command == "wait")
        return cmdBare(service::RequestType::Wait, args);
    if (command == "shutdown")
        return cmdBare(service::RequestType::Shutdown, args);
    if (command == "check")
        return cmdCheck(args);
    if (command == "watch")
        return cmdWatch(args);
    return usage();
}
