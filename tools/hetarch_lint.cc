/**
 * @file
 * hetarch-lint: static verification for .circ files and the repo's
 * circuit builders.
 *
 * Usage: hetarch-lint [options] [FILE...]
 *
 *   --strict            fail (exit 2) on warnings, not just errors
 *   --no-determinism    skip the symbolic determinism pass
 *   --distance          run the fault-path analyzer: certified circuit
 *                       distance, detector coverage, union bounds
 *   --max-weight=K      evaluate the union bound at weight K instead
 *                       of ceil(distance / 2)
 *   --expect-distance=D fail (exit 2) unless every analyzed unit has
 *                       certified distance exactly D (implies checks
 *                       of --distance output; requires --distance)
 *   --format=text|json  report format; json emits the stable
 *                       hetarch-lint-v1 document on stdout
 *   --builders[=a,b]    lint builder-generated circuits (all, or the
 *                       named subset); combines with FILE arguments
 *   --list-builders     print known builder names and exit
 *   --drop-detector=N   drop the N-th DETECTOR op before analysis (a
 *                       perturbation knob for the CI certification
 *                       gate's negative self-check)
 *   --timing            run the static schedule analyzer: certified
 *                       critical-path latency, per-qubit idle windows,
 *                       idle-decoherence bounds, and timing hazards
 *                       (lint/schedule.hh); hazards join the findings
 *   --device=NAME       Table 1 catalog entry (or "unit") every qubit
 *                       is costed with [fixed-frequency-transmon]
 *   --storage-device=N  catalog entry for the shared storage instance
 *                       [3d-multimode-resonator]
 *   --storage-qubits=Q, comma-separated qubits hosted on ONE shared
 *                       storage instance (heterogeneous register)
 *   --expect-latency=NS fail (exit 2) unless every analyzed unit's
 *                       critical path is NS (relative tolerance 1e-6;
 *                       requires --timing)
 *   --scale-durations=X multiply every device duration by X (the
 *                       timing gate's negative self-check knob)
 *   --flow              run the qubit-dataflow / storage-residency
 *                       analyzer (lint/dataflow.hh): movement hazards,
 *                       residency pressure, and certified end-to-end
 *                       error budgets; hazards join the findings.  The
 *                       timing model comes from the same --device /
 *                       --storage-device / --storage-qubits /
 *                       --scale-durations flags as --timing; with
 *                       --distance on a clean unit the budgets compose
 *                       the gate-error union bound at the certified
 *                       weight
 *   --stale-after=NS    staleness threshold for flow-stale-storage
 *                       (default: the hosting device's T2; requires
 *                       --flow)
 *   --expect-peak-storage=N
 *                       fail (exit 2) unless every analyzed unit's
 *                       peak storage occupancy is exactly N (the flow
 *                       gate's negative self-check knob; requires
 *                       --flow)
 *   --metrics-out=FILE  write an obs metrics snapshot on exit
 *
 * With --timing --format=json the stable hetarch-sched-v1 document is
 * emitted instead of hetarch-lint-v1; with --flow --format=json the
 * hetarch-flow-v1 document takes precedence over both.
 *
 * Exit status (the contract scripts/check_lint_clean.sh pins):
 *   0  every unit is clean (no errors; with --strict, no warnings)
 *      and every --expect-distance / --expect-latency /
 *      --expect-peak-storage check passed
 *   1  usage error, unreadable file, or parse failure
 *   2  lint findings above the acceptance threshold, or a certified
 *      distance/latency/peak-storage differing from the expectation
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/logging.hh"
#include "devices/device.hh"
#include "dse/builder_registry.hh"
#include "lint/dataflow.hh"
#include "lint/faults.hh"
#include "lint/flow_json.hh"
#include "lint/lint.hh"
#include "lint/report_json.hh"
#include "lint/sched_json.hh"
#include "lint/schedule.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "qec/decoder_cache.hh"
#include "stab/circuit_io.hh"

namespace {

using namespace hetarch;

obs::Counter& cFiles = obs::counter("lint.files");
obs::Counter& cErrors = obs::counter("lint.errors");
obs::Counter& cWarnings = obs::counter("lint.warnings");

// The builder table lives in dse::builderRegistry() so the lint tool
// and the job service resolve names through one shared table.
using dse::builderRegistry;

int
usage()
{
    std::cerr
        << "usage: hetarch-lint [--strict] [--no-determinism]\n"
           "                    [--distance] [--max-weight=K]\n"
           "                    [--expect-distance=D] "
           "[--format=text|json]\n"
           "                    [--timing] [--device=NAME]\n"
           "                    [--storage-device=NAME] "
           "[--storage-qubits=Q,...]\n"
           "                    [--expect-latency=NS] "
           "[--scale-durations=X]\n"
           "                    [--flow] [--stale-after=NS]\n"
           "                    [--expect-peak-storage=N]\n"
           "                    [--builders[=name,...]] "
           "[--list-builders]\n"
           "                    [--drop-detector=N] "
           "[--metrics-out=FILE] [FILE...]\n";
    return 1;
}

/** A unit of work: a file path or a builder circuit, plus its label. */
struct Unit
{
    std::string label;
    const dse::CircuitBuilder* builder = nullptr; ///< null: file path
};

bool
parseSize(const std::string& text, std::size_t& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stoull(text, &consumed);
    } catch (const std::exception&) {
        return false;
    }
    return consumed == text.size();
}

bool
parseDouble(const std::string& text, double& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stod(text, &consumed);
    } catch (const std::exception&) {
        return false;
    }
    return consumed == text.size();
}

bool
parseQubitList(const std::string& csv, std::vector<std::uint32_t>& out)
{
    std::istringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        std::size_t q = 0;
        if (!parseSize(item, q))
            return false;
        out.push_back(static_cast<std::uint32_t>(q));
    }
    return !out.empty();
}

/** Table 1 catalog entry (or "unit") by name, or nullopt-style fail. */
bool
findDevice(const std::string& name, devices::DeviceModel& out)
{
    for (const auto& d : devices::table1Catalog()) {
        if (d.name == name) {
            out = d;
            return true;
        }
    }
    return false;
}

stab::Circuit
loadUnit(const Unit& unit)
{
    if (unit.builder)
        return unit.builder->make();
    std::ifstream in(unit.label);
    if (!in)
        HETARCH_FATAL("hetarch-lint: cannot read '", unit.label, "'");
    std::ostringstream text;
    text << in.rdbuf();
    // parseCircuit is fatal (exit 1) on malformed input; its
    // diagnostics already carry the line number.
    return stab::parseCircuit(text.str());
}

/** Remove the N-th DETECTOR op (the certification gate's saboteur). */
stab::Circuit
dropDetector(const stab::Circuit& circuit, std::size_t index)
{
    std::vector<stab::Op> ops(circuit.ops().begin(),
                              circuit.ops().end());
    std::size_t seen = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].code != stab::OpCode::DETECTOR)
            continue;
        if (seen++ == index) {
            ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
            return stab::Circuit::fromRawOps(circuit.numQubits(),
                                             std::move(ops));
        }
    }
    HETARCH_FATAL("hetarch-lint: --drop-detector=", index,
                  " but the circuit has only ", seen, " detectors");
}

} // namespace

int
main(int argc, char** argv)
{
    // Consumes --metrics-out=PATH (or HETARCH_METRICS_OUT) and arms
    // the snapshot writer; lint.* counters land in the JSON artifact.
    obs::configureMetricsFromArgs(argc, argv);

    bool strict = false;
    bool distance = false;
    bool json = false;
    bool have_expect = false;
    bool have_drop = false;
    bool timing = false;
    bool have_expect_latency = false;
    bool flow = false;
    bool have_expect_peak = false;
    std::size_t expect_distance = 0;
    std::size_t drop_index = 0;
    std::size_t expect_peak = 0;
    double expect_latency = 0.0;
    double scale_durations = 1.0;
    double stale_after = 0.0;
    std::string device_name = "fixed-frequency-transmon";
    std::string storage_name = "3d-multimode-resonator";
    std::vector<std::uint32_t> storage_qubits;
    lint::LintOptions options;
    lint::FaultOptions fault_options;
    std::vector<Unit> units;

    auto add_builders = [&units](const std::string& csv) -> bool {
        std::istringstream ss(csv);
        std::string name;
        while (std::getline(ss, name, ',')) {
            const auto* found = dse::findBuilder(name);
            if (!found) {
                std::cerr << "hetarch-lint: unknown builder '" << name
                          << "' (try --list-builders)\n";
                return false;
            }
            units.push_back({std::string("builder:") + found->name,
                             found});
        }
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg] {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--no-determinism") {
            options.checkDeterminism = false;
        } else if (arg == "--distance") {
            distance = true;
        } else if (arg.rfind("--max-weight=", 0) == 0) {
            if (!parseSize(value(), fault_options.maxWeight))
                return usage();
        } else if (arg.rfind("--expect-distance=", 0) == 0) {
            if (!parseSize(value(), expect_distance))
                return usage();
            have_expect = true;
        } else if (arg.rfind("--drop-detector=", 0) == 0) {
            if (!parseSize(value(), drop_index))
                return usage();
            have_drop = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg.rfind("--device=", 0) == 0) {
            device_name = value();
        } else if (arg.rfind("--storage-device=", 0) == 0) {
            storage_name = value();
        } else if (arg.rfind("--storage-qubits=", 0) == 0) {
            if (!parseQubitList(value(), storage_qubits))
                return usage();
        } else if (arg.rfind("--expect-latency=", 0) == 0) {
            if (!parseDouble(value(), expect_latency))
                return usage();
            have_expect_latency = true;
        } else if (arg.rfind("--scale-durations=", 0) == 0) {
            if (!parseDouble(value(), scale_durations) ||
                scale_durations <= 0.0)
                return usage();
        } else if (arg == "--flow") {
            flow = true;
        } else if (arg.rfind("--stale-after=", 0) == 0) {
            if (!parseDouble(value(), stale_after) ||
                stale_after <= 0.0)
                return usage();
        } else if (arg.rfind("--expect-peak-storage=", 0) == 0) {
            if (!parseSize(value(), expect_peak))
                return usage();
            have_expect_peak = true;
        } else if (arg == "--format=text") {
            json = false;
        } else if (arg == "--format=json") {
            json = true;
        } else if (arg == "--list-builders") {
            for (const auto& b : builderRegistry())
                std::cout << b.name << "\n";
            return 0;
        } else if (arg == "--builders") {
            for (const auto& b : builderRegistry())
                units.push_back({std::string("builder:") + b.name, &b});
        } else if (arg.rfind("--builders=", 0) == 0) {
            if (!add_builders(value()))
                return 1;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "hetarch-lint: unknown option '" << arg
                      << "'\n";
            return usage();
        } else {
            units.push_back({arg, nullptr});
        }
    }
    if (units.empty())
        return usage();
    if (have_expect && !distance) {
        std::cerr << "hetarch-lint: --expect-distance requires "
                     "--distance\n";
        return usage();
    }
    if (have_expect_latency && !timing) {
        std::cerr << "hetarch-lint: --expect-latency requires "
                     "--timing\n";
        return usage();
    }
    if (have_expect_peak && !flow) {
        std::cerr << "hetarch-lint: --expect-peak-storage requires "
                     "--flow\n";
        return usage();
    }
    if (stale_after > 0.0 && !flow) {
        std::cerr << "hetarch-lint: --stale-after requires --flow\n";
        return usage();
    }
    const bool need_model = timing || flow;
    devices::DeviceModel compute_dev;
    devices::DeviceModel storage_dev;
    if (need_model && device_name != "unit" &&
        !findDevice(device_name, compute_dev)) {
        std::cerr << "hetarch-lint: unknown device '" << device_name
                  << "'\n";
        return usage();
    }
    if (need_model && !storage_qubits.empty() &&
        !findDevice(storage_name, storage_dev)) {
        std::cerr << "hetarch-lint: unknown storage device '"
                  << storage_name << "'\n";
        return usage();
    }

    lint::LintDocument doc;
    lint::sched::SchedDocument sched_doc;
    lint::flow::FlowDocument flow_doc;
    bool accepted = true;
    for (const auto& unit : units) {
        auto circ = loadUnit(unit);
        if (have_drop)
            circ = dropDetector(circ, drop_index);

        lint::FileReport file;
        file.path = unit.label;
        file.report = lint::lintCircuit(circ, options);
        // The analyzer presumes deterministic detectors, so it only
        // runs on an error-free circuit — same rule as lintCircuit.
        std::shared_ptr<const lint::FaultAnalysis> fault_analysis;
        if (distance && file.report.clean()) {
            fault_analysis =
                qec::DecoderCache::instance().faultAnalysis(
                    circ, fault_options);
            file.hasFaults = true;
            file.faults = *fault_analysis;
            lint::faultFindings(file.faults, file.report);
        }

        std::shared_ptr<const lint::sched::ScheduleAnalysis> sched;
        std::shared_ptr<const lint::flow::FlowAnalysis> flow_a;
        if (need_model) {
            // Validate before TimingModel::withStorage: its
            // out-of-range assert is an internal contract, but a bad
            // --storage-qubits index is a user error (exit 1).
            for (auto q : storage_qubits)
                if (q >= circ.numQubits())
                    HETARCH_FATAL("hetarch-lint: --storage-qubits=", q,
                                  " outside the ", circ.numQubits(),
                                  "-qubit register of '", unit.label,
                                  "'");
            lint::sched::TimingModel model;
            if (device_name == "unit") {
                model = lint::sched::TimingModel::unit(
                    circ.numQubits());
            } else if (storage_qubits.empty()) {
                model = lint::sched::TimingModel::uniform(
                    compute_dev, circ.numQubits());
            } else {
                model = lint::sched::TimingModel::withStorage(
                    compute_dev, storage_dev, circ.numQubits(),
                    storage_qubits);
            }
            if (scale_durations != 1.0)
                model.scaleDurations(scale_durations);
            if (timing) {
                lint::sched::SchedOptions sched_options;
                sched_options.faults =
                    fault_analysis ? fault_analysis.get() : nullptr;
                sched =
                    lint::sched::ScheduleCache::instance().analysis(
                        circ, model, sched_options);
                lint::sched::scheduleFindings(*sched, file.report);
                sched_doc.files.push_back(
                    {unit.label, model.name, *sched});
            }
            if (flow) {
                lint::flow::FlowOptions flow_options;
                flow_options.faults =
                    fault_analysis ? fault_analysis.get() : nullptr;
                // The DEM behind the gate budget presumes
                // deterministic detectors — same gate as --distance.
                flow_options.gateBudget =
                    distance && file.report.clean();
                flow_options.staleAfterNs = stale_after;
                flow_a = lint::flow::FlowCache::instance().analysis(
                    circ, model, flow_options);
                lint::flow::flowFindings(*flow_a, file.report);
                flow_doc.files.push_back(
                    {unit.label, model.name, *flow_a});
            }
        }
        cFiles.add();
        cErrors.add(file.report.errorCount());
        cWarnings.add(file.report.warningCount());

        bool ok = strict ? file.report.cleanStrict()
                         : file.report.clean();
        if (have_expect) {
            const auto got = file.hasFaults
                                 ? file.faults.minDistance()
                                 : lint::kInfiniteDistance;
            if (got != expect_distance) {
                std::cerr << "hetarch-lint: " << unit.label
                          << ": certified distance ";
                if (got == lint::kInfiniteDistance)
                    std::cerr << "unbounded";
                else
                    std::cerr << got;
                std::cerr << ", expected " << expect_distance << "\n";
                ok = false;
            }
        }
        if (have_expect_latency && sched) {
            const double got = sched->criticalPathNs;
            const double tol =
                1e-6 * std::max(1.0, std::abs(expect_latency));
            if (std::abs(got - expect_latency) > tol) {
                std::cerr << "hetarch-lint: " << unit.label
                          << ": critical path " << got
                          << " ns, expected " << expect_latency
                          << " ns\n";
                ok = false;
            }
        }
        if (have_expect_peak && flow_a &&
            flow_a->peakStorageOccupancy != expect_peak) {
            std::cerr << "hetarch-lint: " << unit.label
                      << ": peak storage occupancy "
                      << flow_a->peakStorageOccupancy << ", expected "
                      << expect_peak << "\n";
            ok = false;
        }

        if (!json) {
            std::cout << unit.label << ": " << (ok ? "clean" : "FAIL")
                      << " (" << file.report.errorCount() << " errors, "
                      << file.report.warningCount() << " warnings)";
            if (file.hasFaults) {
                std::cout << " distance=";
                const auto d = file.faults.minDistance();
                if (d == lint::kInfiniteDistance)
                    std::cout << "unbounded";
                else
                    std::cout << d;
            }
            if (sched)
                std::cout << " latency=" << sched->criticalPathNs
                          << "ns";
            if (flow_a) {
                std::cout << " swaps=" << flow_a->swapCount
                          << " peak-storage="
                          << flow_a->peakStorageOccupancy;
                if (!flow_a->observables.empty())
                    std::cout << " budget=" << flow_a->maxBudget();
            }
            std::cout << "\n";
            if (!file.report.findings.empty())
                std::cout << file.report.toString();
        }
        accepted = accepted && ok;
        doc.files.push_back(std::move(file));
    }
    // --flow --format=json emits the flow document, --timing the sched
    // document; the lint-v1 schema stays exactly as its parser pins it.
    if (json) {
        if (flow)
            std::cout << lint::flow::toFlowJson(flow_doc);
        else if (timing)
            std::cout << lint::sched::toSchedJson(sched_doc);
        else
            std::cout << lint::toLintJson(doc);
    }
    return accepted ? 0 : 2;
}
