/**
 * @file
 * hetarch-lint: static verification for .circ files.
 *
 * Usage: hetarch-lint [--strict] [--no-determinism]
 *                     [--metrics-out=FILE] FILE...
 *
 * Parses each file (parse errors are fatal and exit 1), runs the full
 * lint pipeline and prints the report.  Exit status:
 *   0  every file is clean (no errors; with --strict, no warnings)
 *   1  a file could not be read or parsed
 *   2  lint findings above the acceptance threshold
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "stab/circuit_io.hh"

namespace {

hetarch::obs::Counter& cFiles = hetarch::obs::counter("lint.files");
hetarch::obs::Counter& cErrors = hetarch::obs::counter("lint.errors");
hetarch::obs::Counter& cWarnings = hetarch::obs::counter("lint.warnings");

int
usage()
{
    std::cerr << "usage: hetarch-lint [--strict] [--no-determinism] "
                 "[--metrics-out=FILE] FILE...\n";
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace hetarch;

    // Consumes --metrics-out=PATH (or HETARCH_METRICS_OUT) and arms
    // the snapshot writer; lint.* counters land in the JSON artifact.
    obs::configureMetricsFromArgs(argc, argv);

    bool strict = false;
    lint::LintOptions options;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--no-determinism") {
            options.checkDeterminism = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "hetarch-lint: unknown option '" << arg << "'\n";
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage();

    bool accepted = true;
    for (const auto& path : files) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "hetarch-lint: cannot read '" << path << "'\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();

        // parseCircuit is fatal (exit 1) on malformed input; its
        // diagnostics already carry the line number.
        const auto circ = stab::parseCircuit(text.str());
        const auto report = lint::lintCircuit(circ, options);
        cFiles.add();
        cErrors.add(report.errorCount());
        cWarnings.add(report.warningCount());

        const bool ok = strict ? report.cleanStrict() : report.clean();
        std::cout << path << ": "
                  << (ok ? "clean" : "FAIL")
                  << " (" << report.errorCount() << " errors, "
                  << report.warningCount() << " warnings)\n";
        if (!report.findings.empty())
            std::cout << report.toString();
        accepted = accepted && ok;
    }
    return accepted ? 0 : 2;
}
