/**
 * @file
 * hetarch-serve: the experiment job service on a stdio transport.
 *
 * Usage: hetarch-serve [options]
 *
 *   --max-queue=N       queued-job admission capacity [256]
 *   --max-concurrent=N  jobs dispatched per batch [4]
 *   --hold              do not start the dispatcher until the first
 *                       wait/shutdown request arrives; submissions and
 *                       cancellations against the held queue are fully
 *                       deterministic (the smoke test relies on this)
 *   --job-metrics       attach advisory per-job obs counter deltas to
 *                       status responses
 *   --threads=N         exec pool worker count (0 = hardware)
 *   --metrics-out=FILE  write an obs metrics snapshot on exit
 *
 * Reads one hetarch-job-v1 request per stdin line and answers with
 * hetarch-job-v1 response lines on stdout (see src/service/wire.hh
 * for the schema).  A malformed line gets an `error` response and the
 * daemon keeps serving; EOF acts like a `shutdown` request.
 *
 * Exit status:
 *   0  clean session (rejected submissions are still clean)
 *   1  usage error
 *   2  at least one request line was malformed
 */

#include <iostream>
#include <string>

#include "exec/thread_pool.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "service/job_service.hh"
#include "service/wire.hh"

namespace {

using namespace hetarch;

int
usage()
{
    std::cerr << "usage: hetarch-serve [--max-queue=N] "
                 "[--max-concurrent=N] [--hold]\n"
                 "                     [--job-metrics] [--threads=N] "
                 "[--metrics-out=FILE]\n";
    return 1;
}

bool
parseSize(const std::string& text, std::size_t& out)
{
    if (text.empty())
        return false;
    std::size_t consumed = 0;
    try {
        out = std::stoull(text, &consumed);
    } catch (...) {
        return false;
    }
    return consumed == text.size();
}

void
emit(const service::Response& response)
{
    std::cout << service::writeResponseLine(response) << '\n';
    std::cout.flush();
}

void
emitError(std::string message)
{
    service::Response response;
    response.type = service::ResponseType::Error;
    response.message = std::move(message);
    emit(response);
}

/** Run every queued job to completion and report one status line per
    job (ascending id), then the idle tally. */
void
settle(service::JobService& jobs)
{
    jobs.start();
    jobs.waitIdle();
    for (const service::JobStatus& status : jobs.statusAll())
        emit(service::makeStatusResponse(status));
    service::Response idle;
    idle.type = service::ResponseType::Idle;
    idle.jobs = jobs.statusAll().size();
    emit(idle);
}

void
bye(service::JobService& jobs)
{
    jobs.start();
    jobs.waitIdle();
    service::Response response;
    response.type = service::ResponseType::Bye;
    response.submitted = obs::counter("service.jobs.submitted").load();
    response.completed = obs::counter("service.jobs.completed").load();
    response.failed = obs::counter("service.jobs.failed").load();
    response.cancelled = obs::counter("service.jobs.cancelled").load();
    response.rejected = obs::counter("service.jobs.rejected").load();
    emit(response);
}

} // namespace

int
main(int argc, char** argv)
{
    obs::configureMetricsFromArgs(argc, argv);

    service::ServiceConfig config;
    config.autoStart = true;
    std::size_t threads = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--max-queue=", 0) == 0) {
            if (!parseSize(arg.substr(12), config.maxQueued) ||
                config.maxQueued == 0)
                return usage();
        } else if (arg.rfind("--max-concurrent=", 0) == 0) {
            if (!parseSize(arg.substr(17), config.maxConcurrent) ||
                config.maxConcurrent == 0)
                return usage();
        } else if (arg == "--hold") {
            config.autoStart = false;
        } else if (arg == "--job-metrics") {
            config.captureMetrics = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            if (!parseSize(arg.substr(10), threads))
                return usage();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            return usage();
        }
    }
    if (threads != 0)
        exec::setThreadCount(threads);

    service::JobService jobs(config);
    bool malformed = false;
    bool said_bye = false;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        service::Request request;
        std::string parse_error;
        if (!service::parseRequestLine(line, request, parse_error)) {
            malformed = true;
            emitError("bad request: " + parse_error);
            continue;
        }
        switch (request.type) {
        case service::RequestType::Submit: {
            const service::SubmitOutcome outcome =
                jobs.submit(request.job);
            service::Response response;
            if (outcome.accepted()) {
                response.type = service::ResponseType::Submitted;
                response.id = outcome.id;
                response.name = request.job.name;
                response.state = service::JobState::Queued;
            } else {
                response.type = service::ResponseType::Rejected;
                response.name = request.job.name;
                response.message = outcome.error;
            }
            emit(response);
            break;
        }
        case service::RequestType::Status: {
            service::JobStatus status;
            if (jobs.status(request.id, status)) {
                emit(service::makeStatusResponse(status));
            } else {
                emitError("unknown job id " +
                          std::to_string(request.id));
            }
            break;
        }
        case service::RequestType::Cancel: {
            service::Response response;
            response.type = service::ResponseType::Cancelled;
            response.id = request.id;
            response.ok = jobs.cancel(request.id);
            emit(response);
            break;
        }
        case service::RequestType::Wait:
            settle(jobs);
            break;
        case service::RequestType::Shutdown:
            bye(jobs);
            said_bye = true;
            break;
        }
        if (said_bye)
            break;
    }
    if (!said_bye)
        bye(jobs);
    return malformed ? 2 : 0;
}
