file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_sampler.dir/bench_ablate_sampler.cc.o"
  "CMakeFiles/bench_ablate_sampler.dir/bench_ablate_sampler.cc.o.d"
  "bench_ablate_sampler"
  "bench_ablate_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
