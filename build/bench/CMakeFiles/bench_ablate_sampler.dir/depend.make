# Empty dependencies file for bench_ablate_sampler.
# This may be replaced when dependencies are built.
