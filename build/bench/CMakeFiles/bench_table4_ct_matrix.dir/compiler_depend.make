# Empty compiler generated dependencies file for bench_table4_ct_matrix.
# This may be replaced when dependencies are built.
