file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_protocol.dir/bench_ablate_protocol.cc.o"
  "CMakeFiles/bench_ablate_protocol.dir/bench_ablate_protocol.cc.o.d"
  "bench_ablate_protocol"
  "bench_ablate_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
