# Empty dependencies file for bench_ablate_protocol.
# This may be replaced when dependencies are built.
