# Empty compiler generated dependencies file for bench_fig7_surface_ratio.
# This may be replaced when dependencies are built.
