file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_surface_ratio.dir/bench_fig7_surface_ratio.cc.o"
  "CMakeFiles/bench_fig7_surface_ratio.dir/bench_fig7_surface_ratio.cc.o.d"
  "bench_fig7_surface_ratio"
  "bench_fig7_surface_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_surface_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
