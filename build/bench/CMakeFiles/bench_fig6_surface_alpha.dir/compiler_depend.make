# Empty compiler generated dependencies file for bench_fig6_surface_alpha.
# This may be replaced when dependencies are built.
