# Empty dependencies file for bench_fig3_distill_time.
# This may be replaced when dependencies are built.
