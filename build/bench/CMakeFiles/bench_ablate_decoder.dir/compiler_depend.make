# Empty compiler generated dependencies file for bench_ablate_decoder.
# This may be replaced when dependencies are built.
