file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_decoder.dir/bench_ablate_decoder.cc.o"
  "CMakeFiles/bench_ablate_decoder.dir/bench_ablate_decoder.cc.o.d"
  "bench_ablate_decoder"
  "bench_ablate_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
