file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dejmps.dir/bench_ablate_dejmps.cc.o"
  "CMakeFiles/bench_ablate_dejmps.dir/bench_ablate_dejmps.cc.o.d"
  "bench_ablate_dejmps"
  "bench_ablate_dejmps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dejmps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
