# Empty compiler generated dependencies file for bench_ablate_dejmps.
# This may be replaced when dependencies are built.
