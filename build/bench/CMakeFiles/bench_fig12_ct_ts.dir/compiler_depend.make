# Empty compiler generated dependencies file for bench_fig12_ct_ts.
# This may be replaced when dependencies are built.
