file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ct_ts.dir/bench_fig12_ct_ts.cc.o"
  "CMakeFiles/bench_fig12_ct_ts.dir/bench_fig12_ct_ts.cc.o.d"
  "bench_fig12_ct_ts"
  "bench_fig12_ct_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ct_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
