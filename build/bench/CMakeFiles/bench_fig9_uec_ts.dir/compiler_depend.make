# Empty compiler generated dependencies file for bench_fig9_uec_ts.
# This may be replaced when dependencies are built.
