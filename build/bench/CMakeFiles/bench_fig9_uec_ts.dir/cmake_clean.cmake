file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_uec_ts.dir/bench_fig9_uec_ts.cc.o"
  "CMakeFiles/bench_fig9_uec_ts.dir/bench_fig9_uec_ts.cc.o.d"
  "bench_fig9_uec_ts"
  "bench_fig9_uec_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_uec_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
