file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_uec.dir/bench_table3_uec.cc.o"
  "CMakeFiles/bench_table3_uec.dir/bench_table3_uec.cc.o.d"
  "bench_table3_uec"
  "bench_table3_uec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_uec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
