file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_hierarchy.dir/bench_ablate_hierarchy.cc.o"
  "CMakeFiles/bench_ablate_hierarchy.dir/bench_ablate_hierarchy.cc.o.d"
  "bench_ablate_hierarchy"
  "bench_ablate_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
