# Empty compiler generated dependencies file for bench_ablate_hierarchy.
# This may be replaced when dependencies are built.
