# Empty dependencies file for example_memory_designer.
# This may be replaced when dependencies are built.
