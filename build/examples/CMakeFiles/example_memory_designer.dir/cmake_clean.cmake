file(REMOVE_RECURSE
  "CMakeFiles/example_memory_designer.dir/memory_designer.cpp.o"
  "CMakeFiles/example_memory_designer.dir/memory_designer.cpp.o.d"
  "example_memory_designer"
  "example_memory_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_memory_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
