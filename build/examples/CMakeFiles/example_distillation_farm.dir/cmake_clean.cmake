file(REMOVE_RECURSE
  "CMakeFiles/example_distillation_farm.dir/distillation_farm.cpp.o"
  "CMakeFiles/example_distillation_farm.dir/distillation_farm.cpp.o.d"
  "example_distillation_farm"
  "example_distillation_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distillation_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
