# Empty dependencies file for example_distillation_farm.
# This may be replaced when dependencies are built.
