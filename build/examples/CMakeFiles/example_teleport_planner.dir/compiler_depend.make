# Empty compiler generated dependencies file for example_teleport_planner.
# This may be replaced when dependencies are built.
