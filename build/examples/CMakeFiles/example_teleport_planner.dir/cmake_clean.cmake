file(REMOVE_RECURSE
  "CMakeFiles/example_teleport_planner.dir/teleport_planner.cpp.o"
  "CMakeFiles/example_teleport_planner.dir/teleport_planner.cpp.o.d"
  "example_teleport_planner"
  "example_teleport_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_teleport_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
