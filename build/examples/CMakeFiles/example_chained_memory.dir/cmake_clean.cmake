file(REMOVE_RECURSE
  "CMakeFiles/example_chained_memory.dir/chained_memory.cpp.o"
  "CMakeFiles/example_chained_memory.dir/chained_memory.cpp.o.d"
  "example_chained_memory"
  "example_chained_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chained_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
