# Empty dependencies file for example_chained_memory.
# This may be replaced when dependencies are built.
