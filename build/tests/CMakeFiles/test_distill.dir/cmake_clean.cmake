file(REMOVE_RECURSE
  "CMakeFiles/test_distill.dir/distill/dejmps_test.cc.o"
  "CMakeFiles/test_distill.dir/distill/dejmps_test.cc.o.d"
  "CMakeFiles/test_distill.dir/distill/distill_property_test.cc.o"
  "CMakeFiles/test_distill.dir/distill/distill_property_test.cc.o.d"
  "CMakeFiles/test_distill.dir/distill/module_sim_test.cc.o"
  "CMakeFiles/test_distill.dir/distill/module_sim_test.cc.o.d"
  "CMakeFiles/test_distill.dir/distill/protocol_test.cc.o"
  "CMakeFiles/test_distill.dir/distill/protocol_test.cc.o.d"
  "test_distill"
  "test_distill.pdb"
  "test_distill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
