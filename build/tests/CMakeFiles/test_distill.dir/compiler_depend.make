# Empty compiler generated dependencies file for test_distill.
# This may be replaced when dependencies are built.
