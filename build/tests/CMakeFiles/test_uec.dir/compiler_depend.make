# Empty compiler generated dependencies file for test_uec.
# This may be replaced when dependencies are built.
