file(REMOVE_RECURSE
  "CMakeFiles/test_uec.dir/uec/assignment_test.cc.o"
  "CMakeFiles/test_uec.dir/uec/assignment_test.cc.o.d"
  "CMakeFiles/test_uec.dir/uec/chain_test.cc.o"
  "CMakeFiles/test_uec.dir/uec/chain_test.cc.o.d"
  "CMakeFiles/test_uec.dir/uec/uec_experiment_test.cc.o"
  "CMakeFiles/test_uec.dir/uec/uec_experiment_test.cc.o.d"
  "test_uec"
  "test_uec.pdb"
  "test_uec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
