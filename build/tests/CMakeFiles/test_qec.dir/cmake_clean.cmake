file(REMOVE_RECURSE
  "CMakeFiles/test_qec.dir/qec/css_code_test.cc.o"
  "CMakeFiles/test_qec.dir/qec/css_code_test.cc.o.d"
  "CMakeFiles/test_qec.dir/qec/decoder_test.cc.o"
  "CMakeFiles/test_qec.dir/qec/decoder_test.cc.o.d"
  "CMakeFiles/test_qec.dir/qec/gf2_test.cc.o"
  "CMakeFiles/test_qec.dir/qec/gf2_test.cc.o.d"
  "CMakeFiles/test_qec.dir/qec/memory_x_test.cc.o"
  "CMakeFiles/test_qec.dir/qec/memory_x_test.cc.o.d"
  "CMakeFiles/test_qec.dir/qec/qec_property_test.cc.o"
  "CMakeFiles/test_qec.dir/qec/qec_property_test.cc.o.d"
  "test_qec"
  "test_qec.pdb"
  "test_qec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
