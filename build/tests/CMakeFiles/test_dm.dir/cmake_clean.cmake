file(REMOVE_RECURSE
  "CMakeFiles/test_dm.dir/dm/channels_test.cc.o"
  "CMakeFiles/test_dm.dir/dm/channels_test.cc.o.d"
  "CMakeFiles/test_dm.dir/dm/density_matrix_test.cc.o"
  "CMakeFiles/test_dm.dir/dm/density_matrix_test.cc.o.d"
  "CMakeFiles/test_dm.dir/dm/dm_property_test.cc.o"
  "CMakeFiles/test_dm.dir/dm/dm_property_test.cc.o.d"
  "CMakeFiles/test_dm.dir/dm/gates_test.cc.o"
  "CMakeFiles/test_dm.dir/dm/gates_test.cc.o.d"
  "CMakeFiles/test_dm.dir/dm/lindblad_test.cc.o"
  "CMakeFiles/test_dm.dir/dm/lindblad_test.cc.o.d"
  "test_dm"
  "test_dm.pdb"
  "test_dm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
