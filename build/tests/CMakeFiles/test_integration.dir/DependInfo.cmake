
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/full_stack_test.cc" "tests/CMakeFiles/test_integration.dir/integration/full_stack_test.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/full_stack_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hetarch_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_teleport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_distill.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_uec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_module.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_qec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_stab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
