file(REMOVE_RECURSE
  "CMakeFiles/test_stab.dir/stab/circuit_io_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/circuit_io_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/circuit_stats_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/circuit_stats_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/circuit_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/circuit_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/dem_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/dem_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/frame_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/frame_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/pauli_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/pauli_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/random_circuit_property_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/random_circuit_property_test.cc.o.d"
  "CMakeFiles/test_stab.dir/stab/tableau_test.cc.o"
  "CMakeFiles/test_stab.dir/stab/tableau_test.cc.o.d"
  "test_stab"
  "test_stab.pdb"
  "test_stab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
