file(REMOVE_RECURSE
  "CMakeFiles/test_teleport.dir/teleport/code_teleport_test.cc.o"
  "CMakeFiles/test_teleport.dir/teleport/code_teleport_test.cc.o.d"
  "test_teleport"
  "test_teleport.pdb"
  "test_teleport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_teleport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
