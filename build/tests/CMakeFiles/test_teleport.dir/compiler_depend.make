# Empty compiler generated dependencies file for test_teleport.
# This may be replaced when dependencies are built.
