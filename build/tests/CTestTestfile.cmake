# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_dm[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_module[1]_include.cmake")
include("/root/repo/build/tests/test_stab[1]_include.cmake")
include("/root/repo/build/tests/test_qec[1]_include.cmake")
include("/root/repo/build/tests/test_distill[1]_include.cmake")
include("/root/repo/build/tests/test_uec[1]_include.cmake")
include("/root/repo/build/tests/test_teleport[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
