# Empty compiler generated dependencies file for hetarch_module.
# This may be replaced when dependencies are built.
