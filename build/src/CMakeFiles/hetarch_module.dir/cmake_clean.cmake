file(REMOVE_RECURSE
  "CMakeFiles/hetarch_module.dir/module/module.cc.o"
  "CMakeFiles/hetarch_module.dir/module/module.cc.o.d"
  "libhetarch_module.a"
  "libhetarch_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
