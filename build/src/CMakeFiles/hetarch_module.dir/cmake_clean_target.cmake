file(REMOVE_RECURSE
  "libhetarch_module.a"
)
