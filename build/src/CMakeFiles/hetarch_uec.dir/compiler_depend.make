# Empty compiler generated dependencies file for hetarch_uec.
# This may be replaced when dependencies are built.
