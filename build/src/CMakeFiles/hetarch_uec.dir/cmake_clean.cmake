file(REMOVE_RECURSE
  "CMakeFiles/hetarch_uec.dir/uec/assignment.cc.o"
  "CMakeFiles/hetarch_uec.dir/uec/assignment.cc.o.d"
  "CMakeFiles/hetarch_uec.dir/uec/experiment.cc.o"
  "CMakeFiles/hetarch_uec.dir/uec/experiment.cc.o.d"
  "CMakeFiles/hetarch_uec.dir/uec/lattice_baseline.cc.o"
  "CMakeFiles/hetarch_uec.dir/uec/lattice_baseline.cc.o.d"
  "CMakeFiles/hetarch_uec.dir/uec/uec_circuit.cc.o"
  "CMakeFiles/hetarch_uec.dir/uec/uec_circuit.cc.o.d"
  "libhetarch_uec.a"
  "libhetarch_uec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_uec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
