file(REMOVE_RECURSE
  "libhetarch_uec.a"
)
