# Empty compiler generated dependencies file for hetarch_teleport.
# This may be replaced when dependencies are built.
