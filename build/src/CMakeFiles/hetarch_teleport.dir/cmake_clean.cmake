file(REMOVE_RECURSE
  "CMakeFiles/hetarch_teleport.dir/teleport/code_teleport.cc.o"
  "CMakeFiles/hetarch_teleport.dir/teleport/code_teleport.cc.o.d"
  "libhetarch_teleport.a"
  "libhetarch_teleport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_teleport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
