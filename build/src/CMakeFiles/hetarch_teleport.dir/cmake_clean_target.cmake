file(REMOVE_RECURSE
  "libhetarch_teleport.a"
)
