# Empty dependencies file for hetarch_dse.
# This may be replaced when dependencies are built.
