file(REMOVE_RECURSE
  "CMakeFiles/hetarch_dse.dir/dse/burden.cc.o"
  "CMakeFiles/hetarch_dse.dir/dse/burden.cc.o.d"
  "CMakeFiles/hetarch_dse.dir/dse/experiments.cc.o"
  "CMakeFiles/hetarch_dse.dir/dse/experiments.cc.o.d"
  "CMakeFiles/hetarch_dse.dir/dse/sweep.cc.o"
  "CMakeFiles/hetarch_dse.dir/dse/sweep.cc.o.d"
  "libhetarch_dse.a"
  "libhetarch_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
