file(REMOVE_RECURSE
  "libhetarch_dse.a"
)
