# Empty dependencies file for hetarch_core.
# This may be replaced when dependencies are built.
