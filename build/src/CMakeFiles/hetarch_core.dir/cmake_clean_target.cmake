file(REMOVE_RECURSE
  "libhetarch_core.a"
)
