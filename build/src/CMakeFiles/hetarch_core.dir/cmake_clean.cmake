file(REMOVE_RECURSE
  "CMakeFiles/hetarch_core.dir/core/logging.cc.o"
  "CMakeFiles/hetarch_core.dir/core/logging.cc.o.d"
  "CMakeFiles/hetarch_core.dir/core/rng.cc.o"
  "CMakeFiles/hetarch_core.dir/core/rng.cc.o.d"
  "CMakeFiles/hetarch_core.dir/core/stats.cc.o"
  "CMakeFiles/hetarch_core.dir/core/stats.cc.o.d"
  "CMakeFiles/hetarch_core.dir/core/table.cc.o"
  "CMakeFiles/hetarch_core.dir/core/table.cc.o.d"
  "libhetarch_core.a"
  "libhetarch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
