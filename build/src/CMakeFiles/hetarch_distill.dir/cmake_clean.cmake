file(REMOVE_RECURSE
  "CMakeFiles/hetarch_distill.dir/distill/dejmps.cc.o"
  "CMakeFiles/hetarch_distill.dir/distill/dejmps.cc.o.d"
  "CMakeFiles/hetarch_distill.dir/distill/module_sim.cc.o"
  "CMakeFiles/hetarch_distill.dir/distill/module_sim.cc.o.d"
  "libhetarch_distill.a"
  "libhetarch_distill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_distill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
