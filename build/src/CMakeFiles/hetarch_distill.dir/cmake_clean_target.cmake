file(REMOVE_RECURSE
  "libhetarch_distill.a"
)
