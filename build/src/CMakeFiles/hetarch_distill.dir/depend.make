# Empty dependencies file for hetarch_distill.
# This may be replaced when dependencies are built.
