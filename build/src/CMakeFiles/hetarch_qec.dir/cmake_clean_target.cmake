file(REMOVE_RECURSE
  "libhetarch_qec.a"
)
