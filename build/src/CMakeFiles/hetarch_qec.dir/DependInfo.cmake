
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qec/css_circuit.cc" "src/CMakeFiles/hetarch_qec.dir/qec/css_circuit.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/css_circuit.cc.o.d"
  "/root/repo/src/qec/css_code.cc" "src/CMakeFiles/hetarch_qec.dir/qec/css_code.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/css_code.cc.o.d"
  "/root/repo/src/qec/dem_decoder.cc" "src/CMakeFiles/hetarch_qec.dir/qec/dem_decoder.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/dem_decoder.cc.o.d"
  "/root/repo/src/qec/gf2.cc" "src/CMakeFiles/hetarch_qec.dir/qec/gf2.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/gf2.cc.o.d"
  "/root/repo/src/qec/memory_experiment.cc" "src/CMakeFiles/hetarch_qec.dir/qec/memory_experiment.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/memory_experiment.cc.o.d"
  "/root/repo/src/qec/noise_model.cc" "src/CMakeFiles/hetarch_qec.dir/qec/noise_model.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/noise_model.cc.o.d"
  "/root/repo/src/qec/surface_circuit.cc" "src/CMakeFiles/hetarch_qec.dir/qec/surface_circuit.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/surface_circuit.cc.o.d"
  "/root/repo/src/qec/union_find.cc" "src/CMakeFiles/hetarch_qec.dir/qec/union_find.cc.o" "gcc" "src/CMakeFiles/hetarch_qec.dir/qec/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hetarch_stab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
