file(REMOVE_RECURSE
  "CMakeFiles/hetarch_qec.dir/qec/css_circuit.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/css_circuit.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/css_code.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/css_code.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/dem_decoder.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/dem_decoder.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/gf2.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/gf2.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/memory_experiment.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/memory_experiment.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/noise_model.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/noise_model.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/surface_circuit.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/surface_circuit.cc.o.d"
  "CMakeFiles/hetarch_qec.dir/qec/union_find.cc.o"
  "CMakeFiles/hetarch_qec.dir/qec/union_find.cc.o.d"
  "libhetarch_qec.a"
  "libhetarch_qec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
