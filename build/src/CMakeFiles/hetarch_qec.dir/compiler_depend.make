# Empty compiler generated dependencies file for hetarch_qec.
# This may be replaced when dependencies are built.
