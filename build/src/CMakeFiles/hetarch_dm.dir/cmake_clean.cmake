file(REMOVE_RECURSE
  "CMakeFiles/hetarch_dm.dir/dm/channels.cc.o"
  "CMakeFiles/hetarch_dm.dir/dm/channels.cc.o.d"
  "CMakeFiles/hetarch_dm.dir/dm/density_matrix.cc.o"
  "CMakeFiles/hetarch_dm.dir/dm/density_matrix.cc.o.d"
  "CMakeFiles/hetarch_dm.dir/dm/gates.cc.o"
  "CMakeFiles/hetarch_dm.dir/dm/gates.cc.o.d"
  "CMakeFiles/hetarch_dm.dir/dm/lindblad.cc.o"
  "CMakeFiles/hetarch_dm.dir/dm/lindblad.cc.o.d"
  "libhetarch_dm.a"
  "libhetarch_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
