file(REMOVE_RECURSE
  "libhetarch_dm.a"
)
