
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dm/channels.cc" "src/CMakeFiles/hetarch_dm.dir/dm/channels.cc.o" "gcc" "src/CMakeFiles/hetarch_dm.dir/dm/channels.cc.o.d"
  "/root/repo/src/dm/density_matrix.cc" "src/CMakeFiles/hetarch_dm.dir/dm/density_matrix.cc.o" "gcc" "src/CMakeFiles/hetarch_dm.dir/dm/density_matrix.cc.o.d"
  "/root/repo/src/dm/gates.cc" "src/CMakeFiles/hetarch_dm.dir/dm/gates.cc.o" "gcc" "src/CMakeFiles/hetarch_dm.dir/dm/gates.cc.o.d"
  "/root/repo/src/dm/lindblad.cc" "src/CMakeFiles/hetarch_dm.dir/dm/lindblad.cc.o" "gcc" "src/CMakeFiles/hetarch_dm.dir/dm/lindblad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hetarch_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hetarch_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
