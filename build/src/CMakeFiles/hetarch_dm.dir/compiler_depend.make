# Empty compiler generated dependencies file for hetarch_dm.
# This may be replaced when dependencies are built.
