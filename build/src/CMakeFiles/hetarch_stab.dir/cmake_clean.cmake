file(REMOVE_RECURSE
  "CMakeFiles/hetarch_stab.dir/stab/circuit.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/circuit.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/circuit_io.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/circuit_io.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/circuit_stats.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/circuit_stats.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/dem.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/dem.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/frame.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/frame.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/pauli.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/pauli.cc.o.d"
  "CMakeFiles/hetarch_stab.dir/stab/tableau.cc.o"
  "CMakeFiles/hetarch_stab.dir/stab/tableau.cc.o.d"
  "libhetarch_stab.a"
  "libhetarch_stab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
