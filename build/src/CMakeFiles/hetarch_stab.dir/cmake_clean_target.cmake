file(REMOVE_RECURSE
  "libhetarch_stab.a"
)
