# Empty compiler generated dependencies file for hetarch_stab.
# This may be replaced when dependencies are built.
