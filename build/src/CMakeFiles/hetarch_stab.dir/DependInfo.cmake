
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stab/circuit.cc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit.cc.o.d"
  "/root/repo/src/stab/circuit_io.cc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit_io.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit_io.cc.o.d"
  "/root/repo/src/stab/circuit_stats.cc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit_stats.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/circuit_stats.cc.o.d"
  "/root/repo/src/stab/dem.cc" "src/CMakeFiles/hetarch_stab.dir/stab/dem.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/dem.cc.o.d"
  "/root/repo/src/stab/frame.cc" "src/CMakeFiles/hetarch_stab.dir/stab/frame.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/frame.cc.o.d"
  "/root/repo/src/stab/pauli.cc" "src/CMakeFiles/hetarch_stab.dir/stab/pauli.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/pauli.cc.o.d"
  "/root/repo/src/stab/tableau.cc" "src/CMakeFiles/hetarch_stab.dir/stab/tableau.cc.o" "gcc" "src/CMakeFiles/hetarch_stab.dir/stab/tableau.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hetarch_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
