file(REMOVE_RECURSE
  "CMakeFiles/hetarch_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/hetarch_linalg.dir/linalg/matrix.cc.o.d"
  "libhetarch_linalg.a"
  "libhetarch_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
