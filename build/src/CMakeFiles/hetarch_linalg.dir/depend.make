# Empty dependencies file for hetarch_linalg.
# This may be replaced when dependencies are built.
