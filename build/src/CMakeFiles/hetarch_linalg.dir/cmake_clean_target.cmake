file(REMOVE_RECURSE
  "libhetarch_linalg.a"
)
