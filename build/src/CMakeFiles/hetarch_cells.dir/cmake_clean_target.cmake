file(REMOVE_RECURSE
  "libhetarch_cells.a"
)
