# Empty compiler generated dependencies file for hetarch_cells.
# This may be replaced when dependencies are built.
