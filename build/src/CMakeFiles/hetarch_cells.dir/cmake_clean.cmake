file(REMOVE_RECURSE
  "CMakeFiles/hetarch_cells.dir/cells/cell.cc.o"
  "CMakeFiles/hetarch_cells.dir/cells/cell.cc.o.d"
  "CMakeFiles/hetarch_cells.dir/cells/characterize.cc.o"
  "CMakeFiles/hetarch_cells.dir/cells/characterize.cc.o.d"
  "CMakeFiles/hetarch_cells.dir/cells/design_rules.cc.o"
  "CMakeFiles/hetarch_cells.dir/cells/design_rules.cc.o.d"
  "CMakeFiles/hetarch_cells.dir/cells/standard_cells.cc.o"
  "CMakeFiles/hetarch_cells.dir/cells/standard_cells.cc.o.d"
  "libhetarch_cells.a"
  "libhetarch_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
