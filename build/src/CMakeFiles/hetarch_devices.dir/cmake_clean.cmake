file(REMOVE_RECURSE
  "CMakeFiles/hetarch_devices.dir/devices/device.cc.o"
  "CMakeFiles/hetarch_devices.dir/devices/device.cc.o.d"
  "libhetarch_devices.a"
  "libhetarch_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetarch_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
