file(REMOVE_RECURSE
  "libhetarch_devices.a"
)
