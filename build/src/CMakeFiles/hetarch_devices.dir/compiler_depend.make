# Empty compiler generated dependencies file for hetarch_devices.
# This may be replaced when dependencies are built.
