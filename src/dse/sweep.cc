#include "dse/sweep.hh"

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace dse {

namespace {

obs::Counter& cSweepRuns = obs::counter("dse.sweep.runs");
obs::Counter& cSweepCells = obs::counter("dse.sweep.cells");
obs::Histogram& hSweepCellNs = obs::histogram("dse.sweep.cell_ns");

} // namespace

Sweep&
Sweep::parameter(const std::string& name, std::vector<double> values)
{
    HETARCH_ASSERT(!values.empty(), "parameter '", name,
                   "' needs at least one value");
    for (const auto& [existing, _] : params)
        if (existing == name)
            HETARCH_FATAL("duplicate sweep parameter '", name, "'");
    params.push_back({name, std::move(values)});
    return *this;
}

std::size_t
Sweep::size() const
{
    std::size_t n = params.empty() ? 0 : 1;
    for (const auto& [_, values] : params)
        n *= values.size();
    return n;
}

std::vector<DesignPoint>
Sweep::points() const
{
    HETARCH_ASSERT(!params.empty(), "sweep has no parameters");
    std::vector<DesignPoint> grid;
    grid.reserve(size());
    std::vector<std::size_t> idx(params.size(), 0);

    while (true) {
        DesignPoint point;
        for (std::size_t p = 0; p < params.size(); ++p)
            point[params[p].first] = params[p].second[idx[p]];
        grid.push_back(std::move(point));

        // Odometer increment, last parameter fastest.
        std::size_t p = params.size();
        while (p-- > 0) {
            if (++idx[p] < params[p].second.size())
                break;
            idx[p] = 0;
            if (p == 0)
                return grid;
        }
    }
}

std::vector<std::pair<DesignPoint, Metrics>>
Sweep::run(const std::function<Metrics(const DesignPoint&)>& fn) const
{
    const auto grid = points();
    cSweepRuns.add();
    obs::Span span("dse.sweep.run");
    // Grid points are independent design evaluations; results land in
    // pre-sized slots so output order matches the grid no matter which
    // worker evaluates which point.
    std::vector<std::pair<DesignPoint, Metrics>> results(grid.size());
    exec::parallelFor(grid.size(), [&](std::size_t i) {
        obs::ScopedTimer timer(hSweepCellNs);
        results[i] = {grid[i], fn(grid[i])};
        cSweepCells.add();
    });
    return results;
}

std::vector<std::pair<DesignPoint, Metrics>>
Sweep::runSequential(
    const std::function<Metrics(const DesignPoint&)>& fn) const
{
    cSweepRuns.add();
    std::vector<std::pair<DesignPoint, Metrics>> results;
    for (const auto& point : points()) {
        obs::ScopedTimer timer(hSweepCellNs);
        results.push_back({point, fn(point)});
        cSweepCells.add();
    }
    return results;
}

TextTable
Sweep::tabulate(const std::vector<std::pair<DesignPoint, Metrics>>& results)
{
    HETARCH_ASSERT(!results.empty(), "no sweep results to tabulate");
    std::vector<std::string> headers;
    for (const auto& [name, _] : results.front().first)
        headers.push_back(name);
    for (const auto& [name, _] : results.front().second)
        headers.push_back(name);

    TextTable t(headers);
    for (const auto& [point, metrics] : results) {
        std::vector<std::string> row;
        for (const auto& [_, value] : point)
            row.push_back(formatSci(value, 4));
        for (const auto& [_, value] : metrics)
            row.push_back(formatSci(value, 4));
        t.addRow(row);
    }
    return t;
}

DesignPoint
Sweep::argmin(const std::vector<std::pair<DesignPoint, Metrics>>& results,
              const std::string& metric)
{
    HETARCH_ASSERT(!results.empty(), "no sweep results");
    const DesignPoint* best_point = nullptr;
    double best = 0.0;
    for (const auto& [point, metrics] : results) {
        for (const auto& [name, value] : metrics) {
            if (name != metric)
                continue;
            if (!best_point || value < best) {
                best_point = &point;
                best = value;
            }
        }
    }
    if (!best_point)
        HETARCH_FATAL("metric '", metric, "' not found in sweep results");
    return *best_point;
}

} // namespace dse
} // namespace hetarch
