#include "dse/builder_registry.hh"

#include "distill/dejmps.hh"
#include "qec/css_circuit.hh"
#include "qec/css_code.hh"
#include "qec/noise_model.hh"
#include "qec/surface_circuit.hh"
#include "uec/assignment.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace dse {

namespace {

stab::Circuit
makeUecSteane()
{
    const auto code = qec::makeSteane();
    return uec::uecMemoryZ(code, uec::roundRobinAssignment(code), 2,
                           uec::UecNoise{});
}

stab::Circuit
makeUecChainedSteane()
{
    const auto code = qec::makeSteane();
    uec::UecChain chain;
    chain.numUscExt = 1;
    return uec::uecChainedMemoryZ(
        code, uec::roundRobinAssignment(code, chain.numRegisters()),
        chain, 2, uec::UecNoise{});
}

} // namespace

const std::vector<CircuitBuilder>&
builderRegistry()
{
    static const std::vector<CircuitBuilder> builders = {
        {"surface-d3",
         [] { return qec::surfaceMemoryZ(3, 3, qec::CircuitNoise{}); }},
        {"surface-d5",
         [] { return qec::surfaceMemoryZ(5, 5, qec::CircuitNoise{}); }},
        {"surface-d7",
         [] { return qec::surfaceMemoryZ(7, 7, qec::CircuitNoise{}); }},
        {"surface-x-d3",
         [] {
             return qec::surfaceMemory(3, 3, qec::CircuitNoise{},
                                       qec::MemoryBasis::X);
         }},
        {"css-rep3",
         [] {
             return qec::codeCapacityMemoryZ(qec::makeRepetition(3), 2,
                                             0.01, 0.01);
         }},
        {"css-steane",
         [] {
             return qec::codeCapacityMemoryZ(qec::makeSteane(), 2, 0.01,
                                             0.01);
         }},
        {"uec-steane", makeUecSteane},
        {"uec-chained-steane", makeUecChainedSteane},
        {"lattice-steane",
         [] {
             const auto code = qec::makeSteane();
             return uec::latticeMemoryZ(code, uec::embedOnLattice(code),
                                        2, uec::LatticeNoise{});
         }},
        {"dejmps", [] { return distill::dejmpsCircuit(); }},
    };
    return builders;
}

const CircuitBuilder*
findBuilder(const std::string& name)
{
    for (const auto& b : builderRegistry())
        if (name == b.name)
            return &b;
    return nullptr;
}

} // namespace dse
} // namespace hetarch
