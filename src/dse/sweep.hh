/**
 * @file
 * Generic parameter-sweep engine for heterogeneous design-space
 * exploration.
 *
 * A Sweep is a cartesian grid over named numeric parameters; each grid
 * point is passed to an evaluation function returning one or more
 * named metrics.  Results land in a TextTable (printable or CSV) and
 * can be queried for the optimum of a metric.  All paper experiments
 * are expressible this way; dse/experiments.cc uses purpose-built
 * loops where row formats must match the paper exactly.
 */

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/table.hh"

namespace hetarch {
namespace dse {

/** One point of the design space: parameter name -> value. */
using DesignPoint = std::map<std::string, double>;

/** Metrics produced by evaluating a design point. */
using Metrics = std::vector<std::pair<std::string, double>>;

/** Cartesian-grid sweep definition. */
class Sweep
{
  public:
    /** Add a swept parameter with its grid values. */
    Sweep& parameter(const std::string& name,
                     std::vector<double> values);

    /** Number of grid points. */
    std::size_t size() const;

    /**
     * Evaluate @p fn at every grid point on the exec engine; returns
     * all results in lexicographic grid order (first parameter
     * slowest), regardless of evaluation order or thread count.
     *
     * @p fn must be safe to call concurrently for distinct points (all
     * HetArch experiment entry points are).  Use runSequential for
     * evaluation functions with shared mutable state.
     */
    std::vector<std::pair<DesignPoint, Metrics>>
    run(const std::function<Metrics(const DesignPoint&)>& fn) const;

    /** run(), but strictly one point at a time on the calling thread. */
    std::vector<std::pair<DesignPoint, Metrics>>
    runSequential(const std::function<Metrics(const DesignPoint&)>& fn) const;

    /** All grid points in lexicographic order (first parameter slowest). */
    std::vector<DesignPoint> points() const;

    /** Render results as a table (parameters, then metrics). */
    static TextTable tabulate(
        const std::vector<std::pair<DesignPoint, Metrics>>& results);

    /**
     * Grid point minimizing the named metric; fatal when the metric is
     * absent or there are no results.
     */
    static DesignPoint argmin(
        const std::vector<std::pair<DesignPoint, Metrics>>& results,
        const std::string& metric);

  private:
    std::vector<std::pair<std::string, std::vector<double>>> params;
};

} // namespace dse
} // namespace hetarch
