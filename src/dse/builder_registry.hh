/**
 * @file
 * Named registry of the repo's circuit builders (surface / CSS / UEC /
 * distillation generators), shared by every tool that accepts a
 * "builder:<name>" unit instead of a .circ file — hetarch-lint's
 * --builders sweep and the job service's analysis jobs resolve names
 * through this one table, so the two surfaces can never drift apart.
 */

#pragma once

#include <string>
#include <vector>

#include "stab/circuit.hh"

namespace hetarch {
namespace dse {

/** One named generator from the repo's circuit-builder surface. */
struct CircuitBuilder
{
    const char* name;
    stab::Circuit (*make)();
};

/** All known builders, in registry order (stable across calls). */
const std::vector<CircuitBuilder>& builderRegistry();

/** Builder by name, or nullptr when unknown. */
const CircuitBuilder* findBuilder(const std::string& name);

} // namespace dse
} // namespace hetarch
