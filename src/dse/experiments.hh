/**
 * @file
 * Design-space-exploration experiment runners: one function per table
 * or figure of the paper's evaluation (Section 4).  The benchmark
 * harnesses print these; the examples and tests reuse them at reduced
 * shot counts.
 *
 * Every function returns a TextTable whose rows mirror the data series
 * of the corresponding paper artifact.
 */

#pragma once

#include <cstdint>

#include "core/table.hh"

namespace hetarch {
namespace dse {

/** Scaling knobs so tests can run the same experiments quickly. */
struct RunScale
{
    double shotScale = 1.0;  ///< multiplies Monte-Carlo shot counts
    std::uint64_t seed = 2026;
};

/** Table 1: the superconducting device catalog. */
TextTable table1Devices();

/** Table 2: standard cells, DRC status, and characterized operations. */
TextTable table2Cells();

/**
 * Schedule-aware architecture ranking: surface-code memory circuits
 * (d = 3, 5, 7) costed on each Table 1 compute device by the static
 * schedule analyzer — certified critical-path latency, idle time,
 * idle-decoherence bound, and the combined burden score — with no
 * Monte-Carlo sampling at all (dse::estimateScheduleBurden).
 */
TextTable scheduleBurdenTable();

/**
 * Dataflow-aware architecture ranking: every registry builder costed
 * on the homogeneous transmon assignment by the static dataflow
 * analyzer (swaps, peak storage occupancy, certified end-to-end error
 * budget; dse::estimateFlowPressure), followed by a heterogeneous
 * comparison of a parked repetition cell against each Table 1 storage
 * device.  Like scheduleBurdenTable, no Monte-Carlo sampling at all.
 */
TextTable flowPressureTable();

/**
 * Fig. 3: best output-register EP infidelity over 100 us, heterogeneous
 * (Ts = 12.5 ms) vs homogeneous (Ts = Tc = 0.5 ms).
 */
TextTable fig3DistillationTrace(const RunScale& scale = {});

/**
 * Fig. 4: distilled-EP rate (F >= 0.995, pairs/ms) vs EP generation
 * rate for Ts in {0.5, 1, 2.5, 5} ms plus the homogeneous baseline.
 */
TextTable fig4DistillationRate(const RunScale& scale = {});

/**
 * Fig. 6: d = 13 surface-code logical error per cycle vs the factor
 * alpha scaling either the data or the ancilla coherence (base 0.1 ms).
 */
TextTable fig6SurfaceAlpha(const RunScale& scale = {});

/**
 * Fig. 7: surface-code logical error per cycle for d in {5..18} as a
 * function of the ratio T_CD / T_CA.
 */
TextTable fig7SurfaceRatio(const RunScale& scale = {});

/**
 * Fig. 9: logical error rate of the five paper codes on the UEC module
 * vs storage coherence Ts in [0.5, 50] ms.
 */
TextTable fig9UecTsSweep(const RunScale& scale = {});

/**
 * Table 3: pseudothreshold, heterogeneous (Ts = 50 ms) and homogeneous
 * logical error rates, and the heterogeneous reduction factor.
 */
TextTable table3UecComparison(const RunScale& scale = {});

/**
 * Fig. 12: CT-state logical error probability vs Ts for the paper's
 * three code pairs at 1000 kHz EP generation.
 */
TextTable fig12CtTsSweep(const RunScale& scale = {});

/**
 * Table 4: CT logical error probabilities for all code pairs,
 * heterogeneous and homogeneous.
 */
TextTable table4CtMatrix(const RunScale& scale = {});

} // namespace dse
} // namespace hetarch
