#include "dse/burden.hh"

#include <algorithm>
#include <cmath>

#include "lint/dataflow.hh"
#include "lint/schedule.hh"
#include "qec/decoder_cache.hh"

namespace hetarch {
namespace dse {

namespace {

void
accumulate(const module::Module& mod, BurdenEstimate& est)
{
    for (const auto& cell : mod.cellList()) {
        const auto q = static_cast<std::size_t>(cell.qubitCapacity());
        est.totalQubits += q;
        est.largestCellQubits = std::max(est.largestCellQubits, q);
        est.hierarchicalCostFlops += std::pow(8.0, static_cast<double>(q));
    }
    for (const auto& sub : mod.subModules())
        accumulate(sub, est);
}

} // namespace

BurdenEstimate
estimateBurden(const module::Module& mod)
{
    BurdenEstimate est;
    accumulate(mod, est);
    est.jointCostFlops =
        std::pow(8.0, static_cast<double>(est.totalQubits));
    return est;
}

ScheduleBurden
estimateScheduleBurden(const stab::Circuit& circuit,
                       const lint::sched::TimingModel& model)
{
    // Both layers are memoized: sweeps re-cost the same circuit under
    // many timing assignments, sharing one fault analysis, and re-cost
    // the same (circuit, model) pair across repetitions for free.
    const auto faults =
        qec::DecoderCache::instance().faultAnalysis(circuit);
    lint::sched::SchedOptions options;
    options.faults = faults.get();
    const auto analysis =
        lint::sched::ScheduleCache::instance().analysis(circuit, model,
                                                        options);
    ScheduleBurden out;
    out.criticalPathNs = analysis->criticalPathNs;
    out.totalIdleNs = analysis->totalIdleNs;
    out.idleBound = analysis->certifiedIdleBound();
    out.hazardErrors = analysis->hazardErrors();
    return out;
}

FlowPressure
estimateFlowPressure(const stab::Circuit& circuit,
                     const lint::sched::TimingModel& model)
{
    // Same two-layer memoization as estimateScheduleBurden: sweeps
    // share one fault analysis per circuit and one flow analysis per
    // (circuit, model, options) triple.
    const auto faults =
        qec::DecoderCache::instance().faultAnalysis(circuit);
    lint::flow::FlowOptions options;
    options.faults = faults.get();
    options.gateBudget = true;
    const auto analysis =
        lint::flow::FlowCache::instance().analysis(circuit, model,
                                                   options);
    FlowPressure out;
    out.swaps = analysis->swapCount;
    out.movementNs = analysis->movementNs;
    out.peakStorage = analysis->peakStorageOccupancy;
    out.storageQubitNs = analysis->storageQubitNs;
    out.hazardErrors = analysis->hazardErrors();
    out.budget = analysis->maxBudget();
    return out;
}

} // namespace dse
} // namespace hetarch
