#include "dse/burden.hh"

#include <algorithm>
#include <cmath>

namespace hetarch {
namespace dse {

namespace {

void
accumulate(const module::Module& mod, BurdenEstimate& est)
{
    for (const auto& cell : mod.cellList()) {
        const auto q = static_cast<std::size_t>(cell.qubitCapacity());
        est.totalQubits += q;
        est.largestCellQubits = std::max(est.largestCellQubits, q);
        est.hierarchicalCostFlops += std::pow(8.0, static_cast<double>(q));
    }
    for (const auto& sub : mod.subModules())
        accumulate(sub, est);
}

} // namespace

BurdenEstimate
estimateBurden(const module::Module& mod)
{
    BurdenEstimate est;
    accumulate(mod, est);
    est.jointCostFlops =
        std::pow(8.0, static_cast<double>(est.totalQubits));
    return est;
}

} // namespace dse
} // namespace hetarch
