/**
 * @file
 * Simulation-burden accounting for the hierarchical methodology.
 *
 * The paper claims the hierarchical cell/module decomposition reduces
 * the simulation burden by a factor of 10^4 or more.  These helpers
 * make that claim quantitative for a given module: joint density-
 * matrix simulation of n qubits costs O(4^n) state and O(8^n) work per
 * operation, whereas hierarchical characterization only ever simulates
 * each cell's few qubits exactly and composes the rest analytically.
 */

#pragma once

#include <cstddef>

#include "lint/timing_model.hh"
#include "module/module.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace dse {

/** Cost summary for simulating a module. */
struct BurdenEstimate
{
    std::size_t totalQubits = 0;      ///< qubits in the whole module
    std::size_t largestCellQubits = 0; ///< qubits in the biggest cell
    double jointCostFlops = 0.0;      ///< one joint density-matrix op
    double hierarchicalCostFlops = 0.0; ///< sum of per-cell op costs
    /** jointCost / hierarchicalCost. */
    double reductionFactor() const
    {
        return hierarchicalCostFlops > 0.0
                   ? jointCostFlops / hierarchicalCostFlops
                   : 0.0;
    }
};

/**
 * Estimate the cost of characterizing @p mod jointly vs hierarchically
 * (one density-matrix operation each; 8^n flops per n-qubit op).
 */
BurdenEstimate estimateBurden(const module::Module& mod);

/**
 * Schedule-aware burden of one circuit on one timing assignment: the
 * static analyzer's certified latency and idle-decoherence budget
 * (lint/schedule.hh), fed by the cached fault structure so the bound
 * is evaluated at k = ceil(distance / 2) per observable.  This is the
 * term that lets design-space sweeps rank architectures by certified
 * time cost without simulating a single shot.
 */
struct ScheduleBurden
{
    double criticalPathNs = 0.0; ///< makespan of the ASAP schedule
    double totalIdleNs = 0.0;    ///< decohering wait time, summed
    double idleBound = 0.0;      ///< worst certified idle bound
    std::size_t hazardErrors = 0; ///< schedule defects (0 = runnable)

    /**
     * Rank key: latency inflated by the idle-decoherence budget.  A
     * hazardous schedule cannot run at all, so it sorts last.
     */
    double score() const
    {
        if (hazardErrors > 0)
            return 1e300;
        return criticalPathNs * (1.0 + idleBound);
    }
};

/**
 * Analyze @p circuit under @p model (memoized via ScheduleCache and
 * qec::DecoderCache; the circuit must have deterministic detectors).
 */
ScheduleBurden estimateScheduleBurden(const stab::Circuit& circuit,
                                      const lint::sched::TimingModel& model);

} // namespace dse
} // namespace hetarch
