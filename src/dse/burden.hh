/**
 * @file
 * Simulation-burden accounting for the hierarchical methodology.
 *
 * The paper claims the hierarchical cell/module decomposition reduces
 * the simulation burden by a factor of 10^4 or more.  These helpers
 * make that claim quantitative for a given module: joint density-
 * matrix simulation of n qubits costs O(4^n) state and O(8^n) work per
 * operation, whereas hierarchical characterization only ever simulates
 * each cell's few qubits exactly and composes the rest analytically.
 */

#pragma once

#include <cstddef>

#include "lint/timing_model.hh"
#include "module/module.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace dse {

/** Cost summary for simulating a module. */
struct BurdenEstimate
{
    std::size_t totalQubits = 0;      ///< qubits in the whole module
    std::size_t largestCellQubits = 0; ///< qubits in the biggest cell
    double jointCostFlops = 0.0;      ///< one joint density-matrix op
    double hierarchicalCostFlops = 0.0; ///< sum of per-cell op costs
    /** jointCost / hierarchicalCost. */
    double reductionFactor() const
    {
        return hierarchicalCostFlops > 0.0
                   ? jointCostFlops / hierarchicalCostFlops
                   : 0.0;
    }
};

/**
 * Estimate the cost of characterizing @p mod jointly vs hierarchically
 * (one density-matrix operation each; 8^n flops per n-qubit op).
 */
BurdenEstimate estimateBurden(const module::Module& mod);

/**
 * Schedule-aware burden of one circuit on one timing assignment: the
 * static analyzer's certified latency and idle-decoherence budget
 * (lint/schedule.hh), fed by the cached fault structure so the bound
 * is evaluated at k = ceil(distance / 2) per observable.  This is the
 * term that lets design-space sweeps rank architectures by certified
 * time cost without simulating a single shot.
 */
struct ScheduleBurden
{
    double criticalPathNs = 0.0; ///< makespan of the ASAP schedule
    double totalIdleNs = 0.0;    ///< decohering wait time, summed
    double idleBound = 0.0;      ///< worst certified idle bound
    std::size_t hazardErrors = 0; ///< schedule defects (0 = runnable)

    /**
     * Rank key: latency inflated by the idle-decoherence budget.  A
     * hazardous schedule cannot run at all, so it sorts last.
     */
    double score() const
    {
        if (hazardErrors > 0)
            return 1e300;
        return criticalPathNs * (1.0 + idleBound);
    }
};

/**
 * Analyze @p circuit under @p model (memoized via ScheduleCache and
 * qec::DecoderCache; the circuit must have deterministic detectors).
 */
ScheduleBurden estimateScheduleBurden(const stab::Circuit& circuit,
                                      const lint::sched::TimingModel& model);

/**
 * Dataflow-aware pressure of one circuit on one timing assignment: the
 * qubit-movement analyzer's residency/occupancy summary plus the
 * certified end-to-end error budget (lint/dataflow.hh) — the gate
 * union bound at k = ceil(distance / 2) composed with the live idle
 * decoherence actually incurred by the ASAP schedule.  Where
 * ScheduleBurden ranks by time, FlowPressure ranks by storage traffic
 * and by the certified budget the movement costs.
 */
struct FlowPressure
{
    std::size_t swaps = 0;        ///< compute<->storage exchanges
    double movementNs = 0.0;      ///< total time spent in SWAPs
    std::size_t peakStorage = 0;  ///< max concurrently parked states
    double storageQubitNs = 0.0;  ///< integral of parked states over time
    std::size_t hazardErrors = 0; ///< dataflow defects (0 = runnable)
    double budget = 0.0;          ///< worst certified observable budget

    /**
     * Rank key: the certified budget, with hazardous dataflow sorting
     * last (a circuit that reads vacuum has no meaningful budget).
     */
    double score() const
    {
        if (hazardErrors > 0)
            return 1e300;
        return budget;
    }
};

/**
 * Analyze @p circuit under @p model (memoized via FlowCache and
 * qec::DecoderCache; the circuit must have deterministic detectors).
 */
FlowPressure estimateFlowPressure(const stab::Circuit& circuit,
                                  const lint::sched::TimingModel& model);

} // namespace dse
} // namespace hetarch
