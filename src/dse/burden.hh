/**
 * @file
 * Simulation-burden accounting for the hierarchical methodology.
 *
 * The paper claims the hierarchical cell/module decomposition reduces
 * the simulation burden by a factor of 10^4 or more.  These helpers
 * make that claim quantitative for a given module: joint density-
 * matrix simulation of n qubits costs O(4^n) state and O(8^n) work per
 * operation, whereas hierarchical characterization only ever simulates
 * each cell's few qubits exactly and composes the rest analytically.
 */

#pragma once

#include <cstddef>

#include "module/module.hh"

namespace hetarch {
namespace dse {

/** Cost summary for simulating a module. */
struct BurdenEstimate
{
    std::size_t totalQubits = 0;      ///< qubits in the whole module
    std::size_t largestCellQubits = 0; ///< qubits in the biggest cell
    double jointCostFlops = 0.0;      ///< one joint density-matrix op
    double hierarchicalCostFlops = 0.0; ///< sum of per-cell op costs
    /** jointCost / hierarchicalCost. */
    double reductionFactor() const
    {
        return hierarchicalCostFlops > 0.0
                   ? jointCostFlops / hierarchicalCostFlops
                   : 0.0;
    }
};

/**
 * Estimate the cost of characterizing @p mod jointly vs hierarchically
 * (one density-matrix operation each; 8^n flops per n-qubit op).
 */
BurdenEstimate estimateBurden(const module::Module& mod);

} // namespace dse
} // namespace hetarch
