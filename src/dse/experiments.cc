#include "dse/experiments.hh"

#include <algorithm>
#include <cmath>

#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "core/units.hh"
#include "devices/device.hh"
#include "distill/module_sim.hh"
#include "qec/css_code.hh"
#include "qec/memory_experiment.hh"
#include "teleport/code_teleport.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace dse {

using namespace units;

namespace {

std::size_t
scaled(double base, const RunScale& scale)
{
    return static_cast<std::size_t>(
        std::max(100.0, base * scale.shotScale));
}

} // namespace

TextTable
table1Devices()
{
    TextTable t({"device", "role", "T1(ms)", "T2(ms)", "gate", "error",
                 "conn", "modes", "ctrl", "area(mm^2)"});
    for (const auto& d : devices::table1Catalog()) {
        t.addRow({d.name,
                  d.role == devices::DeviceRole::Compute ? "compute"
                                                         : "storage",
                  formatFixed(units::toMs(d.t1), 1),
                  formatFixed(units::toMs(d.t2), 1),
                  formatFixed(d.gateTime2q, 0) + "ns",
                  formatSci(d.gateError, 2),
                  std::to_string(d.connectivity),
                  std::to_string(d.modes),
                  std::to_string(d.control.total()),
                  formatFixed(d.footprint.area(), 1)});
    }
    return t;
}

TextTable
table2Cells()
{
    TextTable t({"cell", "devices", "couplings", "readouts", "drc",
                 "op", "duration(ns)", "error"});
    const auto storage = devices::multimodeResonator3D();
    const auto compute = devices::fixedFrequencyTransmon();

    auto add_cell = [&](const cells::StandardCell& cell,
                        const cells::CellCharacterization& ch) {
        const bool clean =
            cells::checkDesignRules(cell, cell.readoutCount()).clean();
        bool first = true;
        for (const auto& op : ch.ops) {
            t.addRow({first ? cell.name() : "",
                      first ? std::to_string(cell.deviceList().size())
                            : "",
                      first ? std::to_string(cell.couplings().size())
                            : "",
                      first ? std::to_string(cell.readoutCount()) : "",
                      first ? (clean ? "pass" : "FAIL") : "", op.name,
                      formatFixed(op.duration, 0),
                      formatSci(op.errorRate, 3)});
            first = false;
        }
    };

    const auto reg = cells::makeRegister(storage, compute);
    add_cell(reg, cells::characterizeRegister(reg));
    const auto pc = cells::makeParCheck(compute);
    add_cell(pc, cells::characterizeParCheck(pc));
    const auto seqop = cells::makeSeqOp(storage, compute);
    add_cell(seqop, cells::characterizeSeqOp(seqop));
    const auto usc = cells::makeUsc(storage, compute);
    add_cell(usc, cells::characterizeUsc(usc));
    const auto usc_ext = cells::makeUscExt(storage, compute);
    add_cell(usc_ext, cells::characterizeUsc(usc_ext));
    return t;
}

TextTable
fig3DistillationTrace(const RunScale& scale)
{
    TextTable t({"time(us)", "het_best_infidelity", "hom_best_infidelity"});

    auto run = [&](bool het) {
        distill::DistillConfig cfg;
        cfg.heterogeneous = het;
        cfg.ts = het ? 12.5 * ms : cfg.tc;
        cfg.epRate = 1.0 * MHz;
        cfg.epInfidelity = 0.05;
        cfg.seed = scale.seed;
        return distill::simulateDistillation(cfg, 100.0 * us,
                                             2.0 * us);
    };
    const auto het = run(true);
    const auto hom = run(false);

    // Resample both traces on a common 2 us grid.
    auto value_at = [](const distill::DistillResult& res, double t) {
        double best = 1.0;
        for (const auto& p : res.trace) {
            if (p.time <= t)
                best = p.bestInfidelity;
            else
                break;
        }
        return best;
    };
    for (double time = 0.0; time <= 100.0 * us; time += 2.0 * us) {
        t.addRow({formatFixed(units::toUs(time), 0),
                  formatFixed(value_at(het, time), 5),
                  formatFixed(value_at(hom, time), 5)});
    }
    return t;
}

TextTable
fig4DistillationRate(const RunScale& scale)
{
    TextTable t({"gen_rate(kHz)", "Ts(ms)", "arch", "distilled_per_ms"});
    const std::vector<double> rates_khz = {100,  200,  500,  1000,
                                           2000, 5000, 10000};
    const std::vector<double> ts_ms = {0.5, 1.0, 2.5, 5.0};

    for (double rate : rates_khz) {
        for (double ts : ts_ms) {
            distill::DistillConfig cfg;
            cfg.ts = ts * ms;
            cfg.epRate = rate * kHz;
            cfg.epInfidelity = 0.03;
            cfg.seed = scale.seed;
            const auto res = distill::simulateDistillation(
                cfg, scale.shotScale * 5.0 * ms);
            t.addRow({formatFixed(rate, 0), formatFixed(ts, 1), "het",
                      formatFixed(res.distilledRatePerMs(), 2)});
        }
        distill::DistillConfig hom;
        hom.heterogeneous = false;
        hom.ts = hom.tc;
        hom.epRate = rate * kHz;
        hom.epInfidelity = 0.03;
        hom.seed = scale.seed;
        const auto res =
            distill::simulateDistillation(hom, scale.shotScale * 5.0 * ms);
        t.addRow({formatFixed(rate, 0), formatFixed(0.5, 1), "hom",
                  formatFixed(res.distilledRatePerMs(), 2)});
    }
    return t;
}

TextTable
fig6SurfaceAlpha(const RunScale& scale)
{
    TextTable t({"alpha", "series", "logical_error_per_cycle"});
    const std::size_t d = 13;
    const double base = 0.1 * ms;
    const std::vector<double> alphas = {1, 2, 3, 4, 5, 6, 8};
    const auto shots = scaled(2000, scale);

    for (double alpha : alphas) {
        qec::CircuitNoise noise;
        noise.p2 = 1e-2;
        noise.p1 = 1e-3;
        noise.dataT1 = noise.dataT2 = base * alpha;
        noise.ancT1 = noise.ancT2 = base;
        const double p_data = qec::surfaceLogicalErrorPerRound(
            d, d, noise, shots, scale.seed + static_cast<int>(alpha));
        t.addRow({formatFixed(alpha, 0), "Tcd=alpha*100us",
                  formatSci(p_data, 3)});

        noise.dataT1 = noise.dataT2 = base;
        noise.ancT1 = noise.ancT2 = base * alpha;
        const double p_anc = qec::surfaceLogicalErrorPerRound(
            d, d, noise, shots,
            scale.seed + 100 + static_cast<int>(alpha));
        t.addRow({formatFixed(alpha, 0), "Tca=alpha*100us",
                  formatSci(p_anc, 3)});
    }
    return t;
}

TextTable
fig7SurfaceRatio(const RunScale& scale)
{
    TextTable t({"distance", "Tcd/Tca", "logical_error_per_cycle"});
    const double base = 0.1 * ms;
    const std::vector<std::size_t> distances = {5, 7, 9, 11, 13, 15, 18};
    const std::vector<double> ratios = {1, 2, 3, 5, 8};
    const auto shots = scaled(1000, scale);

    for (std::size_t d : distances) {
        for (double ratio : ratios) {
            qec::CircuitNoise noise;
            noise.p2 = 1e-2;
            noise.p1 = 1e-3;
            noise.dataT1 = noise.dataT2 = base * ratio;
            noise.ancT1 = noise.ancT2 = base;
            const double p = qec::surfaceLogicalErrorPerRound(
                d, d, noise, shots,
                scale.seed + d * 10 + static_cast<std::size_t>(ratio));
            t.addRow({std::to_string(d), formatFixed(ratio, 0),
                      formatSci(p, 3)});
        }
    }
    return t;
}

TextTable
fig9UecTsSweep(const RunScale& scale)
{
    TextTable t({"code", "Ts(ms)", "logical_error_per_round"});
    const std::vector<double> ts_ms = {0.5, 1, 2, 5, 10, 20, 50};
    const auto shots = scaled(3000, scale);

    for (const auto& code : qec::paperCodeZoo()) {
        for (double ts : ts_ms) {
            const double p = uec::uecLogicalErrorPerRound(
                code, ts * ms, 3, shots,
                scale.seed + static_cast<std::uint64_t>(ts * 7));
            t.addRow({code.name, formatFixed(ts, 1), formatSci(p, 3)});
        }
    }
    return t;
}

TextTable
table3UecComparison(const RunScale& scale)
{
    TextTable t({"code", "pseudothreshold", "het(Ts=50ms)", "hom",
                 "reduction"});
    const auto shots = scaled(4000, scale);
    for (const auto& code : qec::paperCodeZoo()) {
        const double pt =
            uec::pseudothreshold(code, scaled(3000, scale), scale.seed);
        const double het = uec::uecLogicalErrorPerRound(
            code, 50.0 * ms, 3, shots, scale.seed + 1);
        const double hom = uec::homogeneousLogicalErrorPerRound(
            code, 3, shots, scale.seed + 2);
        t.addRow({code.name,
                  pt > 0 ? formatFixed(pt, 4) : "-",
                  formatFixed(het, 4), formatFixed(hom, 4),
                  het > 0 ? formatFixed(hom / het, 2) + "x" : "-"});
    }
    return t;
}

TextTable
fig12CtTsSweep(const RunScale& scale)
{
    TextTable t({"pair", "Ts(ms)", "ct_error_probability"});
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto sc4 = qec::makeRotatedSurface(4);
    const auto rm = qec::makeReedMuller15();
    const auto cc = qec::makeColorCode(5);

    const std::vector<std::pair<std::string,
                                std::pair<qec::CssCode, qec::CssCode>>>
        pairs = {{"SC3&RM", {sc3, rm}},
                 {"SC3&SC4", {sc3, sc4}},
                 {"17QCC&SC4", {cc, sc4}}};
    const std::vector<double> ts_ms = {1, 2, 5, 10, 20, 35, 50};

    for (const auto& [name, codes] : pairs) {
        for (double ts : ts_ms) {
            teleport::CtConfig cfg;
            cfg.ts = ts * ms;
            cfg.shots = scaled(2000, scale);
            cfg.seed = scale.seed + static_cast<std::uint64_t>(ts);
            const auto res = teleport::prepareCtState(
                codes.first, codes.second, cfg);
            t.addRow({name, formatFixed(ts, 1),
                      formatFixed(res.errorProbability, 3)});
        }
    }
    return t;
}

TextTable
table4CtMatrix(const RunScale& scale)
{
    TextTable t({"codeA", "codeB", "het", "hom", "reduction"});
    const auto zoo = qec::paperCodeZoo();
    const std::vector<std::string> names = {"RM", "17QCC", "ST", "SC3",
                                            "SC4"};
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        for (std::size_t j = i + 1; j < zoo.size(); ++j) {
            teleport::CtConfig cfg;
            cfg.shots = scaled(2000, scale);
            cfg.seed = scale.seed + i * 31 + j;
            cfg.heterogeneous = true;
            const auto het = teleport::prepareCtState(zoo[i], zoo[j], cfg);
            cfg.heterogeneous = false;
            const auto hom = teleport::prepareCtState(zoo[i], zoo[j], cfg);
            t.addRow({names[i], names[j],
                      formatFixed(het.errorProbability, 3),
                      formatFixed(hom.errorProbability, 3),
                      het.errorProbability > 0
                          ? formatFixed(hom.errorProbability /
                                            het.errorProbability,
                                        2) +
                                "x"
                          : "-"});
        }
    }
    return t;
}

} // namespace dse
} // namespace hetarch
