#include "dse/experiments.hh"

#include <algorithm>
#include <cmath>

#include "cells/characterize.hh"
#include "cells/design_rules.hh"
#include "cells/standard_cells.hh"
#include "core/units.hh"
#include "devices/device.hh"
#include "distill/module_sim.hh"
#include "dse/builder_registry.hh"
#include "dse/burden.hh"
#include "exec/thread_pool.hh"
#include "qec/css_code.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"
#include "teleport/code_teleport.hh"
#include "uec/experiment.hh"

namespace hetarch {
namespace dse {

using namespace units;

namespace {

std::size_t
scaled(double base, const RunScale& scale)
{
    return static_cast<std::size_t>(
        std::max(100.0, base * scale.shotScale));
}

} // namespace

TextTable
table1Devices()
{
    TextTable t({"device", "role", "T1(ms)", "T2(ms)", "gate", "error",
                 "conn", "modes", "ctrl", "area(mm^2)"});
    for (const auto& d : devices::table1Catalog()) {
        t.addRow({d.name,
                  d.role == devices::DeviceRole::Compute ? "compute"
                                                         : "storage",
                  formatFixed(units::toMs(d.t1), 1),
                  formatFixed(units::toMs(d.t2), 1),
                  formatFixed(d.gateTime2q, 0) + "ns",
                  formatSci(d.gateError, 2),
                  std::to_string(d.connectivity),
                  std::to_string(d.modes),
                  std::to_string(d.control.total()),
                  formatFixed(d.footprint.area(), 1)});
    }
    return t;
}

TextTable
table2Cells()
{
    TextTable t({"cell", "devices", "couplings", "readouts", "drc",
                 "op", "duration(ns)", "error"});
    const auto storage = devices::multimodeResonator3D();
    const auto compute = devices::fixedFrequencyTransmon();

    auto add_cell = [&](const cells::StandardCell& cell,
                        const cells::CellCharacterization& ch) {
        const bool clean =
            cells::checkDesignRules(cell, cell.readoutCount()).clean();
        bool first = true;
        for (const auto& op : ch.ops) {
            t.addRow({first ? cell.name() : "",
                      first ? std::to_string(cell.deviceList().size())
                            : "",
                      first ? std::to_string(cell.couplings().size())
                            : "",
                      first ? std::to_string(cell.readoutCount()) : "",
                      first ? (clean ? "pass" : "FAIL") : "", op.name,
                      formatFixed(op.duration, 0),
                      formatSci(op.errorRate, 3)});
            first = false;
        }
    };

    const auto reg = cells::makeRegister(storage, compute);
    add_cell(reg, cells::characterizeRegister(reg));
    const auto pc = cells::makeParCheck(compute);
    add_cell(pc, cells::characterizeParCheck(pc));
    const auto seqop = cells::makeSeqOp(storage, compute);
    add_cell(seqop, cells::characterizeSeqOp(seqop));
    const auto usc = cells::makeUsc(storage, compute);
    add_cell(usc, cells::characterizeUsc(usc));
    const auto usc_ext = cells::makeUscExt(storage, compute);
    add_cell(usc_ext, cells::characterizeUsc(usc_ext));
    return t;
}

TextTable
scheduleBurdenTable()
{
    TextTable t({"circuit", "device", "latency(us)", "idle(us)",
                 "idle-bound", "hazards", "score(us)"});
    const std::vector<devices::DeviceModel> archs = {
        devices::fixedFrequencyTransmon(), devices::fluxTunableQubit()};
    for (const std::size_t d : {3u, 5u, 7u}) {
        const auto circ =
            qec::surfaceMemoryZ(d, d, qec::CircuitNoise{});
        for (const auto& dev : archs) {
            const auto model = lint::sched::TimingModel::uniform(
                dev, circ.numQubits());
            const auto burden = estimateScheduleBurden(circ, model);
            t.addRow({"surface-d" + std::to_string(d), dev.name,
                      formatFixed(units::toUs(burden.criticalPathNs), 1),
                      formatFixed(units::toUs(burden.totalIdleNs), 1),
                      formatSci(burden.idleBound, 3),
                      std::to_string(burden.hazardErrors),
                      formatFixed(units::toUs(burden.score()), 1)});
        }
    }
    return t;
}

namespace {

/**
 * Distance-3 repetition memory whose data qubit 0 is parked on a
 * storage mode (qubit 5) across the inter-round gap — the programmatic
 * twin of tests/lint/fixtures/flow/clean_cell.circ, used to compare
 * storage devices on identical traffic.
 */
stab::Circuit
parkedRepetitionCell()
{
    stab::Circuit c;
    c.reset(3);
    c.reset(4);
    for (std::uint32_t q : {0u, 1u, 2u})
        c.xError(q, 0.01);
    c.cx(0, 3);
    c.cx(1, 3);
    c.cx(1, 4);
    c.cx(2, 4);
    c.swap(0, 5);
    const auto m3 = c.measureReset(3);
    const auto m4 = c.measureReset(4);
    c.detector({m3});
    c.detector({m4});
    c.xError(1, 0.01);
    c.xError(2, 0.01);
    c.swap(0, 5);
    const auto d0 = c.measure(0);
    const auto d1 = c.measure(1);
    const auto d2 = c.measure(2);
    c.detector({d0, d1, m3});
    c.detector({d1, d2, m4});
    c.observableInclude(0, {d2});
    return c;
}

} // namespace

TextTable
flowPressureTable()
{
    TextTable t({"circuit", "storage", "swaps", "movement(us)", "peak",
                 "storage(q*us)", "hazards", "budget"});
    const auto compute = devices::fixedFrequencyTransmon();

    auto add_row = [&](const std::string& name,
                       const std::string& storage,
                       const stab::Circuit& circ,
                       const lint::sched::TimingModel& model) {
        const auto p = estimateFlowPressure(circ, model);
        t.addRow({name, storage, std::to_string(p.swaps),
                  formatFixed(units::toUs(p.movementNs), 2),
                  std::to_string(p.peakStorage),
                  formatFixed(units::toUs(p.storageQubitNs), 2),
                  std::to_string(p.hazardErrors),
                  formatSci(p.budget, 3)});
    };

    // Registry builders on the homogeneous transmon assignment: zero
    // movement by construction, so the budget column is the pure
    // compute-side certified bound.
    for (const auto& b : builderRegistry()) {
        const auto circ = b.make();
        add_row(b.name, "-", circ,
                lint::sched::TimingModel::uniform(compute,
                                                  circ.numQubits()));
    }

    // Heterogeneous comparison: the same parked repetition cell costed
    // against each Table 1 storage device.  Identical traffic, so the
    // rows differ only in swap latency and storage-side decoherence.
    const auto cell = parkedRepetitionCell();
    const std::vector<devices::DeviceModel> storages = {
        devices::quantumMemory3D(), devices::multimodeResonator3D(),
        devices::onChipMultimodeResonator()};
    for (const auto& storage : storages) {
        add_row("parked-rep-d3", storage.name, cell,
                lint::sched::TimingModel::withStorage(
                    compute, storage, cell.numQubits(), {5}));
    }
    return t;
}

TextTable
fig3DistillationTrace(const RunScale& scale)
{
    TextTable t({"time(us)", "het_best_infidelity", "hom_best_infidelity"});

    auto run = [&](bool het) {
        distill::DistillConfig cfg;
        cfg.heterogeneous = het;
        cfg.ts = het ? 12.5 * ms : cfg.tc;
        cfg.epRate = 1.0 * MHz;
        cfg.epInfidelity = 0.05;
        cfg.seed = scale.seed;
        return distill::simulateDistillation(cfg, 100.0 * us,
                                             2.0 * us);
    };
    distill::DistillResult het, hom;
    exec::parallelInvoke({
        [&] { het = run(true); },
        [&] { hom = run(false); },
    });

    // Resample both traces on a common 2 us grid.
    auto value_at = [](const distill::DistillResult& res, double t) {
        double best = 1.0;
        for (const auto& p : res.trace) {
            if (p.time <= t)
                best = p.bestInfidelity;
            else
                break;
        }
        return best;
    };
    for (double time = 0.0; time <= 100.0 * us; time += 2.0 * us) {
        t.addRow({formatFixed(units::toUs(time), 0),
                  formatFixed(value_at(het, time), 5),
                  formatFixed(value_at(hom, time), 5)});
    }
    return t;
}

TextTable
fig4DistillationRate(const RunScale& scale)
{
    TextTable t({"gen_rate(kHz)", "Ts(ms)", "arch", "distilled_per_ms"});
    const std::vector<double> rates_khz = {100,  200,  500,  1000,
                                           2000, 5000, 10000};
    const std::vector<double> ts_ms = {0.5, 1.0, 2.5, 5.0};

    // Materialize the full grid, evaluate every configuration as a
    // small trajectory ensemble on the exec engine, then emit rows in
    // the original order.
    struct Point
    {
        double rate_khz;
        double ts_ms;
        bool het;
    };
    std::vector<Point> grid;
    for (double rate : rates_khz) {
        for (double ts : ts_ms)
            grid.push_back({rate, ts, true});
        grid.push_back({rate, 0.5, false});
    }

    constexpr std::size_t kTrajectories = 3;
    std::vector<double> rates(grid.size(), 0.0);
    exec::parallelFor(grid.size(), [&](std::size_t i) {
        distill::DistillConfig cfg;
        cfg.heterogeneous = grid[i].het;
        cfg.ts = grid[i].het ? grid[i].ts_ms * ms : cfg.tc;
        cfg.epRate = grid[i].rate_khz * kHz;
        cfg.epInfidelity = 0.03;
        cfg.seed = scale.seed;
        const auto ens = distill::simulateDistillationEnsemble(
            cfg, scale.shotScale * 5.0 * ms, kTrajectories);
        rates[i] = ens.meanDistilledRatePerMs();
    });

    for (std::size_t i = 0; i < grid.size(); ++i)
        t.addRow({formatFixed(grid[i].rate_khz, 0),
                  formatFixed(grid[i].ts_ms, 1),
                  grid[i].het ? "het" : "hom",
                  formatFixed(rates[i], 2)});
    return t;
}

TextTable
fig6SurfaceAlpha(const RunScale& scale)
{
    TextTable t({"alpha", "series", "logical_error_per_cycle"});
    const std::size_t d = 13;
    const double base = 0.1 * ms;
    const std::vector<double> alphas = {1, 2, 3, 4, 5, 6, 8};
    const auto shots = scaled(2000, scale);

    // Job 2k   = data-coherence series at alphas[k],
    // job 2k+1 = ancilla series; evaluated concurrently, emitted in
    // the original row order.
    std::vector<double> values(2 * alphas.size(), 0.0);
    exec::parallelFor(values.size(), [&](std::size_t i) {
        const double alpha = alphas[i / 2];
        const bool data_series = (i % 2) == 0;
        qec::CircuitNoise noise;
        noise.p2 = 1e-2;
        noise.p1 = 1e-3;
        noise.dataT1 = noise.dataT2 = data_series ? base * alpha : base;
        noise.ancT1 = noise.ancT2 = data_series ? base : base * alpha;
        const std::uint64_t seed = scale.seed +
                                   (data_series ? 0 : 100) +
                                   static_cast<int>(alpha);
        values[i] =
            qec::surfaceLogicalErrorPerRound(d, d, noise, shots, seed);
    });
    for (std::size_t i = 0; i < values.size(); ++i)
        t.addRow({formatFixed(alphas[i / 2], 0),
                  i % 2 == 0 ? "Tcd=alpha*100us" : "Tca=alpha*100us",
                  formatSci(values[i], 3)});
    return t;
}

TextTable
fig7SurfaceRatio(const RunScale& scale)
{
    TextTable t({"distance", "Tcd/Tca", "logical_error_per_cycle"});
    const double base = 0.1 * ms;
    const std::vector<std::size_t> distances = {5, 7, 9, 11, 13, 15, 18};
    const std::vector<double> ratios = {1, 2, 3, 5, 8};
    const auto shots = scaled(1000, scale);

    std::vector<double> values(distances.size() * ratios.size(), 0.0);
    exec::parallelFor(values.size(), [&](std::size_t i) {
        const std::size_t d = distances[i / ratios.size()];
        const double ratio = ratios[i % ratios.size()];
        qec::CircuitNoise noise;
        noise.p2 = 1e-2;
        noise.p1 = 1e-3;
        noise.dataT1 = noise.dataT2 = base * ratio;
        noise.ancT1 = noise.ancT2 = base;
        values[i] = qec::surfaceLogicalErrorPerRound(
            d, d, noise, shots,
            scale.seed + d * 10 + static_cast<std::size_t>(ratio));
    });
    for (std::size_t i = 0; i < values.size(); ++i)
        t.addRow({std::to_string(distances[i / ratios.size()]),
                  formatFixed(ratios[i % ratios.size()], 0),
                  formatSci(values[i], 3)});
    return t;
}

TextTable
fig9UecTsSweep(const RunScale& scale)
{
    TextTable t({"code", "Ts(ms)", "logical_error_per_round"});
    const std::vector<double> ts_ms = {0.5, 1, 2, 5, 10, 20, 50};
    const auto shots = scaled(3000, scale);

    const auto zoo = qec::paperCodeZoo();
    std::vector<double> values(zoo.size() * ts_ms.size(), 0.0);
    exec::parallelFor(values.size(), [&](std::size_t i) {
        const auto& code = zoo[i / ts_ms.size()];
        const double ts = ts_ms[i % ts_ms.size()];
        values[i] = uec::uecLogicalErrorPerRound(
            code, ts * ms, 3, shots,
            scale.seed + static_cast<std::uint64_t>(ts * 7));
    });
    for (std::size_t i = 0; i < values.size(); ++i)
        t.addRow({zoo[i / ts_ms.size()].name,
                  formatFixed(ts_ms[i % ts_ms.size()], 1),
                  formatSci(values[i], 3)});
    return t;
}

TextTable
table3UecComparison(const RunScale& scale)
{
    TextTable t({"code", "pseudothreshold", "het(Ts=50ms)", "hom",
                 "reduction"});
    const auto shots = scaled(4000, scale);
    const auto zoo = qec::paperCodeZoo();
    struct Row
    {
        double pt = 0.0, het = 0.0, hom = 0.0;
    };
    std::vector<Row> rows(zoo.size());
    exec::parallelFor(zoo.size(), [&](std::size_t i) {
        const auto& code = zoo[i];
        rows[i].pt =
            uec::pseudothreshold(code, scaled(3000, scale), scale.seed);
        rows[i].het = uec::uecLogicalErrorPerRound(
            code, 50.0 * ms, 3, shots, scale.seed + 1);
        rows[i].hom = uec::homogeneousLogicalErrorPerRound(
            code, 3, shots, scale.seed + 2);
    });
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        const auto& [pt, het, hom] = rows[i];
        t.addRow({zoo[i].name,
                  pt > 0 ? formatFixed(pt, 4) : "-",
                  formatFixed(het, 4), formatFixed(hom, 4),
                  het > 0 ? formatFixed(hom / het, 2) + "x" : "-"});
    }
    return t;
}

TextTable
fig12CtTsSweep(const RunScale& scale)
{
    TextTable t({"pair", "Ts(ms)", "ct_error_probability"});
    const auto sc3 = qec::makeRotatedSurface(3);
    const auto sc4 = qec::makeRotatedSurface(4);
    const auto rm = qec::makeReedMuller15();
    const auto cc = qec::makeColorCode(5);

    const std::vector<std::pair<std::string,
                                std::pair<qec::CssCode, qec::CssCode>>>
        pairs = {{"SC3&RM", {sc3, rm}},
                 {"SC3&SC4", {sc3, sc4}},
                 {"17QCC&SC4", {cc, sc4}}};
    const std::vector<double> ts_ms = {1, 2, 5, 10, 20, 35, 50};

    std::vector<double> values(pairs.size() * ts_ms.size(), 0.0);
    exec::parallelFor(values.size(), [&](std::size_t i) {
        const auto& codes = pairs[i / ts_ms.size()].second;
        const double ts = ts_ms[i % ts_ms.size()];
        teleport::CtConfig cfg;
        cfg.ts = ts * ms;
        cfg.shots = scaled(2000, scale);
        cfg.seed = scale.seed + static_cast<std::uint64_t>(ts);
        values[i] = teleport::prepareCtState(codes.first, codes.second,
                                             cfg)
                        .errorProbability;
    });
    for (std::size_t i = 0; i < values.size(); ++i)
        t.addRow({pairs[i / ts_ms.size()].first,
                  formatFixed(ts_ms[i % ts_ms.size()], 1),
                  formatFixed(values[i], 3)});
    return t;
}

TextTable
table4CtMatrix(const RunScale& scale)
{
    TextTable t({"codeA", "codeB", "het", "hom", "reduction"});
    const auto zoo = qec::paperCodeZoo();
    const std::vector<std::string> names = {"RM", "17QCC", "ST", "SC3",
                                            "SC4"};
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    for (std::size_t i = 0; i < zoo.size(); ++i)
        for (std::size_t j = i + 1; j < zoo.size(); ++j)
            cells.push_back({i, j});

    struct HetHom
    {
        double het = 0.0, hom = 0.0;
    };
    std::vector<HetHom> values(cells.size());
    exec::parallelFor(cells.size(), [&](std::size_t k) {
        const auto [i, j] = cells[k];
        teleport::CtConfig cfg;
        cfg.shots = scaled(2000, scale);
        cfg.seed = scale.seed + i * 31 + j;
        cfg.heterogeneous = true;
        values[k].het =
            teleport::prepareCtState(zoo[i], zoo[j], cfg).errorProbability;
        cfg.heterogeneous = false;
        values[k].hom =
            teleport::prepareCtState(zoo[i], zoo[j], cfg).errorProbability;
    });
    for (std::size_t k = 0; k < cells.size(); ++k) {
        const auto [i, j] = cells[k];
        const auto& [het, hom] = values[k];
        t.addRow({names[i], names[j], formatFixed(het, 3),
                  formatFixed(hom, 3),
                  het > 0 ? formatFixed(hom / het, 2) + "x" : "-"});
    }
    return t;
}

} // namespace dse
} // namespace hetarch
