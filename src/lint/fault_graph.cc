#include "lint/fault_graph.hh"

#include "core/logging.hh"

namespace hetarch {
namespace lint {

FaultGraph
FaultGraph::fromDem(const stab::DetectorErrorModel& dem)
{
    FaultGraph g;
    g.nDetectors = dem.numDetectors;
    g.inc.resize(g.numNodes());

    const auto boundary = g.boundaryNode();
    for (std::uint32_t i = 0; i < dem.mechanisms.size(); ++i) {
        const auto& m = dem.mechanisms[i];
        const auto ndet = m.detectors.size();
        if (ndet == 0) {
            // The DEM builder never emits no-op mechanisms, so a
            // detector-free mechanism must flip an observable.
            HETARCH_ASSERT(m.observables != 0,
                           "DEM mechanism flips nothing");
            g.undetectable.push_back(i);
            continue;
        }
        if (ndet > 2) {
            g.hyperedges.push_back(i);
            g.hyperObs |= m.observables;
            continue;
        }
        FaultEdge e;
        e.u = m.detectors[0];
        e.v = ndet == 2 ? m.detectors[1] : boundary;
        e.mechanism = i;
        e.observables = m.observables;
        e.probability = m.probability;
        const auto id = static_cast<std::uint32_t>(g.edgeList.size());
        g.inc[e.u].push_back(id);
        g.inc[e.v].push_back(id);
        g.edgeList.push_back(e);
    }

    const auto counts = dem.detectorFlipCounts();
    for (std::uint32_t d = 0; d < counts.size(); ++d)
        if (counts[d] == 0)
            g.dead.push_back(d);
    return g;
}

} // namespace lint
} // namespace hetarch
