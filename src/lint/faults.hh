/**
 * @file
 * Static fault-path analyzer (`hetarch::lint::faults`): certified
 * circuit fault distance, detector coverage, and union-bound error
 * budgets — all computed from the detector error model alone, before
 * a single Monte-Carlo shot is spent.
 *
 * Three analyses over the FaultGraph of a circuit's DEM:
 *
 *  distance   For every logical observable, the minimum number of
 *             error mechanisms whose combined firing flips the
 *             observable while flipping no detector.  Computed
 *             exactly over the graphlike mechanism subset: each
 *             observable-flipping edge is closed into an undetected
 *             cycle by a parity-aware BFS on the doubled graph, fanned
 *             out over source edges on the exec engine (bit-identical
 *             at any worker count).  The result carries a *certificate*
 *             — a concrete minimum-weight mechanism set, re-verified by
 *             XOR before it is reported.  When hyperedge mechanisms
 *             can also flip the observable the certified value is an
 *             upper bound on the true distance (graphlike flag false);
 *             the bound is tight whenever a graphlike fault set
 *             achieves the true distance, which holds for matching-
 *             decodable codes like the surface code.
 *
 *  coverage   Distance-1 holes (mechanisms flipping an observable with
 *             zero flipped detectors) and dead detectors (no mechanism
 *             can ever fire them).
 *
 *  budget     A weight-limited union bound on the logical error rate:
 *             failure under min-weight decoding requires at least
 *             ceil(distance / 2) mechanisms to fire, so
 *             P(fail) <= e_k(p_1..p_n), the elementary symmetric
 *             polynomial of the mechanism probabilities at
 *             k = ceil(distance / 2) (capped at 1).  Assumes mechanism
 *             independence (true by DEM construction) and is sound for
 *             any decoder that corrects every fault set of fewer than
 *             ceil(distance / 2) mechanisms.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/fault_graph.hh"
#include "lint/lint.hh"
#include "stab/circuit.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {

/** Distance value when no undetected fault path exists. */
inline constexpr std::size_t kInfiniteDistance =
    static_cast<std::size_t>(-1);

/** A concrete undetected logical fault set (the distance certificate). */
struct FaultPath
{
    /** Mechanism indices into the DEM, sorted ascending; empty when no
        path exists.  The weight of the path is mechanisms.size(). */
    std::vector<std::uint32_t> mechanisms;

    bool exists() const { return !mechanisms.empty(); }

    bool operator==(const FaultPath& o) const
    {
        return mechanisms == o.mechanisms;
    }
};

/** Everything the analyzer certifies about one logical observable. */
struct ObservableFaults
{
    std::uint32_t observable = 0;
    /** Certified fault distance (kInfiniteDistance if no path). */
    std::size_t distance = kInfiniteDistance;
    /** Minimum-weight undetected fault set achieving `distance`. */
    FaultPath certificate;
    /**
     * True when no excluded hyperedge mechanism flips this observable,
     * i.e. the certified distance is exact, not just an upper bound.
     */
    bool graphlike = true;
    /** Union bound on the logical error rate (see file comment). */
    double unionBound = 0.0;
    /** The weight k the union bound was evaluated at (0 if skipped). */
    std::size_t unionBoundWeight = 0;

    bool operator==(const ObservableFaults& o) const
    {
        return observable == o.observable && distance == o.distance &&
               certificate == o.certificate && graphlike == o.graphlike &&
               unionBound == o.unionBound &&
               unionBoundWeight == o.unionBoundWeight;
    }
};

/** Full analyzer output for one circuit / DEM. */
struct FaultAnalysis
{
    std::size_t numDetectors = 0;
    std::size_t numMechanisms = 0;
    /** Mechanisms excluded from the fault graph (> 2 detectors). */
    std::size_t numHyperedges = 0;
    /** One entry per observable, ascending by observable id. */
    std::vector<ObservableFaults> observables;
    /** Detectors no mechanism can flip (ascending). */
    std::vector<std::uint32_t> deadDetectors;
    /** Mechanisms flipping an observable but no detector (ascending). */
    std::vector<std::uint32_t> undetectableMechanisms;

    /** Smallest certified distance over all observables. */
    std::size_t minDistance() const;

    bool operator==(const FaultAnalysis& o) const
    {
        return numDetectors == o.numDetectors &&
               numMechanisms == o.numMechanisms &&
               numHyperedges == o.numHyperedges &&
               observables == o.observables &&
               deadDetectors == o.deadDetectors &&
               undetectableMechanisms == o.undetectableMechanisms;
    }
};

/** Knobs for the analyzer. */
struct FaultOptions
{
    /**
     * Weight at which the union bound is evaluated; 0 means derive it
     * from the certified distance as ceil(distance / 2) per
     * observable.
     */
    std::size_t maxWeight = 0;
    /** Compute the union-bound pass (cheap, but optional). */
    bool unionBound = true;
};

/** Analyze a prebuilt DEM. */
FaultAnalysis analyzeFaults(const stab::DetectorErrorModel& dem,
                            const FaultOptions& options = {});

/**
 * Build the DEM of @p circuit and analyze it.  The circuit must have
 * deterministic detectors (what passDeterminism proves); run the
 * standard lint pipeline first on untrusted input.
 */
FaultAnalysis analyzeCircuitFaults(const stab::Circuit& circuit,
                                   const FaultOptions& options = {});

/**
 * Certified fault distance of @p circuit, minimized over observables.
 * For a distance-d surface-code memory experiment this equals d.
 */
std::size_t certifiedDistance(const stab::Circuit& circuit);

/**
 * Check a certificate: firing exactly @p mechanisms must flip no
 * detector and flip observable @p observable.  analyzeFaults verifies
 * every certificate it returns through this predicate.
 */
bool verifyFaultPath(const stab::DetectorErrorModel& dem,
                     std::uint32_t observable,
                     const std::vector<std::uint32_t>& mechanisms);

/**
 * Elementary-symmetric-polynomial union bound e_k over the mechanism
 * probabilities of @p dem, capped at 1.  Exposed for tests and for
 * budget sweeps at explicit weights.
 */
double unionBoundAtWeight(const stab::DetectorErrorModel& dem,
                          std::size_t weight);

/**
 * Convert an analysis into findings: an undetectable mechanism is an
 * error, an unflippable observable a warning (likely mis-wired), dead
 * detectors and certified distances / union bounds are infos.
 */
void faultFindings(const FaultAnalysis& analysis, LintReport& report);

/**
 * Lint pass wrapping the analyzer: analyzeCircuitFaults followed by
 * faultFindings.  Assumes a circuit that already passed the structural
 * and determinism passes; lintCircuit sequences it accordingly.
 */
void passFaults(const stab::Circuit& circuit, LintReport& report,
                const FaultOptions& options = {});

} // namespace lint
} // namespace hetarch
