/**
 * @file
 * Stable JSON interchange for schedule analyses: the
 * `hetarch-sched-v1` document, a sibling of `hetarch-lint-v1`
 * (report_json.hh) with the same contract — keys emitted in sorted
 * order, doubles in shortest round-trip form, and a strict parser that
 * fails fatally (with a byte offset) on any structural deviation, so
 * schema drift breaks loudly in CI rather than silently in a consumer.
 *
 * Serialized per file: critical path, timed-op count, total idle time,
 * per-qubit busy/idle decompositions, per-observable idle bounds, and
 * the hazard findings.  The raw per-op schedule and the individual
 * idle windows stay in-process only (they are bulky and derivable);
 * parsing therefore returns an analysis with those vectors empty.
 */

#pragma once

#include <string>
#include <vector>

#include "lint/schedule.hh"

namespace hetarch {
namespace lint {
namespace sched {

/** One analyzed unit of a sched document. */
struct SchedFileReport
{
    std::string path;    ///< file path or builder:<name> label
    std::string device;  ///< TimingModel::name the unit was costed with
    ScheduleAnalysis analysis;
};

/** A full tool invocation's worth of schedule reports. */
struct SchedDocument
{
    std::vector<SchedFileReport> files;
};

/** Render @p doc as a hetarch-sched-v1 JSON document. */
std::string toSchedJson(const SchedDocument& doc);

/**
 * Parse a hetarch-sched-v1 document.  Strict: unknown schema, missing
 * or re-ordered keys, and malformed values are fatal.
 */
SchedDocument parseSchedJson(const std::string& text);

} // namespace sched
} // namespace lint
} // namespace hetarch
