#include "lint/sched_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/logging.hh"

namespace hetarch {
namespace lint {
namespace sched {

namespace {

/** Emit a JSON string literal (labels and messages stay in ASCII). */
void
writeString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

/** Shortest round-trip decimal form of a double. */
void
writeDouble(std::ostream& os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

/** Op-index fields render their sentinel as null. */
void
writeOrNull(std::ostream& os, std::size_t v, std::size_t sentinel)
{
    if (v == sentinel)
        os << "null";
    else
        os << v;
}

/**
 * Recursive-descent parser for the v1 sched document, in the same
 * strict style as the lint report parser: every deviation is fatal
 * with a byte offset.
 */
class Parser
{
  public:
    explicit Parser(const std::string& text) : src(text) {}

    SchedDocument parse()
    {
        SchedDocument doc;
        expect('{');
        expectKey("files");
        expect('[');
        if (!consume(']')) {
            do
                doc.files.push_back(parseFile());
            while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-sched-v1")
            fail("unsupported sched report schema '" + schema + "'");
        expect('}');
        skipWs();
        if (pos != src.size())
            fail("trailing content after sched document");
        return doc;
    }

  private:
    [[noreturn]] void fail(const std::string& why) const
    {
        HETARCH_FATAL("sched report parse error at byte ", pos, ": ",
                      why);
    }

    void skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char peek()
    {
        skipWs();
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" +
                 src[pos] + "'");
        ++pos;
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    bool consumeWord(const char* word)
    {
        skipWs();
        const std::size_t len = std::string(word).size();
        if (src.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    void expectKey(const char* key)
    {
        const auto name = parseString();
        if (name != key)
            fail("expected key \"" + std::string(key) + "\", found \"" +
                 name + "\"");
        expect(':');
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                if (pos >= src.size())
                    fail("unterminated escape");
                const char esc = src[pos++];
                switch (esc) {
                  case '"':
                    c = '"';
                    break;
                  case '\\':
                    c = '\\';
                    break;
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    fail("unsupported escape sequence");
                }
            }
            out += c;
        }
        if (pos >= src.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    std::uint64_t parseU64()
    {
        skipWs();
        const std::size_t begin = pos;
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos == begin)
            fail("expected an unsigned integer");
        return std::strtoull(src.substr(begin, pos - begin).c_str(),
                             nullptr, 10);
    }

    /** A u64 or the literal null mapping to @p sentinel. */
    std::size_t parseU64OrNull(std::size_t sentinel)
    {
        skipWs();
        if (consumeWord("null"))
            return sentinel;
        return static_cast<std::size_t>(parseU64());
    }

    double parseDouble()
    {
        skipWs();
        const std::size_t begin = pos;
        auto in_number = [this] {
            const char c = src[pos];
            return std::isdigit(static_cast<unsigned char>(c)) ||
                   c == '-' || c == '+' || c == '.' || c == 'e' ||
                   c == 'E';
        };
        while (pos < src.size() && in_number())
            ++pos;
        if (pos == begin)
            fail("expected a number");
        return std::strtod(src.substr(begin, pos - begin).c_str(),
                           nullptr);
    }

    Severity parseSeverity()
    {
        const auto name = parseString();
        if (name == "info")
            return Severity::Info;
        if (name == "warning")
            return Severity::Warning;
        if (name == "error")
            return Severity::Error;
        fail("unknown severity '" + name + "'");
    }

    SchedFileReport parseFile()
    {
        SchedFileReport file;
        expect('{');
        expectKey("critical_path_ns");
        file.analysis.criticalPathNs = parseDouble();
        expect(',');
        expectKey("device");
        file.device = parseString();
        expect(',');
        expectKey("hazards");
        expect('[');
        if (!consume(']')) {
            do {
                LintFinding f;
                expect('{');
                expectKey("message");
                f.message = parseString();
                expect(',');
                expectKey("op");
                f.opIndex = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("pass");
                f.pass = parseString();
                expect(',');
                expectKey("severity");
                f.severity = parseSeverity();
                expect('}');
                file.analysis.hazards.push_back(std::move(f));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("observables");
        expect('[');
        if (!consume(']')) {
            do {
                ObservableIdleBound b;
                expect('{');
                expectKey("idle_bound");
                b.idleBound = parseDouble();
                expect(',');
                expectKey("observable");
                b.observable = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("weight");
                b.weight = parseU64();
                expect('}');
                file.analysis.observables.push_back(b);
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("path");
        file.path = parseString();
        expect(',');
        expectKey("qubits");
        expect('[');
        if (!consume(']')) {
            do {
                QubitTimeline tl;
                expect('{');
                expectKey("busy_ns");
                tl.busyNs = parseDouble();
                expect(',');
                expectKey("device");
                tl.device = parseString();
                expect(',');
                expectKey("idle_ns");
                tl.idleNs = parseDouble();
                expect(',');
                expectKey("idle_windows");
                tl.idleWindows = parseU64();
                expect(',');
                expectKey("qubit");
                tl.qubit = static_cast<std::uint32_t>(parseU64());
                expect('}');
                file.analysis.qubits.push_back(std::move(tl));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("timed_ops");
        file.analysis.opsScheduled = parseU64();
        expect(',');
        expectKey("total_idle_ns");
        file.analysis.totalIdleNs = parseDouble();
        expect('}');
        return file;
    }

    const std::string& src;
    std::size_t pos = 0;
};

} // namespace

std::string
toSchedJson(const SchedDocument& doc)
{
    std::ostringstream os;
    os << "{\n  \"files\": [";
    bool first = true;
    for (const auto& file : doc.files) {
        const auto& a = file.analysis;
        os << (first ? "\n    " : ",\n    ");
        os << "{\"critical_path_ns\": ";
        writeDouble(os, a.criticalPathNs);
        os << ", \"device\": ";
        writeString(os, file.device);
        os << ", \"hazards\": [";
        bool first_inner = true;
        for (const auto& h : a.hazards) {
            os << (first_inner ? "" : ", ") << "{\"message\": ";
            writeString(os, h.message);
            os << ", \"op\": ";
            writeOrNull(os, h.opIndex, kNoOpIndex);
            os << ", \"pass\": ";
            writeString(os, h.pass);
            os << ", \"severity\": \"" << severityName(h.severity)
               << "\"}";
            first_inner = false;
        }
        os << "], \"observables\": [";
        first_inner = true;
        for (const auto& b : a.observables) {
            os << (first_inner ? "" : ", ") << "{\"idle_bound\": ";
            writeDouble(os, b.idleBound);
            os << ", \"observable\": " << b.observable
               << ", \"weight\": " << b.weight << '}';
            first_inner = false;
        }
        os << "], \"path\": ";
        writeString(os, file.path);
        os << ", \"qubits\": [";
        first_inner = true;
        for (const auto& tl : a.qubits) {
            os << (first_inner ? "" : ", ") << "{\"busy_ns\": ";
            writeDouble(os, tl.busyNs);
            os << ", \"device\": ";
            writeString(os, tl.device);
            os << ", \"idle_ns\": ";
            writeDouble(os, tl.idleNs);
            os << ", \"idle_windows\": " << tl.idleWindows
               << ", \"qubit\": " << tl.qubit << '}';
            first_inner = false;
        }
        os << "], \"timed_ops\": " << a.opsScheduled
           << ", \"total_idle_ns\": ";
        writeDouble(os, a.totalIdleNs);
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ")
       << "],\n  \"schema\": \"hetarch-sched-v1\"\n}\n";
    return os.str();
}

SchedDocument
parseSchedJson(const std::string& text)
{
    return Parser(text).parse();
}

} // namespace sched
} // namespace lint
} // namespace hetarch
