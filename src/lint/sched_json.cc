#include "lint/sched_json.hh"

#include <sstream>

#include "core/logging.hh"
#include "core/strict_json.hh"

namespace hetarch {
namespace lint {
namespace sched {

namespace {

namespace cj = core::json;

/**
 * Recursive-descent parser for the v1 sched document on the shared
 * strict scanner: every deviation is fatal with a byte offset.
 */
class Parser : private cj::Scanner
{
  public:
    explicit Parser(const std::string& text) : Scanner(text) {}

    SchedDocument parse()
    {
        SchedDocument doc;
        expect('{');
        expectKey("files");
        expect('[');
        if (!consume(']')) {
            do
                doc.files.push_back(parseFile());
            while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-sched-v1")
            fail("unsupported sched report schema '" + schema + "'");
        expect('}');
        finish();
        return doc;
    }

  private:
    Severity parseSeverity()
    {
        const auto name = parseString();
        if (name == "info")
            return Severity::Info;
        if (name == "warning")
            return Severity::Warning;
        if (name == "error")
            return Severity::Error;
        fail("unknown severity '" + name + "'");
    }

    SchedFileReport parseFile()
    {
        SchedFileReport file;
        expect('{');
        expectKey("critical_path_ns");
        file.analysis.criticalPathNs = parseDouble();
        expect(',');
        expectKey("device");
        file.device = parseString();
        expect(',');
        expectKey("hazards");
        expect('[');
        if (!consume(']')) {
            do {
                LintFinding f;
                expect('{');
                expectKey("message");
                f.message = parseString();
                expect(',');
                expectKey("op");
                f.opIndex = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("pass");
                f.pass = parseString();
                expect(',');
                expectKey("severity");
                f.severity = parseSeverity();
                expect('}');
                file.analysis.hazards.push_back(std::move(f));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("observables");
        expect('[');
        if (!consume(']')) {
            do {
                ObservableIdleBound b;
                expect('{');
                expectKey("idle_bound");
                b.idleBound = parseDouble();
                expect(',');
                expectKey("observable");
                b.observable = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("weight");
                b.weight = parseU64();
                expect('}');
                file.analysis.observables.push_back(b);
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("path");
        file.path = parseString();
        expect(',');
        expectKey("qubits");
        expect('[');
        if (!consume(']')) {
            do {
                QubitTimeline tl;
                expect('{');
                expectKey("busy_ns");
                tl.busyNs = parseDouble();
                expect(',');
                expectKey("device");
                tl.device = parseString();
                expect(',');
                expectKey("idle_ns");
                tl.idleNs = parseDouble();
                expect(',');
                expectKey("idle_windows");
                tl.idleWindows = parseU64();
                expect(',');
                expectKey("qubit");
                tl.qubit = static_cast<std::uint32_t>(parseU64());
                expect('}');
                file.analysis.qubits.push_back(std::move(tl));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("timed_ops");
        file.analysis.opsScheduled = parseU64();
        expect(',');
        expectKey("total_idle_ns");
        file.analysis.totalIdleNs = parseDouble();
        expect('}');
        return file;
    }
};

} // namespace

std::string
toSchedJson(const SchedDocument& doc)
{
    std::ostringstream os;
    os << "{\n  \"files\": [";
    bool first = true;
    for (const auto& file : doc.files) {
        const auto& a = file.analysis;
        os << (first ? "\n    " : ",\n    ");
        os << "{\"critical_path_ns\": ";
        cj::writeDouble(os, a.criticalPathNs);
        os << ", \"device\": ";
        cj::writeString(os, file.device);
        os << ", \"hazards\": [";
        bool first_inner = true;
        for (const auto& h : a.hazards) {
            os << (first_inner ? "" : ", ") << "{\"message\": ";
            cj::writeString(os, h.message);
            os << ", \"op\": ";
            cj::writeOrNull(os, h.opIndex, kNoOpIndex);
            os << ", \"pass\": ";
            cj::writeString(os, h.pass);
            os << ", \"severity\": \"" << severityName(h.severity)
               << "\"}";
            first_inner = false;
        }
        os << "], \"observables\": [";
        first_inner = true;
        for (const auto& b : a.observables) {
            os << (first_inner ? "" : ", ") << "{\"idle_bound\": ";
            cj::writeDouble(os, b.idleBound);
            os << ", \"observable\": " << b.observable
               << ", \"weight\": " << b.weight << '}';
            first_inner = false;
        }
        os << "], \"path\": ";
        cj::writeString(os, file.path);
        os << ", \"qubits\": [";
        first_inner = true;
        for (const auto& tl : a.qubits) {
            os << (first_inner ? "" : ", ") << "{\"busy_ns\": ";
            cj::writeDouble(os, tl.busyNs);
            os << ", \"device\": ";
            cj::writeString(os, tl.device);
            os << ", \"idle_ns\": ";
            cj::writeDouble(os, tl.idleNs);
            os << ", \"idle_windows\": " << tl.idleWindows
               << ", \"qubit\": " << tl.qubit << '}';
            first_inner = false;
        }
        os << "], \"timed_ops\": " << a.opsScheduled
           << ", \"total_idle_ns\": ";
        cj::writeDouble(os, a.totalIdleNs);
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ")
       << "],\n  \"schema\": \"hetarch-sched-v1\"\n}\n";
    return os.str();
}

SchedDocument
parseSchedJson(const std::string& text)
{
    try {
        return Parser(text).parse();
    } catch (const cj::ScanError& e) {
        HETARCH_FATAL("sched report parse error at byte ", e.offset,
                      ": ", e.reason);
    }
}

} // namespace sched
} // namespace lint
} // namespace hetarch
