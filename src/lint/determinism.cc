/**
 * @file
 * Static detector-determinism pass.
 *
 * In a Clifford circuit every measurement outcome is an affine function
 * (over GF(2)) of the independent coin flips introduced by random
 * collapses (measurements and resets of qubits whose Z value is not
 * fixed by the current stabilizer group).  This pass runs the
 * Aaronson-Gottesman tableau *symbolically*: row signs carry, next to
 * the usual i^k phase, a GF(2) vector over coin variables.  A detector
 * (or observable) is deterministic if and only if the symbolic part of
 * its parity expression vanishes — an exact, single-pass proof, unlike
 * the sampled TableauSimulator::checkDetectorsDeterministic which
 * re-runs the circuit with randomized outcomes and can only ever
 * falsify.
 */

#include <sstream>
#include <vector>

#include "core/logging.hh"
#include "lint/lint.hh"
#include "stab/pauli.hh"

namespace hetarch {
namespace lint {

namespace {

using stab::BitVec;
using stab::OpCode;
using stab::PauliString;

/** A measurement outcome: constant XOR parity of coin symbols. */
struct MeasExpr
{
    bool constant = false;
    BitVec syms;

    explicit MeasExpr(std::size_t capacity) : syms(capacity) {}

    MeasExpr& operator^=(const MeasExpr& other)
    {
        constant = constant != other.constant;
        syms ^= other.syms;
        return *this;
    }
};

/**
 * Tableau with symbolic signs.  Gate updates only ever add *constant*
 * phases, so the gate logic matches TableauSimulator; the symbolic part
 * moves only through row multiplication, measurement collapse, and
 * outcome-conditioned corrections.
 */
class SymbolicTableau
{
  public:
    SymbolicTableau(std::size_t num_qubits, std::size_t symbol_capacity)
        : nq(num_qubits), cap(symbol_capacity)
    {
        rows.reserve(2 * nq);
        for (std::size_t q = 0; q < nq; ++q)
            rows.push_back(PauliString::single(nq, q, 'X'));
        for (std::size_t q = 0; q < nq; ++q)
            rows.push_back(PauliString::single(nq, q, 'Z'));
        syms.assign(2 * nq, BitVec(cap));
    }

    void h(std::size_t q)
    {
        for (auto& row : rows) {
            const bool xb = row.xBit(q), zb = row.zBit(q);
            if (xb && zb)
                row.setPhase(row.phase() + 2);
            row.setX(q, zb);
            row.setZ(q, xb);
        }
    }

    void s(std::size_t q)
    {
        for (auto& row : rows) {
            const bool xb = row.xBit(q), zb = row.zBit(q);
            if (xb && zb)
                row.setPhase(row.phase() + 2);
            row.setZ(q, zb ^ xb);
        }
    }

    void sdg(std::size_t q)
    {
        s(q);
        z(q);
    }

    void x(std::size_t q)
    {
        for (auto& row : rows)
            if (row.zBit(q))
                row.setPhase(row.phase() + 2);
    }

    void y(std::size_t q)
    {
        for (auto& row : rows)
            if (row.xBit(q) ^ row.zBit(q))
                row.setPhase(row.phase() + 2);
    }

    void z(std::size_t q)
    {
        for (auto& row : rows)
            if (row.xBit(q))
                row.setPhase(row.phase() + 2);
    }

    void cx(std::size_t control, std::size_t target)
    {
        for (auto& row : rows) {
            const bool xc = row.xBit(control), zc = row.zBit(control);
            const bool xt = row.xBit(target), zt = row.zBit(target);
            if (xc && zt && (xt == zc))
                row.setPhase(row.phase() + 2);
            row.setX(target, xt ^ xc);
            row.setZ(control, zc ^ zt);
        }
    }

    void cz(std::size_t a, std::size_t b)
    {
        h(b);
        cx(a, b);
        h(b);
    }

    void swapQubits(std::size_t a, std::size_t b)
    {
        cx(a, b);
        cx(b, a);
        cx(a, b);
    }

    /**
     * Measure Z on @p q.  When the outcome is random, coin @p symbol is
     * consumed and @p used_symbol set.  Returns the outcome expression.
     */
    MeasExpr measure(std::size_t q, std::size_t symbol, bool& used_symbol)
    {
        used_symbol = false;
        std::size_t p = 2 * nq;
        for (std::size_t i = nq; i < 2 * nq; ++i) {
            if (rows[i].xBit(q)) {
                p = i;
                break;
            }
        }

        MeasExpr out(cap);
        if (p < 2 * nq) {
            // Random collapse: the outcome *is* the fresh coin.
            used_symbol = true;
            for (std::size_t i = 0; i < 2 * nq; ++i)
                if (i != p && rows[i].xBit(q))
                    rowMult(i, p);
            rows[p - nq] = rows[p];
            syms[p - nq] = syms[p];
            rows[p] = PauliString::single(nq, q, 'Z');
            syms[p] = BitVec(cap);
            syms[p].set(symbol, true);
            out.syms.set(symbol, true);
            return out;
        }

        // Deterministic outcome: accumulate the matching stabilizers.
        PauliString scratch(nq);
        BitVec ssym(cap);
        for (std::size_t i = 0; i < nq; ++i) {
            if (rows[i].xBit(q)) {
                scratch *= rows[i + nq];
                ssym ^= syms[i + nq];
                HETARCH_ASSERT((scratch.phase() & 1) == 0,
                               "scratch acquired imaginary phase");
            }
        }
        out.constant = scratch.phase() == 2;
        out.syms = ssym;
        return out;
    }

    /** Apply X on @p q conditioned on expression @p e being 1. */
    void conditionalX(std::size_t q, const MeasExpr& e)
    {
        for (std::size_t i = 0; i < 2 * nq; ++i) {
            if (rows[i].zBit(q)) {
                if (e.constant)
                    rows[i].setPhase(rows[i].phase() + 2);
                syms[i] ^= e.syms;
            }
        }
    }

  private:
    void rowMult(std::size_t h_row, std::size_t i_row)
    {
        rows[h_row] *= rows[i_row];
        syms[h_row] ^= syms[i_row];
        HETARCH_ASSERT(h_row < nq || (rows[h_row].phase() & 1) == 0,
                       "stabilizer row acquired imaginary phase");
    }

    std::size_t nq;
    std::size_t cap;
    std::vector<PauliString> rows;
    std::vector<BitVec> syms;
};

/** "ops 3, 7, 11" (first few coin origins), for diagnostics. */
std::string
describeCoins(const BitVec& syms, const std::vector<std::size_t>& coin_op)
{
    std::ostringstream os;
    std::size_t listed = 0;
    const std::size_t total = syms.popcount();
    for (std::size_t k = 0; k < syms.size() && listed < 4; ++k) {
        if (!syms.get(k))
            continue;
        os << (listed ? ", " : "") << coin_op[k];
        ++listed;
    }
    if (total > listed)
        os << ", ... (" << total << " coins total)";
    return os.str();
}

} // namespace

void
passDeterminism(const stab::Circuit& circuit, LintReport& report)
{
    const auto& ops = circuit.ops();

    // Capacity: every M/MR/R can introduce at most one coin.
    std::size_t capacity = 0;
    for (const auto& op : ops) {
        if (op.code == OpCode::M || op.code == OpCode::MR ||
            op.code == OpCode::R)
            ++capacity;
    }

    SymbolicTableau sim(circuit.numQubits(), capacity);
    std::vector<MeasExpr> record;
    record.reserve(circuit.numMeasurements());
    std::vector<std::size_t> coin_op; ///< coin symbol -> op index
    coin_op.reserve(capacity);
    std::size_t next_symbol = 0;

    auto collapse = [&](std::size_t q, std::size_t op_index) {
        bool used = false;
        auto e = sim.measure(q, next_symbol, used);
        if (used) {
            coin_op.push_back(op_index);
            ++next_symbol;
        }
        return e;
    };

    std::vector<MeasExpr> obs;
    std::vector<std::size_t> obs_op;
    if (circuit.numObservables() > 0) {
        obs.assign(circuit.numObservables(), MeasExpr(capacity));
        obs_op.assign(circuit.numObservables(), kNoOpIndex);
    }

    std::size_t det_index = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        switch (op.code) {
          case OpCode::H: sim.h(op.targets[0]); break;
          case OpCode::S: sim.s(op.targets[0]); break;
          case OpCode::SDG: sim.sdg(op.targets[0]); break;
          case OpCode::X: sim.x(op.targets[0]); break;
          case OpCode::Y: sim.y(op.targets[0]); break;
          case OpCode::Z: sim.z(op.targets[0]); break;
          case OpCode::CX: sim.cx(op.targets[0], op.targets[1]); break;
          case OpCode::CZ: sim.cz(op.targets[0], op.targets[1]); break;
          case OpCode::SWAP:
            sim.swapQubits(op.targets[0], op.targets[1]);
            break;
          case OpCode::M:
            record.push_back(collapse(op.targets[0], i));
            break;
          case OpCode::MR: {
            auto e = collapse(op.targets[0], i);
            sim.conditionalX(op.targets[0], e);
            record.push_back(std::move(e));
            break;
          }
          case OpCode::R: {
            const auto e = collapse(op.targets[0], i);
            sim.conditionalX(op.targets[0], e);
            break;
          }
          case OpCode::X_ERROR:
          case OpCode::Z_ERROR:
          case OpCode::PAULI1:
          case OpCode::DEPOL1:
          case OpCode::DEPOL2:
            break; // determinism is a noiseless property
          case OpCode::DETECTOR: {
            MeasExpr parity(capacity);
            for (auto m : op.targets)
                parity ^= record[m];
            if (!parity.syms.allZero()) {
                std::ostringstream os;
                os << "detector " << det_index
                   << " is not deterministic: its parity depends on "
                      "random collapse(s) at op(s) "
                   << describeCoins(parity.syms, coin_op);
                report.add("determinism", Severity::Error, i, os.str());
            }
            ++det_index;
            break;
          }
          case OpCode::OBSERVABLE: {
            for (auto m : op.targets)
                obs[op.id] ^= record[m];
            obs_op[op.id] = i;
            break;
          }
        }
    }

    for (std::size_t k = 0; k < obs.size(); ++k) {
        if (!obs[k].syms.allZero()) {
            std::ostringstream os;
            os << "observable " << k
               << " is not deterministic: its parity depends on "
                  "random collapse(s) at op(s) "
               << describeCoins(obs[k].syms, coin_op);
            report.add("determinism", Severity::Error, obs_op[k],
                       os.str());
        }
    }
}

} // namespace lint
} // namespace hetarch
