/**
 * @file
 * Timing assignment for static schedule analysis
 * (`hetarch::lint::sched`): which device instance each circuit qubit
 * lives on, and what every operation costs in wall-clock nanoseconds.
 *
 * HetArch's central trade is temporal: storage devices buy long
 * coherence at the price of slow SWAP-only access, compute devices buy
 * fast gates at the price of fast decay.  A TimingModel captures one
 * concrete resolution of that trade for a circuit — a set of device
 * *instances* (each a devices::DeviceModel reduced to its timing and
 * coherence figures) plus a qubit -> instance assignment.  Instances
 * matter: a multimode storage resonator hosts several circuit qubits
 * but owns a single coupling, so concurrency hazards are per instance,
 * not per qubit (see schedule.hh).
 *
 * Durations (all ns):
 *   1q unitaries   gate1q of the qubit's device
 *   CX / CZ        max gate2q over the two devices
 *   SWAP           the storage device's swap time when either end is
 *                  a storage instance, else max gate2q
 *   M / MR         readout (reset rides the measurement ring-down)
 *   R              reset
 *   noise / annotations   untimed (0 ns)
 *
 * The model is content-hashable (hashTimingModel) so schedule analyses
 * can be memoized DecoderCache-style on (circuit hash, model hash).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "devices/device.hh"

namespace hetarch {
namespace lint {
namespace sched {

/** Timing + coherence figures of one device instance. */
struct DeviceTiming
{
    std::string name;        ///< catalog name, for reports
    double gate1q = 0.0;     ///< ns (0: gate set lacks 1q gates)
    double gate2q = 0.0;     ///< ns
    double swap = 0.0;       ///< ns (storage access time)
    double readout = 0.0;    ///< ns
    double reset = 0.0;      ///< ns
    double t1 = 0.0;         ///< ns
    double t2 = 0.0;         ///< ns
    int modes = 1;           ///< qubit capacity of the instance
    bool hasReadout = false;
    bool storage = false;    ///< SWAP-only gate set (DR2 devices)

    /** Reduce a Table 1 device model to its timing figures. */
    static DeviceTiming fromDevice(const devices::DeviceModel& dev);

    /**
     * The unit model: every timed op lasts exactly 1 ns, full gate
     * set, readout everywhere, effectively infinite coherence.  Under
     * it the critical path equals stab::CircuitStats::depth.
     */
    static DeviceTiming unit();

    bool operator==(const DeviceTiming& o) const;
};

/** A full timing assignment for a circuit. */
struct TimingModel
{
    /** Human-readable label ("fixed-frequency-transmon", "unit", ...). */
    std::string name;
    /** Device instances; multimode instances host several qubits. */
    std::vector<DeviceTiming> devices;
    /** Qubit index -> instance index; size covers the circuit. */
    std::vector<std::uint32_t> assignment;

    /** The instance hosting qubit @p q (fatal when unassigned). */
    const DeviceTiming& deviceFor(std::uint32_t q) const;

    /** One private instance of @p dev per qubit (homogeneous). */
    static TimingModel uniform(const devices::DeviceModel& dev,
                               std::size_t num_qubits);

    /** Unit-duration model (see DeviceTiming::unit). */
    static TimingModel unit(std::size_t num_qubits);

    /**
     * Heterogeneous register model: every qubit gets a private
     * @p compute instance except @p storage_qubits, which all share
     * ONE @p storage instance (the multimode-resonator shape whose
     * port and capacity constraints the hazard pass checks).
     */
    static TimingModel withStorage(
        const devices::DeviceModel& compute,
        const devices::DeviceModel& storage, std::size_t num_qubits,
        const std::vector<std::uint32_t>& storage_qubits);

    /** Multiply every duration (not coherence) by @p factor. */
    void scaleDurations(double factor);

    bool operator==(const TimingModel& o) const;
};

/** Content hash of a timing model (FNV-1a, like qec::hashCircuit). */
std::uint64_t hashTimingModel(const TimingModel& model);

/**
 * Analytic average error of idling for @p t_ns on a (T1, T2) device:
 * the average-gate-infidelity of the amplitude-damping + pure-
 * dephasing channel, 1 - (2 F_e + 1) / 3 with
 *   F_e = [ (1 + e^{-t/T2})^2 + (1 - e^{-2 g_phi t}) e^{-t/T1} ] / 4,
 * g_phi = 1/T2 - 1/(2 T1).  This is exactly the channel
 * dm::channels::idleChannel applies, so the value cross-validates
 * against cells::characterize's density-matrix "idle-1us" reference
 * points to numerical precision (pinned by tests/lint/schedule_test).
 */
double idleError(double t_ns, double t1_ns, double t2_ns);

} // namespace sched
} // namespace lint
} // namespace hetarch
