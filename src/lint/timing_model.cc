#include "lint/timing_model.hh"

#include <cmath>

#include "core/logging.hh"

namespace hetarch {
namespace lint {
namespace sched {

DeviceTiming
DeviceTiming::fromDevice(const devices::DeviceModel& dev)
{
    DeviceTiming t;
    t.name = dev.name;
    t.gate1q = dev.gateTime1q;
    t.gate2q = dev.gateTime2q;
    // Storage devices expose their access (SWAP) time through
    // gateTime2q (Table 1); compute devices SWAP at 2q-gate cost.
    t.swap = dev.gateTime2q;
    t.readout = dev.readoutTime;
    // No device model carries a distinct reset figure; unconditional
    // reset rides the readout resonator ring-down.
    t.reset = dev.readoutTime;
    t.t1 = dev.t1;
    t.t2 = dev.t2;
    t.modes = dev.modes;
    t.hasReadout = dev.hasReadout;
    t.storage = dev.role == devices::DeviceRole::Storage;
    return t;
}

DeviceTiming
DeviceTiming::unit()
{
    DeviceTiming t;
    t.name = "unit";
    t.gate1q = 1.0;
    t.gate2q = 1.0;
    t.swap = 1.0;
    t.readout = 1.0;
    t.reset = 1.0;
    t.t1 = 1e18;
    t.t2 = 1e18;
    t.modes = 1;
    t.hasReadout = true;
    t.storage = false;
    return t;
}

bool
DeviceTiming::operator==(const DeviceTiming& o) const
{
    return name == o.name && gate1q == o.gate1q && gate2q == o.gate2q &&
           swap == o.swap && readout == o.readout && reset == o.reset &&
           t1 == o.t1 && t2 == o.t2 && modes == o.modes &&
           hasReadout == o.hasReadout && storage == o.storage;
}

const DeviceTiming&
TimingModel::deviceFor(std::uint32_t q) const
{
    HETARCH_ASSERT(q < assignment.size(),
                   "timing model does not cover qubit ", q);
    const auto inst = assignment[q];
    HETARCH_ASSERT(inst < devices.size(),
                   "qubit ", q, " assigned to unknown instance ", inst);
    return devices[inst];
}

TimingModel
TimingModel::uniform(const devices::DeviceModel& dev,
                     std::size_t num_qubits)
{
    TimingModel m;
    m.name = dev.name;
    const auto timing = DeviceTiming::fromDevice(dev);
    m.devices.reserve(num_qubits);
    m.assignment.reserve(num_qubits);
    for (std::size_t q = 0; q < num_qubits; ++q) {
        m.devices.push_back(timing);
        m.assignment.push_back(static_cast<std::uint32_t>(q));
    }
    return m;
}

TimingModel
TimingModel::unit(std::size_t num_qubits)
{
    TimingModel m;
    m.name = "unit";
    const auto timing = DeviceTiming::unit();
    m.devices.reserve(num_qubits);
    m.assignment.reserve(num_qubits);
    for (std::size_t q = 0; q < num_qubits; ++q) {
        m.devices.push_back(timing);
        m.assignment.push_back(static_cast<std::uint32_t>(q));
    }
    return m;
}

TimingModel
TimingModel::withStorage(const devices::DeviceModel& compute,
                         const devices::DeviceModel& storage,
                         std::size_t num_qubits,
                         const std::vector<std::uint32_t>& storage_qubits)
{
    TimingModel m;
    m.name = compute.name + "+" + storage.name;
    const auto compute_timing = DeviceTiming::fromDevice(compute);
    const auto storage_timing = DeviceTiming::fromDevice(storage);
    // Instance 0 is the single shared storage resonator; every other
    // qubit gets a private compute instance.
    m.devices.push_back(storage_timing);
    m.assignment.assign(num_qubits, 0);
    for (std::size_t q = 0; q < num_qubits; ++q) {
        bool stored = false;
        for (auto s : storage_qubits)
            stored = stored || s == q;
        if (stored)
            continue;
        m.assignment[q] =
            static_cast<std::uint32_t>(m.devices.size());
        m.devices.push_back(compute_timing);
    }
    for (auto s : storage_qubits)
        HETARCH_ASSERT(s < num_qubits, "storage qubit ", s,
                       " outside the ", num_qubits, "-qubit register");
    return m;
}

void
TimingModel::scaleDurations(double factor)
{
    HETARCH_ASSERT(factor > 0.0, "duration scale must be positive");
    for (auto& d : devices) {
        d.gate1q *= factor;
        d.gate2q *= factor;
        d.swap *= factor;
        d.readout *= factor;
        d.reset *= factor;
    }
}

bool
TimingModel::operator==(const TimingModel& o) const
{
    return name == o.name && devices == o.devices &&
           assignment == o.assignment;
}

std::uint64_t
hashTimingModel(const TimingModel& model)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull; // FNV prime
    };
    auto mixDouble = [&](double v) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    for (char c : model.name)
        mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    mix(model.devices.size());
    for (const auto& d : model.devices) {
        mixDouble(d.gate1q);
        mixDouble(d.gate2q);
        mixDouble(d.swap);
        mixDouble(d.readout);
        mixDouble(d.reset);
        mixDouble(d.t1);
        mixDouble(d.t2);
        mix(static_cast<std::uint64_t>(d.modes));
        mix(d.hasReadout ? 1u : 0u);
        mix(d.storage ? 1u : 0u);
    }
    mix(model.assignment.size());
    for (auto a : model.assignment)
        mix(a);
    return h;
}

double
idleError(double t_ns, double t1_ns, double t2_ns)
{
    HETARCH_ASSERT(t_ns >= 0.0, "negative idle time");
    HETARCH_ASSERT(t1_ns > 0.0 && t2_ns > 0.0,
                   "coherence times must be positive");
    // Entanglement fidelity of amplitude damping composed with the
    // pure dephasing left over once T1 decay's own phase damping is
    // accounted for: gamma_phi = 1/T2 - 1/(2 T1) >= 0 for physical
    // devices (T2 <= 2 T1).
    const double g_phi =
        std::max(0.0, 1.0 / t2_ns - 0.5 / t1_ns);
    const double amp = std::exp(-t_ns / t1_ns);
    const double deph = std::exp(-2.0 * g_phi * t_ns);
    const double sum = 1.0 + std::sqrt(amp) * std::sqrt(deph);
    const double f_ent = 0.25 * (sum * sum + (1.0 - deph) * amp);
    // Average gate infidelity for d = 2: 1 - (2 F_e + 1) / 3.
    const double err = 1.0 - (2.0 * f_ent + 1.0) / 3.0;
    return std::min(1.0, std::max(0.0, err));
}

} // namespace sched
} // namespace lint
} // namespace hetarch
