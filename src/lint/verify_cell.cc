#include "lint/verify_cell.hh"

#include <sstream>

namespace hetarch {
namespace lint {

stab::Circuit
lowerCellSchedule(const cells::StandardCell& cell)
{
    const auto& devs = cell.deviceList();
    stab::Circuit circ(devs.size());

    for (std::uint32_t q = 0; q < devs.size(); ++q)
        circ.reset(q);

    // Readout devices act as parity ancillas for their neighborhood.
    std::vector<std::size_t> readouts;
    for (std::size_t i = 0; i < devs.size(); ++i)
        if (devs[i].readout)
            readouts.push_back(i);

    std::vector<std::size_t> prev(readouts.size(), 0);
    for (int round = 0; round < 2; ++round) {
        // Every coupling carries its two-qubit interaction once.
        for (const auto& edge : cell.couplings())
            circ.cx(static_cast<std::uint32_t>(edge.a),
                    static_cast<std::uint32_t>(edge.b));
        for (std::size_t r = 0; r < readouts.size(); ++r) {
            const auto anc = static_cast<std::uint32_t>(readouts[r]);
            for (auto n : cell.neighbors(readouts[r]))
                circ.cx(static_cast<std::uint32_t>(n), anc);
            const auto m = circ.measureReset(anc);
            if (round > 0)
                circ.detector({prev[r], m});
            prev[r] = m;
        }
    }

    // Final transversal readout; check each ancilla's last outcome
    // against the data it observed.
    std::vector<std::size_t> final_meas(devs.size(), 0);
    for (std::uint32_t q = 0; q < devs.size(); ++q)
        if (!devs[q].readout)
            final_meas[q] = circ.measure(q);
    for (std::size_t r = 0; r < readouts.size(); ++r) {
        std::vector<std::size_t> refs{prev[r]};
        for (auto n : cell.neighbors(readouts[r]))
            if (!devs[n].readout)
                refs.push_back(final_meas[n]);
        circ.detector(refs);
    }
    return circ;
}

LintReport
verifyCell(const cells::StandardCell& cell, std::size_t required_readouts,
           const LintOptions& options)
{
    LintReport report;

    const auto drc = cells::checkDesignRules(cell, required_readouts);
    for (const auto& v : drc.violations) {
        std::ostringstream os;
        os << "DR" << v.rule << ": " << v.message;
        report.add("cell-drc", Severity::Error, kNoOpIndex, os.str());
    }

    const auto schedule = lowerCellSchedule(cell);
    auto circuit_report = lintCircuit(schedule, options);
    for (auto& f : circuit_report.findings)
        report.findings.push_back(std::move(f));
    return report;
}

LintReport
verifyCell(const cells::StandardCell& cell, const LintOptions& options)
{
    return verifyCell(cell, cell.readoutCount(), options);
}

} // namespace lint
} // namespace hetarch
