/**
 * @file
 * Static qubit-dataflow and storage-residency analyzer
 * (`hetarch::lint::flow`): a whole-circuit abstract interpretation
 * over stab::Circuit + TimingModel that tracks where each qubit's
 * *state* lives — compute register or storage mode — from init
 * through gates, swaps, and measurement, using the ASAP op times of
 * the PR-6 schedule analyzer (schedule.hh).
 *
 * HetArch cells win by parking idle logical state in long-lived
 * storage and paying explicit SWAP movement to get it back, so the
 * interesting bugs are movement bugs.  Each qubit location holds an
 * abstract content in {Fresh, Data, Collapsed}: implicit |0> at
 * circuit start, Fresh after R/MR, Data once gates act on it,
 * Collapsed after M.  SWAPs exchange contents; a SWAP whose storage
 * side is involved is classified as a deposit (Data moves in), a
 * retrieval (Data moves out), or a movement bug:
 *
 *  flow-use-before-init [error]   a SWAP with a never-written storage
 *                                 mode retrieves vacuum, or a
 *                                 DETECTOR/OBSERVABLE consumes the
 *                                 measurement of state that was moved
 *                                 to storage and never retrieved
 *  flow-stale-storage   [warning] retrieval after the state sat in
 *                                 storage longer than the staleness
 *                                 threshold (default: the hosting
 *                                 device's T2)
 *  flow-measure-reuse   [warning] a computational gate consumes
 *                                 Collapsed content (tracked through
 *                                 swaps, unlike sched-reset-gap)
 *  flow-double-swap     [warning] deposit onto a storage mode already
 *                                 holding state; the previous content
 *                                 pops out into the compute register
 *  flow-orphan          [warning] a storage mode still holds Data at
 *                                 circuit end (state never retrieved)
 *  flow-capacity        [error]   live-Data occupancy of a storage
 *                                 instance exceeds its mode count (a
 *                                 dynamic refinement of the static
 *                                 sched-capacity assignment check)
 *
 * Beyond hazards the analyzer reports per-mode residency intervals
 * and a storage-pressure summary (peak live occupancy, qubit-ns in
 * storage, swap-chain movement cost) — the architecture-comparison
 * primitive dse::flowPressureTable ranks cells by — and a **certified
 * end-to-end error budget per observable**: the PR-4 gate-error union
 * bound and the PR-6 idle-decoherence bound compose into one
 * elementary-symmetric bound e_k over the union of DEM mechanism
 * probabilities and *live* idle-window probabilities (windows during
 * which the location actually holds state; vacuum modes do not
 * decohere anything), at k = ceil(certified distance / 2).  The
 * budget upper-bounds the Monte-Carlo logical error rate of
 * qec::runMemoryExperiment (pinned by tests/lint/flow_budget_test).
 * Observables fan out over exec::parallelFor with ordered reduction:
 * bit-identical at any worker count.
 *
 * Analyses are memoized in a process-wide FlowCache keyed on (circuit
 * hash, timing-model hash, options hash) with the ScheduleCache
 * build-once / burst-eviction discipline and `lint.flow.*` telemetry.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lint/faults.hh"
#include "lint/lint.hh"
#include "lint/timing_model.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace lint {
namespace flow {

/** The dataflow analyzer prices movement with the sched assignment. */
using sched::TimingModel;

/** One stay of live state on a storage mode. */
struct ResidencyInterval
{
    std::uint32_t qubit = 0;     ///< storage-side qubit (the mode)
    std::uint32_t instance = 0;  ///< timing-model instance index
    double startNs = 0.0;        ///< deposit SWAP completes
    double endNs = 0.0;          ///< retrieval SWAP starts (or makespan)
    std::uint32_t depositOp = 0; ///< index into Circuit::ops()
    std::size_t retrieveOp = kNoOpIndex; ///< kNoOpIndex when orphaned
    bool orphaned = false;

    double durationNs() const { return endNs - startNs; }

    bool operator==(const ResidencyInterval& o) const
    {
        return qubit == o.qubit && instance == o.instance &&
               startNs == o.startNs && endNs == o.endNs &&
               depositOp == o.depositOp && retrieveOp == o.retrieveOp &&
               orphaned == o.orphaned;
    }
};

/** Storage-pressure summary of one storage instance. */
struct InstancePressure
{
    std::uint32_t instance = 0;
    std::string device;          ///< catalog name, for reports
    int modes = 0;
    std::size_t residencies = 0; ///< residency intervals hosted
    std::size_t peakOccupancy = 0; ///< max simultaneous live modes
    double storageQubitNs = 0.0; ///< total residency time (qubit-ns)

    bool operator==(const InstancePressure& o) const
    {
        return instance == o.instance && device == o.device &&
               modes == o.modes && residencies == o.residencies &&
               peakOccupancy == o.peakOccupancy &&
               storageQubitNs == o.storageQubitNs;
    }
};

/** Certified end-to-end error budget of one observable. */
struct ObservableBudget
{
    std::uint32_t observable = 0;
    /** The k of the bound (ceil(distance / 2), 1 without faults). */
    std::size_t weight = 0;
    /** e_k over the DEM mechanism probabilities (the PR-4 bound). */
    double gateBound = 0.0;
    /** e_k over the live idle-window probabilities alone. */
    double idleBound = 0.0;
    /** e_k over both families combined; >= max(gate, idle). */
    double budget = 0.0;

    bool operator==(const ObservableBudget& o) const
    {
        return observable == o.observable && weight == o.weight &&
               gateBound == o.gateBound && idleBound == o.idleBound &&
               budget == o.budget;
    }
};

/** Full analyzer output for one circuit / timing model. */
struct FlowAnalysis
{
    std::size_t opsTracked = 0;   ///< timed ops interpreted
    std::size_t swapCount = 0;    ///< SWAP ops (movement events)
    double movementNs = 0.0;      ///< total wall time under SWAPs
    double criticalPathNs = 0.0;  ///< makespan (from the schedule)
    std::size_t peakStorageOccupancy = 0; ///< max over instances
    double storageQubitNs = 0.0;  ///< total residency time
    std::size_t liveIdleWindows = 0; ///< idle windows holding state
    double liveIdleNs = 0.0;      ///< their total duration
    std::vector<ResidencyInterval> residencies; ///< by deposit op
    std::vector<InstancePressure> instances; ///< storage, ascending
    std::vector<ObservableBudget> observables; ///< ascending by id
    std::vector<LintFinding> hazards; ///< program order, orphans last

    /** Number of Severity::Error hazards. */
    std::size_t hazardErrors() const;
    /** Largest certified budget over all observables. */
    double maxBudget() const;

    bool operator==(const FlowAnalysis& o) const;
};

/** Knobs for analyzeFlow. */
struct FlowOptions
{
    /**
     * Fault structure of the same circuit (lint::analyzeFaults): when
     * present, each observable's budget is evaluated at
     * k = ceil(certified distance / 2); a distance-less observable
     * (kInfiniteDistance) gets budget 0 under weight 0.  When absent,
     * every observable is bounded at k = 1.
     */
    const FaultAnalysis* faults = nullptr;
    /**
     * Compose the gate-error union bound into the budget.  Requires a
     * circuit with deterministic detectors (the DEM is built
     * internally); gate on a clean lint report before enabling.  When
     * false, gateBound is 0 and budget equals idleBound.
     */
    bool gateBudget = false;
    /**
     * Staleness threshold for flow-stale-storage in ns; 0 means use
     * the hosting device's T2.
     */
    double staleAfterNs = 0.0;
};

/**
 * Run the full analysis.  The timing model must cover every qubit
 * (TimingModel::uniform/unit/withStorage size themselves from the
 * circuit).  Hazardous circuits still analyze — findings describe
 * what the dataflow would do — but budgets of a circuit whose
 * movement is broken describe a computation that does not happen;
 * gate on hazardErrors() == 0 before trusting them.
 */
FlowAnalysis analyzeFlow(const stab::Circuit& circuit,
                         const TimingModel& model,
                         const FlowOptions& options = {});

/**
 * Convert an analysis into findings appended to @p report: hazards
 * keep their severity; the movement/pressure summary and the
 * per-observable budgets are reported as infos.
 */
void flowFindings(const FlowAnalysis& analysis, LintReport& report);

/**
 * Process-wide memoization of flow analyses, keyed on (circuit
 * content, timing model content, options content) — the
 * ScheduleCache discipline: build-once via shared futures, wholesale
 * eviction over capacity, deterministic hit/miss telemetry
 * (`lint.flow.cache_hits` / `lint.flow.cache_misses`).
 */
class FlowCache
{
  public:
    static FlowCache& instance();

    /** Cached or freshly built analysis. */
    std::shared_ptr<const FlowAnalysis>
    analysis(const stab::Circuit& circuit, const TimingModel& model,
             const FlowOptions& options = {});

    /** Drop every cached analysis. */
    void clear();
    /** Number of cached analyses. */
    std::size_t size() const;

  private:
    struct Impl;
    FlowCache();
    ~FlowCache();
    std::unique_ptr<Impl> impl;
};

} // namespace flow
} // namespace lint
} // namespace hetarch
