#include "lint/flow_json.hh"

#include <sstream>

#include "core/logging.hh"
#include "core/strict_json.hh"

namespace hetarch {
namespace lint {
namespace flow {

namespace {

namespace cj = core::json;

/**
 * Recursive-descent parser for the v1 flow document on the shared
 * strict scanner: every deviation is fatal with a byte offset.
 */
class Parser : private cj::Scanner
{
  public:
    explicit Parser(const std::string& text) : Scanner(text) {}

    FlowDocument parse()
    {
        FlowDocument doc;
        expect('{');
        expectKey("files");
        expect('[');
        if (!consume(']')) {
            do
                doc.files.push_back(parseFile());
            while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-flow-v1")
            fail("unsupported flow report schema '" + schema + "'");
        expect('}');
        finish();
        return doc;
    }

  private:
    Severity parseSeverity()
    {
        const auto name = parseString();
        if (name == "info")
            return Severity::Info;
        if (name == "warning")
            return Severity::Warning;
        if (name == "error")
            return Severity::Error;
        fail("unknown severity '" + name + "'");
    }

    FlowFileReport parseFile()
    {
        FlowFileReport file;
        auto& a = file.analysis;
        expect('{');
        expectKey("critical_path_ns");
        a.criticalPathNs = parseDouble();
        expect(',');
        expectKey("device");
        file.device = parseString();
        expect(',');
        expectKey("hazards");
        expect('[');
        if (!consume(']')) {
            do {
                LintFinding f;
                expect('{');
                expectKey("message");
                f.message = parseString();
                expect(',');
                expectKey("op");
                f.opIndex = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("pass");
                f.pass = parseString();
                expect(',');
                expectKey("severity");
                f.severity = parseSeverity();
                expect('}');
                a.hazards.push_back(std::move(f));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("instances");
        expect('[');
        if (!consume(']')) {
            do {
                InstancePressure p;
                expect('{');
                expectKey("device");
                p.device = parseString();
                expect(',');
                expectKey("instance");
                p.instance = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("modes");
                p.modes = static_cast<int>(parseU64());
                expect(',');
                expectKey("peak_occupancy");
                p.peakOccupancy = parseU64();
                expect(',');
                expectKey("residencies");
                p.residencies = parseU64();
                expect(',');
                expectKey("storage_qubit_ns");
                p.storageQubitNs = parseDouble();
                expect('}');
                a.instances.push_back(std::move(p));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("live_idle_ns");
        a.liveIdleNs = parseDouble();
        expect(',');
        expectKey("live_idle_windows");
        a.liveIdleWindows = parseU64();
        expect(',');
        expectKey("movement_ns");
        a.movementNs = parseDouble();
        expect(',');
        expectKey("observables");
        expect('[');
        if (!consume(']')) {
            do {
                ObservableBudget b;
                expect('{');
                expectKey("budget");
                b.budget = parseDouble();
                expect(',');
                expectKey("gate_bound");
                b.gateBound = parseDouble();
                expect(',');
                expectKey("idle_bound");
                b.idleBound = parseDouble();
                expect(',');
                expectKey("observable");
                b.observable = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("weight");
                b.weight = parseU64();
                expect('}');
                a.observables.push_back(b);
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("path");
        file.path = parseString();
        expect(',');
        expectKey("peak_storage");
        a.peakStorageOccupancy = parseU64();
        expect(',');
        expectKey("residencies");
        expect('[');
        if (!consume(']')) {
            do {
                ResidencyInterval r;
                expect('{');
                expectKey("deposit_op");
                r.depositOp = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("end_ns");
                r.endNs = parseDouble();
                expect(',');
                expectKey("instance");
                r.instance = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("orphaned");
                r.orphaned = parseBool();
                expect(',');
                expectKey("qubit");
                r.qubit = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("retrieve_op");
                r.retrieveOp = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("start_ns");
                r.startNs = parseDouble();
                expect('}');
                a.residencies.push_back(r);
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("storage_qubit_ns");
        a.storageQubitNs = parseDouble();
        expect(',');
        expectKey("swaps");
        a.swapCount = parseU64();
        expect(',');
        expectKey("timed_ops");
        a.opsTracked = parseU64();
        expect('}');
        return file;
    }
};

} // namespace

std::string
toFlowJson(const FlowDocument& doc)
{
    std::ostringstream os;
    os << "{\n  \"files\": [";
    bool first = true;
    for (const auto& file : doc.files) {
        const auto& a = file.analysis;
        os << (first ? "\n    " : ",\n    ");
        os << "{\"critical_path_ns\": ";
        cj::writeDouble(os, a.criticalPathNs);
        os << ", \"device\": ";
        cj::writeString(os, file.device);
        os << ", \"hazards\": [";
        bool first_inner = true;
        for (const auto& h : a.hazards) {
            os << (first_inner ? "" : ", ") << "{\"message\": ";
            cj::writeString(os, h.message);
            os << ", \"op\": ";
            cj::writeOrNull(os, h.opIndex, kNoOpIndex);
            os << ", \"pass\": ";
            cj::writeString(os, h.pass);
            os << ", \"severity\": \"" << severityName(h.severity)
               << "\"}";
            first_inner = false;
        }
        os << "], \"instances\": [";
        first_inner = true;
        for (const auto& p : a.instances) {
            os << (first_inner ? "" : ", ") << "{\"device\": ";
            cj::writeString(os, p.device);
            os << ", \"instance\": " << p.instance
               << ", \"modes\": " << p.modes
               << ", \"peak_occupancy\": " << p.peakOccupancy
               << ", \"residencies\": " << p.residencies
               << ", \"storage_qubit_ns\": ";
            cj::writeDouble(os, p.storageQubitNs);
            os << '}';
            first_inner = false;
        }
        os << "], \"live_idle_ns\": ";
        cj::writeDouble(os, a.liveIdleNs);
        os << ", \"live_idle_windows\": " << a.liveIdleWindows
           << ", \"movement_ns\": ";
        cj::writeDouble(os, a.movementNs);
        os << ", \"observables\": [";
        first_inner = true;
        for (const auto& b : a.observables) {
            os << (first_inner ? "" : ", ") << "{\"budget\": ";
            cj::writeDouble(os, b.budget);
            os << ", \"gate_bound\": ";
            cj::writeDouble(os, b.gateBound);
            os << ", \"idle_bound\": ";
            cj::writeDouble(os, b.idleBound);
            os << ", \"observable\": " << b.observable
               << ", \"weight\": " << b.weight << '}';
            first_inner = false;
        }
        os << "], \"path\": ";
        cj::writeString(os, file.path);
        os << ", \"peak_storage\": " << a.peakStorageOccupancy
           << ", \"residencies\": [";
        first_inner = true;
        for (const auto& r : a.residencies) {
            os << (first_inner ? "" : ", ") << "{\"deposit_op\": "
               << r.depositOp << ", \"end_ns\": ";
            cj::writeDouble(os, r.endNs);
            os << ", \"instance\": " << r.instance << ", \"orphaned\": "
               << (r.orphaned ? "true" : "false") << ", \"qubit\": "
               << r.qubit << ", \"retrieve_op\": ";
            cj::writeOrNull(os, r.retrieveOp, kNoOpIndex);
            os << ", \"start_ns\": ";
            cj::writeDouble(os, r.startNs);
            os << '}';
            first_inner = false;
        }
        os << "], \"storage_qubit_ns\": ";
        cj::writeDouble(os, a.storageQubitNs);
        os << ", \"swaps\": " << a.swapCount
           << ", \"timed_ops\": " << a.opsTracked << '}';
        first = false;
    }
    os << (first ? "" : "\n  ")
       << "],\n  \"schema\": \"hetarch-flow-v1\"\n}\n";
    return os.str();
}

FlowDocument
parseFlowJson(const std::string& text)
{
    try {
        return Parser(text).parse();
    } catch (const cj::ScanError& e) {
        HETARCH_FATAL("flow report parse error at byte ", e.offset,
                      ": ", e.reason);
    }
}

} // namespace flow
} // namespace lint
} // namespace hetarch
