#include "lint/dataflow.hh"

#include <algorithm>
#include <future>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "lint/schedule.hh"
#include "obs/obs.hh"
#include "stab/circuit_stats.hh"
#include "stab/dem.hh"

namespace hetarch {
namespace lint {
namespace flow {

namespace {

// Telemetry.  All counters are deterministic functions of the
// analyzed (circuit, model, options) sequence: the walk is a serial
// sweep in program order and the per-observable budget DP depends
// only on its inputs, so worker count cannot move them — the
// exec/obs two-tier contract.  The histogram (wall time) is advisory.
obs::Counter& cAnalyses = obs::counter("lint.flow.analyses");
obs::Counter& cHazards = obs::counter("lint.flow.hazards");
obs::Counter& cCacheHits = obs::counter("lint.flow.cache_hits");
obs::Counter& cCacheMisses = obs::counter("lint.flow.cache_misses");
obs::Histogram& hAnalyzeNs = obs::histogram("lint.flow.analyze_ns");

/** Tolerance for "simultaneous" interval endpoints (ns). */
constexpr double kEps = 1e-9;

/** Abstract content of one qubit location. */
enum class Content : std::uint8_t
{
    Fresh,     ///< |0>: implicit init, R/MR, or vacuum from storage
    Data,      ///< live computational state
    Collapsed, ///< measured, not yet reset
};

bool
isGate1q(stab::OpCode code)
{
    switch (code) {
      case stab::OpCode::H:
      case stab::OpCode::S:
      case stab::OpCode::SDG:
      case stab::OpCode::X:
      case stab::OpCode::Y:
      case stab::OpCode::Z:
        return true;
      default:
        return false;
    }
}

bool
isTimed(stab::OpCode code)
{
    switch (code) {
      case stab::OpCode::CX:
      case stab::OpCode::CZ:
      case stab::OpCode::SWAP:
      case stab::OpCode::M:
      case stab::OpCode::R:
      case stab::OpCode::MR:
        return true;
      default:
        return isGate1q(code);
    }
}

/**
 * One tracked qubit location.  The content (and its viaSwap flag)
 * travels through SWAPs; the residency fields describe the *location*
 * — what the storage mode currently hosts — and never move.
 */
struct ModeState
{
    Content content = Content::Fresh;
    bool viaSwap = false;     ///< Fresh that arrived through a SWAP
    double residentSinceNs = 0.0;
    std::uint32_t depositOp = 0;
    std::size_t openResidency = kNoOpIndex; ///< index into residencies
};

} // namespace

std::size_t
FlowAnalysis::hazardErrors() const
{
    std::size_t n = 0;
    for (const auto& h : hazards)
        n += h.severity == Severity::Error ? 1 : 0;
    return n;
}

double
FlowAnalysis::maxBudget() const
{
    double worst = 0.0;
    for (const auto& o : observables)
        worst = std::max(worst, o.budget);
    return worst;
}

bool
FlowAnalysis::operator==(const FlowAnalysis& o) const
{
    auto hazardsEqual = [](const std::vector<LintFinding>& a,
                           const std::vector<LintFinding>& b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].pass != b[i].pass ||
                a[i].severity != b[i].severity ||
                a[i].opIndex != b[i].opIndex ||
                a[i].message != b[i].message)
                return false;
        }
        return true;
    };
    return opsTracked == o.opsTracked && swapCount == o.swapCount &&
           movementNs == o.movementNs &&
           criticalPathNs == o.criticalPathNs &&
           peakStorageOccupancy == o.peakStorageOccupancy &&
           storageQubitNs == o.storageQubitNs &&
           liveIdleWindows == o.liveIdleWindows &&
           liveIdleNs == o.liveIdleNs && residencies == o.residencies &&
           instances == o.instances && observables == o.observables &&
           hazardsEqual(hazards, o.hazards);
}

FlowAnalysis
analyzeFlow(const stab::Circuit& circuit, const TimingModel& model,
            const FlowOptions& options)
{
    obs::ScopedTimer timer(hAnalyzeNs);
    cAnalyses.add();

    const std::size_t nq = circuit.numQubits();
    HETARCH_ASSERT(model.assignment.size() >= nq,
                   "timing model covers ", model.assignment.size(),
                   " qubits, circuit needs ", nq);

    // The ASAP schedule supplies every op's start/end time (memoized;
    // dse sweeps and the CLI ask for both analyses on the same pair).
    const auto sched_analysis = sched::ScheduleCache::instance().analysis(
        circuit, model, sched::SchedOptions{options.faults});

    FlowAnalysis out;
    out.criticalPathNs = sched_analysis->criticalPathNs;

    const auto& ops = circuit.ops();
    std::vector<sched::ScheduledOp> at(ops.size());
    for (const auto& s : sched_analysis->schedule)
        at[s.op] = s;

    // --- the abstract walk -------------------------------------------
    std::vector<ModeState> state(nq);
    std::vector<std::uint8_t> touched(nq, 0); ///< had a timed op
    std::vector<double> lastEndNs(nq, 0.0);
    std::vector<std::uint8_t> recordVacuum;
    recordVacuum.reserve(circuit.numMeasurements());
    // Live-Data occupancy per instance (program order is the
    // deterministic tie-break; single-port instances serialize their
    // accesses anyway or trip sched-overlap).
    std::vector<std::size_t> occupancy(model.devices.size(), 0);
    std::vector<std::size_t> peak(model.devices.size(), 0);
    // Idle windows during which the location held non-Fresh content,
    // collected per qubit so the budget accumulates in the same
    // (qubit, start) order as the sched idle bound.
    std::vector<std::vector<double>> liveProbs(nq);

    auto hazard = [&](const char* pass, Severity sev, std::size_t op,
                      const std::string& message) {
        out.hazards.push_back({pass, sev, op, message});
    };

    auto noteIdle = [&](std::uint32_t q, double startNs) {
        if (!touched[q])
            return;
        const double gap = startNs - lastEndNs[q];
        if (gap <= kEps || state[q].content == Content::Fresh)
            return;
        const auto& dev = model.deviceFor(q);
        liveProbs[q].push_back(sched::idleError(gap, dev.t1, dev.t2));
        ++out.liveIdleWindows;
        out.liveIdleNs += gap;
    };

    auto closeResidency = [&](std::uint32_t q, double endNs,
                              std::size_t retrieveOp, bool orphaned) {
        const std::size_t r = state[q].openResidency;
        if (r == kNoOpIndex)
            return;
        out.residencies[r].endNs = endNs;
        out.residencies[r].retrieveOp = retrieveOp;
        out.residencies[r].orphaned = orphaned;
        state[q].openResidency = kNoOpIndex;
        const auto inst = model.assignment[q];
        HETARCH_ASSERT(occupancy[inst] > 0, "residency underflow");
        --occupancy[inst];
    };

    auto openResidency = [&](std::uint32_t q, std::uint32_t op,
                             double startNs) {
        const auto inst = model.assignment[q];
        state[q].openResidency = out.residencies.size();
        state[q].residentSinceNs = startNs;
        state[q].depositOp = op;
        out.residencies.push_back(
            {q, inst, startNs, startNs, op, kNoOpIndex, false});
        ++occupancy[inst];
        peak[inst] = std::max(peak[inst], occupancy[inst]);
        const auto& dev = model.devices[inst];
        if (occupancy[inst] > static_cast<std::size_t>(dev.modes)) {
            std::ostringstream os;
            os << "deposit onto device instance " << inst << " ("
               << dev.name << ") raises live occupancy to "
               << occupancy[inst] << ", but it has only " << dev.modes
               << (dev.modes == 1 ? " mode" : " modes");
            hazard("flow-capacity", Severity::Error, op, os.str());
        }
    };

    for (std::uint32_t idx = 0; idx < ops.size(); ++idx) {
        const auto& op = ops[idx];

        if (op.code == stab::OpCode::DETECTOR ||
            op.code == stab::OpCode::OBSERVABLE) {
            for (const auto r : op.targets) {
                if (r < recordVacuum.size() && recordVacuum[r]) {
                    std::ostringstream os;
                    os << (op.code == stab::OpCode::DETECTOR
                               ? "detector"
                               : "observable")
                       << " consumes measurement record " << r
                       << " of vacuum: the qubit's state was moved to "
                          "storage and never retrieved";
                    hazard("flow-use-before-init", Severity::Error, idx,
                           os.str());
                }
            }
            continue;
        }
        if (!isTimed(op.code))
            continue; // noise channels are instantaneous labels

        const auto& when = at[idx];
        for (const auto t : op.targets)
            noteIdle(t, when.startNs);

        if (op.code == stab::OpCode::SWAP) {
            ++out.swapCount;
            out.movementNs += when.endNs - when.startNs;
            const std::uint32_t a = op.targets[0];
            const std::uint32_t b = op.targets[1];

            // Storage-side bookkeeping, per storage end.  A SWAP
            // exchanges contents, so nothing is ever destroyed — the
            // hazards are intent bugs the exchange semantics expose.
            for (const auto [s, c] : {std::pair{a, b}, std::pair{b, a}}) {
                if (!model.deviceFor(s).storage)
                    continue;
                const Content incoming = state[c].content;
                const Content held = state[s].content;
                if (held == Content::Data) {
                    // Retrieval: the residency ends here.
                    const double sat =
                        when.startNs - state[s].residentSinceNs;
                    const auto& dev = model.deviceFor(s);
                    const double threshold = options.staleAfterNs > 0
                                                 ? options.staleAfterNs
                                                 : dev.t2;
                    if (sat > threshold + kEps) {
                        std::ostringstream os;
                        os << "retrieval from storage mode (qubit "
                           << s << ", " << dev.name << ") after "
                           << sat << " ns resident, over the "
                           << threshold << " ns staleness threshold";
                        hazard("flow-stale-storage", Severity::Warning,
                               idx, os.str());
                    }
                    closeResidency(s, when.startNs, idx, false);
                    if (incoming == Content::Data) {
                        std::ostringstream os;
                        os << "deposit onto storage mode (qubit " << s
                           << ") already holding state from op "
                           << state[s].depositOp
                           << "; the previous state pops out into "
                              "qubit "
                           << c;
                        hazard("flow-double-swap", Severity::Warning,
                               idx, os.str());
                    }
                } else if (held == Content::Collapsed) {
                    std::ostringstream os;
                    os << "swap with storage mode (qubit " << s
                       << ") holding a measured, un-reset state; the "
                          "stale result pops out into qubit "
                       << c;
                    hazard("flow-double-swap", Severity::Warning, idx,
                           os.str());
                } else if (incoming != Content::Data) {
                    // Nothing real moves either way: the storage mode
                    // was never written, so the "retrieval" half of
                    // the exchange brings back vacuum.
                    std::ostringstream os;
                    os << "swap with storage mode (qubit " << s
                       << ") that was never written: qubit " << c
                       << " receives vacuum";
                    hazard("flow-use-before-init", Severity::Error, idx,
                           os.str());
                }
                if (incoming == Content::Data)
                    openResidency(s, idx, when.endNs);
            }

            // The exchange itself: content and its provenance flag
            // travel; the location-bound residency fields stay put.
            std::swap(state[a].content, state[b].content);
            std::swap(state[a].viaSwap, state[b].viaSwap);
            // Fresh content that crossed a SWAP is moved vacuum, not a
            // local |0>: measuring it is the forgot-to-retrieve bug.
            for (const auto t : op.targets)
                if (state[t].content == Content::Fresh)
                    state[t].viaSwap = true;
        } else if (op.code == stab::OpCode::R ||
                   op.code == stab::OpCode::MR) {
            for (const auto t : op.targets) {
                if (op.code == stab::OpCode::MR)
                    recordVacuum.push_back(
                        state[t].content == Content::Fresh &&
                        state[t].viaSwap);
                closeResidency(t, at[idx].startNs, idx, false);
                state[t].content = Content::Fresh;
                state[t].viaSwap = false;
            }
        } else if (op.code == stab::OpCode::M) {
            for (const auto t : op.targets) {
                recordVacuum.push_back(
                    state[t].content == Content::Fresh &&
                    state[t].viaSwap);
                state[t].content = Content::Collapsed;
            }
        } else {
            // Computational gates: contents become Data.
            for (const auto t : op.targets) {
                if (state[t].content == Content::Collapsed) {
                    std::ostringstream os;
                    os << stab::opCodeName(op.code) << " on qubit " << t
                       << " consumes a measured, un-reset state";
                    hazard("flow-measure-reuse", Severity::Warning, idx,
                           os.str());
                }
                state[t].content = Content::Data;
                state[t].viaSwap = false;
            }
        }

        for (const auto t : op.targets) {
            touched[t] = 1;
            lastEndNs[t] = when.endNs;
        }
        ++out.opsTracked;
    }

    // --- orphans: state still parked at circuit end ------------------
    for (std::size_t q = 0; q < nq; ++q) {
        const auto qu = static_cast<std::uint32_t>(q);
        if (state[q].openResidency == kNoOpIndex)
            continue;
        const std::uint32_t dep = state[q].depositOp;
        std::ostringstream os;
        os << "storage mode (qubit " << qu << ", "
           << model.deviceFor(qu).name
           << ") still holds state deposited by op " << dep
           << " at circuit end";
        hazard("flow-orphan", Severity::Warning, dep, os.str());
        closeResidency(qu, out.criticalPathNs, kNoOpIndex, true);
    }
    cHazards.add(out.hazards.size());

    // --- pressure summary --------------------------------------------
    for (const auto& r : out.residencies)
        out.storageQubitNs += r.durationNs();
    for (std::size_t i = 0; i < model.devices.size(); ++i) {
        if (!model.devices[i].storage)
            continue;
        InstancePressure p;
        p.instance = static_cast<std::uint32_t>(i);
        p.device = model.devices[i].name;
        p.modes = model.devices[i].modes;
        p.peakOccupancy = peak[i];
        for (const auto& r : out.residencies) {
            if (r.instance != p.instance)
                continue;
            ++p.residencies;
            p.storageQubitNs += r.durationNs();
        }
        out.instances.push_back(std::move(p));
        out.peakStorageOccupancy =
            std::max(out.peakStorageOccupancy, peak[i]);
    }

    // --- certified end-to-end budgets --------------------------------
    // Gate errors (DEM mechanisms) and live idle-decoherence windows
    // are independent mechanism families; failure of an observable
    // certified at distance d under min-weight decoding needs at
    // least k = ceil(d / 2) of them to fire, so e_k over the combined
    // probabilities bounds the logical error rate end to end.
    std::vector<double> probs;
    if (options.gateBudget) {
        const auto dem = stab::buildDetectorErrorModel(circuit);
        probs.reserve(dem.mechanisms.size());
        for (const auto& m : dem.mechanisms)
            probs.push_back(m.probability);
    }
    const std::size_t gateMechs = probs.size();
    for (std::size_t q = 0; q < nq; ++q)
        for (const double p : liveProbs[q])
            probs.push_back(p);

    const std::size_t nobs = circuit.numObservables();
    std::vector<ObservableBudget> slots(nobs);
    exec::parallelFor(nobs, [&](std::size_t i) {
        ObservableBudget b;
        b.observable = static_cast<std::uint32_t>(i);
        b.weight = 1;
        if (options.faults) {
            b.weight = 0;
            for (const auto& of : options.faults->observables) {
                if (of.observable != b.observable)
                    continue;
                if (of.distance != kInfiniteDistance)
                    b.weight = (of.distance + 1) / 2;
                break;
            }
        }
        if (b.weight != 0) {
            const std::vector<double> gate(probs.begin(),
                                           probs.begin() + gateMechs);
            const std::vector<double> idle(probs.begin() + gateMechs,
                                           probs.end());
            b.gateBound =
                sched::elementarySymmetricBound(gate, b.weight);
            b.idleBound =
                sched::elementarySymmetricBound(idle, b.weight);
            b.budget = sched::elementarySymmetricBound(probs, b.weight);
        }
        slots[i] = b;
    });
    out.observables = std::move(slots);
    return out;
}

void
flowFindings(const FlowAnalysis& analysis, LintReport& report)
{
    for (const auto& h : analysis.hazards)
        report.findings.push_back(h);

    {
        std::ostringstream os;
        os << analysis.swapCount << " swaps moving state for "
           << analysis.movementNs << " ns; peak storage occupancy "
           << analysis.peakStorageOccupancy << " across "
           << analysis.residencies.size() << " residencies ("
           << analysis.storageQubitNs << " qubit-ns in storage); "
           << analysis.liveIdleWindows << " live idle windows ("
           << analysis.liveIdleNs << " ns)";
        report.add("flow-summary", Severity::Info, kNoOpIndex,
                   os.str());
    }
    for (const auto& o : analysis.observables) {
        std::ostringstream os;
        os << "observable " << o.observable
           << ": certified end-to-end budget " << o.budget;
        if (o.weight != 0)
            os << " (gate " << o.gateBound << " + live idle "
               << o.idleBound << " at weight " << o.weight << ")";
        else
            os << " (no undetected fault path)";
        report.add("flow-budget", Severity::Info, kNoOpIndex, os.str());
    }
}

// --- cache ------------------------------------------------------------

struct FlowCache::Impl
{
    struct Key
    {
        std::uint64_t circuitHash;
        std::uint64_t numOps;
        std::uint64_t modelHash;
        std::uint64_t optionsHash;

        bool operator==(const Key& o) const
        {
            return circuitHash == o.circuitHash && numOps == o.numOps &&
                   modelHash == o.modelHash &&
                   optionsHash == o.optionsHash;
        }
    };

    struct KeyHash
    {
        std::size_t operator()(const Key& k) const
        {
            return static_cast<std::size_t>(
                k.circuitHash ^ (k.numOps * 0x9e3779b97f4a7c15ull) ^
                (k.modelHash * 0xff51afd7ed558ccdull) ^ k.optionsHash);
        }
    };

    /** Whole-cache eviction threshold; sweeps touch shapes in bursts. */
    static constexpr std::size_t kCapacity = 128;

    using Future =
        std::shared_future<std::shared_ptr<const FlowAnalysis>>;

    mutable std::mutex mutex;
    std::unordered_map<Key, Future, KeyHash> entries;
};

namespace {

/** The parts of FlowOptions the analysis depends on. */
std::uint64_t
hashFlowOptions(const FlowOptions& options)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    if (options.faults) {
        mix(options.faults->observables.size());
        for (const auto& of : options.faults->observables) {
            mix(of.observable);
            mix(of.distance);
        }
    }
    mix(options.gateBudget ? 1 : 2);
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof options.staleAfterNs);
    __builtin_memcpy(&bits, &options.staleAfterNs, sizeof bits);
    mix(bits);
    return h;
}

} // namespace

FlowCache::FlowCache() : impl(std::make_unique<Impl>()) {}
FlowCache::~FlowCache() = default;

FlowCache&
FlowCache::instance()
{
    static FlowCache cache;
    return cache;
}

std::shared_ptr<const FlowAnalysis>
FlowCache::analysis(const stab::Circuit& circuit,
                    const TimingModel& model, const FlowOptions& options)
{
    const Impl::Key key{stab::hashCircuit(circuit), circuit.ops().size(),
                        sched::hashTimingModel(model),
                        hashFlowOptions(options)};
    std::promise<std::shared_ptr<const FlowAnalysis>> promise;
    Impl::Future future;
    {
        std::lock_guard<std::mutex> lock(impl->mutex);
        auto it = impl->entries.find(key);
        if (it != impl->entries.end()) {
            cCacheHits.add();
            future = it->second;
        } else {
            cCacheMisses.add();
            if (impl->entries.size() >= Impl::kCapacity)
                impl->entries.clear();
            impl->entries.emplace(key, promise.get_future().share());
        }
    }
    if (future.valid())
        return future.get();
    // This thread claimed the build; the analyzer is deterministic, so
    // waiters get exactly what a fresh run would produce.
    auto analysis = std::make_shared<const FlowAnalysis>(
        analyzeFlow(circuit, model, options));
    promise.set_value(analysis);
    return analysis;
}

void
FlowCache::clear()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->entries.clear();
}

std::size_t
FlowCache::size() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->entries.size();
}

} // namespace flow
} // namespace lint
} // namespace hetarch
