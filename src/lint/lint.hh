/**
 * @file
 * Static verification of circuits (`hetarch::lint`): a multi-pass
 * verifier over the stab::Circuit IR that runs *before* simulation.
 *
 * HetArch establishes correctness hierarchically: standard cells obey
 * the design rules DR1-DR4 and circuits obey the detector-determinism
 * condition before any expensive sampling runs.  Today's simulators
 * only discover a malformed circuit mid-run (or not at all); the lint
 * passes prove the same properties statically and report them in a
 * structured LintReport, mirroring the cells::DrcReport idiom.
 *
 * Passes:
 *   structural   op shape: target/param arity per opcode, duplicate
 *                targets inside one op, targets within the register
 *   record-ref   DETECTOR / OBSERVABLE_INCLUDE indices resolve to real
 *                measurements, with no forward references
 *   prob-range   noise parameters lie in [0,1]; PAULI_CHANNEL_1
 *                triples sum to at most 1
 *   liveness     redundant back-to-back measurements, measurements of
 *                untouched qubits, coupling components that are
 *                operated on but never observed
 *   determinism  a symbolic Clifford propagation that *proves* each
 *                detector and observable deterministic under noiseless
 *                execution (no Monte-Carlo; exact, unlike the sampled
 *                TableauSimulator::checkDetectorsDeterministic)
 *
 * Cell-level verification (lint::verifyCell, verify_cell.hh) composes
 * cells::checkDesignRules with these passes over the cell's lowered
 * schedule, giving one report for the whole hierarchy level.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stab/circuit.hh"

namespace hetarch {
namespace lint {

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    Info,    ///< stylistic / informational, never fails a build
    Warning, ///< suspicious but simulable (fails only strict mode)
    Error,   ///< the circuit will misbehave under simulation
};

/** Render "info" / "warning" / "error". */
const char* severityName(Severity s);

/** Sentinel op index for findings not tied to one operation. */
inline constexpr std::size_t kNoOpIndex = static_cast<std::size_t>(-1);

/** One finding of one pass. */
struct LintFinding
{
    std::string pass;     ///< pass name ("structural", "record-ref", ...)
    Severity severity = Severity::Error;
    std::size_t opIndex = kNoOpIndex; ///< offending op, or kNoOpIndex
    std::string message;
};

/** Structured result of a lint run. */
struct LintReport
{
    std::vector<LintFinding> findings;

    void add(std::string pass, Severity severity, std::size_t op_index,
             std::string message);

    /** No errors (warnings and infos allowed). */
    bool clean() const { return errorCount() == 0; }
    /** No errors and no warnings. */
    bool cleanStrict() const { return errorCount() + warningCount() == 0; }

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** One finding per line: "error[pass] op 12: message". */
    std::string toString() const;
};

/** Knobs for lintCircuit. */
struct LintOptions
{
    /**
     * Run the symbolic detector-determinism pass.  It is the most
     * expensive pass (tableau-shaped cost); tools linting huge circuits
     * in a hurry may disable it.
     */
    bool checkDeterminism = true;

    /**
     * Run the static fault-path analyzer (faults.hh): certified
     * circuit distance per observable, detector-coverage holes, and
     * union-bound error budgets.  Off by default; it builds the
     * detector error model, which presumes deterministic detectors,
     * so lintCircuit only runs it when every earlier pass is clean.
     */
    bool checkFaults = false;

    /** Union-bound weight override for the faults pass (0 = derive
        ceil(distance / 2) per observable). */
    std::size_t faultMaxWeight = 0;
};

// --- individual passes ------------------------------------------------
// Each appends its findings to @p report and touches nothing else, so
// they can be composed freely.  passDeterminism assumes the circuit is
// structurally valid; lintCircuit sequences them safely.

void passStructural(const stab::Circuit& circuit, LintReport& report);
void passRecordRefs(const stab::Circuit& circuit, LintReport& report);
void passProbability(const stab::Circuit& circuit, LintReport& report);
void passLiveness(const stab::Circuit& circuit, LintReport& report);
void passDeterminism(const stab::Circuit& circuit, LintReport& report);

/** Run all passes in order (determinism only if nothing failed before). */
LintReport lintCircuit(const stab::Circuit& circuit,
                       const LintOptions& options = {});

/**
 * Builder guard: lint @p circuit and panic with the full report when it
 * has errors.  Circuit generators call this under !NDEBUG so a broken
 * builder fails fast at construction instead of corrupting a run.
 */
void assertClean(const stab::Circuit& circuit, const char* context,
                 const LintOptions& options = {});

} // namespace lint
} // namespace hetarch
