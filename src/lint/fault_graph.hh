/**
 * @file
 * Fault graph: boundary-aware graphlike decomposition of a detector
 * error model, the substrate of the static fault-path analyzer.
 *
 * Every DEM mechanism flips a set of detectors.  Mechanisms flipping
 * one or two detectors are *graphlike* and become edges of an
 * undirected multigraph over detector nodes — one-detector mechanisms
 * connect to a virtual boundary node, exactly as in
 * qec::DecodingGraph::fromDem.  Mechanisms flipping more than two
 * detectors (hyperedges, e.g. Y errors on surface-code data qubits)
 * are excluded from the graph but tracked, so analyses over the graph
 * can state precisely what they certify: properties of the graphlike
 * subset of fault sets.
 *
 * The classification also surfaces the two coverage pathologies the
 * analyzer reports directly:
 *   - undetectable mechanisms: flip an observable but no detector
 *     (a distance-1 hole — a single fault causes a silent logical
 *     error);
 *   - dead detectors: no mechanism (graphlike or not) ever flips them,
 *     so they carry no syndrome information.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "stab/dem.hh"

namespace hetarch {
namespace lint {

/** One graphlike mechanism, as an edge between two nodes. */
struct FaultEdge
{
    /** First endpoint (a detector id; never the boundary). */
    std::uint32_t u = 0;
    /** Second endpoint: a detector id or FaultGraph::boundaryNode(). */
    std::uint32_t v = 0;
    /** Index into dem.mechanisms. */
    std::uint32_t mechanism = 0;
    /** Logical observables flipped when the mechanism fires. */
    std::uint32_t observables = 0;
    double probability = 0.0;
};

/** The graphlike fault graph of a DEM (immutable after fromDem). */
class FaultGraph
{
  public:
    /** Classify every mechanism of @p dem and build the graph. */
    static FaultGraph fromDem(const stab::DetectorErrorModel& dem);

    std::size_t numDetectors() const { return nDetectors; }
    /** Node id of the virtual boundary (== numDetectors()). */
    std::uint32_t boundaryNode() const
    {
        return static_cast<std::uint32_t>(nDetectors);
    }
    /** Detector nodes plus the boundary. */
    std::size_t numNodes() const { return nDetectors + 1; }

    /** Graphlike mechanisms, in ascending mechanism order. */
    const std::vector<FaultEdge>& edges() const { return edgeList; }

    /**
     * Edge ids incident to each node, indexed [0, numNodes()); the
     * last entry is the boundary.  Each list is ascending, so graph
     * traversals that scan it in order are deterministic.
     */
    const std::vector<std::vector<std::uint32_t>>& incidence() const
    {
        return inc;
    }

    /** Mechanisms flipping an observable but no detector (ascending). */
    const std::vector<std::uint32_t>& undetectableMechanisms() const
    {
        return undetectable;
    }

    /** Mechanisms flipping more than two detectors (ascending). */
    const std::vector<std::uint32_t>& hyperedgeMechanisms() const
    {
        return hyperedges;
    }

    /** OR of observable masks over the excluded hyperedge mechanisms. */
    std::uint32_t hyperedgeObservables() const { return hyperObs; }

    /** Detectors no mechanism at all can flip (ascending). */
    const std::vector<std::uint32_t>& deadDetectors() const
    {
        return dead;
    }

  private:
    std::size_t nDetectors = 0;
    std::vector<FaultEdge> edgeList;
    std::vector<std::vector<std::uint32_t>> inc;
    std::vector<std::uint32_t> undetectable;
    std::vector<std::uint32_t> hyperedges;
    std::uint32_t hyperObs = 0;
    std::vector<std::uint32_t> dead;
};

} // namespace lint
} // namespace hetarch
