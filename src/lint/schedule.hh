/**
 * @file
 * Static timing/schedule analyzer (`hetarch::lint::sched`): lowers a
 * stab::Circuit plus a TimingModel into per-qubit timelines and
 * certifies three things about them before a single shot is simulated.
 *
 *  latency   ASAP schedule over per-qubit ready times, every op costed
 *            from its qubits' device timing (timing_model.hh).  The
 *            critical path is the makespan; per-op start/end times and
 *            per-qubit busy/idle decompositions are part of the result.
 *            Under TimingModel::unit the critical path equals
 *            stab::CircuitStats::depth exactly (pinned by tests), so
 *            the two schedulers cannot drift apart.
 *
 *  idle bound  Idle windows (gaps between a qubit's timed ops) decohere
 *            at the hosting device's T1/T2; each window is an
 *            independent error mechanism with probability
 *            idleError(gap, T1, T2).  For an observable certified at
 *            fault distance d (lint::analyzeFaults), failure under
 *            min-weight decoding requires at least k = ceil(d / 2)
 *            mechanisms to fire, so the idle-decoherence contribution
 *            is bounded by e_k over the window probabilities — the same
 *            elementary-symmetric-polynomial argument as the fault
 *            analyzer's union bound (elementarySymmetricBound).
 *            Without a fault analysis, k = 1 (a plain union bound).
 *            Observables fan out over exec::parallelFor with ordered
 *            reduction: bit-identical at any worker count.
 *
 *  hazards   Structural timing defects, reported as LintFindings:
 *     sched-gateset    [error]   gate/reset on a SWAP-only storage
 *                                device (DR2: storage is accessed, not
 *                                operated; measurements are the
 *                                readout pass's concern)
 *     sched-readout    [error]   M/MR on a device without readout
 *     sched-feedback   [error]   DETECTOR/OBSERVABLE consumes a record
 *                                whose measurement can never complete
 *                                (produced on a readout-less device)
 *     sched-capacity   [error]   more qubits assigned to an instance
 *                                than it has modes
 *     sched-overlap    [error]   two ops in flight simultaneously on
 *                                one multi-qubit instance (a storage
 *                                resonator owns a single port; ASAP
 *                                per-qubit schedules can demand
 *                                concurrency the hardware lacks)
 *     sched-reset-gap  [warning] a measured qubit re-enters gates
 *                                without an intervening reset
 *
 *  Per-qubit overlap hazards cannot arise: ASAP ready times serialize
 *  each qubit by construction.  Likewise a record used "before" its
 *  readout completes is structurally excluded by the record-ref pass
 *  (no forward references) — what survives statically is the record
 *  that never completes at all, which is sched-feedback.
 *
 * Analyses are memoized in a process-wide ScheduleCache keyed on
 * (circuit hash, timing-model hash, fault-structure hash), the same
 * build-once / burst-eviction discipline as qec::DecoderCache.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lint/faults.hh"
#include "lint/lint.hh"
#include "lint/timing_model.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace lint {
namespace sched {

/** One scheduled operation (timed ops only). */
struct ScheduledOp
{
    std::uint32_t op = 0;  ///< index into Circuit::ops()
    double startNs = 0.0;
    double endNs = 0.0;

    bool operator==(const ScheduledOp& o) const
    {
        return op == o.op && startNs == o.startNs && endNs == o.endNs;
    }
};

/** A gap between two timed ops on one qubit. */
struct IdleWindow
{
    std::uint32_t qubit = 0;
    double startNs = 0.0;
    double endNs = 0.0;
    /** idleError(end - start, T1, T2) of the hosting device. */
    double errorProb = 0.0;

    double durationNs() const { return endNs - startNs; }

    bool operator==(const IdleWindow& o) const
    {
        return qubit == o.qubit && startNs == o.startNs &&
               endNs == o.endNs && errorProb == o.errorProb;
    }
};

/** Busy/idle decomposition of one qubit's timeline. */
struct QubitTimeline
{
    std::uint32_t qubit = 0;
    std::string device;      ///< hosting instance's catalog name
    double busyNs = 0.0;     ///< total time under timed ops
    double idleNs = 0.0;     ///< total gap time between timed ops
    std::size_t idleWindows = 0;

    bool operator==(const QubitTimeline& o) const
    {
        return qubit == o.qubit && device == o.device &&
               busyNs == o.busyNs && idleNs == o.idleNs &&
               idleWindows == o.idleWindows;
    }
};

/** Certified idle-decoherence budget of one observable. */
struct ObservableIdleBound
{
    std::uint32_t observable = 0;
    /** e_k over the idle-window error probabilities (capped at 1). */
    double idleBound = 0.0;
    /** The k the bound was evaluated at (ceil(distance / 2), or 1). */
    std::size_t weight = 0;

    bool operator==(const ObservableIdleBound& o) const
    {
        return observable == o.observable && idleBound == o.idleBound &&
               weight == o.weight;
    }
};

/** Full analyzer output for one circuit / timing model. */
struct ScheduleAnalysis
{
    double criticalPathNs = 0.0;   ///< makespan of the ASAP schedule
    std::size_t opsScheduled = 0;  ///< timed ops (gates, M, R, MR)
    double totalIdleNs = 0.0;      ///< sum of all idle windows
    std::vector<ScheduledOp> schedule;  ///< ascending by op index
    std::vector<QubitTimeline> qubits;  ///< ascending by qubit
    std::vector<IdleWindow> idleWindows; ///< by qubit, then start
    std::vector<ObservableIdleBound> observables; ///< ascending by id
    std::vector<LintFinding> hazards;   ///< the hazard pass's findings

    /** Largest certified idle bound over all observables. */
    double certifiedIdleBound() const;
    /** Number of Severity::Error hazards. */
    std::size_t hazardErrors() const;

    bool operator==(const ScheduleAnalysis& o) const
    {
        return criticalPathNs == o.criticalPathNs &&
               opsScheduled == o.opsScheduled &&
               totalIdleNs == o.totalIdleNs && schedule == o.schedule &&
               qubits == o.qubits && idleWindows == o.idleWindows &&
               observables == o.observables &&
               hazardsEqual(hazards, o.hazards);
    }

  private:
    static bool hazardsEqual(const std::vector<LintFinding>& a,
                             const std::vector<LintFinding>& b);
};

/** Knobs for analyzeSchedule. */
struct SchedOptions
{
    /**
     * Fault structure of the same circuit (lint::analyzeFaults): when
     * present, each observable's idle bound is evaluated at
     * k = ceil(certified distance / 2); a distance-less observable
     * (kInfiniteDistance) gets bound 0 under weight 0.  When absent,
     * every observable is bounded at k = 1.
     */
    const FaultAnalysis* faults = nullptr;
};

/**
 * Elementary symmetric polynomial e_k over @p probs, capped at 1 —
 * the shared budget kernel of the fault analyzer's union bound and the
 * schedule analyzer's idle bound (O(n * k) DP, index order, exactly
 * deterministic).  k = 0 returns the vacuous bound 1.
 */
double elementarySymmetricBound(const std::vector<double>& probs,
                                std::size_t weight);

/**
 * Run the full analysis.  The timing model must cover every qubit of
 * the circuit (TimingModel::uniform/unit/withStorage size themselves
 * from the circuit).  Hazardous circuits still schedule — findings
 * describe what the timeline would do — but their latency and bounds
 * describe a schedule the hardware cannot execute; gate on
 * hazardErrors() == 0 before trusting them.
 */
ScheduleAnalysis analyzeSchedule(const stab::Circuit& circuit,
                                 const TimingModel& model,
                                 const SchedOptions& options = {});

/**
 * Convert an analysis into findings appended to @p report: hazards
 * keep their severity; critical path, total idle time, and
 * per-observable idle bounds are reported as infos.
 */
void scheduleFindings(const ScheduleAnalysis& analysis,
                      LintReport& report);

/**
 * Process-wide memoization of schedule analyses, keyed on (circuit
 * content, timing model content, fault-structure content) — the
 * qec::DecoderCache discipline: build-once via shared futures,
 * wholesale eviction over capacity, deterministic hit/miss telemetry
 * (`lint.sched.cache_hits` / `lint.sched.cache_misses`).
 */
class ScheduleCache
{
  public:
    static ScheduleCache& instance();

    /** Cached or freshly built analysis. */
    std::shared_ptr<const ScheduleAnalysis>
    analysis(const stab::Circuit& circuit, const TimingModel& model,
             const SchedOptions& options = {});

    /** Drop every cached analysis. */
    void clear();
    /** Number of cached analyses. */
    std::size_t size() const;

  private:
    struct Impl;
    ScheduleCache();
    ~ScheduleCache();
    std::unique_ptr<Impl> impl;
};

} // namespace sched
} // namespace lint
} // namespace hetarch
