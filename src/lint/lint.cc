#include "lint/lint.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/logging.hh"
#include "lint/faults.hh"

namespace hetarch {
namespace lint {

using stab::Op;
using stab::OpCode;

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

void
LintReport::add(std::string pass, Severity severity, std::size_t op_index,
                std::string message)
{
    findings.push_back(
        {std::move(pass), severity, op_index, std::move(message)});
}

std::size_t
LintReport::errorCount() const
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(), [](const auto& f) {
            return f.severity == Severity::Error;
        }));
}

std::size_t
LintReport::warningCount() const
{
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(), [](const auto& f) {
            return f.severity == Severity::Warning;
        }));
}

std::string
LintReport::toString() const
{
    std::ostringstream os;
    for (const auto& f : findings) {
        os << severityName(f.severity) << "[" << f.pass << "]";
        if (f.opIndex != kNoOpIndex)
            os << " op " << f.opIndex;
        os << ": " << f.message << "\n";
    }
    return os.str();
}

namespace {

/** Shape of one opcode: how many targets/params the simulators expect. */
struct OpShape
{
    std::size_t targets;      ///< required target count (qubit ops)
    std::size_t params;       ///< required param count
    bool pairDistinct;        ///< two-qubit op: targets must differ
    bool qubitTargets;        ///< targets are qubits (else record refs)
};

OpShape
shapeOf(OpCode code)
{
    switch (code) {
      case OpCode::H:
      case OpCode::S:
      case OpCode::SDG:
      case OpCode::X:
      case OpCode::Y:
      case OpCode::Z:
      case OpCode::M:
      case OpCode::R:
      case OpCode::MR:
        return {1, 0, false, true};
      case OpCode::CX:
      case OpCode::CZ:
      case OpCode::SWAP:
        return {2, 0, true, true};
      case OpCode::X_ERROR:
      case OpCode::Z_ERROR:
      case OpCode::DEPOL1:
        return {1, 1, false, true};
      case OpCode::PAULI1:
        return {1, 3, false, true};
      case OpCode::DEPOL2:
        return {2, 1, true, true};
      case OpCode::DETECTOR:
      case OpCode::OBSERVABLE:
        return {0, 0, false, false};
    }
    HETARCH_PANIC("unknown opcode");
}

bool
isAnnotation(OpCode code)
{
    return code == OpCode::DETECTOR || code == OpCode::OBSERVABLE;
}

bool
isNoise(OpCode code)
{
    switch (code) {
      case OpCode::X_ERROR:
      case OpCode::Z_ERROR:
      case OpCode::PAULI1:
      case OpCode::DEPOL1:
      case OpCode::DEPOL2:
        return true;
      default:
        return false;
    }
}

} // namespace

void
passStructural(const stab::Circuit& circuit, LintReport& report)
{
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        const auto name = stab::opCodeName(op.code);
        const auto shape = shapeOf(op.code);

        if (isAnnotation(op.code)) {
            if (!op.params.empty()) {
                std::ostringstream os;
                os << name << " carries " << op.params.size()
                   << " params; annotations take none";
                report.add("structural", Severity::Error, i, os.str());
            }
            if (op.targets.empty()) {
                std::ostringstream os;
                os << name << " references no measurements "
                   << "(constant parity; dead annotation)";
                report.add("structural", Severity::Warning, i, os.str());
            }
            continue;
        }

        if (op.targets.size() != shape.targets) {
            std::ostringstream os;
            os << name << " carries " << op.targets.size()
               << " targets; canonical IR requires " << shape.targets
               << (shape.pairDistinct ? " (one pair per op)" : "");
            report.add("structural", Severity::Error, i, os.str());
        }
        if (op.params.size() != shape.params) {
            std::ostringstream os;
            os << name << " carries " << op.params.size()
               << " params; expected " << shape.params;
            report.add("structural", Severity::Error, i, os.str());
        }
        if (shape.pairDistinct && op.targets.size() == 2 &&
            op.targets[0] == op.targets[1]) {
            std::ostringstream os;
            os << name << " targets qubit " << op.targets[0]
               << " twice; two-qubit ops need distinct qubits";
            report.add("structural", Severity::Error, i, os.str());
        }
        for (auto t : op.targets) {
            if (t >= circuit.numQubits()) {
                std::ostringstream os;
                os << name << " targets qubit " << t
                   << " but the register has " << circuit.numQubits()
                   << " qubits";
                report.add("structural", Severity::Error, i, os.str());
            }
        }
    }
}

void
passRecordRefs(const stab::Circuit& circuit, LintReport& report)
{
    std::size_t meas_seen = 0;
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        if (op.code == OpCode::M || op.code == OpCode::MR) {
            ++meas_seen;
            continue;
        }
        if (!isAnnotation(op.code))
            continue;
        const auto name = stab::opCodeName(op.code);
        for (auto m : op.targets) {
            if (m >= meas_seen) {
                std::ostringstream os;
                os << name << " references measurement " << m
                   << " but only " << meas_seen
                   << " exist at this point (forward or dangling "
                      "reference)";
                report.add("record-ref", Severity::Error, i, os.str());
            }
        }
        // A record index referenced twice cancels out of the parity.
        auto sorted = op.targets;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end()) {
            std::ostringstream os;
            os << name << " references the same measurement twice; "
                  "duplicate pairs cancel out of the parity";
            report.add("record-ref", Severity::Warning, i, os.str());
        }
    }
}

void
passProbability(const stab::Circuit& circuit, LintReport& report)
{
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        if (!isNoise(op.code))
            continue;
        const auto name = stab::opCodeName(op.code);
        for (auto p : op.params) {
            if (p < 0.0 || p > 1.0) {
                std::ostringstream os;
                os << name << " probability " << p
                   << " outside [0, 1]";
                report.add("prob-range", Severity::Error, i, os.str());
            }
        }
        if (op.code == OpCode::PAULI1 && op.params.size() == 3) {
            const double sum =
                op.params[0] + op.params[1] + op.params[2];
            if (sum > 1.0 + 1e-12) {
                std::ostringstream os;
                os << name << " probabilities sum to " << sum
                   << " (> 1)";
                report.add("prob-range", Severity::Error, i, os.str());
            }
        }
        const double total = std::accumulate(op.params.begin(),
                                             op.params.end(), 0.0);
        if (total == 0.0) {
            std::ostringstream os;
            os << name << " has zero probability; builders elide "
                  "such ops";
            report.add("prob-range", Severity::Info, i, os.str());
        }
    }
}

void
passLiveness(const stab::Circuit& circuit, LintReport& report)
{
    const std::size_t nq = circuit.numQubits();

    enum class Last : std::uint8_t { None, Gate, Noise, Measure, Reset };
    std::vector<Last> last(nq, Last::None);

    // Union-find over the coupling graph of two-qubit ops: a component
    // that is operated on but never measured does dead work.
    std::vector<std::size_t> parent(nq);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    auto find = [&](std::size_t a) {
        while (parent[a] != a) {
            parent[a] = parent[parent[a]];
            a = parent[a];
        }
        return a;
    };
    auto unite = [&](std::size_t a, std::size_t b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[b] = a;
    };

    std::vector<bool> gated(nq, false);
    std::vector<bool> measured(nq, false);

    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        if (isAnnotation(op.code))
            continue;
        // Out-of-range targets are structural errors; skip them here.
        bool in_range = true;
        for (auto t : op.targets)
            in_range = in_range && t < nq;
        if (!in_range)
            continue;

        switch (op.code) {
          case OpCode::M:
          case OpCode::MR: {
            const auto q = op.targets[0];
            if (last[q] == Last::Measure) {
                std::ostringstream os;
                os << "qubit " << q << " measured again with no "
                      "intervening operation (redundant measurement)";
                report.add("liveness", Severity::Warning, i, os.str());
            }
            if (last[q] == Last::None) {
                std::ostringstream os;
                os << "qubit " << q << " is measured before any gate "
                      "or reset touches it (reads a fresh |0>)";
                report.add("liveness", Severity::Warning, i, os.str());
            }
            measured[q] = true;
            last[q] = op.code == OpCode::MR ? Last::Reset : Last::Measure;
            break;
          }
          case OpCode::R:
            last[op.targets[0]] = Last::Reset;
            break;
          default: {
            const bool noise = isNoise(op.code);
            for (auto t : op.targets) {
                last[t] = noise ? Last::Noise : Last::Gate;
                if (!noise)
                    gated[t] = true;
            }
            if (op.targets.size() == 2)
                unite(op.targets[0], op.targets[1]);
            break;
          }
        }
    }

    // Report each dead component once, at its smallest qubit.
    std::vector<bool> component_measured(nq, false);
    for (std::size_t q = 0; q < nq; ++q)
        if (measured[q])
            component_measured[find(q)] = true;
    std::vector<bool> reported(nq, false);
    for (std::size_t q = 0; q < nq; ++q) {
        if (!gated[q])
            continue;
        const auto root = find(q);
        if (component_measured[root] || reported[root])
            continue;
        reported[root] = true;
        std::ostringstream os;
        os << "qubit " << q << "'s coupling component is operated on "
              "but never measured (dead work)";
        report.add("liveness", Severity::Warning, kNoOpIndex, os.str());
    }
}

LintReport
lintCircuit(const stab::Circuit& circuit, const LintOptions& options)
{
    LintReport report;
    passStructural(circuit, report);
    passRecordRefs(circuit, report);
    passProbability(circuit, report);
    passLiveness(circuit, report);
    if (options.checkDeterminism) {
        if (report.clean()) {
            passDeterminism(circuit, report);
        } else {
            report.add("determinism", Severity::Info, kNoOpIndex,
                       "pass skipped: circuit has structural errors");
        }
    }
    if (options.checkFaults) {
        // The analyzer builds the DEM, which presumes the detectors
        // are deterministic — only enter it on an error-free circuit.
        if (report.clean()) {
            FaultOptions fault_options;
            fault_options.maxWeight = options.faultMaxWeight;
            passFaults(circuit, report, fault_options);
        } else {
            report.add("fault-distance", Severity::Info, kNoOpIndex,
                       "pass skipped: circuit has errors");
        }
    }
    return report;
}

void
assertClean(const stab::Circuit& circuit, const char* context,
            const LintOptions& options)
{
    const auto report = lintCircuit(circuit, options);
    if (!report.clean()) {
        HETARCH_PANIC(context, ": circuit fails lint:\n",
                      report.toString());
    }
}

} // namespace lint
} // namespace hetarch
