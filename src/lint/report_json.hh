/**
 * @file
 * Stable-schema JSON serialization of lint reports, the machine
 * interface of `hetarch-lint --format=json`.
 *
 * Schema (version hetarch-lint-v1; field order fixed, names sorted):
 *
 *   {
 *     "files": [
 *       {
 *         "clean": <bool>,            // no errors
 *         "errors": <u64>,
 *         "faults": null | {          // present with --distance
 *           "dead_detectors": [<u64>, ...],
 *           "hyperedge_mechanisms": <u64>,
 *           "min_distance": null | <u64>,
 *           "num_detectors": <u64>,
 *           "num_mechanisms": <u64>,
 *           "observables": [
 *             { "certificate": [<u64>, ...],
 *               "distance": null | <u64>,
 *               "graphlike": <bool>,
 *               "observable": <u64>,
 *               "union_bound": <double>,
 *               "union_bound_weight": <u64> }, ... ],
 *           "undetectable_mechanisms": [<u64>, ...]
 *         },
 *         "findings": [
 *           { "message": <string>, "op": null | <u64>,
 *             "pass": <string>, "severity": "info|warning|error" },
 *           ... ],
 *         "infos": <u64>,
 *         "path": <string>,
 *         "strict_clean": <bool>,     // no errors and no warnings
 *         "warnings": <u64>
 *       }, ... ],
 *     "schema": "hetarch-lint-v1"
 *   }
 *
 * Like hetarch-obs-v1, parseLintJson accepts exactly this schema and
 * is fatal on any deviation: the parser exists for our own artifacts
 * (scripts, CI gates, round-trip tests), not for arbitrary JSON.
 */

#pragma once

#include <string>
#include <vector>

#include "lint/faults.hh"
#include "lint/lint.hh"

namespace hetarch {
namespace lint {

/** One linted unit (a file or a named builder circuit). */
struct FileReport
{
    std::string path;
    LintReport report;
    /** Whether the fault analyzer ran (faults is meaningful). */
    bool hasFaults = false;
    FaultAnalysis faults;
};

/** A whole hetarch-lint run. */
struct LintDocument
{
    std::vector<FileReport> files;
};

/** Serialize @p doc in the stable v1 schema. */
std::string toLintJson(const LintDocument& doc);

/**
 * Parse a v1 lint document.  Fatal (exit 1) on malformed input or a
 * schema mismatch; the round-trip inverse of toLintJson.
 */
LintDocument parseLintJson(const std::string& text);

} // namespace lint
} // namespace hetarch
