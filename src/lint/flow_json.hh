/**
 * @file
 * Stable JSON interchange for dataflow analyses: the
 * `hetarch-flow-v1` document, a sibling of `hetarch-sched-v1`
 * (sched_json.hh) with the same contract — keys emitted in sorted
 * order, doubles in shortest round-trip form, and a strict parser that
 * fails fatally (with a byte offset) on any structural deviation, so
 * schema drift breaks loudly in CI rather than silently in a consumer.
 *
 * Serialized per file: the movement/pressure scalars, per-instance
 * storage pressure, per-mode residency intervals, per-observable
 * certified budgets, and the hazard findings.  That is the whole
 * FlowAnalysis — a parsed document round-trips bit-identically except
 * opsTracked-independent derived state (nothing; the struct is fully
 * covered).
 */

#pragma once

#include <string>
#include <vector>

#include "lint/dataflow.hh"

namespace hetarch {
namespace lint {
namespace flow {

/** One analyzed unit of a flow document. */
struct FlowFileReport
{
    std::string path;    ///< file path or builder:<name> label
    std::string device;  ///< TimingModel::name the unit was costed with
    FlowAnalysis analysis;
};

/** A full tool invocation's worth of dataflow reports. */
struct FlowDocument
{
    std::vector<FlowFileReport> files;
};

/** Render @p doc as a hetarch-flow-v1 JSON document. */
std::string toFlowJson(const FlowDocument& doc);

/**
 * Parse a hetarch-flow-v1 document.  Strict: unknown schema, missing
 * or re-ordered keys, and malformed values are fatal.
 */
FlowDocument parseFlowJson(const std::string& text);

} // namespace flow
} // namespace lint
} // namespace hetarch
