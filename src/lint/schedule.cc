#include "lint/schedule.hh"

#include <algorithm>
#include <future>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "stab/circuit_stats.hh"

namespace hetarch {
namespace lint {
namespace sched {

namespace {

// Telemetry.  All counters are deterministic functions of the analyzed
// (circuit, model) sequence: the schedule is a serial sweep and the
// per-observable bound DP depends only on its inputs, so worker count
// cannot move them — the exec/obs two-tier contract.  The histogram
// (wall time) is advisory, like every timer.
obs::Counter& cAnalyses = obs::counter("lint.sched.analyses");
obs::Counter& cOpsScheduled = obs::counter("lint.sched.ops_scheduled");
obs::Counter& cHazards = obs::counter("lint.sched.hazards");
obs::Counter& cCacheHits = obs::counter("lint.sched.cache_hits");
obs::Counter& cCacheMisses = obs::counter("lint.sched.cache_misses");
obs::Histogram& hAnalyzeNs = obs::histogram("lint.sched.analyze_ns");

/** Tolerance for "simultaneous" interval endpoints (ns). */
constexpr double kEps = 1e-9;

bool
isGate1q(stab::OpCode code)
{
    switch (code) {
      case stab::OpCode::H:
      case stab::OpCode::S:
      case stab::OpCode::SDG:
      case stab::OpCode::X:
      case stab::OpCode::Y:
      case stab::OpCode::Z:
        return true;
      default:
        return false;
    }
}

bool
isGate2q(stab::OpCode code)
{
    return code == stab::OpCode::CX || code == stab::OpCode::CZ ||
           code == stab::OpCode::SWAP;
}

bool
isTimed(stab::OpCode code)
{
    return isGate1q(code) || isGate2q(code) ||
           code == stab::OpCode::M || code == stab::OpCode::R ||
           code == stab::OpCode::MR;
}

/** Per-target cost of a timed op on its hosting device. */
double
targetCost(stab::OpCode code, const DeviceTiming& dev)
{
    if (isGate1q(code))
        return dev.gate1q;
    if (code == stab::OpCode::SWAP)
        return dev.storage ? dev.swap : dev.gate2q;
    if (isGate2q(code))
        return dev.gate2q;
    if (code == stab::OpCode::M || code == stab::OpCode::MR)
        return dev.readout;
    HETARCH_ASSERT(code == stab::OpCode::R, "untimed op costed");
    return dev.reset;
}

/** An interval on a device instance (for the port-concurrency check). */
struct InstanceUse
{
    double startNs;
    double endNs;
    std::uint32_t op;
};

} // namespace

double
ScheduleAnalysis::certifiedIdleBound() const
{
    double worst = 0.0;
    for (const auto& o : observables)
        worst = std::max(worst, o.idleBound);
    return worst;
}

std::size_t
ScheduleAnalysis::hazardErrors() const
{
    std::size_t n = 0;
    for (const auto& h : hazards)
        n += h.severity == Severity::Error ? 1 : 0;
    return n;
}

bool
ScheduleAnalysis::hazardsEqual(const std::vector<LintFinding>& a,
                               const std::vector<LintFinding>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].pass != b[i].pass ||
            a[i].severity != b[i].severity ||
            a[i].opIndex != b[i].opIndex ||
            a[i].message != b[i].message)
            return false;
    }
    return true;
}

double
elementarySymmetricBound(const std::vector<double>& probs,
                         std::size_t weight)
{
    if (weight == 0)
        return 1.0; // zero mechanisms already "suffice": vacuous bound
    // e_k by the standard O(n * k) DP, accumulating in index order.
    std::vector<double> e(weight + 1, 0.0);
    e[0] = 1.0;
    for (const double p : probs)
        for (std::size_t k = std::min(weight, probs.size()); k >= 1; --k)
            e[k] += e[k - 1] * p;
    return std::min(1.0, e[weight]);
}

ScheduleAnalysis
analyzeSchedule(const stab::Circuit& circuit, const TimingModel& model,
                const SchedOptions& options)
{
    obs::ScopedTimer timer(hAnalyzeNs);
    cAnalyses.add();

    const std::size_t nq = circuit.numQubits();
    HETARCH_ASSERT(model.assignment.size() >= nq,
                   "timing model covers ", model.assignment.size(),
                   " qubits, circuit needs ", nq);

    ScheduleAnalysis out;

    // --- static capacity check (independent of the schedule) ---------
    std::vector<std::uint32_t> instanceLoad(model.devices.size(), 0);
    for (std::size_t q = 0; q < nq; ++q)
        ++instanceLoad[model.assignment[q]];
    for (std::size_t i = 0; i < instanceLoad.size(); ++i) {
        if (instanceLoad[i] <=
            static_cast<std::uint32_t>(model.devices[i].modes))
            continue;
        std::ostringstream os;
        os << "device instance " << i << " (" << model.devices[i].name
           << ") hosts " << instanceLoad[i] << " qubits but has only "
           << model.devices[i].modes << " modes";
        out.hazards.push_back({"sched-capacity", Severity::Error,
                               kNoOpIndex, os.str()});
    }

    // --- ASAP sweep ---------------------------------------------------
    // Joint op rule: all targets of one op start together at the max of
    // their ready times — exactly stab::analyzeCircuit's depth rule, so
    // unit durations reproduce CircuitStats::depth.
    std::vector<double> ready(nq, 0.0);
    std::vector<std::vector<ScheduledOp>> perQubit(nq);
    struct Record
    {
        double endNs;
        bool completes; ///< false: produced on a readout-less device
    };
    std::vector<Record> records;
    records.reserve(circuit.numMeasurements());
    std::vector<std::uint8_t> collapsed(nq, 0);

    const auto& ops = circuit.ops();
    for (std::uint32_t idx = 0; idx < ops.size(); ++idx) {
        const auto& op = ops[idx];

        if (op.code == stab::OpCode::DETECTOR ||
            op.code == stab::OpCode::OBSERVABLE) {
            for (const auto r : op.targets) {
                if (r < records.size() && !records[r].completes) {
                    std::ostringstream os;
                    os << (op.code == stab::OpCode::DETECTOR
                               ? "detector"
                               : "observable")
                       << " consumes measurement record " << r
                       << ", which never completes (measured on a "
                          "device without readout)";
                    out.hazards.push_back({"sched-feedback",
                                           Severity::Error, idx,
                                           os.str()});
                }
            }
            continue;
        }
        if (!isTimed(op.code))
            continue; // noise channels are instantaneous labels

        double start = 0.0;
        double cost = 0.0;
        for (const auto t : op.targets) {
            start = std::max(start, ready[t]);
            cost = std::max(cost, targetCost(op.code,
                                             model.deviceFor(t)));
        }
        const double end = start + cost;

        for (const auto t : op.targets) {
            const auto& dev = model.deviceFor(t);

            // Semantic hazards on the target's device.  Measurements
            // are the readout pass's concern, not the gate set's.
            if (dev.storage && op.code != stab::OpCode::SWAP &&
                op.code != stab::OpCode::M &&
                op.code != stab::OpCode::MR) {
                std::ostringstream os;
                os << stab::opCodeName(op.code) << " on qubit " << t
                   << ": storage device " << dev.name
                   << " supports only SWAP access (DR2)";
                out.hazards.push_back({"sched-gateset", Severity::Error,
                                       idx, os.str()});
            }
            if ((op.code == stab::OpCode::M ||
                 op.code == stab::OpCode::MR) &&
                !dev.hasReadout) {
                std::ostringstream os;
                os << "measurement of qubit " << t << " on device "
                   << dev.name << ", which has no readout";
                out.hazards.push_back({"sched-readout", Severity::Error,
                                       idx, os.str()});
            }

            // Reset discipline: a measured qubit must be reset before
            // it re-enters coherent gates.
            if (collapsed[t] &&
                (isGate1q(op.code) || isGate2q(op.code))) {
                std::ostringstream os;
                os << stab::opCodeName(op.code) << " on qubit " << t
                   << " after measurement without an intervening "
                      "reset";
                out.hazards.push_back({"sched-reset-gap",
                                       Severity::Warning, idx,
                                       os.str()});
                collapsed[t] = 0; // warn once per measurement
            }
            if (op.code == stab::OpCode::M)
                collapsed[t] = 1;
            else if (op.code == stab::OpCode::R ||
                     op.code == stab::OpCode::MR)
                collapsed[t] = 0;

            ready[t] = end;
            perQubit[t].push_back({idx, start, end});
        }
        if (op.code == stab::OpCode::M || op.code == stab::OpCode::MR) {
            for (const auto t : op.targets)
                records.push_back(
                    {end, model.deviceFor(t).hasReadout});
        }

        out.schedule.push_back({idx, start, end});
        out.criticalPathNs = std::max(out.criticalPathNs, end);
        ++out.opsScheduled;
    }
    cOpsScheduled.add(out.opsScheduled);

    // --- port concurrency on multi-qubit instances --------------------
    // Single-qubit instances are serialized by their qubit's ready
    // time; a shared instance (storage resonator) can be handed an ASAP
    // schedule demanding two of its modes at once through its one port.
    std::vector<std::vector<InstanceUse>> instanceUse(
        model.devices.size());
    for (std::size_t q = 0; q < nq; ++q) {
        const auto inst = model.assignment[q];
        if (instanceLoad[inst] < 2)
            continue;
        for (const auto& s : perQubit[q])
            instanceUse[inst].push_back({s.startNs, s.endNs, s.op});
    }
    for (std::size_t i = 0; i < instanceUse.size(); ++i) {
        auto& uses = instanceUse[i];
        std::sort(uses.begin(), uses.end(),
                  [](const InstanceUse& a, const InstanceUse& b) {
                      return a.startNs != b.startNs
                                 ? a.startNs < b.startNs
                                 : a.op < b.op;
                  });
        for (std::size_t u = 1; u < uses.size(); ++u) {
            // One op touching two modes of the instance is a single
            // port transaction, not a conflict with itself.
            if (uses[u].op == uses[u - 1].op)
                continue;
            if (uses[u].startNs < uses[u - 1].endNs - kEps) {
                std::ostringstream os;
                os << "ops " << uses[u - 1].op << " and " << uses[u].op
                   << " overlap on device instance " << i << " ("
                   << model.devices[i].name
                   << "), which has a single port";
                out.hazards.push_back({"sched-overlap", Severity::Error,
                                       uses[u].op, os.str()});
            }
        }
    }
    cHazards.add(out.hazards.size());

    // --- idle windows -------------------------------------------------
    for (std::size_t q = 0; q < nq; ++q) {
        const auto& dev = model.deviceFor(static_cast<std::uint32_t>(q));
        QubitTimeline tl;
        tl.qubit = static_cast<std::uint32_t>(q);
        tl.device = dev.name;
        for (std::size_t s = 0; s < perQubit[q].size(); ++s) {
            const auto& cur = perQubit[q][s];
            tl.busyNs += cur.endNs - cur.startNs;
            if (s == 0)
                continue;
            const double gap = cur.startNs - perQubit[q][s - 1].endNs;
            if (gap <= kEps)
                continue;
            IdleWindow w;
            w.qubit = tl.qubit;
            w.startNs = perQubit[q][s - 1].endNs;
            w.endNs = cur.startNs;
            w.errorProb = idleError(gap, dev.t1, dev.t2);
            tl.idleNs += gap;
            ++tl.idleWindows;
            out.idleWindows.push_back(w);
        }
        out.totalIdleNs += tl.idleNs;
        out.qubits.push_back(std::move(tl));
    }

    // --- per-observable idle bounds -----------------------------------
    // Every idle window is an independent decoherence mechanism; for an
    // observable certified at distance d, at least ceil(d / 2) of them
    // must fire before min-weight decoding can fail.  Fan observables
    // out over the exec engine; slots are pre-sized and reduced in
    // observable order, so the result is worker-count independent.
    const std::size_t nobs = circuit.numObservables();
    std::vector<double> probs;
    probs.reserve(out.idleWindows.size());
    for (const auto& w : out.idleWindows)
        probs.push_back(w.errorProb);

    std::vector<ObservableIdleBound> slots(nobs);
    exec::parallelFor(nobs, [&](std::size_t i) {
        ObservableIdleBound b;
        b.observable = static_cast<std::uint32_t>(i);
        b.weight = 1;
        if (options.faults) {
            b.weight = 0;
            for (const auto& of : options.faults->observables) {
                if (of.observable != b.observable)
                    continue;
                if (of.distance != kInfiniteDistance)
                    b.weight = (of.distance + 1) / 2;
                break;
            }
        }
        b.idleBound =
            b.weight == 0 ? 0.0
                          : elementarySymmetricBound(probs, b.weight);
        slots[i] = b;
    });
    out.observables = std::move(slots);
    return out;
}

void
scheduleFindings(const ScheduleAnalysis& analysis, LintReport& report)
{
    for (const auto& h : analysis.hazards)
        report.findings.push_back(h);

    {
        std::ostringstream os;
        os << "critical path " << analysis.criticalPathNs << " ns over "
           << analysis.opsScheduled << " timed ops; total idle "
           << analysis.totalIdleNs << " ns across "
           << analysis.idleWindows.size() << " windows";
        report.add("sched-latency", Severity::Info, kNoOpIndex,
                   os.str());
    }
    for (const auto& o : analysis.observables) {
        std::ostringstream os;
        os << "observable " << o.observable << ": idle-decoherence "
           << "bound " << o.idleBound;
        if (o.weight != 0)
            os << " (>= " << o.weight << " idle windows must fire)";
        else
            os << " (no undetected fault path; idle decoherence "
                  "cannot flip it through the fault graph)";
        report.add("sched-idle-bound", Severity::Info, kNoOpIndex,
                   os.str());
    }
}

// --- cache ------------------------------------------------------------

struct ScheduleCache::Impl
{
    struct Key
    {
        std::uint64_t circuitHash;
        std::uint64_t numOps;
        std::uint64_t modelHash;
        std::uint64_t faultsHash;

        bool operator==(const Key& o) const
        {
            return circuitHash == o.circuitHash && numOps == o.numOps &&
                   modelHash == o.modelHash &&
                   faultsHash == o.faultsHash;
        }
    };

    struct KeyHash
    {
        std::size_t operator()(const Key& k) const
        {
            return static_cast<std::size_t>(
                k.circuitHash ^ (k.numOps * 0x9e3779b97f4a7c15ull) ^
                (k.modelHash * 0xff51afd7ed558ccdull) ^ k.faultsHash);
        }
    };

    /** Whole-cache eviction threshold; sweeps touch shapes in bursts. */
    static constexpr std::size_t kCapacity = 128;

    using Future =
        std::shared_future<std::shared_ptr<const ScheduleAnalysis>>;

    mutable std::mutex mutex;
    std::unordered_map<Key, Future, KeyHash> entries;
};

namespace {

/** The part of a FaultAnalysis the idle bound depends on. */
std::uint64_t
hashFaultStructure(const FaultAnalysis* faults)
{
    if (!faults)
        return 0;
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(faults->observables.size());
    for (const auto& of : faults->observables) {
        mix(of.observable);
        mix(of.distance);
    }
    return h;
}

} // namespace

ScheduleCache::ScheduleCache() : impl(std::make_unique<Impl>()) {}
ScheduleCache::~ScheduleCache() = default;

ScheduleCache&
ScheduleCache::instance()
{
    static ScheduleCache cache;
    return cache;
}

std::shared_ptr<const ScheduleAnalysis>
ScheduleCache::analysis(const stab::Circuit& circuit,
                        const TimingModel& model,
                        const SchedOptions& options)
{
    const Impl::Key key{stab::hashCircuit(circuit),
                        circuit.ops().size(), hashTimingModel(model),
                        hashFaultStructure(options.faults)};
    std::promise<std::shared_ptr<const ScheduleAnalysis>> promise;
    Impl::Future future;
    {
        std::lock_guard<std::mutex> lock(impl->mutex);
        auto it = impl->entries.find(key);
        if (it != impl->entries.end()) {
            cCacheHits.add();
            future = it->second;
        } else {
            cCacheMisses.add();
            if (impl->entries.size() >= Impl::kCapacity)
                impl->entries.clear();
            impl->entries.emplace(key, promise.get_future().share());
        }
    }
    if (future.valid())
        return future.get();
    // This thread claimed the build; the analyzer is deterministic, so
    // waiters get exactly what a fresh run would produce.
    auto analysis = std::make_shared<const ScheduleAnalysis>(
        analyzeSchedule(circuit, model, options));
    promise.set_value(analysis);
    return analysis;
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->entries.clear();
}

std::size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lock(impl->mutex);
    return impl->entries.size();
}

} // namespace sched
} // namespace lint
} // namespace hetarch
