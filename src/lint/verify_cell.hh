/**
 * @file
 * Cell-level static verification: one report for a standard cell,
 * composing the DR1-DR4 design-rule check (cells::checkDesignRules)
 * with the circuit lint passes applied to the cell's lowered schedule.
 *
 * The lowering mirrors how cells are actually used (paper Section 3.2):
 * every device is reset, each coupling carries its two-qubit
 * interaction, readout devices run two rounds of parity extraction
 * with difference detectors, and every device is read out at the end.
 * A cell that passes verifyCell is safe to hand to characterization
 * and to the module layer.
 */

#pragma once

#include "cells/cell.hh"
#include "cells/design_rules.hh"
#include "lint/lint.hh"

namespace hetarch {
namespace lint {

/**
 * Lower a cell to the representative schedule described above.
 * Device i of the cell becomes circuit qubit i.
 */
stab::Circuit lowerCellSchedule(const cells::StandardCell& cell);

/**
 * Verify a cell: DR1-DR4 (as "cell-drc" findings; the rule number
 * prefixes the message) plus all circuit passes over the lowered
 * schedule (op indices refer to lowerCellSchedule(cell)).
 *
 * @param required_readouts measurement sites the cell's declared
 *        operations need; DR4 compares the cell against this.
 */
LintReport verifyCell(const cells::StandardCell& cell,
                      std::size_t required_readouts,
                      const LintOptions& options = {});

/** Convenience overload: the cell's own readout count is the need. */
LintReport verifyCell(const cells::StandardCell& cell,
                      const LintOptions& options = {});

} // namespace lint
} // namespace hetarch
