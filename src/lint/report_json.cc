#include "lint/report_json.hh"

#include <sstream>

#include "core/logging.hh"
#include "core/strict_json.hh"

namespace hetarch {
namespace lint {

namespace {

namespace cj = core::json;

void
writeIndexArray(std::ostream& os, const std::vector<std::uint32_t>& xs)
{
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i)
        os << (i ? ", " : "") << xs[i];
    os << ']';
}

void
writeFaults(std::ostream& os, const FaultAnalysis& fa)
{
    os << "{\"dead_detectors\": ";
    writeIndexArray(os, fa.deadDetectors);
    os << ", \"hyperedge_mechanisms\": " << fa.numHyperedges
       << ", \"min_distance\": ";
    cj::writeOrNull(os, fa.minDistance(), kInfiniteDistance);
    os << ", \"num_detectors\": " << fa.numDetectors
       << ", \"num_mechanisms\": " << fa.numMechanisms
       << ", \"observables\": [";
    bool first = true;
    for (const auto& of : fa.observables) {
        os << (first ? "" : ", ") << "{\"certificate\": ";
        writeIndexArray(os, of.certificate.mechanisms);
        os << ", \"distance\": ";
        cj::writeOrNull(os, of.distance, kInfiniteDistance);
        os << ", \"graphlike\": " << (of.graphlike ? "true" : "false")
           << ", \"observable\": " << of.observable
           << ", \"union_bound\": ";
        cj::writeDouble(os, of.unionBound);
        os << ", \"union_bound_weight\": " << of.unionBoundWeight
           << '}';
        first = false;
    }
    os << "], \"undetectable_mechanisms\": ";
    writeIndexArray(os, fa.undetectableMechanisms);
    os << '}';
}

/**
 * Recursive-descent parser for the v1 lint document on the shared
 * strict scanner: every deviation is fatal with a byte offset.
 */
class Parser : private cj::Scanner
{
  public:
    explicit Parser(const std::string& text) : Scanner(text) {}

    LintDocument parse()
    {
        LintDocument doc;
        expect('{');
        expectKey("files");
        expect('[');
        if (!consume(']')) {
            do
                doc.files.push_back(parseFile());
            while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-lint-v1")
            fail("unsupported lint report schema '" + schema + "'");
        expect('}');
        finish();
        return doc;
    }

  private:
    std::vector<std::uint32_t> parseIndexArray()
    {
        std::vector<std::uint32_t> out;
        expect('[');
        if (consume(']'))
            return out;
        do
            out.push_back(static_cast<std::uint32_t>(parseU64()));
        while (consume(','));
        expect(']');
        return out;
    }

    Severity parseSeverity()
    {
        const auto name = parseString();
        if (name == "info")
            return Severity::Info;
        if (name == "warning")
            return Severity::Warning;
        if (name == "error")
            return Severity::Error;
        fail("unknown severity '" + name + "'");
    }

    FaultAnalysis parseFaults()
    {
        FaultAnalysis fa;
        expect('{');
        expectKey("dead_detectors");
        fa.deadDetectors = parseIndexArray();
        expect(',');
        expectKey("hyperedge_mechanisms");
        fa.numHyperedges = parseU64();
        expect(',');
        expectKey("min_distance");
        // Derived from the observables on output; discard on input.
        (void)parseU64OrNull(kInfiniteDistance);
        expect(',');
        expectKey("num_detectors");
        fa.numDetectors = parseU64();
        expect(',');
        expectKey("num_mechanisms");
        fa.numMechanisms = parseU64();
        expect(',');
        expectKey("observables");
        expect('[');
        if (!consume(']')) {
            do {
                ObservableFaults of;
                expect('{');
                expectKey("certificate");
                of.certificate.mechanisms = parseIndexArray();
                expect(',');
                expectKey("distance");
                of.distance = parseU64OrNull(kInfiniteDistance);
                expect(',');
                expectKey("graphlike");
                of.graphlike = parseBool();
                expect(',');
                expectKey("observable");
                of.observable = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("union_bound");
                of.unionBound = parseDouble();
                expect(',');
                expectKey("union_bound_weight");
                of.unionBoundWeight = parseU64();
                expect('}');
                fa.observables.push_back(std::move(of));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("undetectable_mechanisms");
        fa.undetectableMechanisms = parseIndexArray();
        expect('}');
        return fa;
    }

    FileReport parseFile()
    {
        FileReport file;
        expect('{');
        expectKey("clean");
        (void)parseBool(); // derived from the findings
        expect(',');
        expectKey("errors");
        (void)parseU64();
        expect(',');
        expectKey("faults");
        skipWs();
        if (consumeNull()) {
            file.hasFaults = false;
        } else {
            file.hasFaults = true;
            file.faults = parseFaults();
        }
        expect(',');
        expectKey("findings");
        expect('[');
        if (!consume(']')) {
            do {
                LintFinding f;
                expect('{');
                expectKey("message");
                f.message = parseString();
                expect(',');
                expectKey("op");
                f.opIndex = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("pass");
                f.pass = parseString();
                expect(',');
                expectKey("severity");
                f.severity = parseSeverity();
                expect('}');
                file.report.findings.push_back(std::move(f));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("infos");
        (void)parseU64();
        expect(',');
        expectKey("path");
        file.path = parseString();
        expect(',');
        expectKey("strict_clean");
        (void)parseBool();
        expect(',');
        expectKey("warnings");
        (void)parseU64();
        expect('}');
        return file;
    }
};

} // namespace

std::string
toLintJson(const LintDocument& doc)
{
    std::ostringstream os;
    os << "{\n  \"files\": [";
    bool first = true;
    for (const auto& file : doc.files) {
        const auto errors = file.report.errorCount();
        const auto warnings = file.report.warningCount();
        const auto infos =
            file.report.findings.size() - errors - warnings;
        os << (first ? "\n    " : ",\n    ");
        os << "{\"clean\": " << (errors == 0 ? "true" : "false")
           << ", \"errors\": " << errors << ", \"faults\": ";
        if (file.hasFaults)
            writeFaults(os, file.faults);
        else
            os << "null";
        os << ", \"findings\": [";
        bool first_finding = true;
        for (const auto& f : file.report.findings) {
            os << (first_finding ? "" : ", ") << "{\"message\": ";
            cj::writeString(os, f.message);
            os << ", \"op\": ";
            cj::writeOrNull(os, f.opIndex, kNoOpIndex);
            os << ", \"pass\": ";
            cj::writeString(os, f.pass);
            os << ", \"severity\": \"" << severityName(f.severity)
               << "\"}";
            first_finding = false;
        }
        os << "], \"infos\": " << infos << ", \"path\": ";
        cj::writeString(os, file.path);
        os << ", \"strict_clean\": "
           << (errors + warnings == 0 ? "true" : "false")
           << ", \"warnings\": " << warnings << '}';
        first = false;
    }
    os << (first ? "" : "\n  ")
       << "],\n  \"schema\": \"hetarch-lint-v1\"\n}\n";
    return os.str();
}

LintDocument
parseLintJson(const std::string& text)
{
    try {
        return Parser(text).parse();
    } catch (const cj::ScanError& e) {
        HETARCH_FATAL("lint report parse error at byte ", e.offset,
                      ": ", e.reason);
    }
}

} // namespace lint
} // namespace hetarch
