#include "lint/report_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/logging.hh"

namespace hetarch {
namespace lint {

namespace {

/** Emit a JSON string literal (finding messages stay in ASCII). */
void
writeString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

/** Shortest round-trip decimal form of a double. */
void
writeDouble(std::ostream& os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
writeIndexArray(std::ostream& os, const std::vector<std::uint32_t>& xs)
{
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i)
        os << (i ? ", " : "") << xs[i];
    os << ']';
}

/** Distance / op-index fields render their sentinel as null. */
void
writeOrNull(std::ostream& os, std::size_t v, std::size_t sentinel)
{
    if (v == sentinel)
        os << "null";
    else
        os << v;
}

void
writeFaults(std::ostream& os, const FaultAnalysis& fa)
{
    os << "{\"dead_detectors\": ";
    writeIndexArray(os, fa.deadDetectors);
    os << ", \"hyperedge_mechanisms\": " << fa.numHyperedges
       << ", \"min_distance\": ";
    writeOrNull(os, fa.minDistance(), kInfiniteDistance);
    os << ", \"num_detectors\": " << fa.numDetectors
       << ", \"num_mechanisms\": " << fa.numMechanisms
       << ", \"observables\": [";
    bool first = true;
    for (const auto& of : fa.observables) {
        os << (first ? "" : ", ") << "{\"certificate\": ";
        writeIndexArray(os, of.certificate.mechanisms);
        os << ", \"distance\": ";
        writeOrNull(os, of.distance, kInfiniteDistance);
        os << ", \"graphlike\": " << (of.graphlike ? "true" : "false")
           << ", \"observable\": " << of.observable
           << ", \"union_bound\": ";
        writeDouble(os, of.unionBound);
        os << ", \"union_bound_weight\": " << of.unionBoundWeight
           << '}';
        first = false;
    }
    os << "], \"undetectable_mechanisms\": ";
    writeIndexArray(os, fa.undetectableMechanisms);
    os << '}';
}

/**
 * Recursive-descent parser for the v1 lint document, in the same
 * strict style as the obs snapshot parser: every deviation is fatal
 * with a byte offset.
 */
class Parser
{
  public:
    explicit Parser(const std::string& text) : src(text) {}

    LintDocument parse()
    {
        LintDocument doc;
        expect('{');
        expectKey("files");
        expect('[');
        if (!consume(']')) {
            do
                doc.files.push_back(parseFile());
            while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("schema");
        const auto schema = parseString();
        if (schema != "hetarch-lint-v1")
            fail("unsupported lint report schema '" + schema + "'");
        expect('}');
        skipWs();
        if (pos != src.size())
            fail("trailing content after lint document");
        return doc;
    }

  private:
    [[noreturn]] void fail(const std::string& why) const
    {
        HETARCH_FATAL("lint report parse error at byte ", pos, ": ",
                      why);
    }

    void skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char peek()
    {
        skipWs();
        if (pos >= src.size())
            fail("unexpected end of input");
        return src[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" +
                 src[pos] + "'");
        ++pos;
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    bool consumeWord(const char* word)
    {
        skipWs();
        const std::size_t len = std::string(word).size();
        if (src.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    void expectKey(const char* key)
    {
        const auto name = parseString();
        if (name != key)
            fail("expected key \"" + std::string(key) + "\", found \"" +
                 name + "\"");
        expect(':');
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                if (pos >= src.size())
                    fail("unterminated escape");
                const char esc = src[pos++];
                switch (esc) {
                  case '"':
                    c = '"';
                    break;
                  case '\\':
                    c = '\\';
                    break;
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    fail("unsupported escape sequence");
                }
            }
            out += c;
        }
        if (pos >= src.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    std::uint64_t parseU64()
    {
        skipWs();
        const std::size_t begin = pos;
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos == begin)
            fail("expected an unsigned integer");
        return std::strtoull(src.substr(begin, pos - begin).c_str(),
                             nullptr, 10);
    }

    /** A u64 or the literal null mapping to @p sentinel. */
    std::size_t parseU64OrNull(std::size_t sentinel)
    {
        skipWs();
        if (consumeWord("null"))
            return sentinel;
        return static_cast<std::size_t>(parseU64());
    }

    bool parseBool()
    {
        if (consumeWord("true"))
            return true;
        if (consumeWord("false"))
            return false;
        fail("expected a boolean");
    }

    double parseDouble()
    {
        skipWs();
        const std::size_t begin = pos;
        auto in_number = [this] {
            const char c = src[pos];
            return std::isdigit(static_cast<unsigned char>(c)) ||
                   c == '-' || c == '+' || c == '.' || c == 'e' ||
                   c == 'E';
        };
        while (pos < src.size() && in_number())
            ++pos;
        if (pos == begin)
            fail("expected a number");
        return std::strtod(src.substr(begin, pos - begin).c_str(),
                           nullptr);
    }

    std::vector<std::uint32_t> parseIndexArray()
    {
        std::vector<std::uint32_t> out;
        expect('[');
        if (consume(']'))
            return out;
        do
            out.push_back(static_cast<std::uint32_t>(parseU64()));
        while (consume(','));
        expect(']');
        return out;
    }

    Severity parseSeverity()
    {
        const auto name = parseString();
        if (name == "info")
            return Severity::Info;
        if (name == "warning")
            return Severity::Warning;
        if (name == "error")
            return Severity::Error;
        fail("unknown severity '" + name + "'");
    }

    FaultAnalysis parseFaults()
    {
        FaultAnalysis fa;
        expect('{');
        expectKey("dead_detectors");
        fa.deadDetectors = parseIndexArray();
        expect(',');
        expectKey("hyperedge_mechanisms");
        fa.numHyperedges = parseU64();
        expect(',');
        expectKey("min_distance");
        // Derived from the observables on output; discard on input.
        (void)parseU64OrNull(kInfiniteDistance);
        expect(',');
        expectKey("num_detectors");
        fa.numDetectors = parseU64();
        expect(',');
        expectKey("num_mechanisms");
        fa.numMechanisms = parseU64();
        expect(',');
        expectKey("observables");
        expect('[');
        if (!consume(']')) {
            do {
                ObservableFaults of;
                expect('{');
                expectKey("certificate");
                of.certificate.mechanisms = parseIndexArray();
                expect(',');
                expectKey("distance");
                of.distance = parseU64OrNull(kInfiniteDistance);
                expect(',');
                expectKey("graphlike");
                of.graphlike = parseBool();
                expect(',');
                expectKey("observable");
                of.observable = static_cast<std::uint32_t>(parseU64());
                expect(',');
                expectKey("union_bound");
                of.unionBound = parseDouble();
                expect(',');
                expectKey("union_bound_weight");
                of.unionBoundWeight = parseU64();
                expect('}');
                fa.observables.push_back(std::move(of));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("undetectable_mechanisms");
        fa.undetectableMechanisms = parseIndexArray();
        expect('}');
        return fa;
    }

    FileReport parseFile()
    {
        FileReport file;
        expect('{');
        expectKey("clean");
        (void)parseBool(); // derived from the findings
        expect(',');
        expectKey("errors");
        (void)parseU64();
        expect(',');
        expectKey("faults");
        skipWs();
        if (consumeWord("null")) {
            file.hasFaults = false;
        } else {
            file.hasFaults = true;
            file.faults = parseFaults();
        }
        expect(',');
        expectKey("findings");
        expect('[');
        if (!consume(']')) {
            do {
                LintFinding f;
                expect('{');
                expectKey("message");
                f.message = parseString();
                expect(',');
                expectKey("op");
                f.opIndex = parseU64OrNull(kNoOpIndex);
                expect(',');
                expectKey("pass");
                f.pass = parseString();
                expect(',');
                expectKey("severity");
                f.severity = parseSeverity();
                expect('}');
                file.report.findings.push_back(std::move(f));
            } while (consume(','));
            expect(']');
        }
        expect(',');
        expectKey("infos");
        (void)parseU64();
        expect(',');
        expectKey("path");
        file.path = parseString();
        expect(',');
        expectKey("strict_clean");
        (void)parseBool();
        expect(',');
        expectKey("warnings");
        (void)parseU64();
        expect('}');
        return file;
    }

    const std::string& src;
    std::size_t pos = 0;
};

} // namespace

std::string
toLintJson(const LintDocument& doc)
{
    std::ostringstream os;
    os << "{\n  \"files\": [";
    bool first = true;
    for (const auto& file : doc.files) {
        const auto errors = file.report.errorCount();
        const auto warnings = file.report.warningCount();
        const auto infos =
            file.report.findings.size() - errors - warnings;
        os << (first ? "\n    " : ",\n    ");
        os << "{\"clean\": " << (errors == 0 ? "true" : "false")
           << ", \"errors\": " << errors << ", \"faults\": ";
        if (file.hasFaults)
            writeFaults(os, file.faults);
        else
            os << "null";
        os << ", \"findings\": [";
        bool first_finding = true;
        for (const auto& f : file.report.findings) {
            os << (first_finding ? "" : ", ") << "{\"message\": ";
            writeString(os, f.message);
            os << ", \"op\": ";
            writeOrNull(os, f.opIndex, kNoOpIndex);
            os << ", \"pass\": ";
            writeString(os, f.pass);
            os << ", \"severity\": \"" << severityName(f.severity)
               << "\"}";
            first_finding = false;
        }
        os << "], \"infos\": " << infos << ", \"path\": ";
        writeString(os, file.path);
        os << ", \"strict_clean\": "
           << (errors + warnings == 0 ? "true" : "false")
           << ", \"warnings\": " << warnings << '}';
        first = false;
    }
    os << (first ? "" : "\n  ")
       << "],\n  \"schema\": \"hetarch-lint-v1\"\n}\n";
    return os.str();
}

LintDocument
parseLintJson(const std::string& text)
{
    return Parser(text).parse();
}

} // namespace lint
} // namespace hetarch
