#include "lint/faults.hh"

#include <algorithm>
#include <sstream>

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "lint/schedule.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace lint {

namespace {

// Telemetry.  All three counters are deterministic functions of the
// analyzed DEM (each BFS is sequential and its expansion count depends
// only on the graph), so they stay bit-identical at any worker count —
// the same two-tier contract the exec/obs counters follow.
obs::Counter& cAnalyses = obs::counter("lint.faults.analyses");
obs::Counter& cSources = obs::counter("lint.faults.sources");
obs::Counter& cExpansions = obs::counter("lint.faults.expansions");

/** One BFS result: a candidate undetected fault set for an observable. */
struct Candidate
{
    std::size_t weight = kInfiniteDistance;
    std::vector<std::uint32_t> mechanisms;
    std::uint64_t expansions = 0;

    bool found() const { return weight != kInfiniteDistance; }
};

/**
 * Close the odd source edge @p src into a minimum-size undetected
 * fault set flipping observable bit @p bit.
 *
 * Any undetected fault set over graphlike mechanisms is a disjoint
 * union of cycles of the fault graph (every detector needs an even
 * number of incident fired edges; the boundary is unconstrained, and
 * cycles through the boundary model boundary-to-boundary chains).  A
 * minimal set flipping the observable is a single cycle with odd
 * observable parity, so it decomposes as one observable-flipping edge
 * e = (u, v) plus an even-parity path from v back to u avoiding e.
 * That path is found by BFS on the parity-doubled graph: states are
 * (node, observable parity), unit edge weights, neighbors scanned in
 * ascending edge order — fully deterministic.
 */
Candidate
closeSourceEdge(const FaultGraph& g, std::uint32_t src,
                std::uint32_t bit)
{
    Candidate out;
    const auto& edges = g.edges();
    const FaultEdge& e = edges[src];

    const std::size_t states = 2 * g.numNodes();
    // state = node * 2 + parity
    const std::uint32_t start = e.v * 2;
    const std::uint32_t goal = e.u * 2;
    std::vector<std::uint8_t> seen(states, 0);
    std::vector<std::uint32_t> parentState(states, 0);
    std::vector<std::uint32_t> parentEdge(states, 0);
    std::vector<std::uint32_t> queue;
    queue.reserve(states);
    seen[start] = 1;
    queue.push_back(start);

    bool reached = false;
    for (std::size_t qi = 0; qi < queue.size() && !reached; ++qi) {
        const auto cur = queue[qi];
        const auto node = cur >> 1;
        const auto parity = cur & 1u;
        for (const auto eid : g.incidence()[node]) {
            if (eid == src)
                continue; // the source edge may not be reused
            const auto& f = edges[eid];
            const auto other = f.u == node ? f.v : f.u;
            const auto flips = (f.observables >> bit) & 1u;
            const auto next = other * 2 + (parity ^ flips);
            if (seen[next])
                continue;
            seen[next] = 1;
            parentState[next] = cur;
            parentEdge[next] = eid;
            ++out.expansions;
            if (next == goal) {
                reached = true;
                break;
            }
            queue.push_back(next);
        }
    }
    if (!reached)
        return out;

    out.mechanisms.push_back(e.mechanism);
    for (auto s = goal; s != start; s = parentState[s])
        out.mechanisms.push_back(edges[parentEdge[s]].mechanism);
    std::sort(out.mechanisms.begin(), out.mechanisms.end());
    out.weight = out.mechanisms.size();
    return out;
}

} // namespace

std::size_t
FaultAnalysis::minDistance() const
{
    std::size_t best = kInfiniteDistance;
    for (const auto& o : observables)
        best = std::min(best, o.distance);
    return best;
}

bool
verifyFaultPath(const stab::DetectorErrorModel& dem,
                std::uint32_t observable,
                const std::vector<std::uint32_t>& mechanisms)
{
    if (mechanisms.empty())
        return false;
    const auto [dets, obs] = dem.applyMechanisms(mechanisms);
    for (const auto fired : dets)
        if (fired)
            return false;
    return ((obs >> observable) & 1u) != 0;
}

double
unionBoundAtWeight(const stab::DetectorErrorModel& dem, std::size_t weight)
{
    // Shared e_k kernel (schedule.hh): the schedule analyzer's idle
    // bound and this union bound are the same polynomial over
    // different mechanism sets.
    std::vector<double> probs;
    probs.reserve(dem.mechanisms.size());
    for (const auto& m : dem.mechanisms)
        probs.push_back(m.probability);
    return sched::elementarySymmetricBound(probs, weight);
}

FaultAnalysis
analyzeFaults(const stab::DetectorErrorModel& dem,
              const FaultOptions& options)
{
    const auto graph = FaultGraph::fromDem(dem);

    FaultAnalysis out;
    out.numDetectors = dem.numDetectors;
    out.numMechanisms = dem.mechanisms.size();
    out.numHyperedges = graph.hyperedgeMechanisms().size();
    out.deadDetectors = graph.deadDetectors();
    out.undetectableMechanisms = graph.undetectableMechanisms();
    cAnalyses.add();

    for (std::uint32_t bit = 0; bit < dem.numObservables; ++bit) {
        ObservableFaults of;
        of.observable = bit;
        of.graphlike = ((graph.hyperedgeObservables() >> bit) & 1u) == 0;

        // A mechanism flipping the observable and no detector is an
        // undetected fault set of weight 1 — nothing can be shorter.
        std::uint32_t hole = 0;
        bool has_hole = false;
        for (const auto m : graph.undetectableMechanisms()) {
            if ((dem.mechanisms[m].observables >> bit) & 1u) {
                hole = m;
                has_hole = true;
                break; // ascending order: first hit is the smallest
            }
        }
        if (has_hole) {
            of.distance = 1;
            of.certificate.mechanisms = {hole};
        } else {
            // Fan the per-source BFS out over the exec engine: slots
            // are pre-sized and reduced in source order on this
            // thread, so the result is worker-count independent.
            std::vector<std::uint32_t> sources;
            for (std::uint32_t eid = 0; eid < graph.edges().size();
                 ++eid)
                if ((graph.edges()[eid].observables >> bit) & 1u)
                    sources.push_back(eid);

            std::vector<Candidate> slots(sources.size());
            exec::parallelFor(sources.size(), [&](std::size_t i) {
                slots[i] = closeSourceEdge(graph, sources[i], bit);
            });

            std::uint64_t expansions = 0;
            std::size_t best = kInfiniteDistance;
            for (std::size_t i = 0; i < slots.size(); ++i) {
                expansions += slots[i].expansions;
                // Strict < keeps the earliest source on ties, making
                // the certificate deterministic as well.
                if (slots[i].weight < best) {
                    best = slots[i].weight;
                    of.certificate = {std::move(slots[i].mechanisms)};
                }
            }
            of.distance = best;
            cSources.add(sources.size());
            cExpansions.add(expansions);
        }

        if (of.certificate.exists()) {
            HETARCH_ASSERT(
                verifyFaultPath(dem, bit, of.certificate.mechanisms),
                "fault-path certificate failed verification");
            HETARCH_ASSERT(of.certificate.mechanisms.size() ==
                               of.distance,
                           "certificate weight mismatch");
        }

        if (options.unionBound) {
            std::size_t k = options.maxWeight;
            if (k == 0 && of.distance != kInfiniteDistance)
                k = (of.distance + 1) / 2; // ceil(distance / 2)
            if (k != 0) {
                of.unionBoundWeight = k;
                of.unionBound = unionBoundAtWeight(dem, k);
            }
        }
        out.observables.push_back(std::move(of));
    }
    return out;
}

FaultAnalysis
analyzeCircuitFaults(const stab::Circuit& circuit,
                     const FaultOptions& options)
{
    return analyzeFaults(stab::buildDetectorErrorModel(circuit),
                         options);
}

std::size_t
certifiedDistance(const stab::Circuit& circuit)
{
    FaultOptions options;
    options.unionBound = false;
    return analyzeCircuitFaults(circuit, options).minDistance();
}

void
faultFindings(const FaultAnalysis& fa, LintReport& report)
{
    for (const auto m : fa.undetectableMechanisms) {
        std::ostringstream os;
        os << "error mechanism " << m
           << " flips a logical observable with zero flipped "
              "detectors (distance-1 hole)";
        report.add("fault-coverage", Severity::Error, kNoOpIndex,
                   os.str());
    }
    // Dead detectors are informational: they occur legitimately in
    // valid circuits (noiseless segments, code-capacity noise leaves
    // first-round detectors unflippable), but they carry no syndrome
    // information, which is worth surfacing.
    for (const auto d : fa.deadDetectors) {
        std::ostringstream os;
        os << "detector " << d
           << " can never fire: no error mechanism flips it";
        report.add("fault-coverage", Severity::Info, kNoOpIndex,
                   os.str());
    }
    if (fa.numHyperedges > 0) {
        std::ostringstream os;
        os << fa.numHyperedges << " of " << fa.numMechanisms
           << " mechanisms flip more than two detectors and are "
              "excluded from the fault graph; certified distances are "
              "upper bounds over graphlike fault sets";
        report.add("fault-graph", Severity::Info, kNoOpIndex, os.str());
    }

    for (const auto& of : fa.observables) {
        std::ostringstream os;
        os << "observable " << of.observable << ": ";
        if (of.distance == kInfiniteDistance) {
            os << "no undetected "
               << (of.graphlike ? "" : "graphlike ")
               << "fault path exists; the observable may be mis-wired "
                  "to a stabilizer or detector record";
            report.add("fault-distance", Severity::Warning, kNoOpIndex,
                       os.str());
        } else {
            os << "certified fault distance " << of.distance
               << (of.graphlike ? "" : " (graphlike upper bound)")
               << "; certificate mechanisms {";
            for (std::size_t i = 0; i < of.certificate.mechanisms.size();
                 ++i)
                os << (i ? ", " : "") << of.certificate.mechanisms[i];
            os << "}";
            report.add("fault-distance", Severity::Info, kNoOpIndex,
                       os.str());
        }

        if (of.unionBoundWeight != 0) {
            std::ostringstream ub;
            ub << "observable " << of.observable
               << ": union bound " << of.unionBound
               << " on the logical error rate (>= " << of.unionBoundWeight
               << " mechanisms must fire)";
            report.add("fault-bound", Severity::Info, kNoOpIndex,
                       ub.str());
        }
    }
}

void
passFaults(const stab::Circuit& circuit, LintReport& report,
           const FaultOptions& options)
{
    faultFindings(analyzeCircuitFaults(circuit, options), report);
}

} // namespace lint
} // namespace hetarch
