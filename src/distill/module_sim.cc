#include "distill/module_sim.hh"

#include <algorithm>

#include "cells/standard_cells.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "devices/device.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace distill {

namespace {

obs::Counter& cDistillRuns = obs::counter("distill.runs");
obs::Counter& cDistillAttempts = obs::counter("distill.attempts");
obs::Counter& cDistillDistilled = obs::counter("distill.distilled");
obs::Counter& cDistillTrajectories = obs::counter("distill.trajectories");
obs::Histogram& hTrajectoryNs = obs::histogram("distill.trajectory_ns");

} // namespace

double
DistillConfig::computePhase() const
{
    // Two local parity-check halves run in parallel (classical
    // communication is neglected, as in the paper).  The kept pair is
    // unloaded, rotated, entangled with the sacrificed pair, and
    // stored back before the sacrificed pair's readout completes.
    const double swaps = heterogeneous ? 2.0 * swapTime : 0.0;
    return swaps + rotTime + gateTime;
}

double
DistillConfig::distillDuration() const
{
    return computePhase() + readoutTime;
}

double
DistillResult::distilledRatePerMs() const
{
    return horizon > 0.0
               ? static_cast<double>(distilled) / (horizon / units::ms)
               : 0.0;
}

namespace {

/** One EP held in a memory, with lazy decay bookkeeping. */
struct StoredPair
{
    BellDiag state;
    double lastUpdate = 0.0;
    /** Number of successful distillation rounds folded in. */
    int rung = 0;
};

/** Advance a stored pair to @p now at memory coherence @p t_mem. */
void
advance(StoredPair& pair, double now, double t_mem)
{
    if (now > pair.lastUpdate) {
        pair.state = decaySymmetric(pair.state, now - pair.lastUpdate,
                                    t_mem, t_mem);
        pair.lastUpdate = now;
    }
}

} // namespace

DistillResult
simulateDistillation(const DistillConfig& config, double horizon_ns,
                     double trace_interval_ns)
{
    HETARCH_ASSERT(horizon_ns > 0.0, "horizon must be positive");
    Rng rng(config.seed);

    const double t_mem = config.heterogeneous ? config.ts : config.tc;
    const double t_op = config.distillDuration();

    std::vector<StoredPair> input;
    std::vector<StoredPair> output;

    DistillResult result;
    result.horizon = horizon_ns;

    double next_arrival = rng.exponential(config.epRate);
    // Distiller occupancy: when busy, the two consumed input slots are
    // already removed; completion applies the outcome.
    double busy_until = -1.0;
    BellDiag pending_output;
    double pending_success = 0.0;

    double next_trace = 0.0;

    auto record_trace = [&](double now) {
        double best = 1.0;
        for (auto& pair : output) {
            advance(pair, now, t_mem);
            best = std::min(best, pair.state.infidelity());
        }
        result.trace.push_back({now, best});
    };

    int pending_rung = 0;

    auto try_start_distillation = [&](double now) {
        if (busy_until >= 0.0 || input.size() < 2)
            return;
        for (auto& pair : input)
            advance(pair, now, t_mem);
        // Entanglement-pumping schedule (paper priorities 1 and 3):
        // pair equals with equals, preferring the highest rung that
        // has two pairs, so each round roughly squares the infidelity
        // instead of creeping toward a mixed-rung fixed point.
        std::sort(input.begin(), input.end(),
                  [](const StoredPair& x, const StoredPair& y) {
                      if (x.rung != y.rung)
                          return x.rung > y.rung;
                      return x.state.fidelity() > y.state.fidelity();
                  });
        for (std::size_t i = 0; i + 1 < input.size(); ++i) {
            if (input[i].rung != input[i + 1].rung)
                continue;
            // The kept pair decays at compute coherence during the
            // gate phase, then idles in memory while the sacrificed
            // pair is read out (the sacrificed pair's outcome is fixed
            // once measured).
            BellDiag p1 = decaySymmetric(input[i].state,
                                         config.computePhase(),
                                         config.tc, config.tc);
            p1 = decaySymmetric(p1, config.readoutTime, t_mem, t_mem);
            const BellDiag p2 = decaySymmetric(input[i + 1].state,
                                               config.computePhase(),
                                               config.tc, config.tc);
            const auto outcome = config.protocol == Protocol::Dejmps
                                     ? dejmps(p1, p2)
                                     : bbpssw(p1, p2);
            if (outcome.output.fidelity() <=
                input[i].state.fidelity())
                continue; // this rung would not improve; try lower
            pending_rung = input[i].rung + 1;
            input.erase(input.begin() + static_cast<std::ptrdiff_t>(i),
                        input.begin() + static_cast<std::ptrdiff_t>(i) +
                            2);
            busy_until = now + t_op;
            pending_output = outcome.output;
            pending_success = outcome.successProb;
            ++result.attempts;
            return;
        }
    };

    double now = 0.0;
    while (now < horizon_ns) {
        // Next event: arrival, distiller completion, or trace tick.
        double next = next_arrival;
        if (busy_until >= 0.0)
            next = std::min(next, busy_until);
        next = std::min(next, next_trace);
        now = next;
        if (now >= horizon_ns)
            break;

        if (busy_until >= 0.0 && now == busy_until) {
            busy_until = -1.0;
            if (rng.bernoulli(pending_success)) {
                if (pending_output.fidelity() >= config.targetFidelity) {
                    // Priority 2: move to the output memory.
                    ++result.distilled;
                    if (output.size() >= config.outputCapacity) {
                        // Replace the stalest output pair.
                        std::size_t worst = 0;
                        for (std::size_t i = 1; i < output.size(); ++i) {
                            advance(output[i], now, t_mem);
                            if (output[i].state.fidelity() <
                                output[worst].state.fidelity())
                                worst = i;
                        }
                        output.erase(output.begin() +
                                     static_cast<std::ptrdiff_t>(worst));
                    }
                    output.push_back({pending_output, now});
                    record_trace(now);
                } else {
                    // Partially distilled pair returns to the input
                    // memory for another round (priority 1).
                    if (input.size() < config.inputCapacity)
                        input.push_back(
                            {pending_output, now, pending_rung});
                }
            } else {
                ++result.failures;
            }
            try_start_distillation(now);
        } else if (now == next_arrival) {
            next_arrival = now + rng.exponential(config.epRate);
            ++result.rawGenerated;
            // A slot stays reserved for the in-flight pair so a
            // successful round never overflows the memory.
            const std::size_t in_flight = busy_until >= 0.0 ? 1 : 0;
            if (input.size() + in_flight < config.inputCapacity) {
                ++result.rawAccepted;
                input.push_back(
                    {BellDiag::werner(config.epInfidelity), now, 0});
                try_start_distillation(now);
            } else if (!input.empty()) {
                // Memory full: replace the worst stored pair when the
                // fresh EP is better (keeps the memory from silting up
                // with decayed pairs).
                std::size_t worst = 0;
                for (std::size_t i = 0; i < input.size(); ++i) {
                    advance(input[i], now, t_mem);
                    if (input[i].state.fidelity() <
                        input[worst].state.fidelity())
                        worst = i;
                }
                if (input[worst].state.fidelity() <
                    1.0 - config.epInfidelity) {
                    ++result.rawAccepted;
                    input[worst] =
                        {BellDiag::werner(config.epInfidelity), now, 0};
                    try_start_distillation(now);
                }
            }
        }
        if (now >= next_trace) {
            record_trace(now);
            next_trace += trace_interval_ns;
        }
    }
    record_trace(horizon_ns);
    cDistillRuns.add();
    cDistillAttempts.add(result.attempts);
    cDistillDistilled.add(result.distilled);
    return result;
}

double
DistillEnsemble::meanDistilledRatePerMs() const
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& run : runs)
        sum += run.distilledRatePerMs();
    return sum / static_cast<double>(runs.size());
}

std::size_t
DistillEnsemble::totalDistilled() const
{
    std::size_t n = 0;
    for (const auto& run : runs)
        n += run.distilled;
    return n;
}

std::size_t
DistillEnsemble::totalAttempts() const
{
    std::size_t n = 0;
    for (const auto& run : runs)
        n += run.attempts;
    return n;
}

DistillEnsemble
simulateDistillationEnsemble(const DistillConfig& config,
                             double horizon_ns, std::size_t trajectories,
                             double trace_interval_ns)
{
    HETARCH_ASSERT(trajectories > 0, "ensemble needs >= 1 trajectory");
    DistillEnsemble ensemble;
    ensemble.runs.resize(trajectories);
    exec::parallelFor(trajectories, [&](std::size_t t) {
        obs::ScopedTimer timer(hTrajectoryNs);
        cDistillTrajectories.add();
        DistillConfig traj = config;
        // Trajectory 0 keeps the caller's seed so a 1-trajectory
        // ensemble reproduces the single-run entry point exactly.
        if (t > 0)
            traj.seed = Rng::deriveStream(config.seed, t);
        ensemble.runs[t] =
            simulateDistillation(traj, horizon_ns, trace_interval_ns);
    });
    return ensemble;
}

module::Module
buildDistillationModule(double ts_ns)
{
    const auto storage = devices::storageWithCoherence(ts_ns, 3);
    const auto compute = devices::fixedFrequencyTransmon();

    module::Module input("input-memory");
    input.addCell(cells::makeRegister(storage, compute));
    input.addCell(cells::makeRegister(storage, compute));

    module::Module distil("distillation");
    distil.addCell(cells::makeParCheck(compute));

    module::Module output("output-memory");
    output.addCell(cells::makeRegister(storage, compute));

    module::Module top("entanglement-distillation");
    top.addSubModule(std::move(input));
    top.addSubModule(std::move(distil));
    top.addSubModule(std::move(output));
    return top;
}

} // namespace distill
} // namespace hetarch
