/**
 * @file
 * DEJMPS entanglement distillation (Deutsch et al., PRL 77, 2818).
 *
 * Two implementations are provided:
 *  - a closed-form fast path on Bell-diagonal states (the form the
 *    event-driven module simulator uses), and
 *  - an exact 4-qubit density-matrix implementation used as the
 *    reference in tests and the ablation bench.
 */

#pragma once

#include "dm/density_matrix.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace distill {

/**
 * A two-qubit state diagonal in the Bell basis:
 *   a |Phi+>, b |Psi+>, c |Psi->, d |Phi->.
 * The Bell fidelity is the coefficient a.
 */
struct BellDiag
{
    double a = 1.0;
    double b = 0.0;
    double c = 0.0;
    double d = 0.0;

    double fidelity() const { return a; }
    double infidelity() const { return 1.0 - a; }
    double sum() const { return a + b + c + d; }

    /** Renormalize so the coefficients sum to 1. */
    void normalize();

    /** Werner state with Bell fidelity 1 - eps. */
    static BellDiag werner(double infidelity);

    /** Convert to an exact 2-qubit density matrix. */
    dm::DensityMatrix toDensityMatrix() const;

    /**
     * Extract Bell-diagonal coefficients from a density matrix (the
     * Bell-basis diagonal; exact for Bell-diagonal states, a twirl
     * projection otherwise).
     */
    static BellDiag fromDensityMatrix(const dm::DensityMatrix& rho);
};

/**
 * Idle decay of a Bell pair whose two halves decohere with (t1_a,
 * t2_a) and (t1_b, t2_b) for time @p t_ns, in the Pauli-twirl
 * approximation (which keeps the state Bell diagonal).
 */
BellDiag decay(const BellDiag& state, double t_ns, double t1_a,
               double t2_a, double t1_b, double t2_b);

/** Symmetric decay: both halves with coherence (t1, t2). */
BellDiag decaySymmetric(const BellDiag& state, double t_ns, double t1,
                        double t2);

/** Result of one DEJMPS round. */
struct DejmpsOutcome
{
    BellDiag output;        ///< post-selected output pair
    double successProb = 0; ///< probability the parity check passes
};

/** Closed-form DEJMPS round on two Bell-diagonal pairs. */
DejmpsOutcome dejmps(const BellDiag& pair1, const BellDiag& pair2);

/**
 * Exact density-matrix DEJMPS: builds the 4-qubit state
 * pair1 (x) pair2, applies the DEJMPS local rotations and bilateral
 * CNOTs, postselects on matching parity outcomes, and returns the kept
 * pair and the success probability.
 */
DejmpsOutcome dejmpsExact(const dm::DensityMatrix& pair1,
                          const dm::DensityMatrix& pair2);

/**
 * BBPSSW round (Bennett et al., PRL 76, 722): both pairs are twirled
 * to Werner form before the bilateral parity check.  Converges more
 * slowly than DEJMPS (the twirl discards the coefficient structure
 * DEJMPS exploits) — kept as the comparison protocol.
 */
DejmpsOutcome bbpssw(const BellDiag& pair1, const BellDiag& pair2);

/** Twirl a Bell-diagonal state to Werner form (preserves fidelity). */
BellDiag twirlToWerner(const BellDiag& state);

/**
 * One DEJMPS round lowered to the Clifford circuit IR: prepare two
 * Bell pairs (q0,q1) and (q2,q3), apply the local rotations
 * (Rx(+pi/2) = H S H on Alice, Rx(-pi/2) = H SDG H on Bob), run the
 * bilateral CNOTs and measure the checked pair.  The parity of the two
 * check outcomes is annotated as DETECTOR 0 1: noiselessly the check
 * always passes, so the detector is deterministic and the circuit
 * lints clean.
 */
stab::Circuit dejmpsCircuit();

} // namespace distill
} // namespace hetarch
