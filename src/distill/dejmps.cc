#include "distill/dejmps.hh"

#include <cmath>

#include "core/logging.hh"
#include "dm/gates.hh"
#include "lint/lint.hh"
#include "qec/noise_model.hh"

namespace hetarch {
namespace distill {

using dm::DensityMatrix;
using linalg::Complex;

void
BellDiag::normalize()
{
    const double s = sum();
    HETARCH_ASSERT(s > 1e-15, "cannot normalize zero Bell-diagonal state");
    a /= s;
    b /= s;
    c /= s;
    d /= s;
}

BellDiag
BellDiag::werner(double infidelity)
{
    HETARCH_ASSERT(infidelity >= 0.0 && infidelity <= 0.75,
                   "Werner infidelity out of range");
    BellDiag out;
    out.a = 1.0 - infidelity;
    out.b = out.c = out.d = infidelity / 3.0;
    return out;
}

DensityMatrix
BellDiag::toDensityMatrix() const
{
    const double s = 1.0 / std::sqrt(2.0);
    // Basis indices (little endian, q0 = Alice): |q1 q0>.
    const std::vector<std::vector<Complex>> kets = {
        {Complex(s, 0), Complex(0, 0), Complex(0, 0), Complex(s, 0)},  // Phi+
        {Complex(0, 0), Complex(s, 0), Complex(s, 0), Complex(0, 0)},  // Psi+
        {Complex(0, 0), Complex(s, 0), Complex(-s, 0), Complex(0, 0)}, // Psi-
        {Complex(s, 0), Complex(0, 0), Complex(0, 0), Complex(-s, 0)}, // Phi-
    };
    const double coeff[4] = {a, b, c, d};
    DensityMatrix out(2);
    auto& m = out.matrix();
    m = linalg::Matrix(4, 4);
    for (int k = 0; k < 4; ++k) {
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = 0; j < 4; ++j)
                m(i, j) += Complex(coeff[k], 0.0) * kets[k][i] *
                           std::conj(kets[k][j]);
    }
    return out;
}

BellDiag
BellDiag::fromDensityMatrix(const DensityMatrix& rho)
{
    HETARCH_ASSERT(rho.numQubits() == 2, "expected a 2-qubit state");
    const double s = 1.0 / std::sqrt(2.0);
    const std::vector<std::vector<Complex>> kets = {
        {Complex(s, 0), Complex(0, 0), Complex(0, 0), Complex(s, 0)},
        {Complex(0, 0), Complex(s, 0), Complex(s, 0), Complex(0, 0)},
        {Complex(0, 0), Complex(s, 0), Complex(-s, 0), Complex(0, 0)},
        {Complex(s, 0), Complex(0, 0), Complex(0, 0), Complex(-s, 0)},
    };
    BellDiag out;
    out.a = rho.fidelityWithKet(kets[0]);
    out.b = rho.fidelityWithKet(kets[1]);
    out.c = rho.fidelityWithKet(kets[2]);
    out.d = rho.fidelityWithKet(kets[3]);
    return out;
}

namespace {

/** Apply a one-sided Pauli channel to Bell-diagonal coefficients. */
BellDiag
applyPauliSide(const BellDiag& in, const qec::PauliIdle& p)
{
    const double pi = 1.0 - p.px - p.py - p.pz;
    BellDiag out;
    // X swaps (a,b) and (c,d); Y swaps (a,c) and (b,d);
    // Z swaps (a,d) and (b,c).
    out.a = pi * in.a + p.px * in.b + p.py * in.c + p.pz * in.d;
    out.b = pi * in.b + p.px * in.a + p.py * in.d + p.pz * in.c;
    out.c = pi * in.c + p.px * in.d + p.py * in.a + p.pz * in.b;
    out.d = pi * in.d + p.px * in.c + p.py * in.b + p.pz * in.a;
    return out;
}

} // namespace

BellDiag
decay(const BellDiag& state, double t_ns, double t1_a, double t2_a,
      double t1_b, double t2_b)
{
    if (t_ns <= 0.0)
        return state;
    BellDiag out = applyPauliSide(state, qec::idleTwirl(t_ns, t1_a, t2_a));
    out = applyPauliSide(out, qec::idleTwirl(t_ns, t1_b, t2_b));
    return out;
}

BellDiag
decaySymmetric(const BellDiag& state, double t_ns, double t1, double t2)
{
    return decay(state, t_ns, t1, t2, t1, t2);
}

DejmpsOutcome
dejmps(const BellDiag& p1, const BellDiag& p2)
{
    // The Rx(+-pi/2) rotations exchange the Psi- and Phi- components
    // of both inputs; the bilateral CNOT then combines amplitude bits
    // on the target pair (the parity check) and phase bits on the kept
    // pair.  This is why iterating the map converges: the Phi-
    // component that one round builds up is routed into the checked
    // slot of the next round.
    const double n = (p1.a + p1.c) * (p2.a + p2.c) +
                     (p1.b + p1.d) * (p2.b + p2.d);
    DejmpsOutcome out;
    out.successProb = n;
    if (n <= 1e-15)
        return out;
    out.output.a = (p1.a * p2.a + p1.c * p2.c) / n;
    out.output.b = (p1.b * p2.b + p1.d * p2.d) / n;
    out.output.c = (p1.b * p2.d + p1.d * p2.b) / n;
    out.output.d = (p1.a * p2.c + p1.c * p2.a) / n;
    return out;
}

BellDiag
twirlToWerner(const BellDiag& state)
{
    BellDiag out;
    out.a = state.a;
    out.b = out.c = out.d = (1.0 - state.a) / 3.0;
    return out;
}

DejmpsOutcome
bbpssw(const BellDiag& pair1, const BellDiag& pair2)
{
    // Twirl, then run the same bilateral parity check; the output is
    // reported in Werner form (the protocol twirls again before the
    // next round anyway).
    const auto out = dejmps(twirlToWerner(pair1), twirlToWerner(pair2));
    DejmpsOutcome werner;
    werner.successProb = out.successProb;
    werner.output = twirlToWerner(out.output);
    return werner;
}

DejmpsOutcome
dejmpsExact(const DensityMatrix& pair1, const DensityMatrix& pair2)
{
    using namespace dm::gates;
    HETARCH_ASSERT(pair1.numQubits() == 2 && pair2.numQubits() == 2,
                   "dejmpsExact expects two 2-qubit states");

    // Layout: q0 = A1, q1 = B1 (kept pair); q2 = A2, q3 = B2.
    DensityMatrix joint = DensityMatrix::tensor(pair1, pair2);

    // Alice rotates her qubits by Rx(pi/2), Bob by Rx(-pi/2).
    const auto rx_p = rx(M_PI / 2.0);
    const auto rx_m = rx(-M_PI / 2.0);
    joint.applyUnitary(rx_p, {0});
    joint.applyUnitary(rx_p, {2});
    joint.applyUnitary(rx_m, {1});
    joint.applyUnitary(rx_m, {3});

    // Bilateral CNOTs: pair1 controls, pair2 targets.
    joint.applyUnitary(cnot(), {0, 2});
    joint.applyUnitary(cnot(), {1, 3});

    // Postselect the two matching-outcome branches.
    DejmpsOutcome out;
    DensityMatrix acc(2);
    acc.matrix() = linalg::Matrix(4, 4);
    double total = 0.0;
    for (bool outcome : {false, true}) {
        DensityMatrix branch = joint;
        const double pa = branch.postselectZ(2, outcome);
        if (pa <= 1e-15)
            continue;
        const double pb = branch.postselectZ(3, outcome);
        const double p = pa * pb;
        if (p <= 1e-15)
            continue;
        DensityMatrix kept = branch.partialTrace({0, 1});
        acc.matrix() += kept.matrix() * Complex(p, 0.0);
        total += p;
    }
    out.successProb = total;
    if (total > 1e-15) {
        acc.matrix() *= Complex(1.0 / total, 0.0);
        out.output = BellDiag::fromDensityMatrix(acc);
    }
    return out;
}

stab::Circuit
dejmpsCircuit()
{
    // Layout matches dejmpsExact: q0 = A1, q1 = B1 (kept pair);
    // q2 = A2, q3 = B2 (checked pair).
    stab::Circuit circ(4);
    for (std::uint32_t pair : {0u, 2u}) {
        circ.h(pair);
        circ.cx(pair, pair + 1);
    }
    // Rx(+pi/2) on Alice (q0, q2), Rx(-pi/2) on Bob (q1, q3) -- both
    // Cliffords up to global phase.
    for (std::uint32_t q : {0u, 2u}) {
        circ.h(q);
        circ.s(q);
        circ.h(q);
    }
    for (std::uint32_t q : {1u, 3u}) {
        circ.h(q);
        circ.sdg(q);
        circ.h(q);
    }
    // Bilateral CNOTs, then the parity check on the sacrificed pair.
    circ.cx(0, 2);
    circ.cx(1, 3);
    const auto ma = circ.measure(2);
    const auto mb = circ.measure(3);
    circ.detector({ma, mb});
#ifndef NDEBUG
    lint::assertClean(circ, "dejmpsCircuit");
#endif
    return circ;
}

} // namespace distill
} // namespace hetarch
