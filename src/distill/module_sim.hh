/**
 * @file
 * Event-driven simulation of the entanglement-distillation module
 * (paper Section 4.1, Figs. 1, 3, 4).
 *
 * The module comprises an input memory (Register cells), a ParCheck
 * distillation cell, and an output memory (Register cell).  Entangled
 * pairs (EPs) arrive stochastically (Poisson), decay in memory, and a
 * greedy scheduler drives DEJMPS rounds with the paper's priorities:
 *   (1) re-distill stored pairs when it improves fidelity,
 *   (2) move pairs that reached the target to the output memory,
 *   (3) distill newly arrived pairs,
 *   (4) store incoming pairs.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hh"
#include "distill/dejmps.hh"
#include "module/module.hh"

namespace hetarch {
namespace distill {

/** Which two-pair purification protocol the module runs. */
enum class Protocol
{
    Dejmps, ///< the paper's protocol (DEJMPS)
    Bbpssw, ///< Werner-twirled comparison protocol
};

/** Configuration of a distillation-module simulation. */
struct DistillConfig
{
    /** Purification protocol (paper: DEJMPS). */
    Protocol protocol = Protocol::Dejmps;

    /** Storage coherence per mode (T1 = T2 = Ts). */
    double ts = 12.5 * units::ms;
    /** Compute coherence (T1 = T2 = Tc). */
    double tc = 0.5 * units::ms;
    /**
     * Heterogeneous: idle pairs live in storage devices at Ts.
     * Homogeneous baseline: everything idles at Tc (set het=false).
     */
    bool heterogeneous = true;

    /** Mean EP generation rate (events per ns). */
    double epRate = 1.0 * units::MHz;
    /** Infidelity of freshly generated (Werner) EPs. */
    double epInfidelity = 0.05;
    /** Output threshold fidelity. */
    double targetFidelity = 0.995;

    /** Input memory capacity (2 Registers x 3 modes in the paper). */
    std::size_t inputCapacity = 6;
    /** Output memory capacity (1 Register x 3 modes). */
    std::size_t outputCapacity = 3;

    /**
     * Storage<->compute SWAP duration (paper Section 4: all two-qubit
     * gates including SWAPs take 100 ns).
     */
    double swapTime = 100.0;
    /** Two-qubit gate time. */
    double gateTime = 100.0;
    /** Single-qubit rotation time. */
    double rotTime = 40.0;
    /** Readout duration. */
    double readoutTime = 1.0 * units::us;

    std::uint64_t seed = 1;

    /**
     * Time the kept pair spends on compute devices per attempt
     * (unload, rotation, CNOT, store back).
     */
    double computePhase() const;
    /** Total occupancy of the ParCheck per attempt (incl. readout). */
    double distillDuration() const;
};

/** A point of the best-output-infidelity trace (Fig. 3). */
struct TracePoint
{
    double time = 0.0;             ///< ns
    double bestInfidelity = 1.0;   ///< best EP in the output register
};

/** Aggregate result of one simulation run. */
struct DistillResult
{
    std::vector<TracePoint> trace;
    std::size_t rawGenerated = 0;   ///< EPs arriving at the module
    std::size_t rawAccepted = 0;    ///< EPs stored (not overflowed)
    std::size_t distilled = 0;      ///< pairs that reached the target
    std::size_t attempts = 0;       ///< DEJMPS rounds executed
    std::size_t failures = 0;       ///< DEJMPS rounds that failed
    double horizon = 0.0;           ///< simulated time, ns

    /** Distilled pairs per millisecond (Fig. 4 y-axis). */
    double distilledRatePerMs() const;
};

/** Run one simulation to @p horizon_ns. */
DistillResult simulateDistillation(const DistillConfig& config,
                                   double horizon_ns,
                                   double trace_interval_ns = 500.0);

/** Independent trajectories of one configuration, plus aggregates. */
struct DistillEnsemble
{
    std::vector<DistillResult> runs;

    /** Mean distilled-EP rate (pairs/ms) over the trajectories. */
    double meanDistilledRatePerMs() const;
    /** Total target-reaching pairs across all trajectories. */
    std::size_t totalDistilled() const;
    /** Total DEJMPS attempts across all trajectories. */
    std::size_t totalAttempts() const;
};

/**
 * Run @p trajectories independent trajectories of @p config on the
 * exec engine.  Trajectory 0 uses config.seed verbatim (so runs[0] is
 * bit-identical to simulateDistillation(config, ...)); trajectory t
 * uses Rng::deriveStream(config.seed, t).  Results are bit-identical
 * for any thread count.
 */
DistillEnsemble
simulateDistillationEnsemble(const DistillConfig& config,
                             double horizon_ns, std::size_t trajectories,
                             double trace_interval_ns = 500.0);

/**
 * The distillation module as a HetArch module-hierarchy object
 * (Fig. 1): input memory sub-module (2 Registers), distillation
 * sub-module (ParCheck), output memory sub-module (1 Register).
 */
module::Module buildDistillationModule(double ts_ns);

} // namespace distill
} // namespace hetarch
