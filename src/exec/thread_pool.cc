#include "exec/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/logging.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace exec {

namespace {

// Telemetry: counters are thread-count invariant (tasks and calls are
// fixed by the problem partition); the histograms carry scheduling-
// dependent timings and are advisory.
obs::Counter& cParallelForCalls = obs::counter("exec.parallel_for.calls");
obs::Counter& cTasks = obs::counter("exec.tasks");
obs::Histogram& hTaskNs = obs::histogram("exec.task_ns");
obs::Histogram& hQueueWaitNs = obs::histogram("exec.queue_wait_ns");

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Per-thread flag marking execution inside a parallelFor task. */
thread_local bool tlInParallelRegion = false;

std::atomic<unsigned> gOverride{0};

unsigned
defaultThreadCount()
{
    // Startup-only configuration read; nothing writes the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("HETARCH_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1 &&
            parsed <= std::numeric_limits<int>::max())
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * The shared worker pool.  Jobs are announced by bumping a generation
 * counter under the mutex; workers drain the job's index counter and
 * tally completed tasks, so which worker runs which index is free to
 * vary while results stay slot-addressed and deterministic.
 *
 * All per-job state lives in a heap-allocated Job shared between the
 * announcing thread and the workers.  A worker that wakes up late --
 * after its job already finished and a new one was announced -- still
 * holds the *old* job, whose index counter is exhausted, so it exits
 * drain() without ever touching the (by then dead) task function.
 * Resetting counters in the pool itself would hand the stale worker a
 * fresh index and a dangling std::function pointer.
 */
class Pool
{
  public:
    static Pool& instance()
    {
        static Pool pool;
        return pool;
    }

    void run(std::size_t n, const std::function<void(std::size_t)>& fn,
             unsigned workers)
    {
        auto job = std::make_shared<Job>();
        job->fn = &fn;
        job->n = n;
        job->announceNs = obs::timingEnabled() ? steadyNowNs() : 0;

        std::unique_lock<std::mutex> lock(poolMutex);
        ensureWorkersLocked(workers - 1);
        currentJob = job;
        ++generation;
        lock.unlock();
        jobAvailable.notify_all();

        drain(*job); // the calling thread works too

        lock.lock();
        jobDone.wait(lock, [&] {
            return job->completed.load(std::memory_order_acquire) == n;
        });
        currentJob.reset();
        lock.unlock();
        if (job->firstError)
            std::rethrow_exception(job->firstError);
    }

  private:
    static constexpr std::size_t kNoError =
        std::numeric_limits<std::size_t>::max();

    struct Job
    {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> nextIndex{0};
        std::atomic<std::size_t> completed{0};
        std::uint64_t announceNs = 0;
        // Error slots are guarded by poolMutex; the announcing thread
        // reads them only after completed == n.
        std::size_t firstErrorIndex = kNoError;
        std::exception_ptr firstError;
    };

    Pool() = default;

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            shutdown = true;
        }
        jobAvailable.notify_all();
        for (auto& worker : threads)
            worker.join();
    }

    void ensureWorkersLocked(unsigned wanted)
    {
        while (threads.size() < wanted)
            threads.emplace_back([this] { workerLoop(); });
    }

    /** Pull task indices until the job's counter is exhausted. */
    void drain(Job& job)
    {
        tlInParallelRegion = true;
        for (;;) {
            const std::size_t i =
                job.nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.n)
                break;
            try {
                obs::ScopedTimer timer(hTaskNs);
                (*job.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(poolMutex);
                if (i < job.firstErrorIndex) {
                    job.firstErrorIndex = i;
                    job.firstError = std::current_exception();
                }
            }
            if (job.completed.fetch_add(1, std::memory_order_acq_rel) +
                    1 ==
                job.n) {
                // Empty critical section pairs with the jobDone wait.
                { std::lock_guard<std::mutex> lock(poolMutex); }
                jobDone.notify_all();
            }
        }
        tlInParallelRegion = false;
    }

    void workerLoop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(poolMutex);
        for (;;) {
            jobAvailable.wait(lock, [&] {
                return shutdown || (generation != seen && currentJob);
            });
            if (shutdown)
                return;
            seen = generation;
            auto job = currentJob; // shared: outlives the announcement
            lock.unlock();
            // Dispatch latency: time from job announcement to this
            // worker joining in (recorded once per job per worker).
            if (job->announceNs != 0 && obs::timingEnabled()) {
                const auto now = steadyNowNs();
                hQueueWaitNs.record(
                    now > job->announceNs ? now - job->announceNs : 0);
            }
            drain(*job);
            job.reset();
            lock.lock();
        }
    }

    std::mutex poolMutex;
    std::condition_variable jobAvailable;
    std::condition_variable jobDone;
    std::vector<std::thread> threads;
    bool shutdown = false;

    // Current job announcement (guarded by poolMutex).
    std::uint64_t generation = 0;
    std::shared_ptr<Job> currentJob;
};

} // namespace

unsigned
threadCount()
{
    const unsigned forced = gOverride.load(std::memory_order_relaxed);
    return forced > 0 ? forced : defaultThreadCount();
}

void
setThreadCount(unsigned n)
{
    gOverride.store(n, std::memory_order_relaxed);
}

bool
inParallelRegion()
{
    return tlInParallelRegion;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    // The task partition is scheduling-independent, so these counts
    // are bit-identical for any worker count (serial path included).
    cParallelForCalls.add();
    cTasks.add(n);
    const unsigned workers = threadCount();
    // Serial fast path: one worker, a single task, or a nested call
    // (the outer loop already owns the pool).  Runs inline in task
    // order; by the determinism rules this is bit-identical to the
    // parallel path.
    if (workers <= 1 || n == 1 || tlInParallelRegion) {
        const bool outermost = !tlInParallelRegion;
        tlInParallelRegion = true;
        try {
            for (std::size_t i = 0; i < n; ++i) {
                obs::ScopedTimer timer(hTaskNs);
                fn(i);
            }
        } catch (...) {
            if (outermost)
                tlInParallelRegion = false;
            throw;
        }
        if (outermost)
            tlInParallelRegion = false;
        return;
    }
    Pool::instance().run(n, fn, workers);
}

void
parallelInvoke(std::initializer_list<std::function<void()>> tasks)
{
    const auto* begin = tasks.begin();
    parallelFor(tasks.size(),
                [&](std::size_t i) { (*(begin + i))(); });
}

void
parallelInvoke(const std::vector<std::function<void()>>& tasks)
{
    parallelFor(tasks.size(), [&](std::size_t i) { tasks[i](); });
}

} // namespace exec
} // namespace hetarch
