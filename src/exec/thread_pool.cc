#include "exec/thread_pool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/logging.hh"

namespace hetarch {
namespace exec {

namespace {

/** Per-thread flag marking execution inside a parallelFor task. */
thread_local bool tlInParallelRegion = false;

std::atomic<unsigned> gOverride{0};

unsigned
defaultThreadCount()
{
    if (const char* env = std::getenv("HETARCH_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1 &&
            parsed <= std::numeric_limits<int>::max())
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * The shared worker pool.  Jobs are announced by bumping a generation
 * counter under the mutex; workers drain the job's index counter and
 * tally completed tasks, so which worker runs which index is free to
 * vary while results stay slot-addressed and deterministic.
 */
class Pool
{
  public:
    static Pool& instance()
    {
        static Pool pool;
        return pool;
    }

    void run(std::size_t n, const std::function<void(std::size_t)>& fn,
             unsigned workers)
    {
        std::unique_lock<std::mutex> lock(poolMutex);
        ensureWorkersLocked(workers - 1);
        jobFn = &fn;
        jobSize = n;
        nextIndex.store(0, std::memory_order_relaxed);
        completed.store(0, std::memory_order_relaxed);
        firstErrorIndex = kNoError;
        firstError = nullptr;
        ++generation;
        lock.unlock();
        jobAvailable.notify_all();

        drain(n, fn); // the calling thread works too

        lock.lock();
        jobDone.wait(lock, [&] {
            return completed.load(std::memory_order_acquire) == n;
        });
        jobFn = nullptr;
        const auto error = firstError;
        lock.unlock();
        if (error)
            std::rethrow_exception(error);
    }

  private:
    static constexpr std::size_t kNoError =
        std::numeric_limits<std::size_t>::max();

    Pool() = default;

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            shutdown = true;
        }
        jobAvailable.notify_all();
        for (auto& worker : threads)
            worker.join();
    }

    void ensureWorkersLocked(unsigned wanted)
    {
        while (threads.size() < wanted)
            threads.emplace_back([this] { workerLoop(); });
    }

    /** Pull task indices until the current job's counter is exhausted. */
    void drain(std::size_t n, const std::function<void(std::size_t)>& fn)
    {
        tlInParallelRegion = true;
        for (;;) {
            const std::size_t i =
                nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(poolMutex);
                if (i < firstErrorIndex) {
                    firstErrorIndex = i;
                    firstError = std::current_exception();
                }
            }
            if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
                // Empty critical section pairs with the jobDone wait.
                { std::lock_guard<std::mutex> lock(poolMutex); }
                jobDone.notify_all();
            }
        }
        tlInParallelRegion = false;
    }

    void workerLoop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(poolMutex);
        for (;;) {
            jobAvailable.wait(lock, [&] {
                return shutdown || (generation != seen && jobFn);
            });
            if (shutdown)
                return;
            seen = generation;
            const auto* fn = jobFn;
            const std::size_t n = jobSize;
            lock.unlock();
            drain(n, *fn);
            lock.lock();
        }
    }

    std::mutex poolMutex;
    std::condition_variable jobAvailable;
    std::condition_variable jobDone;
    std::vector<std::thread> threads;
    bool shutdown = false;

    // Current job (guarded by poolMutex except the atomics).
    std::uint64_t generation = 0;
    const std::function<void(std::size_t)>* jobFn = nullptr;
    std::size_t jobSize = 0;
    std::atomic<std::size_t> nextIndex{0};
    std::atomic<std::size_t> completed{0};
    std::size_t firstErrorIndex = kNoError;
    std::exception_ptr firstError;
};

} // namespace

unsigned
threadCount()
{
    const unsigned forced = gOverride.load(std::memory_order_relaxed);
    return forced > 0 ? forced : defaultThreadCount();
}

void
setThreadCount(unsigned n)
{
    gOverride.store(n, std::memory_order_relaxed);
}

bool
inParallelRegion()
{
    return tlInParallelRegion;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    const unsigned workers = threadCount();
    // Serial fast path: one worker, a single task, or a nested call
    // (the outer loop already owns the pool).  Runs inline in task
    // order; by the determinism rules this is bit-identical to the
    // parallel path.
    if (workers <= 1 || n == 1 || tlInParallelRegion) {
        const bool outermost = !tlInParallelRegion;
        tlInParallelRegion = true;
        try {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
        } catch (...) {
            if (outermost)
                tlInParallelRegion = false;
            throw;
        }
        if (outermost)
            tlInParallelRegion = false;
        return;
    }
    Pool::instance().run(n, fn, workers);
}

void
parallelInvoke(std::initializer_list<std::function<void()>> tasks)
{
    const auto* begin = tasks.begin();
    parallelFor(tasks.size(),
                [&](std::size_t i) { (*(begin + i))(); });
}

} // namespace exec
} // namespace hetarch
