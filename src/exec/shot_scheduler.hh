/**
 * @file
 * Shot-budget partitioning for deterministic Monte-Carlo execution.
 *
 * A ShotScheduler splits a shot budget into chunks whose boundaries
 * depend only on the budget itself — never on the thread count — so a
 * chunked computation with per-chunk random streams is reproducible on
 * any machine.  Chunks are aligned to the 64-shot batches of the Pauli
 * frame sampler: every chunk except possibly the last is a multiple of
 * 64 shots, so chunking never splits a sampler batch.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rng.hh"

namespace hetarch {
namespace exec {

/** One contiguous range of Monte-Carlo shots. */
struct ShotChunk
{
    std::size_t index = 0; ///< chunk number, the RNG stream index
    std::size_t begin = 0; ///< first shot covered
    std::size_t count = 0; ///< shots in this chunk
};

/** Thread-count-independent partition of a shot budget. */
class ShotScheduler
{
  public:
    /** Default shots per chunk: 4 sampler batches. */
    static constexpr std::size_t kDefaultChunkShots = 256;

    /**
     * Partition @p shots into chunks of @p chunk_shots (rounded up to
     * a multiple of 64; 0 selects the default).  The last chunk takes
     * the remainder.
     */
    explicit ShotScheduler(std::size_t shots,
                           std::size_t chunk_shots = kDefaultChunkShots);

    std::size_t shots() const { return total; }
    std::size_t chunkShots() const { return perChunk; }
    std::size_t numChunks() const { return chunks; }

    /** The @p i-th chunk (i < numChunks()). */
    ShotChunk chunk(std::size_t i) const;

    /**
     * The independent generator for chunk @p i of an experiment seeded
     * with @p seed (Rng::deriveStream under the hood).
     */
    static Rng chunkRng(std::uint64_t seed, std::size_t i)
    {
        return Rng(Rng::deriveStream(seed, i));
    }

  private:
    std::size_t total = 0;
    std::size_t perChunk = 0;
    std::size_t chunks = 0;
};

} // namespace exec
} // namespace hetarch
