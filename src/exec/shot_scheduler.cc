#include "exec/shot_scheduler.hh"

#include "core/logging.hh"
#include "obs/obs.hh"

namespace hetarch {
namespace exec {

namespace {

obs::Counter& cShotsScheduled =
    obs::counter("exec.scheduler.shots_scheduled");
obs::Counter& cChunksScheduled =
    obs::counter("exec.scheduler.chunks_scheduled");

} // namespace

ShotScheduler::ShotScheduler(std::size_t shots, std::size_t chunk_shots)
    : total(shots)
{
    if (chunk_shots == 0)
        chunk_shots = kDefaultChunkShots;
    // Round up to the sampler's 64-shot batch so a chunk boundary
    // never falls inside a batch.
    perChunk = (chunk_shots + 63) / 64 * 64;
    chunks = total == 0 ? 0 : (total + perChunk - 1) / perChunk;
    cShotsScheduled.add(total);
    cChunksScheduled.add(chunks);
}

ShotChunk
ShotScheduler::chunk(std::size_t i) const
{
    HETARCH_ASSERT(i < chunks, "chunk index ", i, " out of range (",
                   chunks, " chunks)");
    ShotChunk c;
    c.index = i;
    c.begin = i * perChunk;
    c.count = std::min(perChunk, total - c.begin);
    return c;
}

} // namespace exec
} // namespace hetarch
