/**
 * @file
 * Bounded single-producer/single-consumer handoff queue for streaming
 * pipelines.
 *
 * The streaming decode driver (qec/stream_experiment.hh) runs one
 * sampler task and one decoder task on the exec pool; this queue is
 * the channel between them.  It is deliberately simple — one mutex and
 * two condition variables — because the payloads are whole syndrome
 * blocks (microseconds of downstream work each), so lock cost is
 * noise.  What matters is the *bounded* capacity: a slow consumer
 * stalls the producer (backpressure) instead of letting sampled
 * syndromes pile up, which is what keeps streaming memory usage
 * independent of the total round count.
 *
 * Both push() and pop() report the nanoseconds they spent blocked so
 * callers can feed advisory stall histograms.  A free-list lets the
 * consumer hand exhausted payloads back to the producer, so a steady
 * pipeline recycles ~capacity buffers instead of allocating per block.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include <chrono>

namespace hetarch {
namespace exec {

template <typename T>
class BlockQueue
{
  public:
    explicit BlockQueue(std::size_t capacity)
        : cap(capacity ? capacity : 1)
    {
    }

    /**
     * Enqueue an item, blocking while the queue is full.  Adds any
     * blocked time to @p wait_ns (when non-null).  Returns false —
     * dropping the item — iff close() was called.
     */
    bool push(T&& item, std::uint64_t* wait_ns = nullptr)
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (items.size() >= cap && !closed) {
            const auto t0 = std::chrono::steady_clock::now();
            notFull.wait(lock, [&] {
                return items.size() < cap || closed;
            });
            if (wait_ns)
                *wait_ns += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
        }
        if (closed)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty and not
     * closed.  Adds any blocked time to @p wait_ns (when non-null).
     * Returns false iff the queue is drained *and* closed.
     */
    bool pop(T& out, std::uint64_t* wait_ns = nullptr)
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (items.empty() && !closed) {
            const auto t0 = std::chrono::steady_clock::now();
            notEmpty.wait(lock, [&] { return !items.empty() || closed; });
            if (wait_ns)
                *wait_ns += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
        }
        if (items.empty())
            return false; // closed and drained
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        notFull.notify_one();
        return true;
    }

    /**
     * Mark the stream complete: pending items remain poppable, then
     * pop() returns false; subsequent push() calls are rejected.
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            closed = true;
        }
        notEmpty.notify_all();
        notFull.notify_all();
    }

    /** Hand a spent payload back for reuse (consumer side). */
    void recycle(T&& item)
    {
        std::lock_guard<std::mutex> lock(freeMtx);
        freeList.push_back(std::move(item));
    }

    /**
     * Take a recycled payload if one is available (producer side).
     * Returns false — leaving @p out untouched — when the free-list is
     * empty.
     */
    bool takeRecycled(T& out)
    {
        std::lock_guard<std::mutex> lock(freeMtx);
        if (freeList.empty())
            return false;
        out = std::move(freeList.back());
        freeList.pop_back();
        return true;
    }

  private:
    const std::size_t cap;
    std::mutex mtx;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> items;
    bool closed = false;

    std::mutex freeMtx;
    std::vector<T> freeList;
};

} // namespace exec
} // namespace hetarch
