/**
 * @file
 * Deterministic parallel execution engine.
 *
 * All Monte-Carlo and sweep entry points in HetArch run on this one
 * engine instead of private shot loops.  The design goal is strict
 * determinism: a computation partitioned over N tasks must produce
 * bit-identical results for ANY worker count, including 1.  That is
 * achieved by three rules:
 *
 *   1. the task partition depends only on the problem size, never on
 *      the thread count (see ShotScheduler);
 *   2. every task derives its own random stream from (seed, taskIndex)
 *      (see Rng::deriveStream), so no task ever reads another task's
 *      generator state;
 *   3. task results land in pre-sized per-task slots and are reduced
 *      in task order on the calling thread.
 *
 * The pool is work-stealing-free: idle workers pull the next task
 * index from a single atomic counter (chunk-sharded dispatch).  Which
 * worker runs which task is non-deterministic, but by rules 1-3 it
 * cannot affect results.
 *
 * The worker count comes from, in priority order: setThreadCount(),
 * the HETARCH_THREADS environment variable, then
 * std::thread::hardware_concurrency().  A count of 1 bypasses the pool
 * entirely and runs inline on the calling thread.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hetarch {
namespace exec {

/**
 * Effective worker count for parallelFor: the setThreadCount override
 * if set, else HETARCH_THREADS, else hardware concurrency (min 1).
 */
unsigned threadCount();

/**
 * Programmatic override of the worker count (0 restores the
 * environment/hardware default).  Takes effect on the next parallelFor;
 * existing pool threads are retired lazily.
 */
void setThreadCount(unsigned n);

/**
 * Invoke fn(i) for every i in [0, n), distributing indices over the
 * worker pool.  Blocks until every invocation returned.
 *
 * fn must be safe to call concurrently for distinct i.  Nested calls
 * (fn itself calling parallelFor) execute the inner loop serially on
 * the worker, so callees can parallelize unconditionally without risk
 * of deadlock or oversubscription.
 *
 * Exceptions thrown by fn are captured and the first one (in task
 * order) is rethrown on the calling thread after all tasks finish.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

/**
 * Run a fixed set of heterogeneous tasks concurrently (convenience
 * wrapper over parallelFor).  Same thread-safety and nesting rules.
 */
void parallelInvoke(std::initializer_list<std::function<void()>> tasks);

/**
 * parallelInvoke over a runtime-sized task set (the job service's
 * batch dispatch shape).  Same thread-safety and nesting rules.
 */
void parallelInvoke(const std::vector<std::function<void()>>& tasks);

/** True while the current thread is executing inside a parallelFor. */
bool inParallelRegion();

} // namespace exec
} // namespace hetarch
