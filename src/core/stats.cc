#include "core/stats.hh"

#include <algorithm>
#include <cmath>

namespace hetarch {

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::stderrOfMean() const
{
    return n > 0 ? stddev() / std::sqrt(static_cast<double>(n)) : 0.0;
}

void
TrialCounter::add(bool success)
{
    ++total;
    if (success)
        ++hits;
}

void
TrialCounter::add(std::uint64_t successes_in, std::uint64_t trials_in)
{
    hits += successes_in;
    total += trials_in;
}

double
TrialCounter::rate() const
{
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

namespace {

constexpr double z95 = 1.959963984540054;

double
wilsonEdge(double p, double n, int sign)
{
    const double z2 = z95 * z95;
    const double denom = 1.0 + z2 / n;
    const double centre = p + z2 / (2.0 * n);
    const double spread = z95 * std::sqrt(p * (1.0 - p) / n +
                                          z2 / (4.0 * n * n));
    return (centre + sign * spread) / denom;
}

} // namespace

double
TrialCounter::wilsonLow() const
{
    if (total == 0)
        return 0.0;
    return std::max(0.0, wilsonEdge(rate(), static_cast<double>(total), -1));
}

double
TrialCounter::wilsonHigh() const
{
    if (total == 0)
        return 1.0;
    return std::min(1.0, wilsonEdge(rate(), static_cast<double>(total), +1));
}

} // namespace hetarch
