/**
 * @file
 * Statistics accumulators for Monte-Carlo experiments.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace hetarch {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen so far. */
    std::size_t count() const { return n; }
    /** Sample mean; 0 if empty. */
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Standard error of the mean. */
    double stderrOfMean() const;
    /** Smallest sample seen. */
    double min() const { return lo; }
    /** Largest sample seen. */
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Bernoulli trial counter with Wilson-score confidence intervals —
 * the right tool for logical-error-rate estimates.
 */
class TrialCounter
{
  public:
    /** Record one trial. */
    void add(bool success);
    /** Record a batch. */
    void add(std::uint64_t successes_in, std::uint64_t trials_in);

    std::uint64_t trials() const { return total; }
    std::uint64_t successes() const { return hits; }
    /** Point estimate of the success probability. */
    double rate() const;
    /** Lower edge of the Wilson 95% interval. */
    double wilsonLow() const;
    /** Upper edge of the Wilson 95% interval. */
    double wilsonHigh() const;

  private:
    std::uint64_t hits = 0;
    std::uint64_t total = 0;
};

} // namespace hetarch
