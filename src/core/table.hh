/**
 * @file
 * Minimal aligned-text table and CSV writer used by the benchmark
 * harnesses to print paper-style tables.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetarch {

/**
 * Collects rows of strings and renders them as an aligned text table
 * or CSV.  Numeric cells should be pre-formatted by the caller (see
 * formatSci / formatFixed).
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

    /** Render with aligned columns and a header rule. */
    void print(std::ostream& os) const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    void printCsv(std::ostream& os) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double in scientific notation with @p digits significant digits. */
std::string formatSci(double v, int digits = 3);

/** Format a double with fixed @p decimals decimal places. */
std::string formatFixed(double v, int decimals = 4);

} // namespace hetarch
