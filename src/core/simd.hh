/**
 * @file
 * Portable word-block SIMD kernels for the packed pipeline.
 *
 * Every hot loop of the bit-packed sampler/decoder operates on rows of
 * 64-bit words whose bit lanes are Monte-Carlo shots.  These helpers
 * apply XOR/copy/swap/zero/popcount across a whole W-word row at once,
 * using AVX2 (4 words per vector) or NEON (2 words per vector) when
 * available and a plain scalar loop otherwise.
 *
 * Contract: every kernel computes the exact same bits on every
 * backend — they are pure integer operations, so vectorization cannot
 * change results, only throughput.  The scalar fallback is therefore a
 * *guarantee*, not a degraded mode: building with -DHETARCH_SIMD=OFF
 * (which defines HETARCH_SIMD_DISABLE) must reproduce every fixed-seed
 * artifact bit for bit, and CI runs the packed/ablation suites that
 * way.
 *
 * x86 dispatch is runtime: the AVX2 bodies are compiled with a
 * per-function target attribute (no global -mavx2, so the binary still
 * runs on baseline x86-64) and selected once via cpuid.  NEON is part
 * of baseline AArch64, so it compiles unconditionally there.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if !defined(HETARCH_SIMD_DISABLE) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HETARCH_SIMD_X86_DISPATCH 1
#endif

#if !defined(HETARCH_SIMD_DISABLE) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define HETARCH_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace hetarch {
namespace simd {

#if defined(HETARCH_SIMD_X86_DISPATCH)
/** Cached cpuid probe; false when built with HETARCH_SIMD_DISABLE. */
bool haveAvx2();
// AVX2 bodies (simd.cc, per-function target attribute).  Callers go
// through the inline wrappers below, which fall back to scalar.
void xorWordsAvx2(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n);
void xorAccumulateAvx2(std::uint64_t* acc, const std::uint64_t* a,
                       const std::uint64_t* b, std::size_t n);
#else
inline bool
haveAvx2()
{
    return false;
}
#endif

/** Human-readable backend tag: "avx2", "neon", or "scalar". */
inline const char*
backendName()
{
#if defined(HETARCH_SIMD_NEON)
    return "neon";
#else
    return haveAvx2() ? "avx2" : "scalar";
#endif
}

/** 64-bit words processed per vector op (1 on the scalar fallback). */
inline std::size_t
vectorWords()
{
#if defined(HETARCH_SIMD_NEON)
    return 2;
#else
    return haveAvx2() ? 4 : 1;
#endif
}

/** dst[i] ^= src[i] for i in [0, n). */
inline void
xorWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n)
{
#if defined(HETARCH_SIMD_X86_DISPATCH)
    if (haveAvx2() && n >= 4) {
        xorWordsAvx2(dst, src, n);
        return;
    }
#elif defined(HETARCH_SIMD_NEON)
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        vst1q_u64(dst + i,
                  veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
    return;
#endif
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= src[i];
}

/** acc[i] = a[i] ^ b[i] for i in [0, n) (three-address XOR). */
inline void
xorInto(std::uint64_t* acc, const std::uint64_t* a,
        const std::uint64_t* b, std::size_t n)
{
#if defined(HETARCH_SIMD_X86_DISPATCH)
    if (haveAvx2() && n >= 4) {
        xorAccumulateAvx2(acc, a, b, n);
        return;
    }
#elif defined(HETARCH_SIMD_NEON)
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(acc + i,
                  veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    for (; i < n; ++i)
        acc[i] = a[i] ^ b[i];
    return;
#endif
    for (std::size_t i = 0; i < n; ++i)
        acc[i] = a[i] ^ b[i];
}

/** dst[i] = src[i] for i in [0, n). */
inline void
copyWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

/** Exchange rows a and b word-wise. */
inline void
swapWords(std::uint64_t* a, std::uint64_t* b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t t = a[i];
        a[i] = b[i];
        b[i] = t;
    }
}

/** dst[i] = 0 for i in [0, n). */
inline void
zeroWords(std::uint64_t* dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = 0;
}

/**
 * Popcount of one packed word.  The single shared bit-counting
 * primitive of the pipeline: both the reference interpreter and the
 * block sampler count frame_flips through this call, so the two paths
 * cannot drift apart in accounting.
 */
inline std::uint64_t
popcountWord(std::uint64_t w)
{
    return static_cast<std::uint64_t>(std::popcount(w));
}

/** Popcount summed over a word row. */
inline std::uint64_t
popcountWords(const std::uint64_t* src, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += popcountWord(src[i]);
    return total;
}

} // namespace simd
} // namespace hetarch
