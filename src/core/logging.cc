#include "core/logging.hh"

namespace hetarch {

namespace {

/** Nesting depth of ScopedFatalCapture on this thread. */
thread_local int fatalCaptureDepth = 0;

} // namespace

ScopedFatalCapture::ScopedFatalCapture()
{
    ++fatalCaptureDepth;
}

ScopedFatalCapture::~ScopedFatalCapture()
{
    --fatalCaptureDepth;
}

namespace detail {

[[noreturn]] void
fatalImpl(const char* file, int line, const std::string& msg)
{
    if (fatalCaptureDepth > 0)
        throw FatalError(msg);
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

[[noreturn]] void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
warnImpl(const std::string& msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string& msg)
{
    std::cout << "info: " << msg << "\n";
}

} // namespace detail
} // namespace hetarch
