#include "core/rng.hh"

#include <cmath>

#include "core/logging.hh"

namespace hetarch {

namespace {

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    HETARCH_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Lemire's multiply-shift with rejection to remove modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    HETARCH_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = uniform();
    // uniform() can return exactly 0; log(0) is -inf, so nudge.
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -std::log(u) / rate;
}

double
Rng::normal()
{
    if (haveCachedNormal) {
        haveCachedNormal = false;
        return cachedNormal;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    haveCachedNormal = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::biasedWord(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return ~0ull;
    // Lane-parallel comparison r < p, processing p's binary digits from
    // the most significant.  A lane is decided at the first digit where
    // its uniform bit differs from p's digit.
    std::uint64_t result = 0;
    std::uint64_t undecided = ~0ull;
    double frac = p;
    for (int i = 0; i < 48 && undecided; ++i) {
        frac *= 2.0;
        const bool digit = frac >= 1.0;
        if (digit)
            frac -= 1.0;
        const std::uint64_t u = next();
        if (digit) {
            result |= undecided & ~u; // r-bit 0 < p-bit 1 -> accept
            undecided &= u;
        } else {
            undecided &= ~u; // r-bit 1 > p-bit 0 -> reject
        }
    }
    return result;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa0761d6478bd642full);
}

std::uint64_t
Rng::deriveStream(std::uint64_t seed, std::uint64_t stream)
{
    // Feed the pair through SplitMix64 twice so that both nearby seeds
    // and nearby stream indices land in unrelated states.  stream + 1
    // keeps stream 0 from collapsing to a plain re-hash of the seed.
    std::uint64_t x = seed;
    std::uint64_t mixed = splitmix64(x);
    x = mixed ^ ((stream + 1) * 0x9e3779b97f4a7c15ull);
    mixed = splitmix64(x);
    return mixed;
}

} // namespace hetarch
