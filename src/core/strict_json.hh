/**
 * @file
 * Shared recursive-descent scanner for the strict hetarch-*-v1 JSON
 * schemas.
 *
 * Every stable machine interface in the repo (hetarch-lint-v1,
 * hetarch-sched-v1, hetarch-flow-v1, hetarch-job-v1, hetarch-obs-v1)
 * uses the same dialect: fixed field order, sorted key names, no
 * unknown fields, no duplicate keys, ASCII strings with a four-escape
 * repertoire, and numbers that are either u64 counts or doubles.  The
 * parsers exist for our own artifacts (scripts, CI gates, round-trip
 * tests), not for arbitrary JSON, so every deviation is an error with
 * a byte offset.
 *
 * This header is the one copy of the token-level machinery.  Domain
 * parsers subclass Scanner (members are protected for dialect
 * extensions like the wire protocol's number-shape classification)
 * and translate ScanError at their boundary: CLI-facing parsers
 * rethrow via HETARCH_FATAL, the job service converts it into a
 * returned diagnostic so a malformed line can't kill the daemon.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace hetarch {
namespace core {
namespace json {

/** Emit a JSON string literal (ASCII, four-escape repertoire). */
void writeString(std::ostream& os, const std::string& s);

/** Round-trip decimal form of a double (17 significant digits). */
void writeDouble(std::ostream& os, double v);

/** Unsigned fields whose sentinel renders as the literal null. */
void writeOrNull(std::ostream& os, std::size_t v, std::size_t sentinel);

/**
 * Scan failure: @p offset is the byte position in the source text at
 * which the deviation was detected, @p reason a human-readable cause.
 */
struct ScanError
{
    std::size_t offset;
    std::string reason;
};

class Scanner
{
  public:
    explicit Scanner(const std::string& text) : src(text) {}

    /** Throw ScanError at the current offset. */
    [[noreturn]] void fail(const std::string& why) const;

    void skipWs();

    /** Next significant character without consuming it. */
    char peek();

    void expect(char c);

    /** Consume @p c if it is next; false (and no movement) otherwise. */
    bool consume(char c);

    /** Consume the literal @p word if it is next. */
    bool consumeWord(const char* word);

    /** A quoted key named exactly @p key followed by ':'. */
    void expectKey(const char* key);

    std::string parseString();

    /** Digits only; overflow is an error, not a wrap. */
    std::uint64_t parseU64();

    std::int64_t parseI64();

    /** A u64 or the literal null mapping to @p sentinel. */
    std::size_t parseU64OrNull(std::size_t sentinel);

    /**
     * A number token parsed as a double.  The whole token must
     * convert: "1.2.3" is an error, not 1.2.
     */
    double parseDouble();

    bool parseBool();

    /** Consume the literal null if it is next. */
    bool consumeNull();

    /** Error unless the whole source has been consumed. */
    void finish();

    /** Current byte offset (for dialect extensions). */
    std::size_t offset() const { return pos; }

  protected:
    const std::string& src;
    std::size_t pos = 0;
};

} // namespace json
} // namespace core
} // namespace hetarch
