/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations (a HetArch bug) and aborts.  warn() and
 * inform() report conditions without stopping the program.
 */

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hetarch {

/**
 * The exception HETARCH_FATAL raises while a ScopedFatalCapture is
 * active on the current thread (instead of exiting the process).
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Redirect HETARCH_FATAL on the current thread: while at least one
 * capture is alive, fatalImpl throws FatalError instead of printing
 * and exiting.  This lets long-running services validate untrusted
 * input through code paths written for one-shot CLI tools (circuit
 * parsing, builder construction) without a malformed request killing
 * the daemon.  Captures nest; the thread-local flag makes concurrent
 * validations independent.  HETARCH_PANIC (internal invariants) still
 * aborts — only user-error reporting is capturable.
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();

    ScopedFatalCapture(const ScopedFatalCapture&) = delete;
    ScopedFatalCapture& operator=(const ScopedFatalCapture&) = delete;
};

namespace detail {

/** Stream-compose a message from parts. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace detail

/**
 * Terminate because the *user* asked for something invalid (bad
 * configuration, out-of-range parameter).  Exits with status 1.
 */
#define HETARCH_FATAL(...) \
    ::hetarch::detail::fatalImpl(__FILE__, __LINE__, \
        ::hetarch::detail::composeMessage(__VA_ARGS__))

/**
 * Terminate because an internal invariant was violated (a HetArch bug).
 * Calls abort() so a core dump / debugger can inspect the state.
 */
#define HETARCH_PANIC(...) \
    ::hetarch::detail::panicImpl(__FILE__, __LINE__, \
        ::hetarch::detail::composeMessage(__VA_ARGS__))

/** Assert an internal invariant; panics with the condition text on failure. */
#define HETARCH_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::hetarch::detail::panicImpl(__FILE__, __LINE__, \
                ::hetarch::detail::composeMessage("assertion failed: " #cond \
                                                  " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Assert an internal invariant on a hot path: compiled to nothing in
 * release builds (NDEBUG), a full HETARCH_ASSERT otherwise.  Use for
 * per-element bounds checks in accessors that production loops hit
 * millions of times per second.
 */
#ifdef NDEBUG
#define HETARCH_DEBUG_ASSERT(cond, ...) \
    do { \
    } while (0)
#else
#define HETARCH_DEBUG_ASSERT(cond, ...) HETARCH_ASSERT(cond, ##__VA_ARGS__)
#endif

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::composeMessage(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::composeMessage(std::forward<Args>(args)...));
}

} // namespace hetarch
