#include "core/simd.hh"

#if defined(HETARCH_SIMD_X86_DISPATCH)

#include <immintrin.h>

namespace hetarch {
namespace simd {

bool
haveAvx2()
{
    // __builtin_cpu_supports caches its cpuid probe; the static keeps
    // the call entirely out of the hot loops.
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

__attribute__((target("avx2"))) void
xorWordsAvx2(std::uint64_t* dst, const std::uint64_t* src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(d, s));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void
xorAccumulateAvx2(std::uint64_t* acc, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                            _mm256_xor_si256(va, vb));
    }
    for (; i < n; ++i)
        acc[i] = a[i] ^ b[i];
}

} // namespace simd
} // namespace hetarch

#endif // HETARCH_SIMD_X86_DISPATCH
