#include "core/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/logging.hh"

namespace hetarch {

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
    HETARCH_ASSERT(!head.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != head.size()) {
        HETARCH_FATAL("row has ", row.size(), " cells, expected ",
                      head.size());
    }
    body.push_back(std::move(row));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto& row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit(head);
    std::size_t rule = 0;
    for (auto w : width)
        rule += w + 2;
    os << std::string(rule, '-') << "\n";
    for (const auto& row : body)
        emit(row);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(head);
    for (const auto& row : body)
        emit(row);
}

std::string
formatSci(double v, int digits)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(digits - 1) << v;
    return os.str();
}

std::string
formatFixed(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

} // namespace hetarch
