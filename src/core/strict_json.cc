#include "core/strict_json.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace hetarch {
namespace core {
namespace json {

void
writeString(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
    os << '"';
}

void
writeDouble(std::ostream& os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
writeOrNull(std::ostream& os, std::size_t v, std::size_t sentinel)
{
    if (v == sentinel)
        os << "null";
    else
        os << v;
}

void
Scanner::fail(const std::string& why) const
{
    throw ScanError{pos, why};
}

void
Scanner::skipWs()
{
    while (pos < src.size() &&
           std::isspace(static_cast<unsigned char>(src[pos])))
        ++pos;
}

char
Scanner::peek()
{
    skipWs();
    if (pos >= src.size())
        fail("unexpected end of input");
    return src[pos];
}

void
Scanner::expect(char c)
{
    if (peek() != c)
        fail(std::string("expected '") + c + "', found '" + src[pos] +
             "'");
    ++pos;
}

bool
Scanner::consume(char c)
{
    skipWs();
    if (pos >= src.size() || src[pos] != c)
        return false;
    ++pos;
    return true;
}

bool
Scanner::consumeWord(const char* word)
{
    skipWs();
    const std::size_t len = std::string(word).size();
    if (src.compare(pos, len, word) != 0)
        return false;
    pos += len;
    return true;
}

void
Scanner::expectKey(const char* key)
{
    const std::string name = parseString();
    if (name != key)
        fail("expected key \"" + std::string(key) + "\", found \"" +
             name + "\"");
    expect(':');
}

std::string
Scanner::parseString()
{
    expect('"');
    std::string out;
    while (pos < src.size() && src[pos] != '"') {
        char c = src[pos++];
        if (c == '\\') {
            if (pos >= src.size())
                fail("unterminated escape");
            const char esc = src[pos++];
            switch (esc) {
              case '"':
                c = '"';
                break;
              case '\\':
                c = '\\';
                break;
              case 'n':
                c = '\n';
                break;
              case 't':
                c = '\t';
                break;
              default:
                fail("unsupported escape sequence");
            }
        }
        out += c;
    }
    if (pos >= src.size())
        fail("unterminated string");
    ++pos; // closing quote
    return out;
}

std::uint64_t
Scanner::parseU64()
{
    skipWs();
    const std::size_t begin = pos;
    while (pos < src.size() &&
           std::isdigit(static_cast<unsigned char>(src[pos])))
        ++pos;
    if (pos == begin)
        fail("expected an unsigned integer");
    if (pos - begin > 20)
        fail("integer overflow");
    errno = 0;
    const std::uint64_t v = std::strtoull(
        src.substr(begin, pos - begin).c_str(), nullptr, 10);
    if (errno == ERANGE)
        fail("integer overflow");
    return v;
}

std::int64_t
Scanner::parseI64()
{
    skipWs();
    const bool negative = consume('-');
    const std::uint64_t magnitude = parseU64();
    const std::uint64_t limit =
        negative ? (1ull << 63) : (1ull << 63) - 1;
    if (magnitude > limit)
        fail("integer overflow");
    // Negate in unsigned arithmetic so INT64_MIN round-trips.
    return static_cast<std::int64_t>(negative ? 0 - magnitude
                                              : magnitude);
}

std::size_t
Scanner::parseU64OrNull(std::size_t sentinel)
{
    skipWs();
    if (consumeWord("null"))
        return sentinel;
    return static_cast<std::size_t>(parseU64());
}

double
Scanner::parseDouble()
{
    skipWs();
    const std::size_t begin = pos;
    while (pos < src.size() &&
           (std::isalnum(static_cast<unsigned char>(src[pos])) ||
            src[pos] == '.' || src[pos] == '+' || src[pos] == '-'))
        ++pos;
    if (pos == begin)
        fail("expected a number");
    const std::string token = src.substr(begin, pos - begin);
    double value = 0.0;
    const char* end = token.c_str() + token.size();
    const auto res = std::from_chars(token.c_str(), end, value);
    if (res.ec != std::errc{} || res.ptr != end) {
        pos = begin;
        fail("malformed number '" + token + "'");
    }
    return value;
}

bool
Scanner::parseBool()
{
    if (consumeWord("true"))
        return true;
    if (consumeWord("false"))
        return false;
    fail("expected a boolean");
}

bool
Scanner::consumeNull()
{
    return consumeWord("null");
}

void
Scanner::finish()
{
    skipWs();
    if (pos != src.size())
        fail("trailing content after document");
}

} // namespace json
} // namespace core
} // namespace hetarch
