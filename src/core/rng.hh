/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of HetArch draw from an explicitly seeded
 * Rng so that every experiment is reproducible.  The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period,
 * and passes BigCrush.
 */

#pragma once

#include <cstdint>

namespace hetarch {

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * plugged into <random> distributions if needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    result_type operator()() { return next(); }

    /** Uniform in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using Lemire's rejection method. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Exponentially distributed with given rate (events per unit time). */
    double exponential(double rate);

    /** Standard normal via Box-Muller. */
    double normal();

    /**
     * 64 independent Bernoulli(p) bits packed into one word, generated
     * by bit-serial comparison of p against 64 lane-parallel uniform
     * draws (exact to 2^-48).  This is what makes the batched Pauli
     * frame sampler fast: one call covers 64 Monte-Carlo shots.
     */
    std::uint64_t biasedWord(double p);

    /**
     * Split off an independent child generator.  Used to give each
     * Monte-Carlo shard its own stream without correlation.
     */
    Rng split();

    /**
     * Stateless child-stream derivation: the seed of the
     * @p stream-th independent generator of an experiment seeded with
     * @p seed, computed by two SplitMix64 rounds over the (seed,
     * stream) pair.  Unlike split(), this does not advance any
     * generator, so shards of a partitioned computation can derive
     * their streams concurrently and in any order — the foundation of
     * the exec engine's determinism contract (results independent of
     * thread count).
     */
    static std::uint64_t deriveStream(std::uint64_t seed,
                                      std::uint64_t stream);

  private:
    std::uint64_t next();

    std::uint64_t s[4];
    bool haveCachedNormal = false;
    double cachedNormal = 0.0;
};

} // namespace hetarch
