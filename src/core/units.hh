/**
 * @file
 * Physical units used throughout HetArch.
 *
 * Internally all times are double-precision *nanoseconds* and all rates
 * are events per nanosecond (i.e. GHz).  These helpers make intent
 * explicit at call sites: `12.5 * units::ms` instead of `12.5e6`.
 */

#pragma once

namespace hetarch {
namespace units {

// --- time, base unit: nanosecond -----------------------------------------
inline constexpr double ns = 1.0;
inline constexpr double us = 1e3 * ns;
inline constexpr double ms = 1e6 * ns;
inline constexpr double second = 1e9 * ns;

// --- rates, base unit: per-nanosecond (GHz) -------------------------------
inline constexpr double GHz = 1.0;
inline constexpr double MHz = 1e-3 * GHz;
inline constexpr double kHz = 1e-6 * GHz;
inline constexpr double Hz = 1e-9 * GHz;

// --- lengths, base unit: millimetre ---------------------------------------
inline constexpr double mm = 1.0;
inline constexpr double um = 1e-3 * mm;

/** Convert a time in ns to microseconds (for printing). */
inline constexpr double toUs(double t_ns) { return t_ns / us; }
/** Convert a time in ns to milliseconds (for printing). */
inline constexpr double toMs(double t_ns) { return t_ns / ms; }

} // namespace units
} // namespace hetarch
