#include "uec/uec_circuit.hh"

#include <cmath>

#include "core/logging.hh"
#include "lint/lint.hh"
#include "qec/noise_model.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace uec {

namespace {

/**
 * Emit the noisy circuit for @p rounds repetitions of a round
 * schedule.  Ancilla lane k occupies circuit qubit n + k.
 */
stab::Circuit
emitFromSchedule(const qec::CssCode& code, const RoundSchedule& sched,
                 int num_ancillas, std::size_t rounds,
                 const UecNoise& noise)
{
    HETARCH_ASSERT(rounds >= 1, "need at least one round");
    const auto n = static_cast<std::uint32_t>(code.n);
    stab::Circuit circ(code.n + static_cast<std::size_t>(num_ancillas));

    // Per-qubit clock for idle-noise accounting.  Data qubits idle at
    // the storage rate except while checked out; ancillas idle at the
    // compute rate.
    std::vector<double> last(circ.numQubits(), 0.0);
    auto idle_to = [&](std::uint32_t q, double t, double t1, double t2) {
        if (t > last[q]) {
            const auto p = qec::idleTwirl(t - last[q], t1, t2);
            circ.pauliChannel1(q, p.px, p.py, p.pz);
            last[q] = t;
        }
    };
    auto idle_data_storage = [&](std::uint32_t q, double t) {
        idle_to(q, t, noise.ts, noise.ts);
    };
    auto idle_compute = [&](std::uint32_t q, double t) {
        idle_to(q, t, noise.tc, noise.tc);
    };

    const std::size_t n_checks = code.zChecks.size() + code.xChecks.size();
    std::vector<std::size_t> prev_meas(n_checks, SIZE_MAX);

    for (int a = 0; a < num_ancillas; ++a)
        circ.reset(n + static_cast<std::uint32_t>(a));

    for (std::size_t round = 0; round < rounds; ++round) {
        const double offset = static_cast<double>(round) * sched.duration;
        for (const auto& op : sched.ops) {
            const double start = offset + op.start;
            const double end = offset + op.end;
            const auto anc = n + static_cast<std::uint32_t>(op.ancilla);
            switch (op.kind) {
              case TimedOp::Kind::SwapOut:
                // Storage idle up to the swap, then compute-rate
                // decoherence during the (coherence-limited) swap.
                idle_data_storage(op.dataQubit, start);
                idle_compute(op.dataQubit, end);
                break;
              case TimedOp::Kind::Cnot: {
                idle_compute(op.dataQubit, end);
                idle_compute(anc, end);
                if (op.routeHops > 0) {
                    // Inter-cell routing: the data qubit rides hops
                    // SWAPs along the compute chain in each direction.
                    const double p_hop = 0.8 * noise.p2;
                    const double p_route =
                        1.0 - std::pow(1.0 - p_hop, 2.0 * op.routeHops);
                    circ.depolarize1(op.dataQubit, p_route);
                }
                if (op.isXCheck)
                    circ.cx(anc, op.dataQubit);
                else
                    circ.cx(op.dataQubit, anc);
                circ.depolarize2(op.dataQubit, anc, noise.p2);
                break;
              }
              case TimedOp::Kind::SwapIn:
                idle_compute(op.dataQubit, end);
                break;
              case TimedOp::Kind::AncPrep:
                idle_compute(anc, end);
                if (op.isXCheck)
                    circ.h(anc);
                break;
              case TimedOp::Kind::AncMeasure: {
                idle_compute(anc, end);
                if (op.isXCheck)
                    circ.h(anc);
                circ.xError(anc, noise.pMeasFlip);
                const auto m = circ.measureReset(anc);
                const auto check =
                    static_cast<std::size_t>(op.checkIndex);
                if (op.isXCheck) {
                    if (round > 0)
                        circ.detector({prev_meas[check], m}, qec::kTagX);
                } else {
                    if (round == 0)
                        circ.detector({m}, qec::kTagZ);
                    else
                        circ.detector({prev_meas[check], m}, qec::kTagZ);
                }
                prev_meas[check] = m;
                break;
              }
            }
        }
        // Close out the round: every data qubit idles in storage to
        // the round boundary.
        const double round_end = offset + sched.duration;
        for (std::uint32_t q = 0; q < n; ++q)
            idle_data_storage(q, round_end);
        for (int a = 0; a < num_ancillas; ++a)
            idle_compute(n + static_cast<std::uint32_t>(a), round_end);
    }

    // Transversal data readout (error-free, as in the paper).
    std::vector<std::size_t> data_meas(code.n);
    for (std::uint32_t q = 0; q < n; ++q)
        data_meas[q] = circ.measure(q);
    for (std::size_t c = 0; c < code.zChecks.size(); ++c) {
        std::vector<std::size_t> refs;
        for (auto q : code.zChecks[c])
            refs.push_back(data_meas[q]);
        refs.push_back(prev_meas[c]);
        circ.detector(refs, qec::kTagZ);
    }
    std::vector<std::size_t> logical;
    for (auto q : code.logicalZ)
        logical.push_back(data_meas[q]);
    circ.observableInclude(0, logical);
#ifndef NDEBUG
    lint::assertClean(circ, "emitFromSchedule");
#endif
    return circ;
}

} // namespace

stab::Circuit
uecMemoryZ(const qec::CssCode& code, const Assignment& assignment,
           std::size_t rounds, const UecNoise& noise, const UecTimes& times)
{
    const auto sched = buildRoundSchedule(code, assignment, times);
    return emitFromSchedule(code, sched, 1, rounds, noise);
}

stab::Circuit
uecChainedMemoryZ(const qec::CssCode& code, const Assignment& assignment,
                  const UecChain& chain, std::size_t rounds,
                  const UecNoise& noise, const UecTimes& times)
{
    const auto sched =
        buildChainedSchedule(code, assignment, chain, times);
    return emitFromSchedule(code, sched, chain.numAncillas(), rounds,
                            noise);
}

} // namespace uec
} // namespace hetarch
