#include "uec/experiment.hh"

#include "core/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/obs.hh"
#include "qec/css_circuit.hh"
#include "qec/memory_experiment.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace uec {

namespace {

obs::Counter& cUecExperiments = obs::counter("uec.memory_experiments");
obs::Counter& cLatticeExperiments =
    obs::counter("uec.lattice_experiments");
obs::Counter& cPseudothresholdEvals =
    obs::counter("uec.pseudothreshold_evals");

bool
isSurface(const qec::CssCode& code)
{
    return code.name.rfind("surface-", 0) == 0;
}

} // namespace

double
uecLogicalErrorPerRound(const qec::CssCode& code, double ts_ns,
                        std::size_t rounds, std::size_t shots,
                        std::uint64_t seed, const UecNoise& base_noise)
{
    cUecExperiments.add();
    UecNoise noise = base_noise;
    noise.ts = ts_ns;
    const auto assignment = optimizeAssignment(code);
    const auto circuit = uecMemoryZ(code, assignment, rounds, noise);
    Rng rng(seed);
    const auto result = qec::runMemoryExperiment(
        circuit, shots, rounds, qec::DecoderKind::GreedyDem, rng);
    return result.perRound();
}

double
homogeneousLogicalErrorPerRound(const qec::CssCode& code,
                                std::size_t rounds, std::size_t shots,
                                std::uint64_t seed,
                                const LatticeNoise& noise)
{
    cLatticeExperiments.add();
    Rng rng(seed);
    if (isSurface(code)) {
        // Native parallel extraction on the square lattice.
        qec::CircuitNoise cn;
        cn.dataT1 = cn.dataT2 = noise.tc;
        cn.ancT1 = cn.ancT2 = noise.tc;
        cn.p2 = noise.p2;
        cn.tMeas = noise.tMeas;
        cn.pMeasFlip = noise.pMeasFlip;
        const auto circuit =
            qec::surfaceMemoryZ(code.distance, rounds, cn);
        const auto result = qec::runMemoryExperiment(
            circuit, shots, rounds, qec::DecoderKind::UnionFind, rng);
        return result.perRound();
    }
    const auto embedding = embedOnLattice(code);
    const auto circuit = latticeMemoryZ(code, embedding, rounds, noise);
    const auto result = qec::runMemoryExperiment(
        circuit, shots, rounds, qec::DecoderKind::GreedyDem, rng);
    return result.perRound();
}

double
pseudothreshold(const qec::CssCode& code, std::size_t shots,
                std::uint64_t seed)
{
    // Logical error at physical rate p under code capacity.
    auto p_logical = [&](double p, std::uint64_t s) {
        cPseudothresholdEvals.add();
        const auto circ = qec::codeCapacityMemoryZ(code, 1, p, p);
        Rng rng(s);
        const auto res = qec::runMemoryExperiment(
            circ, shots, 1, qec::DecoderKind::GreedyDem, rng);
        return res.perShot();
    };

    // Bracket the crossover p_L(p) = p on [1e-3, 0.4].  The two probes
    // are independent experiments; run them concurrently (the bisection
    // itself is inherently sequential, but each evaluation still
    // shot-parallelizes internally).
    double lo = 1e-3, hi = 0.4;
    double at_lo = 0.0, at_hi = 0.0;
    exec::parallelInvoke({
        [&] { at_lo = p_logical(lo, seed); },
        [&] { at_hi = p_logical(hi, seed + 1); },
    });
    if (at_lo >= lo)
        return 0.0; // never below break-even
    if (at_hi <= hi)
        return hi;
    for (int iter = 0; iter < 12; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (p_logical(mid, seed + 2 + static_cast<std::uint64_t>(iter)) <
            mid)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace uec
} // namespace hetarch
