/**
 * @file
 * End-to-end UEC experiments (paper Fig. 9 and Table 3): logical error
 * rate per serialized QEC round for arbitrary CSS codes on the
 * heterogeneous UEC module, the homogeneous square-lattice baseline,
 * and code pseudothresholds.
 */

#pragma once

#include <cstdint>

#include "qec/css_code.hh"
#include "uec/lattice_baseline.hh"
#include "uec/uec_circuit.hh"

namespace hetarch {
namespace uec {

/**
 * Logical error per round of @p code on the heterogeneous UEC module
 * with storage coherence @p ts_ns.  Uses the optimized assignment and
 * the greedy DEM decoder.
 */
double uecLogicalErrorPerRound(const qec::CssCode& code, double ts_ns,
                               std::size_t rounds, std::size_t shots,
                               std::uint64_t seed,
                               const UecNoise& base_noise = {});

/**
 * Logical error per round of @p code on the homogeneous sea-of-qubits
 * baseline.  Surface codes use their native parallel circuit (the
 * known optimal square-lattice transpilation); other codes are routed
 * with SWAP chains.
 */
double homogeneousLogicalErrorPerRound(const qec::CssCode& code,
                                       std::size_t rounds,
                                       std::size_t shots,
                                       std::uint64_t seed,
                                       const LatticeNoise& noise = {});

/**
 * Pseudothreshold: the physical error rate p* at which the
 * code-capacity logical error rate equals p (bisection over
 * codeCapacityMemoryZ with the greedy DEM decoder).  Returns 0 when
 * the code never beats break-even on the probed interval.
 */
double pseudothreshold(const qec::CssCode& code, std::size_t shots,
                       std::uint64_t seed);

} // namespace uec
} // namespace hetarch
