#include "uec/lattice_baseline.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "lint/lint.hh"
#include "qec/noise_model.hh"
#include "qec/surface_circuit.hh"

namespace hetarch {
namespace uec {

namespace {

int
manhattan(int side, int a, int b)
{
    const int ar = a / side, ac = a % side;
    const int br = b / side, bc = b % side;
    return std::abs(ar - br) + std::abs(ac - bc);
}

/** Cells adjacent to @p cell on the grid. */
std::vector<int>
neighbors(int side, int cell)
{
    std::vector<int> out;
    const int r = cell / side, c = cell % side;
    if (r > 0)
        out.push_back(cell - side);
    if (r + 1 < side)
        out.push_back(cell + side);
    if (c > 0)
        out.push_back(cell - 1);
    if (c + 1 < side)
        out.push_back(cell + 1);
    return out;
}

/**
 * BFS shortest path from @p from to any cell adjacent to @p target,
 * walking only over cells where @p blocked is false (@p from itself is
 * always allowed).  Returns the cell sequence including @p from; empty
 * when unreachable.
 */
std::vector<int>
walkPath(int side, int from, int target, const std::vector<bool>& blocked)
{
    std::vector<int> goal_cells;
    for (auto n : neighbors(side, target))
        if (!blocked[static_cast<std::size_t>(n)] || n == from)
            goal_cells.push_back(n);
    if (goal_cells.empty())
        return {};
    std::vector<int> parent(static_cast<std::size_t>(side * side), -2);
    std::vector<int> queue{from};
    parent[static_cast<std::size_t>(from)] = -1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int cur = queue[head];
        if (std::find(goal_cells.begin(), goal_cells.end(), cur) !=
            goal_cells.end()) {
            std::vector<int> path;
            for (int c = cur; c != -1;
                 c = parent[static_cast<std::size_t>(c)])
                path.push_back(c);
            std::reverse(path.begin(), path.end());
            return path;
        }
        for (auto n : neighbors(side, cur)) {
            if (parent[static_cast<std::size_t>(n)] != -2)
                continue;
            if (blocked[static_cast<std::size_t>(n)])
                continue;
            parent[static_cast<std::size_t>(n)] = cur;
            queue.push_back(n);
        }
    }
    return {};
}

} // namespace

LatticeEmbedding
embedOnLattice(const qec::CssCode& code)
{
    const std::size_t n_checks = code.zChecks.size() + code.xChecks.size();
    const auto total = code.n + n_checks;
    // The sea of qubits may be as large as needed (paper Section 4).
    // Data qubits sit on the quarter-density (even row, even column)
    // sublattice, which guarantees that removing them leaves the grid
    // connected and every data qubit reachable by a walking ancilla.
    const int data_side = 2 * static_cast<int>(std::ceil(
                                  std::sqrt(static_cast<double>(code.n)))) -
                          1;
    const int side = std::max(
        data_side + 1,
        static_cast<int>(
            std::ceil(std::sqrt(static_cast<double>(total) * 2.0))));

    LatticeEmbedding emb;
    emb.side = side;
    emb.dataCell.assign(code.n, -1);
    emb.checkCell.assign(n_checks, -1);
    std::vector<bool> used(static_cast<std::size_t>(side * side), false);

    // Interaction partners: qubits sharing a check.
    std::vector<std::vector<std::uint32_t>> partners(code.n);
    auto link = [&](const std::vector<std::uint32_t>& sup) {
        for (auto a : sup)
            for (auto b : sup)
                if (a != b)
                    partners[a].push_back(b);
    };
    for (const auto& s : code.zChecks)
        link(s);
    for (const auto& s : code.xChecks)
        link(s);

    // Greedy data placement: highest-degree qubit at the centre, then
    // each next qubit at the free cell minimizing distance to placed
    // partners.
    std::vector<std::uint32_t> order(code.n);
    for (std::uint32_t q = 0; q < code.n; ++q)
        order[q] = q;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return partners[a].size() > partners[b].size();
                     });

    auto place_at_best = [&](auto score) {
        int best_cell = -1;
        double best = 1e18;
        for (int cell = 0; cell < side * side; ++cell) {
            if (used[static_cast<std::size_t>(cell)])
                continue;
            const double s = score(cell);
            if (s < best) {
                best = s;
                best_cell = cell;
            }
        }
        HETARCH_ASSERT(best_cell >= 0, "lattice full");
        used[static_cast<std::size_t>(best_cell)] = true;
        return best_cell;
    };

    const int centre = (side / 2) * side + side / 2;
    for (auto q : order) {
        emb.dataCell[q] = place_at_best([&](int cell) {
            // Data sits on the (even, even) sublattice only.
            const int r = cell / side, c = cell % side;
            if (r % 2 != 0 || c % 2 != 0)
                return 1e17;
            double s = 0.0;
            bool any = false;
            for (auto p : partners[q]) {
                if (emb.dataCell[p] >= 0) {
                    s += manhattan(side, cell, emb.dataCell[p]);
                    any = true;
                }
            }
            if (!any)
                s = manhattan(side, cell, centre);
            return s;
        });
    }

    // Ancillas on the odd sublattice (the walkable one), at the free
    // cell nearest their support centroid.
    std::size_t check = 0;
    auto place_checks = [&](const auto& checks) {
        for (const auto& sup : checks) {
            emb.checkCell[check++] = place_at_best([&](int cell) {
                const int r = cell / side, c = cell % side;
                if (r % 2 == 0 && c % 2 == 0)
                    return 1e17;
                double s = 0.0;
                for (auto q : sup)
                    s += manhattan(side, cell, emb.dataCell[q]);
                return s;
            });
        }
    };
    place_checks(code.zChecks);
    place_checks(code.xChecks);

    // Routing cost for one round under the ancilla-walk model: a
    // nearest-neighbour tour of each check's support (one SWAP per
    // walked cell, one CNOT per data qubit).
    std::size_t gates = 0;
    check = 0;
    auto count_gates = [&](const auto& checks) {
        for (const auto& sup : checks) {
            std::vector<std::uint32_t> remaining(sup.begin(), sup.end());
            int at = emb.checkCell[check];
            while (!remaining.empty()) {
                std::size_t best = 0;
                int best_d = 1 << 30;
                for (std::size_t i = 0; i < remaining.size(); ++i) {
                    const int d = manhattan(side, at,
                                            emb.dataCell[remaining[i]]);
                    if (d < best_d) {
                        best_d = d;
                        best = i;
                    }
                }
                // Walk to a neighbouring cell (d-1 hops) + the CNOT.
                gates += static_cast<std::size_t>(
                    std::max(0, best_d - 1) + 1);
                at = emb.dataCell[remaining[best]];
                remaining.erase(remaining.begin() +
                                static_cast<std::ptrdiff_t>(best));
            }
            ++check;
        }
    };
    count_gates(code.zChecks);
    count_gates(code.xChecks);
    emb.routedGatesPerRound = gates;
    return emb;
}

stab::Circuit
latticeMemoryZ(const qec::CssCode& code, const LatticeEmbedding& emb,
               std::size_t rounds, const LatticeNoise& noise)
{
    HETARCH_ASSERT(rounds >= 1, "need at least one round");
    const int side = emb.side;
    const auto cells = static_cast<std::size_t>(side * side);

    // Every lattice cell is a transmon; circuit qubit label == cell
    // id.  SWAP ops move *states* between these fixed labels, so a
    // walking ancilla is always addressed by the cell it currently
    // stands on.
    stab::Circuit circ(cells);

    const std::size_t n_checks = code.zChecks.size() + code.xChecks.size();
    std::vector<std::size_t> prev_meas(n_checks, SIZE_MAX);

    // Cells holding data qubits are never walked through.
    std::vector<bool> blocked(cells, false);
    for (auto c : emb.dataCell)
        blocked[static_cast<std::size_t>(c)] = true;

    // Each check runs as an ancilla walk: the ancilla tours cells
    // adjacent to its support (nearest-neighbour order), doing one
    // CNOT per data qubit, and is measured in place.  One tour is far
    // cheaper than per-qubit SWAP round trips -- the same economy a
    // routing-aware transpiler achieves on the sea of qubits.
    struct TourStep
    {
        std::vector<int> walk;   ///< cells walked (incl. start)
        std::uint32_t dataQubit; ///< qubit checked from walk.back()
    };
    struct CheckInfo
    {
        std::size_t index;
        bool isX;
        std::vector<TourStep> tour;
        std::vector<int> footprint; // cells touched
        double duration;
    };
    std::vector<CheckInfo> infos;
    std::size_t check = 0;
    auto describe = [&](const auto& checks, bool is_x) {
        for (const auto& sup : checks) {
            CheckInfo info;
            info.index = check;
            info.isX = is_x;
            info.footprint.push_back(emb.checkCell[check]);
            double dur = is_x ? 2.0 * 40.0 : 0.0;

            std::vector<std::uint32_t> remaining(sup.begin(), sup.end());
            int at = emb.checkCell[check];
            while (!remaining.empty()) {
                // Nearest unvisited support qubit.
                std::size_t best = 0;
                int best_d = 1 << 30;
                for (std::size_t i = 0; i < remaining.size(); ++i) {
                    const int d = manhattan(side, at,
                                            emb.dataCell[remaining[i]]);
                    if (d < best_d) {
                        best_d = d;
                        best = i;
                    }
                }
                const auto q = remaining[best];
                remaining.erase(remaining.begin() +
                                static_cast<std::ptrdiff_t>(best));
                auto walk = walkPath(side, at, emb.dataCell[q], blocked);
                HETARCH_ASSERT(!walk.empty(),
                               "no ancilla walk path on the lattice; "
                               "embedding too dense");
                dur += static_cast<double>(walk.size() - 1) * noise.t2q;
                dur += noise.t2q; // the CNOT itself
                at = walk.back();
                for (auto cell : walk)
                    info.footprint.push_back(cell);
                info.footprint.push_back(emb.dataCell[q]);
                info.tour.push_back({std::move(walk), q});
            }
            dur += noise.tMeas;
            info.duration = dur;
            std::sort(info.footprint.begin(), info.footprint.end());
            info.footprint.erase(std::unique(info.footprint.begin(),
                                             info.footprint.end()),
                                 info.footprint.end());
            infos.push_back(std::move(info));
            ++check;
        }
    };
    describe(code.zChecks, false);
    describe(code.xChecks, true);

    std::vector<std::vector<std::size_t>> layers;
    {
        std::vector<std::vector<int>> layer_cells;
        for (std::size_t i = 0; i < infos.size(); ++i) {
            bool placed = false;
            for (std::size_t l = 0; l < layers.size() && !placed; ++l) {
                std::vector<int> inter;
                std::set_intersection(layer_cells[l].begin(),
                                      layer_cells[l].end(),
                                      infos[i].footprint.begin(),
                                      infos[i].footprint.end(),
                                      std::back_inserter(inter));
                if (inter.empty()) {
                    layers[l].push_back(i);
                    std::vector<int> merged;
                    std::set_union(layer_cells[l].begin(),
                                   layer_cells[l].end(),
                                   infos[i].footprint.begin(),
                                   infos[i].footprint.end(),
                                   std::back_inserter(merged));
                    layer_cells[l] = std::move(merged);
                    placed = true;
                }
            }
            if (!placed) {
                layers.push_back({i});
                layer_cells.push_back(infos[i].footprint);
            }
        }
    }

    std::vector<double> last(cells, 0.0);
    auto idle_to = [&](std::uint32_t q, double t) {
        if (t > last[q]) {
            const auto p = qec::idleTwirl(t - last[q], noise.tc, noise.tc);
            circ.pauliChannel1(q, p.px, p.py, p.pz);
            last[q] = t;
        }
    };
    auto routed_swap = [&](std::uint32_t a, std::uint32_t b, double end) {
        idle_to(a, end);
        idle_to(b, end);
        circ.swap(a, b);
        circ.depolarize2(a, b, noise.p2);
    };

    double t_now = 0.0;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (const auto& layer : layers) {
            double layer_end = t_now;
            for (auto idx : layer) {
                const auto& info = infos[idx];
                double t = t_now;
                // The transmon at the home cell becomes the ancilla;
                // reset clears any idle errors it picked up while
                // parked.
                auto anc = static_cast<std::uint32_t>(
                    emb.checkCell[info.index]);
                idle_to(anc, t);
                circ.reset(anc);
                if (info.isX) {
                    t += 40.0;
                    idle_to(anc, t);
                    circ.h(anc);
                }
                for (const auto& step : info.tour) {
                    // Walk the ancilla state along the path.
                    for (std::size_t h = 0; h + 1 < step.walk.size();
                         ++h) {
                        t += noise.t2q;
                        const auto ca =
                            static_cast<std::uint32_t>(step.walk[h]);
                        const auto cb =
                            static_cast<std::uint32_t>(step.walk[h + 1]);
                        routed_swap(ca, cb, t);
                    }
                    anc = static_cast<std::uint32_t>(step.walk.back());
                    t += noise.t2q;
                    const auto data = static_cast<std::uint32_t>(
                        emb.dataCell[step.dataQubit]);
                    idle_to(anc, t);
                    idle_to(data, t);
                    if (info.isX)
                        circ.cx(anc, data);
                    else
                        circ.cx(data, anc);
                    circ.depolarize2(data, anc, noise.p2);
                }
                if (info.isX) {
                    t += 40.0;
                    idle_to(anc, t);
                    circ.h(anc);
                }
                t += noise.tMeas;
                idle_to(anc, t);
                circ.xError(anc, noise.pMeasFlip);
                const auto m = circ.measureReset(anc);
                if (info.isX) {
                    if (round > 0)
                        circ.detector({prev_meas[info.index], m},
                                      qec::kTagX);
                } else {
                    if (round == 0)
                        circ.detector({m}, qec::kTagZ);
                    else
                        circ.detector({prev_meas[info.index], m},
                                      qec::kTagZ);
                }
                prev_meas[info.index] = m;
                layer_end = std::max(layer_end, t);
            }
            t_now = layer_end;
        }
        // Everyone idles to the round boundary.
        for (std::uint32_t q = 0; q < cells; ++q)
            idle_to(q, t_now);
    }

    // Transversal data readout.
    std::vector<std::size_t> data_meas(code.n);
    for (std::uint32_t q = 0; q < code.n; ++q) {
        data_meas[q] = circ.measure(
            static_cast<std::uint32_t>(emb.dataCell[q]));
    }
    for (std::size_t c = 0; c < code.zChecks.size(); ++c) {
        std::vector<std::size_t> refs;
        for (auto q : code.zChecks[c])
            refs.push_back(data_meas[q]);
        refs.push_back(prev_meas[c]);
        circ.detector(refs, qec::kTagZ);
    }
    std::vector<std::size_t> logical;
    for (auto q : code.logicalZ)
        logical.push_back(data_meas[q]);
    circ.observableInclude(0, logical);
#ifndef NDEBUG
    lint::assertClean(circ, "latticeMemoryZ");
#endif
    return circ;
}

} // namespace uec
} // namespace hetarch
