#include "uec/assignment.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/logging.hh"

namespace hetarch {
namespace uec {

RoundSchedule
buildRoundSchedule(const qec::CssCode& code, const Assignment& assignment,
                   const UecTimes& times)
{
    HETARCH_ASSERT(assignment.registerOf.size() == code.n,
                   "assignment size mismatch");
    std::vector<int> load(static_cast<std::size_t>(assignment.numRegisters),
                          0);
    for (auto r : assignment.registerOf) {
        HETARCH_ASSERT(r >= 0 && r < assignment.numRegisters,
                       "register id out of range");
        ++load[static_cast<std::size_t>(r)];
    }
    for (auto l : load) {
        if (l > assignment.modesPerRegister)
            HETARCH_FATAL("register over capacity: ", l, " > ",
                          assignment.modesPerRegister);
    }

    RoundSchedule sched;
    sched.outOfStorage.assign(code.n, 0.0);

    std::vector<double> reg_free(
        static_cast<std::size_t>(assignment.numRegisters), 0.0);
    double anc_free = 0.0;

    int check_index = 0;
    auto run_check = [&](const std::vector<std::uint32_t>& support,
                         bool is_x) {
        // Ancilla prep (reset; +H for X checks).
        const double prep = is_x ? times.h : 0.0;
        const double prep_start = anc_free;
        anc_free += prep;
        if (prep > 0.0) {
            sched.ops.push_back({TimedOp::Kind::AncPrep, prep_start,
                                 anc_free, 0, check_index, is_x});
        }

        // Order qubits within the check round-robin over registers so
        // SWAPs pipeline against the serial ancilla CNOTs.
        std::vector<std::uint32_t> order(support.begin(), support.end());
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return assignment.registerOf[a] <
                                    assignment.registerOf[b];
                         });
        // Interleave registers: take one from each register in turn.
        std::vector<std::uint32_t> interleaved;
        {
            std::vector<std::vector<std::uint32_t>> buckets(
                static_cast<std::size_t>(assignment.numRegisters));
            for (auto q : order)
                buckets[static_cast<std::size_t>(
                            assignment.registerOf[q])]
                    .push_back(q);
            bool more = true;
            std::size_t i = 0;
            while (more) {
                more = false;
                for (auto& b : buckets) {
                    if (i < b.size()) {
                        interleaved.push_back(b[i]);
                        more = true;
                    }
                }
                ++i;
            }
        }

        for (auto q : interleaved) {
            const auto reg =
                static_cast<std::size_t>(assignment.registerOf[q]);
            const double so_start = reg_free[reg];
            const double so_end = so_start + times.swap;
            sched.ops.push_back({TimedOp::Kind::SwapOut, so_start, so_end,
                                 q, check_index, is_x});
            const double cx_start = std::max(so_end, anc_free);
            const double cx_end = cx_start + times.cnot;
            sched.ops.push_back({TimedOp::Kind::Cnot, cx_start, cx_end, q,
                                 check_index, is_x});
            anc_free = cx_end;
            const double si_end = cx_end + times.swap;
            sched.ops.push_back({TimedOp::Kind::SwapIn, cx_end, si_end, q,
                                 check_index, is_x});
            reg_free[reg] = si_end;
            sched.outOfStorage[q] += si_end - so_start;
        }

        // Ancilla measurement (+H first for X checks).
        const double m_start = anc_free;
        const double m_end = m_start + (is_x ? times.h : 0.0) +
                             times.measure;
        sched.ops.push_back({TimedOp::Kind::AncMeasure, m_start, m_end, 0,
                             check_index, is_x});
        anc_free = m_end;
        ++check_index;
    };

    for (const auto& support : code.zChecks)
        run_check(support, false);
    for (const auto& support : code.xChecks)
        run_check(support, true);

    std::stable_sort(sched.ops.begin(), sched.ops.end(),
                     [](const TimedOp& a, const TimedOp& b) {
                         return a.start < b.start;
                     });
    sched.duration = anc_free;
    for (auto f : reg_free)
        sched.duration = std::max(sched.duration, f);
    return sched;
}

RoundSchedule
buildChainedSchedule(const qec::CssCode& code, const Assignment& assignment,
                     const UecChain& chain, const UecTimes& times)
{
    HETARCH_ASSERT(assignment.numRegisters == chain.numRegisters(),
                   "assignment does not match chain configuration");
    HETARCH_ASSERT(assignment.registerOf.size() == code.n,
                   "assignment size mismatch");

    RoundSchedule sched;
    sched.outOfStorage.assign(code.n, 0.0);

    std::vector<double> reg_free(
        static_cast<std::size_t>(assignment.numRegisters), 0.0);
    std::vector<double> anc_free(
        static_cast<std::size_t>(chain.numAncillas()), 0.0);

    int check_index = 0;
    auto run_check = [&](const std::vector<std::uint32_t>& support,
                         bool is_x) {
        // Home cell: majority vote of the support's cells.
        std::vector<int> cell_count(
            static_cast<std::size_t>(chain.numAncillas()), 0);
        for (auto q : support) {
            ++cell_count[static_cast<std::size_t>(chain.cellOfRegister(
                assignment.registerOf[q]))];
        }
        int home = 0;
        for (int cell = 1; cell < chain.numAncillas(); ++cell)
            if (cell_count[static_cast<std::size_t>(cell)] >
                cell_count[static_cast<std::size_t>(home)])
                home = cell;
        auto& anc = anc_free[static_cast<std::size_t>(home)];

        const double prep = is_x ? times.h : 0.0;
        if (prep > 0.0) {
            sched.ops.push_back({TimedOp::Kind::AncPrep, anc, anc + prep,
                                 0, check_index, is_x, home, 0});
            anc += prep;
        }

        for (auto q : support) {
            const auto reg =
                static_cast<std::size_t>(assignment.registerOf[q]);
            const int hops = std::abs(
                chain.cellOfRegister(assignment.registerOf[q]) - home);

            const double so_start = reg_free[reg];
            const double so_end = so_start + times.swap;
            sched.ops.push_back({TimedOp::Kind::SwapOut, so_start,
                                 so_end, q, check_index, is_x, home, 0});
            // Route along the compute chain (hops SWAPs), then CNOT.
            const double route = hops * times.swap;
            const double cx_start = std::max(so_end + route, anc);
            const double cx_end = cx_start + times.cnot;
            sched.ops.push_back({TimedOp::Kind::Cnot, cx_start, cx_end, q,
                                 check_index, is_x, home, hops});
            anc = cx_end;
            const double si_end = cx_end + route + times.swap;
            sched.ops.push_back({TimedOp::Kind::SwapIn, cx_end, si_end, q,
                                 check_index, is_x, home, 0});
            reg_free[reg] = si_end;
            sched.outOfStorage[q] += si_end - so_start;
        }

        const double m_end = anc + (is_x ? times.h : 0.0) + times.measure;
        sched.ops.push_back({TimedOp::Kind::AncMeasure, anc, m_end, 0,
                             check_index, is_x, home, 0});
        anc = m_end;
        ++check_index;
    };

    for (const auto& support : code.zChecks)
        run_check(support, false);
    for (const auto& support : code.xChecks)
        run_check(support, true);

    std::stable_sort(sched.ops.begin(), sched.ops.end(),
                     [](const TimedOp& a, const TimedOp& b) {
                         return a.start < b.start;
                     });
    for (auto f : anc_free)
        sched.duration = std::max(sched.duration, f);
    for (auto f : reg_free)
        sched.duration = std::max(sched.duration, f);
    return sched;
}

Assignment
roundRobinAssignment(const qec::CssCode& code, int num_registers,
                     int modes_per_register)
{
    Assignment a;
    a.numRegisters = num_registers;
    a.modesPerRegister = modes_per_register;
    a.registerOf.resize(code.n);
    for (std::size_t q = 0; q < code.n; ++q)
        a.registerOf[q] = static_cast<int>(q % num_registers);
    return a;
}

Assignment
optimizeAssignment(const qec::CssCode& code, int num_registers,
                   int modes_per_register, const UecTimes& times)
{
    HETARCH_ASSERT(code.n <=
                       static_cast<std::size_t>(num_registers *
                                                modes_per_register),
                   code.name, " does not fit the UEC module");
    Assignment best =
        roundRobinAssignment(code, num_registers, modes_per_register);

    auto cost = [&](const Assignment& a) {
        const auto sched = buildRoundSchedule(code, a, times);
        double out = 0.0;
        for (auto t : sched.outOfStorage)
            out += t;
        // Duration dominates; out-of-storage time breaks ties.
        return sched.duration + 1e-3 * out;
    };

    double best_cost = cost(best);
    // Local search: move one qubit to a different register, or swap
    // the registers of two qubits; iterate to a fixed point.
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 50) {
        improved = false;
        for (std::size_t q = 0; q < code.n; ++q) {
            for (int r = 0; r < num_registers; ++r) {
                if (best.registerOf[q] == r)
                    continue;
                Assignment trial = best;
                trial.registerOf[q] = r;
                int load = 0;
                for (auto x : trial.registerOf)
                    if (x == r)
                        ++load;
                if (load > modes_per_register)
                    continue;
                const double c = cost(trial);
                if (c + 1e-9 < best_cost) {
                    best = trial;
                    best_cost = c;
                    improved = true;
                }
            }
        }
        for (std::size_t q1 = 0; q1 < code.n && !improved; ++q1) {
            for (std::size_t q2 = q1 + 1; q2 < code.n; ++q2) {
                if (best.registerOf[q1] == best.registerOf[q2])
                    continue;
                Assignment trial = best;
                std::swap(trial.registerOf[q1], trial.registerOf[q2]);
                const double c = cost(trial);
                if (c + 1e-9 < best_cost) {
                    best = trial;
                    best_cost = c;
                    improved = true;
                    break;
                }
            }
        }
    }
    return best;
}

} // namespace uec
} // namespace hetarch
