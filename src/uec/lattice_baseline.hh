/**
 * @file
 * Homogeneous "sea-of-qubits" baseline (paper Section 4's comparison
 * system): data and ancilla qubits embedded in a square lattice of
 * compute devices, with long-range check CNOTs routed through SWAP
 * chains.  Checks are packed greedily into parallel layers of
 * qubit-disjoint groups.  Surface codes should instead use their
 * native parallel circuit (qec::surfaceMemoryZ), as the paper does
 * when an optimal square-lattice transpilation is known.
 */

#pragma once

#include "core/units.hh"
#include "qec/css_code.hh"
#include "stab/circuit.hh"

namespace hetarch {
namespace uec {

/** Noise/timing of the homogeneous lattice. */
struct LatticeNoise
{
    double tc = 0.5 * units::ms;  ///< compute coherence (all devices)
    double p2 = 1e-2;             ///< two-qubit gate depolarizing
    double t2q = 100.0;           ///< two-qubit gate time, ns
    double tMeas = 1.0 * units::us;
    double pMeasFlip = 0.0;
};

/** A square-lattice embedding of a code. */
struct LatticeEmbedding
{
    int side = 0;                           ///< lattice is side x side
    std::vector<int> dataCell;              ///< data qubit -> cell id
    std::vector<int> checkCell;             ///< check -> ancilla cell
    /** Total routed two-qubit gate count for one round (cost metric). */
    std::size_t routedGatesPerRound = 0;
};

/**
 * Greedy embedding: data qubits placed to keep each check's support
 * compact, ancillas placed at the free cell nearest their support
 * centroid.
 */
LatticeEmbedding embedOnLattice(const qec::CssCode& code);

/**
 * Memory-Z experiment on the lattice: each check's CNOTs are routed
 * via SWAP chains (each hop a noisy two-qubit gate); checks run in
 * parallel layers when their qubit footprints are disjoint.
 */
stab::Circuit latticeMemoryZ(const qec::CssCode& code,
                             const LatticeEmbedding& embedding,
                             std::size_t rounds,
                             const LatticeNoise& noise);

} // namespace uec
} // namespace hetarch
