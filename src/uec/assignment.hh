/**
 * @file
 * Data-qubit-to-Register assignment and serialized check scheduling
 * for the Universal Error Correction module (paper Section 4.2.2).
 *
 * The USC holds up to three Register cells (10 modes each) around one
 * readout ancilla.  Stabilizer checks execute *serially* through the
 * ancilla; qubits in different Registers can be swapped in and out
 * concurrently, so a good assignment spreads each check's support
 * across Registers to pipeline the storage SWAPs against the ancilla
 * CNOTs.  The paper uses a brute-force assignment search; we use the
 * same cost function with a deterministic greedy seed plus local
 * search, which reaches the same optima for the paper's code sizes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/units.hh"
#include "qec/css_code.hh"

namespace hetarch {
namespace uec {

/** Operation timing of the UEC hardware. */
struct UecTimes
{
    double swap = 100.0;               ///< storage<->compute SWAP, ns
    double cnot = 100.0;               ///< compute<->ancilla CNOT, ns
    double h = 40.0;                   ///< ancilla basis change, ns
    double measure = 1.0 * units::us;  ///< ancilla readout, ns
};

/** Assignment of each data qubit to a Register index. */
struct Assignment
{
    std::vector<int> registerOf; ///< data qubit -> register id
    int numRegisters = 3;
    int modesPerRegister = 10;
};

/** One timed hardware operation of the serialized schedule. */
struct TimedOp
{
    enum class Kind : std::uint8_t
    {
        SwapOut,    ///< data qubit storage -> register compute
        Cnot,       ///< register compute <-> ancilla
        SwapIn,     ///< data qubit back to storage
        AncPrep,    ///< ancilla reset (+H for X checks)
        AncMeasure, ///< ancilla readout (+H for X checks)
    };
    Kind kind;
    double start = 0.0;
    double end = 0.0;
    std::uint32_t dataQubit = 0; ///< for SwapOut/Cnot/SwapIn
    int checkIndex = 0;          ///< global check id (Z checks first)
    bool isXCheck = false;
    int ancilla = 0;             ///< ancilla lane (USC=0, USC-EXT j=j+1)
    int routeHops = 0;           ///< inter-cell hops for this Cnot
};

/** A full serial round schedule. */
struct RoundSchedule
{
    std::vector<TimedOp> ops;  ///< sorted by start time
    double duration = 0.0;     ///< full round, ns
    /** Total time each data qubit spends out of storage per round. */
    std::vector<double> outOfStorage;
};

/**
 * Build the resource-constrained serialized schedule of one full round
 * (all Z checks then all X checks) for a given assignment.
 */
RoundSchedule buildRoundSchedule(const qec::CssCode& code,
                                 const Assignment& assignment,
                                 const UecTimes& times = {});

/** Round-robin seed assignment (also the baseline for tests). */
Assignment roundRobinAssignment(const qec::CssCode& code,
                                int num_registers = 3,
                                int modes_per_register = 10);

/**
 * Optimize the assignment by greedy seeding plus pairwise-swap local
 * search minimizing round duration (primary) and total out-of-storage
 * time (secondary).  Deterministic.
 */
Assignment optimizeAssignment(const qec::CssCode& code,
                              int num_registers = 3,
                              int modes_per_register = 10,
                              const UecTimes& times = {});

/**
 * Chained UEC (paper Section 4.2.2, Fig. 8): a USC (three Registers,
 * one ancilla) extended by @p num_usc_ext USC-EXT cells (two Registers
 * and one ancilla each), raising capacity to (3 + 2k) x 10 qubits.
 * Register r belongs to cell 0 when r < 3, else cell (r - 3) / 2 + 1;
 * each inter-cell hop of a check's routed CNOT costs one extra SWAP on
 * the compute chain.
 */
struct UecChain
{
    int numUscExt = 0;

    int numRegisters() const { return 3 + 2 * numUscExt; }
    int numAncillas() const { return 1 + numUscExt; }
    /** Which cell a register belongs to. */
    int cellOfRegister(int reg) const
    {
        return reg < 3 ? 0 : (reg - 3) / 2 + 1;
    }
};

/**
 * Serialized round schedule over a chained UEC: each check runs on the
 * ancilla of the cell holding most of its support; qubits from other
 * cells pay one SWAP hop per cell of distance.  Checks on different
 * ancillas run concurrently.
 */
RoundSchedule buildChainedSchedule(const qec::CssCode& code,
                                   const Assignment& assignment,
                                   const UecChain& chain,
                                   const UecTimes& times = {});

} // namespace uec
} // namespace hetarch
