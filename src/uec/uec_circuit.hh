/**
 * @file
 * Device-level circuit generation for the Universal Error Correction
 * module: serialized stabilizer checks of an arbitrary CSS code
 * executed on a USC (three 10-mode Registers around a readout
 * ancilla), with storage-rate idling for stored qubits and
 * compute-rate idling plus 1% two-qubit gate noise during checks
 * (paper Section 4.2.2).
 *
 * Storage SWAPs are coherence limited (paper Section 3.1: resonator
 * load/store fidelity is expected to be limited by SWAP time and
 * transmon T2); the data<->ancilla CNOTs carry the explicit two-qubit
 * error rate of Section 4.2.
 */

#pragma once

#include "core/units.hh"
#include "qec/css_code.hh"
#include "stab/circuit.hh"
#include "uec/assignment.hh"

namespace hetarch {
namespace uec {

/** Noise parameters of the UEC hardware. */
struct UecNoise
{
    double ts = 50.0 * units::ms;  ///< storage T1 = T2
    double tc = 0.5 * units::ms;   ///< compute/ancilla T1 = T2
    double p2 = 1e-2;              ///< two-qubit (CNOT) depolarizing
    double pMeasFlip = 0.0;        ///< classical readout flip
};

/**
 * Build a memory-Z experiment: @p rounds serialized rounds of all Z
 * then all X checks, followed by a transversal data readout.
 * Detectors are tagged qec::kTagZ / qec::kTagX.
 */
stab::Circuit uecMemoryZ(const qec::CssCode& code,
                         const Assignment& assignment, std::size_t rounds,
                         const UecNoise& noise, const UecTimes& times = {});

/**
 * Memory-Z experiment on a *chained* UEC (USC + USC-EXTs, Fig. 8):
 * multiple ancilla lanes run checks concurrently, and inter-cell
 * routing hops add SWAP noise on the routed data qubit.  Supports
 * codes beyond the single-USC 30-qubit limit.
 */
stab::Circuit uecChainedMemoryZ(const qec::CssCode& code,
                                const Assignment& assignment,
                                const UecChain& chain, std::size_t rounds,
                                const UecNoise& noise,
                                const UecTimes& times = {});

} // namespace uec
} // namespace hetarch
