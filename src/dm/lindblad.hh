/**
 * @file
 * Lindblad master-equation solver.
 *
 * Integrates
 *   d rho / dt = -i [H, rho]
 *                + sum_k gamma_k (L_k rho L_k^dag
 *                                 - 1/2 {L_k^dag L_k, rho})
 * with classic fixed-step RK4.  hbar = 1; times in ns, rates in 1/ns.
 *
 * The solver exists for two reasons: (1) continuous-time device physics
 * (driven gates with decoherence *during* the gate) that the discrete
 * Kraus channels cannot express, and (2) as an independent reference the
 * Kraus idle channel is validated against.
 */

#pragma once

#include <vector>

#include "dm/density_matrix.hh"

namespace hetarch {
namespace dm {

/** One collapse (jump) operator with its rate, acting on given qubits. */
struct CollapseOp
{
    Matrix op;                       ///< single- or multi-qubit operator
    std::vector<std::size_t> qubits; ///< register qubits it acts on
    double rate;                     ///< gamma_k in 1/ns
};

/** One Hamiltonian term acting on a subset of the register. */
struct HamiltonianTerm
{
    Matrix op;                       ///< Hermitian operator
    std::vector<std::size_t> qubits; ///< register qubits it acts on
};

/**
 * Fixed-step RK4 Lindblad integrator over a qubit register.
 *
 * Operators are embedded into the full register space once at setup so
 * the inner RK4 loop is pure matrix arithmetic.
 */
class LindbladSolver
{
  public:
    /**
     * @param num_qubits register size
     * @param hamiltonian Hamiltonian terms (may be empty for free decay)
     * @param collapse collapse operators with rates
     */
    LindbladSolver(std::size_t num_qubits,
                   const std::vector<HamiltonianTerm>& hamiltonian,
                   const std::vector<CollapseOp>& collapse);

    /**
     * Convenience: free decay of every qubit with per-qubit T1/T2
     * (vectors of length num_qubits, in ns).
     */
    static LindbladSolver freeDecay(std::size_t num_qubits,
                                    const std::vector<double>& t1_ns,
                                    const std::vector<double>& t2_ns);

    /**
     * Evolve @p state in place for duration @p t_ns using steps of at
     * most @p max_dt_ns.
     */
    void evolve(DensityMatrix& state, double t_ns,
                double max_dt_ns = 10.0) const;

    /** Right-hand side of the master equation (exposed for tests). */
    Matrix derivative(const Matrix& rho) const;

  private:
    std::size_t nq;
    Matrix hFull;                    ///< summed, embedded Hamiltonian
    bool hasHamiltonian = false;
    /// Precomputed embedded collapse pieces: sqrt(gamma)*L and L^dag L * gamma
    std::vector<Matrix> ls;          ///< sqrt(gamma_k) L_k (embedded)
    std::vector<Matrix> ldagl;       ///< gamma_k L_k^dag L_k (embedded)
};

} // namespace dm
} // namespace hetarch
