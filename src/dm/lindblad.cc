#include "dm/lindblad.hh"

#include <cmath>

#include "core/logging.hh"
#include "dm/channels.hh"
#include "dm/gates.hh"

namespace hetarch {
namespace dm {

LindbladSolver::LindbladSolver(std::size_t num_qubits,
                               const std::vector<HamiltonianTerm>& hamiltonian,
                               const std::vector<CollapseOp>& collapse)
    : nq(num_qubits)
{
    DensityMatrix scratch(nq); // used only for its embed() helper
    const std::size_t d = scratch.dim();

    hFull = Matrix(d, d);
    for (const auto& term : hamiltonian) {
        HETARCH_ASSERT(term.op.isHermitian(1e-9),
                       "Hamiltonian term must be Hermitian");
        hFull += scratch.embed(term.op, term.qubits);
        hasHamiltonian = true;
    }

    for (const auto& c : collapse) {
        HETARCH_ASSERT(c.rate >= 0.0, "collapse rate must be non-negative");
        if (c.rate == 0.0)
            continue;
        const Matrix full = scratch.embed(c.op, c.qubits);
        const double root = std::sqrt(c.rate);
        ls.push_back(full * Complex(root, 0.0));
        ldagl.push_back(full.dagger() * full * Complex(c.rate, 0.0));
    }
}

LindbladSolver
LindbladSolver::freeDecay(std::size_t num_qubits,
                          const std::vector<double>& t1_ns,
                          const std::vector<double>& t2_ns)
{
    HETARCH_ASSERT(t1_ns.size() == num_qubits && t2_ns.size() == num_qubits,
                   "freeDecay needs one T1/T2 per qubit");
    std::vector<CollapseOp> collapse;
    for (std::size_t q = 0; q < num_qubits; ++q) {
        collapse.push_back({gates::sigmaMinus(), {q}, 1.0 / t1_ns[q]});
        const double gphi = channels::pureDephasingRate(t1_ns[q], t2_ns[q]);
        if (gphi > 0.0)
            collapse.push_back({gates::Z(), {q}, gphi / 2.0});
    }
    return LindbladSolver(num_qubits, {}, collapse);
}

Matrix
LindbladSolver::derivative(const Matrix& rho) const
{
    const std::size_t d = rho.rows();
    Matrix out(d, d);

    if (hasHamiltonian) {
        // -i [H, rho]
        out += linalg::commutator(hFull, rho) * Complex(0.0, -1.0);
    }
    for (std::size_t k = 0; k < ls.size(); ++k) {
        out += ls[k] * rho * ls[k].dagger();
        out -= linalg::anticommutator(ldagl[k], rho) * Complex(0.5, 0.0);
    }
    return out;
}

void
LindbladSolver::evolve(DensityMatrix& state, double t_ns,
                       double max_dt_ns) const
{
    HETARCH_ASSERT(state.numQubits() == nq,
                   "state size does not match solver");
    HETARCH_ASSERT(t_ns >= 0.0 && max_dt_ns > 0.0, "bad evolve arguments");
    if (t_ns == 0.0)
        return;

    const auto steps =
        static_cast<std::size_t>(std::ceil(t_ns / max_dt_ns));
    const double dt = t_ns / static_cast<double>(steps);

    Matrix& rho = state.matrix();
    for (std::size_t s = 0; s < steps; ++s) {
        const Matrix k1 = derivative(rho);
        const Matrix k2 = derivative(rho + k1 * Complex(dt / 2.0, 0.0));
        const Matrix k3 = derivative(rho + k2 * Complex(dt / 2.0, 0.0));
        const Matrix k4 = derivative(rho + k3 * Complex(dt, 0.0));
        rho += (k1 + k2 * Complex(2.0, 0.0) + k3 * Complex(2.0, 0.0) + k4) *
               Complex(dt / 6.0, 0.0);
    }
}

} // namespace dm
} // namespace hetarch
